"""Quickstart: generate under KV-cache compression and price the serving.

Runs the same retrieval prompt through the FP16 baseline and the four
compression algorithms the paper evaluates, then asks the cost model the
deployment questions the paper says practitioners should ask *before*
adopting compression: throughput at my batch/length, and where OOM hits.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import CompressedGenerationPipeline
from repro.compression import PAPER_ALGORITHMS
from repro.model.sampling import Sampler


def build_prompt(pipe, rng, depth=400, tail=600, answer_len=5):
    """A long context with one buried key/value record + final question."""
    tok = pipe.tokenizer
    sp = tok.special
    content = tok.content_ids
    filler_alpha, record_alpha = content[: len(content) // 2], content[len(content) // 2 :]
    key = int(rng.choice(record_alpha))
    values = [int(v) for v in rng.choice(
        [c for c in record_alpha if c != key], size=answer_len, replace=False
    )]
    prompt = (
        [sp.bos]
        + [int(x) for x in rng.choice(filler_alpha, size=depth)]
        + [sp.q, key] + values + [sp.sep]
        + [int(x) for x in rng.choice(filler_alpha, size=tail)]
        + [sp.q, key]
    )
    return prompt, values


def main() -> None:
    rng = np.random.default_rng(0)

    print("=" * 72)
    print("1. Accuracy: retrieval from a long context under compression")
    print("=" * 72)
    baseline = CompressedGenerationPipeline("fp16")
    prompt, answer = build_prompt(baseline, rng)
    print(f"prompt: {len(prompt)} tokens; buried answer: {answer}")
    for algo in ("fp16",) + PAPER_ALGORITHMS:
        pipe = CompressedGenerationPipeline(algo)
        out = pipe.generate([prompt], sampler=Sampler(greedy=True),
                            max_new_tokens=12)
        got = out.sequences[0]
        verdict = "exact" if got == answer else "WRONG"
        print(f"  {algo:11s} -> {got}  [{verdict}]  "
              f"(retained KV/token: {out.retained_kv_tokens:.0f})")

    print()
    print("=" * 72)
    print("2. Systems: what does serving this algorithm cost on an A6000?")
    print("=" * 72)
    header = f"  {'algo':11s} {'prefill tok/s':>14s} {'decode tok/s':>13s} {'max batch @4k':>14s}"
    print(header)
    for algo in ("fp16",) + PAPER_ALGORITHMS:
        pipe = CompressedGenerationPipeline(algo, arch="llama-7b", gpu="a6000")
        pf = pipe.prefill_throughput(batch=4, prompt_len=2048)
        dc = pipe.decode_throughput(batch=8, kv_len=2048)
        mb = pipe.max_batch(kv_len=4096)
        print(f"  {algo:11s} {pf:14.0f} {dc:13.0f} {mb:14d}")

    print()
    print("=" * 72)
    print("3. Memory: why quantized caches can OOM before FP16 (Fig. 1l)")
    print("=" * 72)
    for algo in ("fp16", "kivi-4"):
        pipe = CompressedGenerationPipeline(algo)
        est = pipe.estimate_serving(batch=6, prompt_len=8192)
        mem = est.memory
        status = "OOM" if not mem.fits else "fits"
        print(f"  {algo:8s} peak {mem.peak_bytes / 2**30:5.1f} GiB "
              f"(steady {mem.steady_bytes / 2**30:5.1f} GiB, transient "
              f"FP16 copy {mem.kv_transient_fp16 / 2**30:4.1f} GiB) -> {status}")


if __name__ == "__main__":
    main()
