"""Negative-sample audit: find where compression silently fails.

Implements the paper's recommended pre-deployment audit (Section 5.3):
evaluate candidate compression configurations per-sample, collect the
negative samples at a chosen threshold, break them down by task type,
and emit the benchmark subset a team should track in CI.

Usage::

    python examples/negative_sample_audit.py [n_per_task] [theta]
"""

from __future__ import annotations

import sys

from repro.analysis.evaluation import evaluate_suite, mean_score
from repro.datasets import LongBenchSim, TASK_GROUPS
from repro.experiments.common import functional_model
from repro.tools.negative_sampler import NegativeSampleAnalysis, ScoredSample

ALGOS = ("kivi-4", "gear-4", "h2o-512", "stream-512")


def main() -> None:
    n_per_task = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    theta = float(sys.argv[2]) if len(sys.argv) > 2 else 0.10

    model = functional_model("llama")
    samples = LongBenchSim(
        seed=17, min_context=500, max_context=1600
    ).build(n_per_task)
    by_id = {s.sample_id: s for s in samples}
    print(f"evaluating {len(samples)} samples x {1 + len(ALGOS)} configs ...")
    results = evaluate_suite(
        model, samples, ("fp16",) + ALGOS, batch_size=16, max_new_tokens=24
    )

    print("\noverall scores (x100) — the numbers papers usually report:")
    for algo, records in results.items():
        print(f"  {algo:11s} {100 * mean_score(records):5.1f}")

    analysis = NegativeSampleAnalysis(
        {
            r.sample_id: ScoredSample(r.sample_id, r.task, r.score)
            for r in results["fp16"]
        },
        {
            algo: {
                r.sample_id: ScoredSample(r.sample_id, r.task, r.score)
                for r in records
            }
            for algo, records in results.items()
            if algo != "fp16"
        },
    )

    print(f"\nnegative samples at theta={theta:.0%} "
          f"({len(analysis.benign_ids)} benign samples):")
    for algo in ALGOS:
        negatives = analysis.negatives([algo], theta)
        by_task = analysis.counts_by_task([algo], theta)
        tasks = ", ".join(f"{t}:{c}" for t, c in sorted(by_task.items()))
        print(f"  {algo:11s} {len(negatives):3d} negatives  ({tasks})")

    both_q = analysis.negatives(["kivi-4", "gear-4"], theta)
    both_s = analysis.negatives(["h2o-512", "stream-512"], theta)
    print(f"  Quant (C)   {len(both_q):3d} negatives (fail under BOTH quantizers)")
    print(f"  Sparse (C)  {len(both_s):3d} negatives (fail under BOTH sparse)")

    bench = analysis.benchmark_ids(ALGOS, theta)
    print(f"\nbenchmark subset: {len(bench)} samples; scores on it (x100):")
    table = analysis.scores_on(bench, TASK_GROUPS)
    for group, row in sorted(table.items()):
        cells = "  ".join(f"{k}={v:5.1f}" for k, v in row.items())
        print(f"  {group:20s} {cells}")

    print("\nworst individual failures (baseline vs most-degraded algo):")
    shown = 0
    for sid in bench:
        base = analysis.baseline[sid].score
        worst_algo = min(ALGOS, key=lambda a: analysis.by_algo[a][sid].score)
        worst = analysis.by_algo[worst_algo][sid].score
        if base - worst > 0.5 and shown < 5:
            s = by_id[sid]
            print(f"  {sid:18s} task={s.task:13s} "
                  f"baseline={base:.2f} {worst_algo}={worst:.2f}")
            shown += 1


if __name__ == "__main__":
    main()
