"""Serving-gateway scenario: predictor-guided routing across a GPU fleet.

Builds the paper's Section 5.4 deployment — four LLaMA-7B instances, one
FP16 and three running StreamingLLM — then compares routing policies
under a Poisson request stream:

- load balancing (the baseline),
- route by predicted decode throughput,
- route by predicted response length,
- route by predicted end-to-end latency (both predictors combined).

Usage::

    python examples/serving_gateway.py [n_requests] [rps]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.compression import NoCompression, create
from repro.datasets import ShareGPTSim
from repro.engines import LMDEPLOY, ServingCostModel
from repro.experiments.common import functional_model
from repro.hardware import A6000
from repro.model.arch import LLAMA_7B
from repro.model.builder import token_magnitudes
from repro.model.generate import generate
from repro.model.sampling import Sampler
from repro.serving import RoutedRequest, Router, RoutingPolicy, ServerInstance
from repro.tools.features import batch_features
from repro.tools.length_predictor import train_per_algorithm
from repro.tools.throughput_predictor import ThroughputPredictor

ALGO = "stream-512"


def measure_lengths(model, requests, algo, batch=16, max_new=48):
    """True response lengths for each request under one algorithm."""
    comp = None if algo == "fp16" else create(algo)
    lengths = np.zeros(len(requests), dtype=int)
    order = sorted(range(len(requests)), key=lambda i: requests[i].prompt_len)
    sampler = Sampler(temperature=1.0, top_p=0.95, seed=7)
    for s in range(0, len(order), batch):
        idx = order[s : s + batch]
        out = generate(
            model, [requests[i].prompt for i in idx],
            compressor=comp, sampler=sampler, max_new_tokens=max_new,
        )
        for k, i in enumerate(idx):
            lengths[i] = max(1, int(out.response_lengths[k]))
    return lengths


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    rps = float(sys.argv[2]) if len(sys.argv) > 2 else 10.0

    model = functional_model("llama")
    gen = ShareGPTSim(seed=11)
    requests = gen.build(n)
    arrivals = gen.arrival_times(n, rps)
    print(f"workload: {n} requests at {rps} req/s "
          f"(median prompt {int(np.median([r.prompt_len for r in requests]))} tokens)")

    print("measuring true response lengths per algorithm ...")
    lengths = {
        a: measure_lengths(model, requests, a) for a in ("fp16", ALGO)
    }

    cm = ServingCostModel(LLAMA_7B, A6000, LMDEPLOY)
    specs = {
        "fp16": NoCompression().cost_spec(),
        ALGO: create(ALGO).cost_spec(),
    }
    tp_pred = ThroughputPredictor(cm, specs).profile()
    trained = train_per_algorithm(
        [r.prompt for r in requests], lengths,
        tokenizer=model.tokenizer,
        token_stats=token_magnitudes(model.config),
    )
    feats = batch_features(
        [r.prompt for r in requests], model.tokenizer,
        token_magnitudes(model.config),
    )
    pred_len = {
        a: trained[a]["predictor"].predict_length(feats)
        for a in ("fp16", ALGO)
    }
    print("predictor accuracies: " + ", ".join(
        f"{a}={100 * trained[a]['accuracy']:.0f}%" for a in trained
    ))

    routed = [
        RoutedRequest(
            request_id=r.request_id,
            arrival=float(arrivals[i]),
            prompt_len=r.prompt_len,
            intended_len=r.intended_length,
            lengths_by_algo={a: int(lengths[a][i]) for a in lengths},
        )
        for i, r in enumerate(requests)
    ]
    by_id = {r.request_id: i for i, r in enumerate(requests)}

    def throughput_fn(algo, batch, kv):
        return tp_pred.predict_decode_throughput(algo, max(1, batch), max(64, kv))

    def length_fn(req, algo):
        return float(pred_len[algo][by_id[req.request_id]])

    def make_instances(algos):
        return [ServerInstance(cm, specs[a]) for a in algos]

    mixed = ["fp16", ALGO, ALGO, ALGO]
    rows = []
    baseline = Router(
        make_instances([ALGO] * 4), [ALGO] * 4, RoutingPolicy.LOAD_BALANCE
    ).serve(routed)
    rows.append(("baseline (load balance)", baseline.mean_e2e()))
    for label, policy in (
        ("w/ throughput predictor", RoutingPolicy.THROUGHPUT),
        ("w/ length predictor", RoutingPolicy.LENGTH),
        ("w/ both", RoutingPolicy.BOTH),
    ):
        res = Router(
            make_instances(mixed), mixed, policy,
            throughput_fn=throughput_fn, length_fn=length_fn,
        ).serve(routed)
        rows.append((label, res.mean_e2e()))

    print(f"\nmean end-to-end latency ({ALGO} fleet):")
    base = rows[0][1]
    for label, e2e in rows:
        print(f"  {label:26s} {e2e:6.2f}s  ({base / e2e:.2f}x vs baseline)")


if __name__ == "__main__":
    main()
