"""Compression trade-off explorer: accuracy vs memory vs throughput.

Sweeps quantizer bits and sparse cache budgets on the LongBench-sim
suite and prints the three axes the paper says must be reported
together: task accuracy, steady-state KV memory, and decode throughput
at a heavy serving point.  This is the "which configuration can I
actually ship?" view.

Usage::

    python examples/compression_tradeoffs.py [n_per_task]
"""

from __future__ import annotations

import sys

from repro import CompressedGenerationPipeline
from repro.analysis.evaluation import evaluate_algorithm, mean_score
from repro.datasets import LongBenchSim
from repro.experiments.common import functional_model

SWEEP = (
    "fp16",
    "kivi-8", "kivi-4", "kivi-2",
    "gear-4", "gear-2",
    "stream-1024", "stream-512", "stream-256",
    "h2o-512", "snapkv-512",
)


def main() -> None:
    n_per_task = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    model = functional_model("llama")
    samples = LongBenchSim(
        seed=13, min_context=500, max_context=1400
    ).build(n_per_task)
    print(f"suite: {len(samples)} samples across 6 task types\n")

    header = (
        f"{'config':12s} {'accuracy':>9s} {'KV GiB @8x2k':>13s} "
        f"{'decode tok/s':>13s} {'prefill x':>10s}"
    )
    print(header)
    print("-" * len(header))
    base_prefill = None
    for algo in SWEEP:
        records = evaluate_algorithm(
            model, samples, algo, batch_size=16, max_new_tokens=24
        )
        acc = mean_score(records)
        pipe = CompressedGenerationPipeline(algo)
        mem = pipe.estimate_serving(batch=8, prompt_len=2048).memory
        kv_gib = (mem.kv_quantized + mem.kv_residual_fp16) / 2**30
        decode = pipe.decode_throughput(batch=8, kv_len=2048)
        prefill = pipe.prefill_throughput(batch=8, prompt_len=2048)
        if base_prefill is None:
            base_prefill = prefill
        print(
            f"{algo:12s} {100 * acc:8.1f}% {kv_gib:13.2f} "
            f"{decode:13.0f} {prefill / base_prefill:9.2f}x"
        )

    print(
        "\nReading guide: accuracy should be read together with memory "
        "and throughput — the paper's point is that no single column "
        "decides deployability."
    )


if __name__ == "__main__":
    main()
