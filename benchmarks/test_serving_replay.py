"""Trace replay + anomaly-mining benchmark: every recorded fleet
stress run must replay bit-for-bit through the rebuilt scenario, the
miner must surface at least three distinct anomaly classes across the
recordings, and replay throughput must clear a floor.  Writes
``results/serving_replay.txt`` and its section of
``results/BENCH_serving.json`` (including a replay-throughput
``events_per_second`` entry)."""

#: replay must sustain at least this many trace events per wall second
EVENTS_PER_SECOND_FLOOR = 2_000.0


def test_replay_fidelity_and_mining(benchmark, record_result,
                                    record_bench_json):
    from repro.experiments import serving_replay

    res = benchmark.pedantic(serving_replay.run, rounds=1, iterations=1)
    record_result(res, "serving_replay")
    raw = res.data["raw"]
    record_bench_json(
        "serving_replay",
        {
            "rows": [
                {
                    "name": f"{r['kind']}@{r['rate_scale']:g}x",
                    "events": r["events"],
                    "drift_fields": len(r["drift"]),
                    "events_per_second": r["events_per_second"],
                    "incidents": r["incidents"],
                    "anomalies": r["anomalies"],
                }
                for r in raw
            ],
            "distinct_anomaly_classes": len(res.data["anomaly_classes"]),
        },
    )

    # headline 1: exact replay — zero drifting StepMetrics fields on
    # every recording, at useful throughput
    for r in raw:
        tag = f"{r['kind']}@{r['rate_scale']:g}x"
        assert r["exact"], f"{tag} drifted: {r['drift']}"
        assert r["events"] > 500, f"{tag} recorded too few events"
        assert r["events_per_second"] >= EVENTS_PER_SECOND_FLOOR, (
            f"{tag} replayed at {r['events_per_second']:.0f} ev/s"
        )

    # headline 2: the miner separates the failure modes — KV-transfer
    # stalls and autoscaler flapping live on the disaggregated fleet,
    # SLO-miss clusters on the collapsing static baseline
    by_kind = {r["kind"]: set(r["anomaly_classes"]) for r in raw}
    assert "kv_transfer_stall" in by_kind["disagg"]
    assert "autoscaler_flap" in by_kind["disagg"]
    assert "slo_miss_cluster" in by_kind["static-2"]
    classes = set(res.data["anomaly_classes"])
    assert len(classes) >= 3, f"only mined {sorted(classes)}"


def test_emitted_regression_tests_fire(tmp_path):
    """The full pipeline: record -> analyze -> emit -> run.

    The emitted module must be self-contained (scenario + minimized
    workload literals) and its test must pass when executed directly.
    """
    from repro.experiments import serving_replay
    from repro.serving import (
        emit_regression_tests,
        load_jsonl,
        make_detector,
        mine,
    )

    path = tmp_path / "disagg.jsonl"
    serving_replay.record("disagg", 10.0, str(path))
    trace = load_jsonl(path)
    report = mine(trace, detectors=[make_detector("kv_transfer_stall")])
    assert report.incidents
    written = emit_regression_tests(
        report, trace.meta["scenario"], trace.meta["workload"],
        tmp_path / "mined", max_evals=24,
    )
    assert len(written) == 1
    ns = {}
    exec(compile(written[0].read_text(), str(written[0]), "exec"), ns)
    next(v for k, v in ns.items() if k.startswith("test_"))()
