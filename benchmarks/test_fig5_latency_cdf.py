"""Benchmark: regenerate Figure 5 (end-to-end latency CDFs)."""

import numpy as np

from repro.core.config import current_scale
from repro.experiments import fig5_latency_cdf


def test_fig5_latency_cdf(benchmark, record_result):
    res = benchmark.pedantic(
        lambda: fig5_latency_cdf.run(current_scale()), rounds=1, iterations=1
    )
    record_result(res, "fig5_latency_cdf")
    lats = res.data["latencies"]
    # Observation 4: compression's E2E gains are modest at batch one
    assert np.mean(lats["stream-512"]) < 1.5 * np.mean(lats["fp16"])
