"""Benchmark: regenerate Table 7 (scores on the negative benchmark)."""

from repro.core.config import current_scale
from repro.experiments import table7_negative_bench


def test_table7_negative_bench(benchmark, record_result):
    res = benchmark.pedantic(
        lambda: table7_negative_bench.run(current_scale()),
        rounds=1, iterations=1,
    )
    record_result(res, "table7_negative_bench")
    scores = res.data["scores"]
    # on the negative benchmark every algorithm drops below baseline
    for group, row in scores.items():
        algo_scores = [v for k, v in row.items() if k != "baseline"]
        if algo_scores:
            assert min(algo_scores) <= row["baseline"] + 1e-9
