"""Benchmark: event-driven serving core under load.

Drives one instance near saturation with each scheduler policy and
admission mode, and compares offline vs online routing on a 4-instance
shared-clock cluster.  Writes ``results/serving_core.txt``.
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.compression import NoCompression
from repro.engines import LMDEPLOY, ServingCostModel
from repro.experiments.common import ExperimentResult
from repro.hardware import A6000
from repro.model.arch import LLAMA_7B
from repro.serving import (
    RoutedRequest,
    Router,
    RoutingPolicy,
    ServerInstance,
    ServingRequest,
    StepMetrics,
    Trace,
    make_policy,
)

FP16 = NoCompression().cost_spec()


def _instance(**kw):
    return ServerInstance(
        ServingCostModel(LLAMA_7B, A6000, LMDEPLOY), FP16, **kw
    )


def _stream(n=64, seed=7, rps=8.0):
    # long prompts/responses so the KV budget, not max_batch, is the
    # binding constraint — this is where admission modes diverge
    rng = np.random.default_rng(seed)
    arr = np.cumsum(rng.exponential(1.0 / rps, size=n))
    prompts = rng.integers(512, 3072, size=n)
    resps = rng.integers(128, 1024, size=n)
    prios = rng.integers(0, 3, size=n)
    return [
        ServingRequest(
            f"r{i}", float(arr[i]), int(prompts[i]), int(resps[i]),
            priority=int(prios[i]),
        )
        for i in range(n)
    ]


def _policy_rows():
    rows, raw = [], []
    for policy in ("fcfs", "shortest", "priority"):
        for admission in ("reserve", "dynamic"):
            inst = _instance(
                scheduler=make_policy(policy), admission=admission
            )
            trace = Trace()
            res = inst.run(_stream(), trace=trace)
            m = StepMetrics.from_trace(trace)
            rows.append(
                [
                    policy,
                    admission,
                    f"{res.mean_e2e():.2f}",
                    f"{res.percentile_e2e(99):.2f}",
                    f"{m.mean_batch_occupancy:.1f}",
                    f"{m.mean_queue_delay * 1e3:.1f}",
                    str(m.preempts),
                ]
            )
            raw.append(
                {
                    "policy": policy,
                    "admission": admission,
                    "mean_e2e": res.mean_e2e(),
                    "p99_e2e": res.percentile_e2e(99),
                    "goodput": m.goodput,
                    "mean_queue_delay": m.mean_queue_delay,
                    "preempts": m.preempts,
                }
            )
    return rows, raw


def _routing_rows():
    rng = np.random.default_rng(11)
    arr = np.cumsum(rng.exponential(0.05, size=64))
    routed = [
        RoutedRequest(
            f"q{i}", float(arr[i]), int(rng.integers(128, 1024)), 64,
            {"fp16": int(rng.integers(16, 192))},
        )
        for i in range(64)
    ]
    rows = []
    for mode in ("offline", "online"):
        router = Router(
            [_instance() for _ in range(4)], ["fp16"] * 4,
            RoutingPolicy.LOAD_BALANCE,
        )
        res = router.serve(routed, online=(mode == "online"))
        s = res.latency_summary()
        rows.append(
            [mode, f"{s.mean:.2f}", f"{s.p99:.2f}", f"{s.queue_delay * 1e3:.1f}"]
        )
    return rows


def test_serving_core(benchmark, record_result, record_bench_json):
    def build():
        res = ExperimentResult(
            name="Serving core — scheduler policies and routing modes",
            description=(
                "64 Poisson requests on one instance per scheduler/"
                "admission combo; 4-instance shared-clock cluster for "
                "offline vs online load-balance routing."
            ),
        )
        policy_rows, policy_raw = _policy_rows()
        res.data["raw"] = policy_raw
        res.tables.append(
            format_table(
                ["policy", "admission", "mean e2e", "p99",
                 "occupancy", "queue (ms)", "preempts"],
                policy_rows,
                title="Single instance:",
            )
        )
        res.tables.append(
            format_table(
                ["routing", "mean e2e", "p99", "queue (ms)"],
                _routing_rows(),
                title="4-instance cluster (load balance):",
            )
        )
        return res

    res = benchmark.pedantic(build, rounds=1, iterations=1)
    record_result(res, "serving_core")
    record_bench_json("serving_core", {"policies": res.data["raw"]})
    # every policy/admission combo served the whole stream
    assert len(res.tables) == 2


def test_chunked_prefill(benchmark, record_result, record_bench_json):
    """Chunked prefill cuts the decode-stall tail at equal throughput."""
    from repro.experiments import chunked_prefill

    res = benchmark.pedantic(
        chunked_prefill.run, rounds=1, iterations=1
    )
    record_result(res, "serving_chunked")
    record_bench_json("serving_chunked", {"chunks": res.data["raw"]})
    by_chunk = {r["chunk"]: r for r in res.data["raw"]}
    off, chunked = by_chunk[None], by_chunk[512]
    # acceptance criterion: >=2x smaller max inter-DECODE_STEP gap at
    # equal total throughput (within 2%)
    assert chunked["max_decode_gap"] * 2 <= off["max_decode_gap"]
    assert chunked["throughput"] == pytest.approx(
        off["throughput"], rel=0.02
    )
