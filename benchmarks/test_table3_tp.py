"""Benchmark: regenerate Table 3 (tensor-parallel relative speedups)."""

from repro.experiments import table3_tp


def test_table3_tp(benchmark, record_result):
    res = benchmark(table3_tp.run)
    record_result(res, "table3_tp")
    decode = res.data["decode"]
    # TP shrinks the relative decode speedup of every algorithm
    for algo in ("kivi-4", "gear-4", "h2o-512", "stream-512"):
        assert decode[1][algo] > decode[4][algo]
