"""Benchmark harness configuration.

Each benchmark regenerates one paper table/figure and writes its
rendered output to ``results/<artifact>.txt`` so the numbers behind
EXPERIMENTS.md are reproducible artifacts.  Generation-heavy benches run
one round (``pedantic``); analytic benches benchmark normally.

Set ``REPRO_SCALE=full`` for paper-scale runs (slower).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_result(results_dir):
    """Write an ExperimentResult's rendering to results/<slug>.txt."""

    def _record(result, slug: str) -> None:
        path = results_dir / f"{slug}.txt"
        path.write_text(result.render() + "\n")

    return _record
