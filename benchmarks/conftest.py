"""Benchmark harness configuration.

Each benchmark regenerates one paper table/figure and writes its
rendered output to ``results/<artifact>.txt`` so the numbers behind
EXPERIMENTS.md are reproducible artifacts.  Generation-heavy benches run
one round (``pedantic``); analytic benches benchmark normally.

Set ``REPRO_SCALE=full`` for paper-scale runs (slower).
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_result(results_dir):
    """Write an ExperimentResult's rendering to results/<slug>.txt."""

    def _record(result, slug: str) -> None:
        path = results_dir / f"{slug}.txt"
        path.write_text(result.render() + "\n")

    return _record


#: row-identifying keys used to name list elements in derived entries
_ID_KEYS = ("name", "policy", "config", "routing", "chunk", "admission", "algo")


def _unit(name: str) -> str:
    """Heuristic unit for a derived metric entry, from the leaf key of
    its dotted/bracketed name (section prefixes must not leak in)."""
    parts = name.lower().replace("]", ".").replace("[", ".").split(".")
    n = [p for p in parts if p][-1]
    # replay rates come first: "events_per_second" must not fall into
    # the wall-clock "s" bucket below
    if "events_per_second" in n or "events_s" in n:
        return "events/s"
    if "throughput" in n or "goodput" in n:
        return "tokens/s"
    if any(
        t in n
        for t in ("attainment", "rate", "utilization", "fraction",
                  "overhead", "occupancy")
    ):
        return "fraction"
    if any(
        t in n
        for t in ("seconds", "ttft", "tbot", "delay", "gap", "latency",
                  "e2e", "makespan")
    ):
        return "s"
    return "count"


def _entries(payload, prefix: str = "") -> list:
    """Flatten every numeric leaf of ``payload`` into
    ``{name, value, unit}`` entries (the BENCH_*.json schema)."""
    out = []
    if isinstance(payload, dict):
        for k in sorted(payload):
            name = f"{prefix}.{k}" if prefix else str(k)
            out.extend(_entries(payload[k], name))
    elif isinstance(payload, (list, tuple)):
        for i, v in enumerate(payload):
            tag = str(i)
            if isinstance(v, dict):
                for idk in _ID_KEYS:
                    if isinstance(v.get(idk), (str, int)):
                        tag = str(v[idk])
                        break
            out.extend(_entries(v, f"{prefix}[{tag}]"))
    elif isinstance(payload, bool):
        pass  # bools are flags, not metrics
    elif isinstance(payload, (int, float)):
        out.append(
            {"name": prefix, "value": payload, "unit": _unit(prefix)}
        )
    return out


@pytest.fixture()
def record_bench_json(results_dir):
    """Merge one benchmark's metrics into results/BENCH_<bench>.json.

    Each benchmark contributes a section keyed by its slug, so the file
    accumulates a machine-readable view (throughput, TTFT, attainment,
    prefix hit-rate) across the whole benchmark run.  Every section also
    carries a flat ``entries`` list of ``{name, value, unit}`` records
    derived from the payload's numeric leaves — the schema
    ``tests/test_bench_schema.py`` checks for every BENCH file.
    """

    def _record(section: str, payload: dict, bench: str = "serving") -> None:
        path = results_dir / f"BENCH_{bench}.json"
        data = json.loads(path.read_text()) if path.exists() else {}
        data[section] = {**payload, "entries": _entries(payload, section)}
        path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

    return _record
