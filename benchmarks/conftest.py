"""Benchmark harness configuration.

Each benchmark regenerates one paper table/figure and writes its
rendered output to ``results/<artifact>.txt`` so the numbers behind
EXPERIMENTS.md are reproducible artifacts.  Generation-heavy benches run
one round (``pedantic``); analytic benches benchmark normally.

Set ``REPRO_SCALE=full`` for paper-scale runs (slower).
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_result(results_dir):
    """Write an ExperimentResult's rendering to results/<slug>.txt."""

    def _record(result, slug: str) -> None:
        path = results_dir / f"{slug}.txt"
        path.write_text(result.render() + "\n")

    return _record


@pytest.fixture()
def record_bench_json(results_dir):
    """Merge one benchmark's metrics into results/BENCH_serving.json.

    Each serving benchmark contributes a section keyed by its slug, so
    the file accumulates a machine-readable view (throughput, TTFT,
    attainment, prefix hit-rate) across the whole benchmark run.
    """

    def _record(section: str, payload) -> None:
        path = results_dir / "BENCH_serving.json"
        data = json.loads(path.read_text()) if path.exists() else {}
        data[section] = payload
        path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

    return _record
