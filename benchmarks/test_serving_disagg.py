"""Disaggregated prefill/decode fleet benchmark: TTFT attainment under
a 10x arrival-rate sweep, autoscaled pools vs static monolithic fleets.
Writes ``results/serving_disagg.txt`` and its section of
``results/BENCH_serving.json``."""


def test_disaggregated_fleet(benchmark, record_result, record_bench_json):
    from repro.experiments import serving_disagg

    res = benchmark.pedantic(serving_disagg.run, rounds=1, iterations=1)
    record_result(res, "serving_disagg")
    record_bench_json("serving_disagg", {"rows": res.data["raw"]})

    raw = res.data["raw"]
    static = [r for r in raw if r["fleet"].startswith("static-")]
    disagg = {r["rate_scale"]: r for r in raw if r["fleet"] == "disagg"}
    rates = sorted(disagg)
    top = rates[-1]
    assert top >= 10.0 * rates[0], "sweep must cover a 10x rate range"

    # headline: the autoscaled disaggregated fleet holds TTFT
    # attainment at least as well as the best static monolithic fleet
    # at EVERY arrival rate in the sweep
    for rate in rates:
        best_static = max(
            r["ttft_attainment"] for r in static if r["rate_scale"] == rate
        )
        assert disagg[rate]["ttft_attainment"] >= best_static - 1e-9, (
            f"disagg loses to a static fleet at {rate:.0f}x"
        )

    # ... and at the top rate the static fleets have collapsed while
    # the disaggregated fleet still attains its SLO
    best_static_top = max(
        r["ttft_attainment"] for r in static if r["rate_scale"] == top
    )
    assert disagg[top]["ttft_attainment"] >= 0.9
    assert best_static_top <= 0.6, "static fleets did not collapse at 10x"

    # the handoff is real and priced: every served request shipped KV,
    # with non-zero bytes and link seconds in the trace fold
    for rate in rates:
        d = disagg[rate]
        assert d["kv_transfers"] > 0
        assert d["kv_transfer_mb"] > 0
        assert d["kv_transfer_seconds"] > 0

    # the autoscaler actually acted: at least one scale-up during the
    # storm and one drain in the diurnal trough, at every rate
    for rate in rates:
        assert disagg[rate]["scale_ups"] >= 1, f"no scale-up at {rate:.0f}x"
        assert disagg[rate]["scale_downs"] >= 1, f"no drain at {rate:.0f}x"

    # static monolithic fleets never transfer KV or scale
    for r in static:
        assert r["kv_transfers"] == 0
        assert r["scale_ups"] == 0 and r["scale_downs"] == 0


def test_monolithic_mode_matches_plain_cluster():
    """Pools disabled => traces bit-for-bit those of a plain Cluster."""
    from repro.experiments import serving_disagg
    from repro.serving import Cluster, DisaggFleet, Trace, least_loaded

    specs = serving_disagg.build_workload(3.0, n=48)

    t_fleet = Trace()
    fleet = DisaggFleet([], serving_disagg.build_instances(2))
    fleet.serve(serving_disagg.make_requests(specs), trace=t_fleet)

    t_plain = Trace()
    cluster = Cluster(serving_disagg.build_instances(2))
    cluster.run_online(
        serving_disagg.make_requests(specs),
        least_loaded,
        lambda r, idx, now: r,
        trace=t_plain,
    )

    assert list(t_fleet.events) == list(t_plain.events)
    assert t_fleet.render_timeline() == t_plain.render_timeline()
