"""Benchmark: regenerate Figure 2 (LLaMA-70B on H800, TP=4)."""

from repro.experiments import fig2_h800


def test_fig2_h800(benchmark, record_result):
    res = benchmark(fig2_h800.run)
    record_result(res, "fig2_h800")
    grid = res.data["decode_grid"]
    assert grid["fp16"][(4, 2048)] > 0
