"""Benchmark: regenerate Figure 6 (negative samples vs threshold)."""

from repro.core.config import current_scale
from repro.experiments import fig6_negative_threshold


def test_fig6_negative_threshold(benchmark, record_result):
    res = benchmark.pedantic(
        lambda: fig6_negative_threshold.run(current_scale()),
        rounds=1, iterations=1,
    )
    record_result(res, "fig6_negative_threshold")
    counts = res.data["counts"]
    # Observation 5: combining algorithms reduces but rarely eliminates
    assert counts["Sparse (C)"][1] <= min(counts["H2O"][1], counts["Stream"][1])
    assert counts["Sparse (C)"][1] >= 0
    for series in counts.values():
        assert all(a >= b for a, b in zip(series, series[1:]))
