"""Benchmarks: ablations of DESIGN.md's modelled design choices."""

import numpy as np

from repro.experiments import ablations
from repro.experiments.common import functional_model
from repro.model.tokenizer import SyntheticTokenizer


def _retrieval_set(n=12, seed=77, depth=64, gap=150, tail=360, ans_len=8):
    """Deep-tail contested prompts for the accuracy ablations.

    Answer and decoy permute a *shared* pool so every chain step is
    contested, and the decoy gap keeps the recency margin small enough
    that 2-bit quantization noise matters.
    """
    tok = SyntheticTokenizer()
    sp = tok.special
    rng = np.random.default_rng(seed)
    content = tok.content_ids
    fa, ra = content[: len(content) // 2], content[len(content) // 2:]
    prompts, answers = [], []
    for _ in range(n):
        key = int(rng.choice(ra))
        pool = [int(x) for x in rng.choice(
            [c for c in ra if c != key], size=ans_len + 2, replace=False
        )]
        ans = [int(x) for x in rng.permutation(pool)[:ans_len]]
        dec = [int(x) for x in rng.permutation(pool)[:ans_len]]
        p = (
            [sp.bos]
            + [int(x) for x in rng.choice(fa, size=depth)]
            + [sp.q, key] + dec + [sp.sep]
            + [int(x) for x in rng.choice(fa, size=gap)]
            + [sp.q, key] + ans + [sp.sep]
            + [int(x) for x in rng.choice(fa, size=tail)]
            + [sp.q, key]
        )
        prompts.append(p)
        answers.append(ans)
    return prompts, answers


def test_ablation_attention(benchmark, record_result):
    res = benchmark(ablations.flash_vs_naive)
    record_result(res, "ablation_flash_vs_naive")


def test_ablation_residual_window(benchmark, record_result):
    # short tail: the answer record sits inside a 128-token residual
    # window, so the window's protection is what is being measured
    prompts, answers = _retrieval_set(tail=100)
    res = benchmark.pedantic(
        lambda: ablations.residual_window(prompts, answers),
        rounds=1, iterations=1,
    )
    record_result(res, "ablation_residual_window")
    f1s = [float(r[1]) for r in res.data["rows"]]
    assert f1s[-1] >= f1s[0] - 0.15  # larger window in the same ballpark


def test_ablation_gear(benchmark, record_result):
    prompts, answers = _retrieval_set(seed=78)
    res = benchmark.pedantic(
        lambda: ablations.gear_rank_sweep(prompts, answers),
        rounds=1, iterations=1,
    )
    record_result(res, "ablation_gear")
    rows = res.data["rows"]
    none, full = float(rows[0][2]), float(rows[-1][2])
    assert full >= none - 0.05  # error correction never much worse


def test_ablation_eviction(benchmark, record_result):
    prompts, answers = _retrieval_set(seed=79)
    res = benchmark.pedantic(
        lambda: ablations.budget_split(prompts, answers),
        rounds=1, iterations=1,
    )
    record_result(res, "ablation_eviction")


def test_ablation_paged(benchmark, record_result):
    res = benchmark(ablations.paged_block_size)
    record_result(res, "ablation_paged")
