"""Benchmark: regenerate Figure 7 (negative samples by task type)."""

from repro.core.config import current_scale
from repro.experiments import fig7_negative_tasks


def test_fig7_negative_tasks(benchmark, record_result):
    res = benchmark.pedantic(
        lambda: fig7_negative_tasks.run(current_scale()),
        rounds=1, iterations=1,
    )
    record_result(res, "fig7_negative_tasks")
    breakdown = res.data["breakdown"]
    # Observation 6: sparse negatives concentrate on QA/summarization
    sparse = breakdown["stream-512"]
    qa_sum = sum(
        sparse.get(t, 0)
        for t in ("qa_single", "qa_multi", "summarization", "synthetic")
    )
    assert qa_sum >= sparse.get("code", 0)
