"""Benchmark: enabled-telemetry overhead on the serving core scenario.

Serves the 64-request near-saturation Poisson stream from the
serving-core benchmark with and without a live :class:`Telemetry`
sink and bounds the relative cost of the enabled path.

The enabled path differs from the disabled path *only* in the hook
calls behind the ``telemetry is not None`` guards (``on_event`` per
recorded trace event, ``sample_instance`` per instance wake-up,
``on_loop`` per event-loop dispatch) — so its overhead is exactly the
time those invocations take.  Wall-clock A/B of two full serving runs
cannot resolve that delta on a shared machine: the hooks cost a few
milliseconds while scheduler jitter moves a ~150 ms run by tens of
milliseconds.  The bound asserted here is therefore measured
deterministically: record the *exact* hook-call sequence of an
enabled run (per-event ``on_event`` calls, batched ``on_decode_steps``
bursts, and the sampled gauge calls, in order), replay it against a
fresh sink, best-of-N, and divide by
the best plain-path wall time.  Underestimating the plain time only
*inflates* the reported overhead, so the bound is conservative.  The
full-run A/B wall times are still recorded for reference.

Also re-checks the structural guarantee: the recorded traces are
identical event for event, telemetry on or off.

Writes ``results/BENCH_telemetry.json``.
"""

import gc
import time

import numpy as np

from repro.compression import NoCompression
from repro.engines import LMDEPLOY, ServingCostModel
from repro.hardware import A6000
from repro.model.arch import LLAMA_7B
from repro.serving import (
    ServerInstance,
    ServingRequest,
    StepMetrics,
    Telemetry,
    Trace,
)

FP16 = NoCompression().cost_spec()

#: relative enabled-path overhead budget (the PR's acceptance bound)
OVERHEAD_BUDGET = 0.05
ROUNDS = 7
REPLAY_ROUNDS = 20


def _instance(**kw):
    return ServerInstance(
        ServingCostModel(LLAMA_7B, A6000, LMDEPLOY), FP16, **kw
    )


def _stream(n=64, seed=7, rps=8.0):
    rng = np.random.default_rng(seed)
    arr = np.cumsum(rng.exponential(1.0 / rps, size=n))
    prompts = rng.integers(512, 3072, size=n)
    resps = rng.integers(128, 1024, size=n)
    return [
        ServingRequest(f"r{i}", float(arr[i]), int(prompts[i]), int(resps[i]))
        for i in range(n)
    ]


def _run_once(telemetry):
    trace = Trace()
    inst = _instance(admission="dynamic")
    reqs = _stream()
    gc.collect()
    t0 = time.perf_counter()
    inst.run(reqs, trace=trace, telemetry=telemetry)
    return time.perf_counter() - t0, trace, inst


class _RecordingTelemetry(Telemetry):
    """A real sink that also logs every hook invocation, so the replay
    measures the *exact* call sequence of the enabled run — including
    which decode steps arrived via the batched ``on_decode_steps``
    burst hook and which took the per-event path."""

    def __init__(self, **kw):
        super().__init__(**kw)
        self.calls = []

    def on_event(self, e):
        self.calls.append(("on_event", (e,)))
        super().on_event(e)

    def on_decode_steps(self, *args):
        self.calls.append(("on_decode_steps", args))
        super().on_decode_steps(*args)

    def sample_instance(self, now, inst):
        self.calls.append(("sample_instance", (now, inst)))
        super().sample_instance(now, inst)

    def on_loop(self, now, pending, fired):
        self.calls.append(("on_loop", (now, pending, fired)))
        super().on_loop(now, pending, fired)


def _hook_seconds(calls):
    """Best-of-N wall time of the enabled path's extra work: the exact
    hook-call sequence a full enabled run makes (the dispatch overhead
    of the replay loop itself only inflates the bound)."""
    best = float("inf")
    for _ in range(REPLAY_ROUNDS):
        sink = Telemetry(labels={"policy": "fcfs", "compression": "fp16"})
        hooks = {
            "on_event": sink.on_event,
            "on_decode_steps": sink.on_decode_steps,
            "sample_instance": sink.sample_instance,
            "on_loop": sink.on_loop,
        }
        seq = [(hooks[name], args) for name, args in calls]
        gc.collect()
        t0 = time.perf_counter()
        for hook, args in seq:
            hook(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def test_telemetry_overhead(benchmark, record_bench_json):
    # interleaved best-of-N wall clock for each full path (reported for
    # reference; jitter-prone, so not the asserted bound)
    plain_times, tel_times = [], []
    plain_trace = tel_trace = tel_inst = None
    tel = None
    for _ in range(ROUNDS):
        dt, plain_trace, _ = _run_once(None)
        plain_times.append(dt)
        tel = Telemetry(labels={"policy": "fcfs", "compression": "fp16"})
        dt, tel_trace, tel_inst = _run_once(tel)
        tel_times.append(dt)
    # one instrumented run to capture the exact hook-call sequence
    rec = _RecordingTelemetry(labels={"policy": "fcfs", "compression": "fp16"})
    _run_once(rec)

    def measured():
        return _run_once(None)[0]

    benchmark.pedantic(measured, rounds=1, iterations=1)

    best_plain = min(plain_times)
    best_tel = min(tel_times)

    # structural guarantee: telemetry never changes the simulation
    assert plain_trace.events == tel_trace.events
    m = StepMetrics.from_trace(plain_trace)
    assert m.finishes == 64
    # the sink really was publishing during the timed run
    assert tel.events_total.total() == len(tel_trace)
    _, _, n_ttft = tel.ttft.aggregate()
    assert n_ttft == 64

    # deterministic overhead bound: time the enabled run's recorded
    # hook-call sequence exactly as the real run made it
    n_samples = len(tel.series[(tel_inst.name, "queue_depth")])
    n_loop = tel._loop_tick
    hook = _hook_seconds(rec.calls)
    overhead = hook / best_plain

    record_bench_json(
        "telemetry_overhead",
        {
            "scenario": "serving_core 64-request dynamic-admission stream",
            "rounds": ROUNDS,
            "plain_best_seconds": best_plain,
            "telemetry_best_seconds": best_tel,
            "hook_seconds": hook,
            "overhead": overhead,
            "events": len(tel_trace),
            "instance_samples": n_samples,
            "loop_ticks": n_loop,
            "overhead_budget": OVERHEAD_BUDGET,
        },
        bench="telemetry",
    )
    # acceptance criterion: enabled path within the overhead budget
    assert overhead <= OVERHEAD_BUDGET, (
        f"telemetry overhead {overhead:.1%} exceeds {OVERHEAD_BUDGET:.0%} "
        f"(hooks {hook * 1e3:.2f}ms vs plain run {best_plain * 1e3:.1f}ms)"
    )
