"""Benchmark: regenerate Table 4 (semantic score vs length increase)."""

from repro.core.config import current_scale
from repro.experiments import table4_semantic


def test_table4_semantic(benchmark, record_result):
    res = benchmark.pedantic(
        lambda: table4_semantic.run(current_scale()), rounds=1, iterations=1
    )
    record_result(res, "table4_semantic")
    table = res.data["table"]
    for algo, row in table.items():
        if algo != "fp16" and row["n"] > 0:
            assert row["length_increase"] >= 1.0  # longer by construction
