"""SLO-aware admission benchmark: fcfs vs shortest vs slo under
interference, plus load-balance vs SLO-slack online routing."""

import pytest


def test_slo_admission(benchmark, record_result, record_bench_json):
    """The slo policy strictly beats FCFS on TTFT-SLO attainment at
    equal offered load (the PR's acceptance criterion)."""
    from repro.experiments import slo_admission

    res = benchmark.pedantic(slo_admission.run, rounds=1, iterations=1)
    record_result(res, "serving_slo")
    record_bench_json(
        "serving_slo",
        {"policies": res.data["raw"], "routing": res.data["routing_raw"]},
    )
    by_policy = {r["policy"]: r for r in res.data["raw"]}
    fcfs, slo = by_policy["fcfs"], by_policy["slo"]
    # acceptance criterion: strictly higher TTFT-SLO attainment
    assert slo["ttft_attainment"] > fcfs["ttft_attainment"]
    assert slo["goodput"] >= fcfs["goodput"]
    # routing table: SLO-slack routing attains at least as much as
    # load-balance on the mixed-deadline stream
    by_routing = {r["routing"]: r for r in res.data["routing_raw"]}
    assert (
        by_routing["slo"]["ttft_attainment"]
        >= by_routing["load_balance"]["ttft_attainment"]
    )
