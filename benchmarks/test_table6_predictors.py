"""Benchmark: regenerate Table 6 (tool prediction accuracies)."""

from repro.core.config import current_scale
from repro.experiments import table6_predictors


def test_table6_predictors(benchmark, record_result):
    res = benchmark.pedantic(
        lambda: table6_predictors.run(current_scale()), rounds=1, iterations=1
    )
    record_result(res, "table6_predictors")
    thr = res.data["throughput"]
    assert all(v > 0.75 for v in thr.values())
    lng = res.data["length"]
    assert all(v > 0.3 for v in lng.values())
