"""Benchmark: appendix Figs 17-18 + Tables 10-11 (Mistral negatives)."""

from repro.core.config import current_scale
from repro.experiments import appendix


def test_mistral_negative_suite(benchmark, record_result):
    results = benchmark.pedantic(
        lambda: appendix.mistral_negative_suite(current_scale()),
        rounds=1, iterations=1,
    )
    for res, slug in zip(
        results, ("fig17_mistral_negatives", "fig18_mistral_tasks",
                  "table10_mistral_predictors", "table11_mistral_bench"),
    ):
        record_result(res, slug)
    assert len(results) == 4
