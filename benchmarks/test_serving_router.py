"""Compression-aware routing benchmark: risk-threshold sweep against
static-FP16 and static-compressed fleets.  Writes
``results/serving_router.txt`` and its section of
``results/BENCH_serving.json``."""


def test_compression_routing(benchmark, record_result, record_bench_json):
    from repro.experiments import serving_router

    res = benchmark.pedantic(serving_router.run, rounds=1, iterations=1)
    record_result(res, "serving_router")
    record_bench_json("serving_router", res.data["raw"])

    raw = res.data["raw"]
    by_fleet = {r["fleet"]: r for r in raw["baselines"]}
    fp16 = by_fleet["fp16-static"]
    comp = by_fleet["compressed-static"]
    frontier = raw["frontier"]

    # the static baselines bracket the quality axis as the paper
    # predicts: lossless fleet at quality 1, compressed fleet below
    assert fp16["quality"] == 1.0
    assert comp["quality"] < fp16["quality"]

    # acceptance criterion: the online compression policy beats BOTH
    # static fleets on the goodput-at-matched-quality frontier —
    # some swept point matches FP16 quality at higher goodput, and
    # some point matches (or exceeds) the compressed fleet's quality
    # at higher goodput.
    beats_fp16 = [
        p for p in frontier
        if p["quality"] >= fp16["quality"] and p["goodput"] > fp16["goodput"]
    ]
    beats_comp = [
        p for p in frontier
        if p["quality"] >= comp["quality"] and p["goodput"] > comp["goodput"]
    ]
    assert beats_fp16, "no frontier point dominates the FP16 fleet"
    assert beats_comp, "no frontier point dominates the compressed fleet"

    # the risk gate is live: tight thresholds reroute risky decodes,
    # and quality degrades monotonically as the gate loosens
    gated = [p for p in frontier if not p["fallback"]]
    gated.sort(key=lambda p: p["threshold"])
    assert gated[0]["reroutes"] > gated[-1]["reroutes"]
    qualities = [p["quality"] for p in gated]
    assert qualities == sorted(qualities, reverse=True)

    # verify-and-fallback: failed verifications re-decode on FP16 and
    # buy back quality relative to the ungated fleet
    fb = [p for p in frontier if p["fallback"] and p["fallbacks"] > 0]
    assert fb, "no fallback point recorded any re-decodes"
    loosest_gated = gated[-1]
    assert max(p["quality"] for p in fb) > loosest_gated["quality"]
