"""Prefix caching benchmark: multi-turn TTFT, compression friction,
and cache-affinity routing.  Writes ``results/serving_prefix.txt`` and
its machine-readable section of ``results/BENCH_serving.json``."""


def test_prefix_caching(benchmark, record_result, record_bench_json):
    from repro.experiments import prefix_caching

    res = benchmark.pedantic(prefix_caching.run, rounds=1, iterations=1)
    record_result(res, "serving_prefix")
    record_bench_json(
        "serving_prefix",
        {
            "single_instance": res.data["raw"],
            "routing": res.data["routing_raw"],
        },
    )
    by_config = {r["config"]: r for r in res.data["raw"]}
    off, on = by_config["fp16 / off"], by_config["fp16 / on"]
    # acceptance criterion: >=2x mean TTFT reduction on the shared-prefix
    # multi-turn workload with caching on
    assert off["mean_ttft"] >= 2.0 * on["mean_ttft"]
    assert on["prefix_hit_rate"] > 0.5
    assert on["prefix_cached_tokens"] > 0
    # compression friction (paper Section 3.1.2): quantized blocks are
    # unshareable, so the same index on a KIVI instance never hits
    assert by_config["kivi-4 / on"]["prefix_hits"] == 0
    # cache-affinity routing keeps conversations warm where load-balance
    # scatters them
    by_routing = {r["routing"]: r for r in res.data["routing_raw"]}
    lb, px = by_routing["load_balance"], by_routing["prefix"]
    assert px["prefix_hit_rate"] > lb["prefix_hit_rate"]
    assert px["mean_ttft"] < lb["mean_ttft"]
