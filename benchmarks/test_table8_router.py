"""Benchmark: regenerate Table 8 (predictor-guided request routing)."""

from repro.core.config import current_scale
from repro.experiments import table8_router


def test_table8_router(benchmark, record_result):
    res = benchmark.pedantic(
        lambda: table8_router.run(current_scale()), rounds=1, iterations=1
    )
    record_result(res, "table8_router")
    table = res.data["table"]
    # combined routing should not lose to the homogeneous baseline
    for algo in ("kivi-4", "stream-512"):
        assert table["w/ Both"][algo] <= 1.35 * table["Baseline"][algo]
