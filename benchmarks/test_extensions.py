"""Benchmark: survey-extension algorithms through the whole stack."""

from repro.analysis.reporting import format_table
from repro.compression import EXTENSION_ALGORITHMS
from repro.experiments.common import (
    ExperimentResult,
    comp_spec,
    cost_model,
)


def extension_throughput():
    """Decode/prefill speedups of the extension algorithms."""
    res = ExperimentResult(
        name="Extensions — survey algorithms, throughput view",
        description=(
            "TOVA, PyramidKV, KVQuant-style and Q-Hitter on the same "
            "cost model as the paper's four (LLaMA-7B, A6000, LMDeploy)."
        ),
    )
    m = cost_model()
    fp16 = comp_spec("fp16")
    rows = []
    for algo in ("fp16",) + EXTENSION_ALGORITHMS:
        spec = comp_spec(algo)
        pf = m.prefill_throughput(4, 2048, spec)
        dc = m.decode_throughput(8, 4096, spec)
        rows.append([
            algo,
            f"{pf:.0f}",
            f"{pf / m.prefill_throughput(4, 2048, fp16):.2f}x",
            f"{dc:.0f}",
            f"{dc / m.decode_throughput(8, 4096, fp16):.2f}x",
        ])
        res.data[algo] = {"prefill": pf, "decode": dc}
    res.tables.append(
        format_table(
            ["algo", "prefill tok/s", "vs fp16", "decode tok/s", "vs fp16"],
            rows,
        )
    )
    return res


def test_extensions_throughput(benchmark, record_result):
    res = benchmark(extension_throughput)
    record_result(res, "extensions_throughput")
    # hybrids get the sparse decode win
    assert res.data["qhitter-4"]["decode"] > res.data["fp16"]["decode"]
