"""Benchmark: regenerate Figure 3 (attention-layer execution time)."""

from repro.experiments import fig3_attention_time


def test_fig3_attention_time(benchmark, record_result):
    res = benchmark(fig3_attention_time.run)
    record_result(res, "fig3_attention_time")
    decode = res.data["decode"]
    # sparse methods' decode attention time saturates once the KV length
    # exceeds the budget (Fig. 3b): compare 1024 vs 8192
    assert decode["h2o-512"][-1] < 1.3 * decode["h2o-512"][2]
    # GEAR/H2O pay extra in prefill (Fig. 3a)
    prefill = res.data["prefill"]
    assert prefill["h2o-512"][-1] > prefill["fp16"][-1]
