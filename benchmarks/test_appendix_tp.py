"""Benchmark: appendix Figures 11-14 (TP sweeps across architectures)."""

from repro.experiments import appendix


def test_tp_sweeps(benchmark, record_result):
    res = benchmark(appendix.tp_sweeps)
    record_result(res, "fig11_14_tp_sweeps")
    data = res.data["llama-7b/decode"]
    assert data[4]["fp16"] > data[1]["fp16"]
