"""Micro-benchmarks of the NumPy kernels (pytest-benchmark timings)."""

import numpy as np

from repro.compression.quant.codec import (
    quant_dequant_per_channel,
    quant_dequant_per_token,
)
from repro.model.attention import HeadBias, flash_attention, naive_attention


def _qkv(n=1024, b=8, h=4, dh=64, seed=0):
    rng = np.random.default_rng(seed)
    q = rng.normal(size=(b, h, 1, dh)).astype(np.float32)
    k = rng.normal(size=(b, h, n, dh)).astype(np.float32)
    v = rng.normal(size=(b, h, n, dh)).astype(np.float32)
    return q, k, v


def test_bench_naive_attention_decode(benchmark):
    q, k, v = _qkv()
    q_pos, k_pos = np.array([1023]), np.arange(1024)
    biases = [HeadBias("none", 0)] * 4
    benchmark(lambda: naive_attention(q, k, v, q_pos, k_pos, biases))


def test_bench_flash_attention_decode(benchmark):
    q, k, v = _qkv()
    q_pos, k_pos = np.array([1023]), np.arange(1024)
    biases = [HeadBias("none", 0)] * 4
    benchmark(lambda: flash_attention(q, k, v, q_pos, k_pos, biases))


def test_bench_key_codec(benchmark):
    x = np.random.default_rng(0).normal(size=(8, 4, 12, 32, 64))
    benchmark(lambda: quant_dequant_per_channel(x, 4))


def test_bench_value_codec(benchmark):
    x = np.random.default_rng(0).normal(size=(8, 4, 384, 64))
    benchmark(lambda: quant_dequant_per_token(x, 4, 32))


def test_bench_decode_step(benchmark):
    """Wall-clock of one functional-model decode step, batch 16."""
    from repro.experiments.common import functional_model
    from repro.model.generate import left_pad

    model = functional_model("llama")
    tok = model.tokenizer
    rng = np.random.default_rng(1)
    prompts = [
        [tok.special.bos]
        + [int(x) for x in rng.choice(tok.content_ids, size=512)]
        for _ in range(16)
    ]
    tokens, starts = left_pad(prompts, tok.special.pad)
    cache = model.new_cache(16, starts)
    model.prefill(tokens, cache, None)
    ids = np.full(16, tok.content_ids[0])
    benchmark(lambda: model.decode_step(ids, cache, None))
