"""Benchmark: appendix Table 9 + Figures 15-16 (Mistral length suite)."""

from repro.core.config import current_scale
from repro.experiments import appendix


def test_mistral_length_suite(benchmark, record_result):
    results = benchmark.pedantic(
        lambda: appendix.mistral_length_suite(current_scale()),
        rounds=1, iterations=1,
    )
    for res, slug in zip(
        results, ("table9_mistral_lengths", "fig15_mistral_dist",
                  "fig16_mistral_cdf"),
    ):
        record_result(res, slug)
    assert len(results) == 3
