"""Benchmark: serving-core simulation throughput at scale.

Drives one saturated instance through the serving-core Poisson
workload (3072 requests, ~80k trace events) twice — once on the
columnar :class:`Trace` with the vectorized folds ("after"), once on
:class:`ObjectTrace` with the legacy per-event folds ("before") — and
records simulated requests/sec and trace events/sec for both in
``results/BENCH_serving.json``, together with the frozen pre-refactor
seed baseline.

Two acceptance gates fail CI on regression:

- the columnar path must stay >= ``FLOOR_RPS`` requests/sec, and
- it must hold a >= 10x speedup over the in-run object-path
  measurement (the same machine, so the ratio is hardware-independent).

Both paths assert fold equality inline, so this doubles as a
large-scale equivalence check.
"""

import os
import time

import numpy as np

from repro.compression import NoCompression
from repro.engines import LMDEPLOY, ServingCostModel
from repro.hardware import A6000
from repro.model.arch import LLAMA_7B
from repro.serving import (
    ObjectTrace,
    ServerInstance,
    ServingRequest,
    StepMetrics,
    Trace,
    queue_delays,
    request_latencies,
)

FP16 = NoCompression().cost_spec()

#: requests in the scale scenario (paper-scale; REPRO_SCALE=smoke shrinks it)
N_REQUESTS = 3072 if os.environ.get("REPRO_SCALE") != "smoke" else 512

#: absolute floor for the columnar path at N_REQUESTS=3072, simulated
#: requests/sec.  Measured 5488.6 req/s on the reference container —
#: the floor leaves >5x headroom for slower CI machines while staying
#: >3x above the object path.
FLOOR_RPS = 1000.0

#: minimum columnar-vs-object speedup (same machine, same run)
MIN_SPEEDUP = 10.0

#: pre-refactor seed baseline, measured from the pre-refactor tree on
#: the reference container at N_REQUESTS=3072 (object trace, per-event
#: recording, object folds, per-step scheduler scans): the "before"
#: column of the tentpole's before/after comparison.
SEED_BASELINE = {"requests_per_sec": 184.9, "events_per_sec": 4829.0}


def _instance():
    return ServerInstance(
        ServingCostModel(LLAMA_7B, A6000, LMDEPLOY), FP16
    )


def _stream(n):
    # serving-core shape: Poisson arrivals at 8 rps, long prompts and
    # responses so the KV budget binds and the queue grows deep
    rng = np.random.default_rng(7)
    arr = np.cumsum(rng.exponential(1.0 / 8.0, size=n))
    prompts = rng.integers(512, 3072, size=n)
    resps = rng.integers(128, 1024, size=n)
    prios = rng.integers(0, 4, size=n)
    return [
        ServingRequest(
            f"r{i}", float(arr[i]), int(prompts[i]), int(resps[i]),
            priority=int(prios[i]),
        )
        for i in range(n)
    ]


def _measure(trace):
    """Run the scenario on ``trace``; returns (metrics dict, folds)."""
    reqs = _stream(N_REQUESTS)
    inst = _instance()
    t0 = time.perf_counter()
    res = inst.run(reqs, trace=trace)
    t_run = time.perf_counter() - t0
    t0 = time.perf_counter()
    m = StepMetrics.from_trace(trace)
    lats = request_latencies(trace)
    delays = queue_delays(trace)
    t_fold = time.perf_counter() - t0
    total = t_run + t_fold
    assert len(res.completed) == N_REQUESTS
    return (
        {
            "requests": N_REQUESTS,
            "events": len(trace),
            "run_seconds": t_run,
            "fold_seconds": t_fold,
            "requests_per_sec": N_REQUESTS / total,
            "events_per_sec": len(trace) / total,
        },
        (m, lats, delays),
    )


def test_serving_scale(benchmark, record_bench_json):
    def run():
        after, col_folds = _measure(Trace())
        before, obj_folds = _measure(ObjectTrace())
        # same workload, same simulator: the folds must agree exactly
        assert col_folds == obj_folds
        return after, before

    after, before = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = after["requests_per_sec"] / before["requests_per_sec"]
    record_bench_json(
        "serving_scale",
        {
            "columnar": after,
            "object_path": before,
            "seed_baseline": SEED_BASELINE,
            "speedup_vs_object": speedup,
            "speedup_vs_seed": (
                after["requests_per_sec"]
                / SEED_BASELINE["requests_per_sec"]
            ),
            "floor_requests_per_sec": FLOOR_RPS,
        },
    )
    if N_REQUESTS >= 3072:
        # acceptance gates (full scale only: at smoke scale the trace
        # is too small for the fold/record savings to dominate)
        assert after["requests_per_sec"] >= FLOOR_RPS, (
            f"columnar serving throughput {after['requests_per_sec']:.0f} "
            f"req/s fell below the {FLOOR_RPS:.0f} req/s floor"
        )
        assert speedup >= MIN_SPEEDUP, (
            f"columnar path is only {speedup:.1f}x the object path "
            f"(need >= {MIN_SPEEDUP:.0f}x)"
        )
