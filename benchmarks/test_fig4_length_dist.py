"""Benchmark: regenerate Figure 4 (length-difference distributions)."""

import numpy as np

from repro.core.config import current_scale
from repro.experiments import fig4_length_dist


def test_fig4_length_dist(benchmark, record_result):
    res = benchmark.pedantic(
        lambda: fig4_length_dist.run(current_scale()), rounds=1, iterations=1
    )
    record_result(res, "fig4_length_dist")
    kivi = res.data["d"]["kivi"]
    # Observation 3: higher compression flattens the distribution
    from repro.analysis import flatness

    assert flatness(kivi["kivi-2"]) > flatness(kivi["kivi-8"])
