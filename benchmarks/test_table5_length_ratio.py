"""Benchmark: regenerate Table 5 (length-variation ratios)."""

from repro.core.config import current_scale
from repro.experiments import table5_length_ratio


def test_table5_length_ratio(benchmark, record_result):
    res = benchmark.pedantic(
        lambda: table5_length_ratio.run(current_scale()),
        rounds=1, iterations=1,
    )
    record_result(res, "table5_length_ratio")
    ratios = res.data["ratios"]
    assert set(ratios) >= {"T=0.9", "T=1.1", "kivi-4", "stream-512"}
