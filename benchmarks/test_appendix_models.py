"""Benchmarks: appendix Figures 8-10 (Mistral-7B, SnapKV, LLaMA-13B)."""

from repro.experiments import appendix


def test_fig8_mistral(benchmark, record_result):
    res = benchmark(appendix.fig8_mistral)
    record_result(res, "fig8_mistral_throughput")
    grid = res.data["decode_grid"]
    assert grid["fp16"][(4, 1024)] > 0


def test_fig9_snapkv(benchmark, record_result):
    res = benchmark(appendix.fig9_snapkv)
    record_result(res, "fig9_snapkv")
    grid = res.data["prefill_grid"]
    # SnapKV's window scoring is far cheaper than H2O's full pass
    assert grid["snapkv-512"][(4, 2048)] > grid["h2o-512"][(4, 2048)]


def test_fig10_llama13b(benchmark, record_result):
    res = benchmark(appendix.fig10_llama13b)
    record_result(res, "fig10_llama13b")
    decode = res.data["decode_grid"]
    # the appendix notes KIVI OOM on 13B/single A6000 at heavy settings
    assert any(v == 0.0 for v in decode["kivi-4"].values())
