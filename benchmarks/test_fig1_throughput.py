"""Benchmark: regenerate Figure 1 (LLaMA-7B throughput analysis)."""

from repro.experiments import fig1_throughput


def test_fig1_throughput(benchmark, record_result):
    res = benchmark(fig1_throughput.run)
    record_result(res, "fig1_throughput")
    # shape assertions: engine ordering and OOM structure
    series = res.data["fp16_decode_kv2048"]
    assert series["lmdeploy"][1] > series["trl"][1]
    decode = res.data["decode_grid"]
    assert any(v == 0.0 for v in decode["kivi-4"].values())
