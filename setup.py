"""Thin shim so offline environments without the `wheel` package can
`pip install -e .` via the legacy setuptools editable path."""
from setuptools import setup

setup()
