"""JSONL round-trip coverage for fleet-era events and the meta header.

Satellite coverage for the replay harness: the disaggregated-fleet
event kinds (``KV_TRANSFER``, ``SCALE_UP``/``SCALE_DOWN``) and the
staged/synthetic request ids (``#pf`` prefill stages, ``#fb`` fallback
re-decodes) must survive ``dump_jsonl`` → ``load_jsonl`` exactly —
payload values AND types — and must fold identically through both
``StepMetrics`` paths (columnar and legacy event walk).  The metadata
header line added for ring-buffer truncation must round-trip drop
counts and scenario/workload context without perturbing the legacy
headerless byte format of unbounded exports.
"""

import json

import pytest

from repro.serving import (
    EventType,
    ObjectTrace,
    StepMetrics,
    Trace,
    build_spans,
    dump_jsonl,
    load_jsonl,
)
from repro.serving.telemetry.export import META_KEY


def fleet_trace(cls=Trace, **kw):
    """A hand-built disagg-shaped recording touching every fleet kind."""
    t = cls(**kw)
    # staged request: prefill under r0#pf on the prefill pool...
    t.record(0.00, EventType.ADMIT, "r0#pf", "pf0",
             arrival=0.0, queued_at=0.0, ttft_deadline=2.0)
    t.record(0.10, EventType.PREFILL, "r0#pf", "pf0",
             seconds=0.1, prompt=512)
    t.record(0.10, EventType.FINISH, "r0#pf", "pf0",
             arrival=0.0, first_token=0.1, generated=1)
    # ...then the KV ships to the decode pool under the logical id
    t.record(0.12, EventType.KV_TRANSFER, "r0", "dec0",
             bytes=2.5e6, seconds=0.02, tokens=512, link="nvlink-a6000")
    t.record(0.12, EventType.ADMIT, "r0", "dec0",
             arrival=0.0, queued_at=0.12, ttft_deadline=2.0)
    t.record(0.30, EventType.DECODE_STEP, "", "dec0",
             batch=1, kv=513, seconds=0.01, used_tokens=513,
             token_budget=60000, live=1)
    t.record(0.40, EventType.FINISH, "r0", "dec0",
             arrival=0.0, first_token=0.1, generated=16, ttft_miss=0)
    # a router fallback re-decode rides the #fb suffix
    t.record(0.50, EventType.ADMIT, "r1#fb", "dec1",
             arrival=0.45, queued_at=0.5)
    t.record(0.70, EventType.FINISH, "r1#fb", "dec1",
             arrival=0.45, first_token=0.6, generated=8)
    # autoscaler activity: pool names are string payloads
    t.record(0.80, EventType.SCALE_UP, "", "dec2", pool="decode", size=3)
    t.record(1.90, EventType.SCALE_DOWN, "", "dec2", pool="decode", size=2)
    return t


def test_fleet_events_roundtrip_exact(tmp_path):
    trace = fleet_trace()
    path = tmp_path / "fleet.jsonl"
    assert dump_jsonl(trace, path) == len(trace)
    loaded = load_jsonl(path)
    assert len(loaded) == len(trace)
    for orig, back in zip(trace.events, loaded.events):
        assert back.kind is orig.kind
        assert back.time == orig.time
        assert back.request_id == orig.request_id
        assert back.instance == orig.instance
        assert back.data == orig.data
        # types too: ints stay ints, strings stay strings
        for key in orig.data:
            assert type(back.data[key]) is type(orig.data[key]), key


def test_staged_ids_and_folds_survive_roundtrip(tmp_path):
    trace = fleet_trace()
    path = tmp_path / "fleet.jsonl"
    dump_jsonl(trace, path)
    loaded = load_jsonl(path)
    assert {"r0#pf", "r1#fb"} <= set(loaded.request_ids())
    folded = StepMetrics.from_trace(loaded)
    assert folded == StepMetrics.from_trace(trace)
    # and the legacy event-walk fold agrees with the columnar one
    obj = fleet_trace(cls=ObjectTrace)
    assert StepMetrics.from_trace(obj) == folded
    assert folded.kv_transfers == 1
    assert folded.kv_transfer_bytes == 2.5e6
    assert folded.scale_ups == 1 and folded.scale_downs == 1
    assert folded.dropped_events == 0


def test_span_tree_builds_from_loaded_trace(tmp_path):
    trace = fleet_trace()
    path = tmp_path / "fleet.jsonl"
    dump_jsonl(trace, path)
    spans = build_spans(load_jsonl(path))
    by_req = {s.request_id: s for s in spans}
    assert "r0#pf" in by_req and "r0" in by_req and "r1#fb" in by_req


def test_unbounded_dump_has_no_header(tmp_path):
    path = tmp_path / "plain.jsonl"
    dump_jsonl(fleet_trace(), path)
    first = json.loads(path.read_text().splitlines()[0])
    assert META_KEY not in first  # legacy byte format untouched


def test_columnar_and_object_dumps_byte_identical(tmp_path):
    a, b = tmp_path / "col.jsonl", tmp_path / "obj.jsonl"
    dump_jsonl(fleet_trace(), a)
    dump_jsonl(fleet_trace(cls=ObjectTrace), b)
    assert a.read_bytes() == b.read_bytes()


def test_header_roundtrips_truncation_and_context(tmp_path):
    trace = Trace(max_events=8)
    for i in range(40):
        trace.record(0.1 * i, EventType.DECODE_STEP, "", "inst0",
                     batch=1, kv=10, seconds=0.01, used_tokens=10,
                     token_budget=100, live=1)
    assert trace.dropped_events > 0
    path = tmp_path / "bounded.jsonl"
    scenario = {"kind": "fleet", "decode": []}
    workload = [{"request_id": "r0", "arrival": 0.0,
                 "prompt_len": 8, "response_len": 4}]
    dump_jsonl(trace, path, scenario=scenario, workload=workload)

    head = json.loads(path.read_text().splitlines()[0])[META_KEY]
    assert head["dropped_events"] == trace.dropped_events
    assert head["max_events"] == 8
    assert head["events"] == len(trace)

    loaded = load_jsonl(path)
    assert loaded.dropped_events == trace.dropped_events
    assert loaded.meta["scenario"] == scenario
    assert loaded.meta["workload"] == workload
    # the truncation survives into the metrics fold
    assert StepMetrics.from_trace(loaded).dropped_events == \
        trace.dropped_events


def test_metrics_as_dict_carries_dropped_events():
    trace = fleet_trace()
    m = StepMetrics.from_trace(trace)
    assert m.as_dict()["dropped_events"] == 0


def test_load_skips_corrupt_lines(tmp_path):
    trace = fleet_trace()
    path = tmp_path / "fleet.jsonl"
    dump_jsonl(trace, path)
    lines = path.read_text().splitlines()
    lines.insert(3, "{not json")
    path.write_text("\n".join(lines) + "\n")
    loaded = load_jsonl(path)
    assert len(loaded) == len(trace)
    assert StepMetrics.from_trace(loaded) == StepMetrics.from_trace(trace)
