"""Tests for the survey-extension algorithms (TOVA, PyramidKV,
KVQuant-style, Q-Hitter hybrid)."""

import numpy as np
import pytest

from repro.compression import EXTENSION_ALGORITHMS, create
from repro.compression.hybrid import QHitterCompressor
from repro.compression.quant.kvquant import KVQuantCompressor, isolate_outliers
from repro.compression.sparse.pyramidkv import (
    PyramidKVCompressor,
    pyramid_budgets,
)
from repro.compression.sparse.tova import TOVACompressor
from repro.model.cache import LayerCache
from repro.model.generate import generate, left_pad
from repro.model.sampling import Sampler


def _filled_cache(n=512, batch=1, kvh=2, dh=64, seed=0):
    rng = np.random.default_rng(seed)
    c = LayerCache(batch, kvh, dh, np.zeros(batch, dtype=int))
    c.append(
        rng.normal(size=(batch, kvh, n, dh)).astype(np.float32),
        rng.normal(size=(batch, kvh, n, dh)).astype(np.float32),
    )
    return c


class TestRegistryExtensions:
    def test_all_constructible(self):
        for name in EXTENSION_ALGORITHMS:
            comp = create(name)
            assert comp.cost_spec().name == comp.name

    def test_memory_specs_sane(self):
        from repro.model.arch import LLAMA_7B

        for name in EXTENSION_ALGORITHMS:
            spec = create(name).memory_spec(LLAMA_7B)
            assert spec.bytes_per_token_per_layer > 0


class TestTOVA:
    def test_budget_enforced(self, llama_model, prompt_factory):
        p, _, _ = prompt_factory.make(depth=600, tail=300, ans_len=3)
        comp = TOVACompressor(budget=128)
        out = generate(
            llama_model, [p], compressor=comp,
            sampler=Sampler(greedy=True), max_new_tokens=4,
        )
        assert out.retained_kv_tokens <= 128 + 4

    def test_recent_tokens_evictable(self, llama_model, prompt_factory):
        """Unlike H2O/Stream, TOVA may evict recent positions."""
        p, _, _ = prompt_factory.make(depth=700, tail=300, ans_len=3)
        comp = TOVACompressor(budget=128, protect_last=1)
        tok = llama_model.tokenizer
        tokens, starts = left_pad([p], tok.special.pad)
        cache = llama_model.new_cache(1, starts)
        comp.begin(1, llama_model.config, starts)
        llama_model.prefill(tokens, cache, comp)
        n = cache.length
        recent = cache[1].keep[0, 0, n - 64 : n - 1]
        assert not recent.all()  # some recent positions were evicted

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            TOVACompressor(budget=1)


class TestPyramidKV:
    def test_budget_shape(self):
        budgets = pyramid_budgets(4, 512, slope=0.6)
        assert len(budgets) == 4
        assert budgets[0] > budgets[-1]
        assert abs(np.mean(budgets) - 512) < 64

    def test_single_layer(self):
        assert pyramid_budgets(1, 256) == [256]

    def test_invalid_slope(self):
        with pytest.raises(ValueError):
            pyramid_budgets(4, 512, slope=1.0)

    def test_layer_budgets_enforced(self, llama_model, prompt_factory):
        p, _, _ = prompt_factory.make(depth=900, tail=200, ans_len=3)
        comp = PyramidKVCompressor(mean_budget=256, recent_size=64)
        tok = llama_model.tokenizer
        tokens, starts = left_pad([p], tok.special.pad)
        cache = llama_model.new_cache(1, starts)
        comp.begin(1, llama_model.config, starts)
        llama_model.prefill(tokens, cache, comp)
        kept0 = cache[0].retained_counts().max()
        kept1 = cache[1].retained_counts().max()
        assert kept0 > kept1  # pyramidal: early layer keeps more

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PyramidKVCompressor(mean_budget=64, recent_size=128)


class TestKVQuant:
    def test_outlier_isolation(self):
        x = np.zeros((1, 1, 8, 8))
        x[0, 0, 3, 4] = 50.0
        bulk, outliers = isolate_outliers(x, 1 / 64)
        assert outliers[0, 0, 3, 4] == 50.0
        assert bulk[0, 0, 3, 4] == 0.0

    def test_outliers_survive_roundtrip_exactly(self):
        c = _filled_cache(seed=2)
        orig = c.k.copy()
        comp = KVQuantCompressor(bits=2, outlier_fraction=0.05)
        comp.compress(0, c, "prefill")
        # the extreme-magnitude entries must be bit-exact (comfortably
        # inside the per-head top-5% outlier set)
        err = np.abs(c.k - orig)
        big = np.abs(orig) > np.quantile(np.abs(orig), 0.999)
        assert err[big].max() < 1e-6

    def test_no_residual_window(self):
        c = _filled_cache(n=256)
        comp = KVQuantCompressor(bits=4, group_size=32)
        comp.compress(0, c, "prefill")
        assert c.quantized_until == 256  # everything aged immediately

    def test_outliers_reduce_error_vs_plain(self):
        from repro.compression.quant.kivi import KIVICompressor

        a = _filled_cache(seed=5)
        b = _filled_cache(seed=5)
        orig = a.k.copy()
        KVQuantCompressor(bits=2, outlier_fraction=0.05).compress(0, a, "p")
        KIVICompressor(bits=2, residual=0).compress(0, b, "p")
        assert np.abs(a.k - orig).mean() < np.abs(b.k - orig).mean()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            KVQuantCompressor(bits=0)
        with pytest.raises(ValueError):
            KVQuantCompressor(outlier_fraction=1.0)


class TestQHitter:
    def test_composes_both_mechanisms(self, llama_model, prompt_factory):
        p, _, _ = prompt_factory.make(depth=700, tail=300, ans_len=3)
        comp = QHitterCompressor(bits=4, hh_size=32, recent_size=224)
        tok = llama_model.tokenizer
        tokens, starts = left_pad([p], tok.special.pad)
        cache = llama_model.new_cache(1, starts)
        comp.begin(1, llama_model.config, starts)
        llama_model.prefill(tokens, cache, comp)
        # sparse half: budget respected
        assert cache[1].retained_counts().max() <= 256
        # quant half: aged region was round-tripped
        assert cache[1].quantized_until > 0

    def test_cost_spec_merges(self):
        spec = QHitterCompressor(bits=4).cost_spec()
        assert spec.sparse_budget == 512
        assert spec.kv_bytes_ratio < 0.5
        assert spec.decode_score_pass

    def test_needs_probs(self):
        assert QHitterCompressor.needs_probs is True
