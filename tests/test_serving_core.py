"""Tests for the event-driven serving core: event loop, scheduler
policies, preemption, trace layer, cluster, and the regression cases
the pre-refactor simulator got wrong (oversized-request hang,
mid-block-finish mispricing)."""

import numpy as np
import pytest

from repro.compression import NoCompression, create
from repro.core.pipeline import CompressedGenerationPipeline
from repro.engines import LMDEPLOY, TRL, ServingCostModel
from repro.hardware import A6000
from repro.model.arch import LLAMA_7B
from repro.serving import (
    Cluster,
    EventLoop,
    EventType,
    FCFSPolicy,
    PriorityPolicy,
    RoutedRequest,
    Router,
    RoutingPolicy,
    ServerInstance,
    ServingRequest,
    ShortestFirstPolicy,
    StepMetrics,
    Trace,
    make_policy,
    queue_delays,
    request_latencies,
)

FP16 = NoCompression().cost_spec()


def instance(comp=FP16, engine=LMDEPLOY, **kw):
    cm = ServingCostModel(LLAMA_7B, A6000, engine)
    return ServerInstance(cm, comp, **kw)


def requests(n, prompt=256, resp=32, spacing=1.0, start=0.0):
    return [
        ServingRequest(f"r{i}", start + i * spacing, prompt, resp)
        for i in range(n)
    ]


class TestEventLoop:
    def test_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(2.0, lambda: fired.append("b"))
        loop.schedule(1.0, lambda: fired.append("a"))
        loop.schedule(3.0, lambda: fired.append("c"))
        assert loop.run() == 3.0
        assert fired == ["a", "b", "c"]

    def test_fifo_ties(self):
        loop = EventLoop()
        fired = []
        for tag in "abc":
            loop.schedule(1.0, lambda t=tag: fired.append(t))
        loop.run()
        assert fired == ["a", "b", "c"]

    def test_schedule_from_callback(self):
        loop = EventLoop()
        fired = []

        def first():
            fired.append(loop.now)
            loop.schedule_in(0.5, lambda: fired.append(loop.now))

        loop.schedule(1.0, first)
        loop.run()
        assert fired == [1.0, 1.5]

    def test_past_times_clamped(self):
        loop = EventLoop()
        seen = []
        loop.schedule(2.0, lambda: loop.schedule(0.0, lambda: seen.append(loop.now)))
        loop.run()
        assert seen == [2.0]  # never travels back in time

    def test_run_until(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append(1))
        loop.schedule(5.0, lambda: fired.append(5))
        loop.run(until=2.0)
        assert fired == [1] and loop.pending == 1


class TestSchedulerPolicies:
    def _waiting(self):
        return [
            ServingRequest("a", 0.0, 128, 50, priority=0),
            ServingRequest("b", 0.1, 128, 5, priority=5),
            ServingRequest("c", 0.2, 128, 20, priority=1),
        ]

    def test_fcfs_select(self):
        w = self._waiting()
        assert FCFSPolicy().select(w, 1.0) == 0

    def test_shortest_select_uses_response_len(self):
        w = self._waiting()
        assert ShortestFirstPolicy().select(w, 1.0) == 1

    def test_shortest_select_prefers_predicted(self):
        w = self._waiting()
        w[0].predicted_len = 1.0  # predictor overrides the true length
        assert ShortestFirstPolicy().select(w, 1.0) == 0

    def test_priority_select(self):
        w = self._waiting()
        assert PriorityPolicy().select(w, 1.0) == 1

    def test_victims(self):
        w = self._waiting()
        assert FCFSPolicy().victim(w) == 2  # most recent admission
        assert ShortestFirstPolicy().victim(w) == 0  # longest remaining
        assert PriorityPolicy().victim(w) == 0  # lowest priority

    def test_make_policy(self):
        assert make_policy("fcfs").name == "fcfs"
        assert make_policy("shortest").name == "shortest"
        assert make_policy("priority").name == "priority"
        with pytest.raises(KeyError):
            make_policy("nope")

    def _simultaneous(self):
        return [
            ServingRequest("a", 0.0, 128, 50, priority=0),
            ServingRequest("b", 0.0, 128, 5, priority=5),
            ServingRequest("c", 0.0, 128, 20, priority=1),
        ]

    def test_admission_order_priority(self):
        inst = instance(scheduler=make_policy("priority"))
        reqs = self._simultaneous()
        inst.run(reqs)
        by_first = sorted(reqs, key=lambda r: r.first_token)
        assert [r.request_id for r in by_first] == ["b", "c", "a"]

    def test_admission_order_shortest(self):
        inst = instance(scheduler=make_policy("shortest"))
        reqs = self._simultaneous()
        inst.run(reqs)
        by_first = sorted(reqs, key=lambda r: r.first_token)
        assert [r.request_id for r in by_first] == ["b", "c", "a"]


class TestOversizedRejection:
    """Pre-refactor, a request bigger than the token budget spun the
    clock forever in both batching modes; now it is rejected with a
    recorded failure."""

    def test_continuous_rejects_and_serves_rest(self):
        inst = instance()
        big = ServingRequest("big", 0.0, inst.token_budget + 10, 10)
        rest = requests(3, start=0.1, spacing=0.1)
        trace = Trace()
        res = inst.run([big] + rest, trace=trace)
        assert big.rejected and big.finish is None
        assert [r.request_id for r in res.rejected] == ["big"]
        assert len(res.completed) == 3
        assert all(r.finish is not None for r in res.completed)
        rejects = trace.of_kind(EventType.REJECT)
        assert len(rejects) == 1 and rejects[0].request_id == "big"

    def test_static_rejects_and_serves_rest(self):
        inst = instance(engine=TRL)
        big = ServingRequest("big", 0.0, inst.token_budget + 10, 10)
        rest = requests(3, start=0.1, spacing=0.1)
        res = inst.run([big] + rest)
        assert big.rejected
        assert len(res.completed) == 3

    def test_only_oversized_stream_terminates(self):
        inst = instance()
        res = inst.run([ServingRequest("big", 0.0, 10**7, 10)])
        assert len(res.completed) == 0 and len(res.rejected) == 1
        assert res.mean_e2e() == 0.0

    def test_e2e_excludes_rejected(self):
        inst = instance()
        big = ServingRequest("big", 0.0, 10**7, 10)
        res = inst.run([big] + requests(2, start=0.1, spacing=0.1))
        assert len(res.e2e) == 2


class TestMidBlockRepricing:
    """A request finishing inside a decode block must re-price its
    peers' subsequent steps for the new membership, and every step must
    be priced at the batch's current KV length.  The pre-refactor
    simulator froze the block-start KV length for the whole block."""

    def test_peer_steps_repriced_exactly(self):
        inst = instance()
        cm, comp = inst.cost_model, inst.comp
        prompt = 256
        a = ServingRequest("A", 0.0, prompt, 2)
        b = ServingRequest("B", 0.0, prompt, 10)
        inst.run([a, b])

        pre = cm.prefill(1, prompt, comp).seconds
        # two serialized prefills, then one batch-2 step finishes A
        t = 2 * pre + cm.decode_step(2, prompt + 1, comp).seconds
        assert a.finish == pytest.approx(t, rel=1e-12)
        # B decodes alone: each step priced at its *current* KV length
        for gen in range(2, 10):
            t += cm.decode_step(1, prompt + gen, comp).seconds
        assert b.finish == pytest.approx(t, rel=1e-12)

    def test_finish_frees_budget_for_waiting(self):
        # a queued request blocked on budget is admitted right after a
        # finish frees tokens, not only at a block boundary
        inst = instance(max_batch=2)
        reqs = requests(3, resp=16, spacing=0.0)
        res = inst.run(reqs)
        assert all(r.finish is not None for r in res.requests)
        assert res.requests[2].prefill_start >= min(
            res.requests[0].finish, res.requests[1].finish
        )


class TestEdgeCases:
    def test_empty_stream(self):
        res = instance().run([])
        assert res.requests == [] and res.mean_e2e() == 0.0
        assert res.percentile_e2e(99) == 0.0

    def test_empty_stream_static(self):
        assert instance(engine=TRL).run([]).requests == []

    def test_arrival_gap_larger_than_decode_block(self):
        # the instance drains, idles, and serves the late arrival as if
        # it were alone — the clock jumps instead of spinning
        alone = instance().run(requests(1)).mean_e2e()
        inst = instance()
        first = ServingRequest("r0", 0.0, 256, 32)
        late = ServingRequest("late", 1000.0, 256, 32)
        res = inst.run([first, late])
        assert late.prefill_start == pytest.approx(1000.0)
        assert late.e2e_latency == pytest.approx(alone, rel=1e-9)

    def test_max_batch_one_serializes(self):
        inst = instance(max_batch=1)
        reqs = requests(4, spacing=0.0, resp=8)
        res = inst.run(reqs)
        assert all(r.finish is not None for r in res.requests)
        # strictly serial: each request starts after the previous ends
        ordered = sorted(reqs, key=lambda r: r.prefill_start)
        for prev, nxt in zip(ordered, ordered[1:]):
            assert nxt.prefill_start >= prev.finish - 1e-9

    def test_zero_length_response(self):
        z = ServingRequest("z", 0.0, 128, 0)
        res = instance().run([z])
        assert z.finish is not None and z.generated == 0
        assert z.finish == z.first_token  # prefill only
        assert res.mean_e2e() > 0.0

    def test_zero_length_response_static(self):
        z = ServingRequest("z", 0.0, 128, 0)
        instance(engine=TRL).run([z])
        assert z.finish is not None and z.finish == z.first_token


class TestTrace:
    def _traced(self, n=8, **kw):
        inst = instance(**kw)
        trace = Trace()
        res = inst.run(requests(n, spacing=0.05), trace=trace)
        return res, trace

    def test_event_kinds_present(self):
        _, trace = self._traced()
        counts = trace.counts()
        assert counts["ADMIT"] == counts["PREFILL"] == counts["FINISH"] == 8
        assert counts["DECODE_STEP"] > 0

    def test_latencies_match_simulation_exactly(self):
        res, trace = self._traced()
        lat = request_latencies(trace)
        for r in res.completed:
            assert lat[r.request_id] == r.e2e_latency  # no tolerance

    def test_latencies_match_static_mode(self):
        res, trace = self._traced(engine=TRL)
        lat = request_latencies(trace)
        for r in res.completed:
            assert lat[r.request_id] == r.e2e_latency

    def test_queue_delays_match_requests(self):
        res, trace = self._traced()
        delays = queue_delays(trace)
        for r in res.completed:
            assert delays[r.request_id] == pytest.approx(r.queue_delay)

    def test_render_and_filters(self):
        _, trace = self._traced(n=4)
        text = trace.render_timeline(limit=5)
        assert "ADMIT" in text and "more events" in text
        assert len(trace.for_request("r0")) >= 3
        assert len(trace.of_kind(EventType.ADMIT)) == 4

    def test_step_metrics(self):
        _, trace = self._traced()
        m = StepMetrics.from_trace(trace)
        assert m.decode_steps == len(trace.of_kind(EventType.DECODE_STEP))
        assert m.admits == m.finishes == 8
        assert 1.0 <= m.mean_batch_occupancy <= m.peak_batch_occupancy
        assert 0.0 < m.mean_budget_utilization <= 1.0
        assert m.mean_tbot > 0.0
        assert set(m.as_dict()) >= {"decode_steps", "preempts", "rejects"}

    def test_step_metrics_empty_trace(self):
        m = StepMetrics.from_trace(Trace())
        assert m.decode_steps == 0 and m.mean_batch_occupancy == 0.0


class TestPreemption:
    def _overload(self, n=24):
        # peak footprints far beyond what the budget can hold at once
        return [ServingRequest(f"L{i}", 0.0, 3000, 2000) for i in range(n)]

    def test_dynamic_admission_preempts_and_completes(self):
        inst = instance(admission="dynamic")
        trace = Trace()
        res = inst.run(self._overload(), trace=trace)
        assert len(trace.of_kind(EventType.PREEMPT)) > 0
        assert all(r.finish is not None for r in res.completed)
        assert len(res.completed) == 24
        assert any(r.preemptions > 0 for r in res.completed)

    def test_reserve_admission_never_preempts(self):
        inst = instance(admission="reserve")
        trace = Trace()
        inst.run(self._overload(), trace=trace)
        assert len(trace.of_kind(EventType.PREEMPT)) == 0

    def test_preempted_requests_recompute(self):
        inst = instance(admission="dynamic")
        res = inst.run(self._overload())
        victim = max(res.completed, key=lambda r: r.preemptions)
        assert victim.preemptions >= 1
        assert victim.generated == victim.response_len  # still finished

    def test_invalid_admission_mode(self):
        with pytest.raises(ValueError):
            instance(admission="magic")


class TestCluster:
    def test_shared_clock_matches_independent_runs(self):
        # instances never interact, so a shared clock must not change
        # any latency relative to running each stream alone
        solo = instance().run(requests(6, spacing=0.1))
        cluster = Cluster([instance(), instance()])
        outs = cluster.run(
            [requests(6, spacing=0.1), requests(6, spacing=0.3, prompt=128)]
        )
        np.testing.assert_allclose(outs[0].e2e, solo.e2e, rtol=1e-12)

    def test_stream_count_validated(self):
        cluster = Cluster([instance()])
        with pytest.raises(ValueError):
            cluster.run([[], []])
        with pytest.raises(ValueError):
            Cluster([])

    def test_views_expose_live_state(self):
        cluster = Cluster([instance(), instance()], names=["a", "b"])
        cluster._attach_all(None)
        views = cluster.views()
        assert [v.name for v in views] == ["a", "b"]
        assert all(v.queue_depth == 0 and v.used_tokens == 0 for v in views)
        assert all(0.0 <= v.occupancy <= 1.0 for v in views)

    def test_run_online_assignment(self):
        cluster = Cluster([instance(), instance()])
        reqs = requests(8, spacing=0.05)
        results, assignment = cluster.run_online(
            reqs,
            pick=lambda req, views, now: int(
                np.argmin([v.used_tokens + v.waiting_tokens for v in views])
            ),
            make=lambda req, idx, now: req,
        )
        assert len(assignment) == 8
        assert sum(len(r.completed) for r in results) == 8
        assert len(set(assignment.values())) == 2  # load actually spread


class TestOnlineRouting:
    def _routed(self, n=16):
        rng = np.random.default_rng(1)
        arr = np.cumsum(rng.exponential(0.1, size=n))
        return [
            RoutedRequest(
                request_id=f"r{i}",
                arrival=float(arr[i]),
                prompt_len=int(rng.integers(128, 512)),
                intended_len=24,
                lengths_by_algo={"fp16": 24},
            )
            for i in range(n)
        ]

    def test_online_load_balance_spreads(self):
        router = Router(
            [instance() for _ in range(4)], ["fp16"] * 4,
            RoutingPolicy.LOAD_BALANCE,
        )
        res = router.serve_online(self._routed())
        assert res.mode == "online"
        assert len(set(res.assignment.values())) >= 3
        assert len(res.all_e2e()) == 16

    def test_serve_online_flag(self):
        router = Router(
            [instance(), instance()], ["fp16"] * 2, RoutingPolicy.LOAD_BALANCE
        )
        res = router.serve(self._routed(), online=True)
        assert res.mode == "online"

    def test_online_comparable_to_offline(self):
        reqs = self._routed()
        off = Router(
            [instance() for _ in range(2)], ["fp16"] * 2,
            RoutingPolicy.LOAD_BALANCE,
        ).serve(reqs)
        on = Router(
            [instance() for _ in range(2)], ["fp16"] * 2,
            RoutingPolicy.LOAD_BALANCE,
        ).serve_online(self._routed())
        assert on.mean_e2e() <= 2.0 * off.mean_e2e()

    def test_router_result_summary(self):
        router = Router(
            [instance(), instance()], ["fp16"] * 2, RoutingPolicy.LOAD_BALANCE
        )
        s = router.serve(self._routed()).latency_summary()
        assert s.tbot is not None and s.tbot > 0.0
        assert s.queue_delay is not None and s.queue_delay >= 0.0
        assert {"tbot", "queue_delay"} <= set(s.as_dict())


class TestPipelineServing:
    def test_simulate_serving_with_trace(self):
        pipe = CompressedGenerationPipeline("fp16")
        res = pipe.simulate_serving(
            requests(4, spacing=0.2), with_trace=True
        )
        assert res.trace is not None
        lat = request_latencies(res.trace)
        for r in res.completed:
            assert lat[r.request_id] == r.e2e_latency

    def test_simulate_serving_policies(self):
        pipe = CompressedGenerationPipeline("stream-512")
        res = pipe.simulate_serving(
            requests(4, spacing=0.1), scheduler="shortest", admission="dynamic"
        )
        assert len(res.completed) == 4
