"""Unit coverage for the columnar Trace internals: ring-buffer growth,
bounded-mode drops, exact payload-type round-trips, the lazy events
view, batched decode-step recording, and the ``render_timeline`` edge
contract (``limit=0``, negative limits, empty traces)."""

import numpy as np
import pytest

from repro.serving import EventType, ObjectTrace, Trace, TraceEvent


def fill(trace, n, kind=EventType.DECODE_STEP):
    for i in range(n):
        trace.record(float(i), kind, f"r{i % 5}", "inst", batch=i)
    return trace


class TestRenderTimelineEdges:
    @pytest.mark.parametrize("make", [Trace, ObjectTrace])
    def test_empty_trace(self, make):
        t = make()
        assert t.render_timeline() == ""
        assert t.render_timeline(limit=0) == ""
        assert t.render_timeline(limit=10) == ""

    @pytest.mark.parametrize("make", [Trace, ObjectTrace])
    def test_limit_zero_reports_all_cut(self, make):
        t = fill(make(), 5)
        assert t.render_timeline(limit=0) == "... (5 more events)"

    @pytest.mark.parametrize("make", [Trace, ObjectTrace])
    def test_negative_limit_clamps_to_zero(self, make):
        t = fill(make(), 3)
        assert t.render_timeline(limit=-2) == "... (3 more events)"

    @pytest.mark.parametrize("make", [Trace, ObjectTrace])
    def test_limit_at_or_past_len_has_no_suffix(self, make):
        t = fill(make(), 4)
        full = t.render_timeline()
        assert "more events" not in full
        assert t.render_timeline(limit=4) == full
        assert t.render_timeline(limit=99) == full
        assert len(full.splitlines()) == 4

    @pytest.mark.parametrize("make", [Trace, ObjectTrace])
    def test_partial_limit_counts_exactly(self, make):
        t = fill(make(), 10)
        out = t.render_timeline(limit=7)
        lines = out.splitlines()
        assert len(lines) == 8
        assert lines[-1] == "... (3 more events)"


class TestRingBufferGrowth:
    def test_capacity_doubles_and_events_survive(self):
        t = Trace(capacity=4)
        fill(t, 100)
        stats = t.memory_stats()
        assert stats["events"] == 100
        assert stats["capacity"] >= 100
        assert stats["dropped_events"] == 0
        assert [e.time for e in t.events] == [float(i) for i in range(100)]
        assert [e.data["batch"] for e in t.events] == list(range(100))

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Trace(capacity=0)
        with pytest.raises(ValueError):
            Trace(max_events=3)

    def test_bounded_drops_oldest(self):
        t = Trace(capacity=4, max_events=16)
        fill(t, 40)
        assert len(t) <= 16
        assert t.dropped_events == 40 - len(t)
        # the survivors are the newest events, still in order
        times = [e.time for e in t.events]
        assert times == sorted(times)
        assert times[-1] == 39.0
        assert t.memory_stats()["capacity"] <= 16
        assert t.memory_stats()["dropped_events"] == t.dropped_events

    def test_bounded_drop_invalidates_views(self):
        t = Trace(max_events=8)
        fill(t, 8)
        before = t.of_kind(EventType.DECODE_STEP)
        assert len(before) == 8
        t.record(99.0, EventType.FINISH, "r0", arrival=0.5)
        after = t.of_kind(EventType.DECODE_STEP)
        assert after is not before
        assert len(t) <= 8
        assert t.of_kind(EventType.FINISH)[0].time == 99.0
        # counts/request views rebuilt against the shifted columns
        assert sum(t.counts().values()) == len(t)
        for rid in t.request_ids():
            for e in t.for_request(rid):
                assert e.request_id == rid

    def test_bounded_drop_shifts_object_sidetable(self):
        t = Trace(max_events=8)
        for i in range(12):
            t.record(float(i), EventType.ADMIT, f"r{i}", note=f"s{i}")
        assert len(t) <= 8
        for e in t.events:
            assert e.data["note"] == f"s{int(e.time)}"


class TestPayloadTypeRoundTrip:
    def test_scalar_types_exact(self):
        t = Trace()
        t.record(
            0.0, EventType.FINISH, "r0",
            f=1.25, i=7, b_true=True, b_false=False, z=0,
        )
        d = t.events[0].data
        assert type(d["f"]) is float and d["f"] == 1.25
        assert type(d["i"]) is int and d["i"] == 7
        assert d["b_true"] is True and d["b_false"] is False
        assert type(d["z"]) is int and d["z"] == 0

    def test_object_fallback_exact(self):
        t = Trace()
        big = 2 ** 63  # beyond float64 exactness
        npv = np.float64(0.5)
        t.record(0.0, EventType.ADMIT, "r0", s="hello", big=big, npv=npv)
        d = t.events[0].data
        assert d["s"] == "hello" and type(d["s"]) is str
        assert d["big"] == big and type(d["big"]) is int
        assert d["npv"] is npv
        # folds still see numeric shadows where one exists
        vals, present = t.payload("big")
        assert present[0] and vals[0] == float(big)
        vals, present = t.payload("s")
        assert present[0] and np.isnan(vals[0])

    def test_key_order_preserved_per_event(self):
        t = Trace()
        t.record(0.0, EventType.ADMIT, "a", x=1, y=2)
        t.record(1.0, EventType.ADMIT, "b", y=3, x=4)
        assert list(t.events[0].data) == ["x", "y"]
        assert list(t.events[1].data) == ["y", "x"]

    def test_absent_key_not_invented(self):
        t = Trace()
        t.record(0.0, EventType.ADMIT, "a", x=1)
        t.record(1.0, EventType.FINISH, "a", y=2)
        assert t.events[0].data == {"x": 1}
        assert t.events[1].data == {"y": 2}


class TestEventsView:
    def trace(self):
        return fill(Trace(), 10)

    def test_len_iter_index(self):
        t = self.trace()
        ev = t.events
        assert len(ev) == 10
        assert [e.time for e in ev] == [float(i) for i in range(10)]
        assert ev[0].time == 0.0
        assert ev[-1].time == 9.0
        with pytest.raises(IndexError):
            ev[10]
        with pytest.raises(IndexError):
            ev[-11]

    def test_slicing(self):
        ev = self.trace().events
        assert [e.time for e in ev[2:5]] == [2.0, 3.0, 4.0]
        assert [e.time for e in ev[::-1]] == [float(i) for i in range(9, -1, -1)]
        assert ev[5:2] == []

    def test_eq_against_list_and_view(self):
        t = self.trace()
        as_list = list(t.events)
        assert t.events == as_list
        assert t.events == tuple(as_list)
        assert t.events == t.events
        assert not (t.events == as_list[:-1])

    def test_row_materialization_cached(self):
        t = self.trace()
        assert t.events[3] is t.events[3]


class TestRecordDecodeSteps:
    def test_matches_per_event_record(self):
        times = [0.1, 0.2, 0.3]
        kvs = [100, 104, 108]
        secs = [0.01, 0.011, 0.012]
        used = [500, 516, 532]
        batched = Trace()
        batched.record_decode_steps("i0", times, 4, kvs, secs, used, 4096)
        manual = Trace()
        for j in range(3):
            manual.record(
                times[j], EventType.DECODE_STEP, "", "i0",
                batch=4, kv=kvs[j], seconds=secs[j],
                used_tokens=used[j], token_budget=4096, live=4,
            )
        assert batched.events == manual.events
        for be, me in zip(batched.events, manual.events):
            assert list(be.data) == list(me.data)
            for k in be.data:
                assert type(be.data[k]) is type(me.data[k])

    def test_scalar_used_tokens_broadcasts(self):
        t = Trace()
        t.record_decode_steps("i0", [0.1, 0.2], 2, [8, 10], [0.01, 0.01],
                              640, 4096)
        assert [e.data["used_tokens"] for e in t.events] == [640, 640]

    def test_empty_burst_is_noop(self):
        t = Trace()
        t.record_decode_steps("i0", [], 0, [], [], 0, 4096)
        assert len(t) == 0

    def test_burst_grows_buffer(self):
        t = Trace(capacity=2)
        n = 50
        t.record_decode_steps(
            "i0", [0.01 * j for j in range(n)], 3,
            list(range(n)), [0.001] * n, list(range(n)), 1 << 20,
        )
        assert len(t) == n
        assert t.events[-1].data["kv"] == n - 1


class TestMemoryStats:
    def test_keys_and_monotonic_growth(self):
        t = Trace(capacity=8)
        s0 = t.memory_stats()
        assert set(s0) == {
            "events", "capacity", "payload_columns", "buffer_bytes",
            "dropped_events",
        }
        assert s0["events"] == 0 and s0["payload_columns"] == 0
        fill(t, 64)
        s1 = t.memory_stats()
        assert s1["events"] == 64
        assert s1["payload_columns"] == 1  # just "batch"
        assert s1["buffer_bytes"] > s0["buffer_bytes"]

    def test_append_round_trips_events(self):
        src = fill(Trace(), 20, kind=EventType.FINISH)
        dst = Trace()
        for e in src.events:
            dst.append(
                TraceEvent(e.time, e.kind, e.request_id, e.instance,
                           dict(e.data))
            )
        assert dst.events == src.events
