"""Tests for KIVI and GEAR compressors on the functional cache."""

import numpy as np
import pytest

from repro.compression.quant.gear import (
    GEARCompressor,
    lowrank_approx,
    outlier_correction,
)
from repro.compression.quant.kivi import KIVICompressor
from repro.model.cache import LayerCache
from repro.model.generate import generate
from repro.model.sampling import Sampler


def _filled_cache(n=512, batch=2, kvh=2, dh=64, seed=0):
    rng = np.random.default_rng(seed)
    c = LayerCache(batch, kvh, dh, np.zeros(batch, dtype=int))
    c.append(
        rng.normal(size=(batch, kvh, n, dh)).astype(np.float32),
        rng.normal(size=(batch, kvh, n, dh)).astype(np.float32),
    )
    return c


class TestKIVI:
    def test_residual_window_untouched(self):
        c = _filled_cache(n=512)
        before_k = c.k.copy()
        KIVICompressor(bits=2, residual=128).compress(0, c, "prefill")
        # last 128 tokens stay bit-exact
        np.testing.assert_array_equal(c.k[:, :, -128:], before_k[:, :, -128:])
        # aged region was perturbed
        assert not np.array_equal(c.k[:, :, :384], before_k[:, :, :384])

    def test_quantized_until_group_aligned(self):
        c = _filled_cache(n=500)
        comp = KIVICompressor(bits=4, group_size=32, residual=128)
        comp.compress(0, c, "prefill")
        assert c.quantized_until == (500 - 128) // 32 * 32

    def test_idempotent_on_aged_region(self):
        c = _filled_cache(n=512)
        comp = KIVICompressor(bits=4)
        comp.compress(0, c, "prefill")
        snap = c.k.copy()
        comp.compress(0, c, "decode")  # no new tokens aged out
        np.testing.assert_array_equal(c.k, snap)

    def test_streaming_quantization_during_decode(self):
        c = _filled_cache(n=256)
        comp = KIVICompressor(bits=4, group_size=32, residual=128)
        comp.compress(0, c, "prefill")
        first_mark = c.quantized_until
        rng = np.random.default_rng(1)
        for _ in range(64):
            c.append(
                rng.normal(size=(2, 2, 1, 64)).astype(np.float32),
                rng.normal(size=(2, 2, 1, 64)).astype(np.float32),
            )
            comp.compress(0, c, "decode")
        assert c.quantized_until > first_mark
        assert c.quantized_until % 32 == 0

    def test_fewer_bits_more_error(self):
        errs = {}
        for bits in (2, 4, 8):
            c = _filled_cache(n=512, seed=3)
            orig = c.k.copy()
            KIVICompressor(bits=bits).compress(0, c, "prefill")
            errs[bits] = np.abs(c.k[:, :, :384] - orig[:, :, :384]).mean()
        assert errs[2] > errs[4] > errs[8]

    def test_no_eviction(self):
        c = _filled_cache(n=512)
        KIVICompressor(bits=2).compress(0, c, "prefill")
        assert c.keep.all()

    def test_cost_and_memory_specs(self):
        from repro.model.arch import LLAMA_7B

        comp = KIVICompressor(bits=4)
        spec = comp.cost_spec()
        assert spec.kv_bytes_ratio < 0.5
        assert spec.residual_fp16_tokens == 128
        mem = comp.memory_spec(LLAMA_7B)
        assert mem.transient_fp16_copy
        assert mem.bytes_per_token_per_layer < LLAMA_7B.kv_bytes_per_token_per_layer()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            KIVICompressor(bits=0)
        with pytest.raises(ValueError):
            KIVICompressor(bits=16)
        with pytest.raises(ValueError):
            KIVICompressor(group_size=0)

    def test_name(self):
        assert KIVICompressor(bits=2).name == "kivi-2"


class TestGEARHelpers:
    def test_lowrank_reduces_error(self):
        rng = np.random.default_rng(0)
        # construct an error matrix with strong rank-2 structure
        u = rng.normal(size=(1, 1, 32, 2))
        v = rng.normal(size=(1, 1, 2, 16))
        err = u @ v + 0.01 * rng.normal(size=(1, 1, 32, 16))
        approx = lowrank_approx(err, 2)
        assert np.abs(err - approx).mean() < 0.1 * np.abs(err).mean()

    def test_lowrank_zero_rank(self):
        err = np.ones((1, 1, 4, 4))
        assert not lowrank_approx(err, 0).any()

    def test_outlier_correction_targets_largest(self):
        err = np.zeros((1, 1, 10, 10))
        err[0, 0, 3, 7] = 100.0
        corr = outlier_correction(err, ratio=0.01)
        assert corr[0, 0, 3, 7] == 100.0
        assert np.count_nonzero(corr) == 1

    def test_outlier_zero_ratio(self):
        assert not outlier_correction(np.ones((1, 1, 4, 4)), 0.0).any()


class TestGEAR:
    def test_gear_beats_plain_quant(self):
        """Error correction must strictly improve round-trip fidelity."""
        c_kivi = _filled_cache(n=512, seed=5)
        c_gear = _filled_cache(n=512, seed=5)
        orig = c_kivi.k.copy()
        KIVICompressor(bits=2).compress(0, c_kivi, "prefill")
        GEARCompressor(bits=2).compress(0, c_gear, "prefill")
        err_kivi = np.abs(c_kivi.k[:, :, :384] - orig[:, :, :384]).mean()
        err_gear = np.abs(c_gear.k[:, :, :384] - orig[:, :, :384]).mean()
        assert err_gear < err_kivi

    def test_gear_cost_spec_heavier_than_kivi(self):
        gear = GEARCompressor(bits=4).cost_spec()
        kivi = KIVICompressor(bits=4).cost_spec()
        assert gear.kv_bytes_ratio > kivi.kv_bytes_ratio
        assert gear.prefill_kv_passes_fp32 > kivi.prefill_kv_passes_fp32
        assert gear.lowrank_ratio > 0

    def test_invalid_ratios(self):
        with pytest.raises(ValueError):
            GEARCompressor(rank_ratio=1.5)
        with pytest.raises(ValueError):
            GEARCompressor(outlier_ratio=-0.1)

    def test_end_to_end_accuracy_ordering(self, llama_model, prompt_factory):
        """fp16 >= gear-2 >= kivi-2 on contested retrieval."""
        prompts, answers = [], []
        for _ in range(10):
            p, a, _ = prompt_factory.make(
                depth=64, tail=300, ans_len=8, decoy_gap=150
            )
            prompts.append(p)
            answers.append(a)

        def acc(comp):
            out = generate(
                llama_model, prompts, compressor=comp,
                sampler=Sampler(greedy=True), max_new_tokens=16,
            )
            return np.mean([
                np.mean([x == y for x, y in zip(s, a)]) if s else 0.0
                for s, a in zip(out.sequences, answers)
            ])

        base = acc(None)
        gear = acc(GEARCompressor(bits=2))
        kivi = acc(KIVICompressor(bits=2))
        assert base >= gear >= kivi - 0.05
