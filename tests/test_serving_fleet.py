"""Tests for the disaggregated prefill/decode fleet: priced KV
handoffs, kv_ready admission, telemetry-driven autoscaling, monolithic
bit-for-bit parity — plus the cluster-state regression cases (stale
telemetry sink across runs, doomed-request occupancy inflation,
route_to mid-run semantics)."""

import numpy as np
import pytest

from repro.compression import NoCompression
from repro.engines import LMDEPLOY, ServingCostModel
from repro.hardware import A6000, NVLINK_A6000, PCIE_GEN4, transfer_time
from repro.model.arch import LLAMA_7B
from repro.serving import (
    Autoscaler,
    Cluster,
    DisaggFleet,
    EventLoop,
    EventType,
    ObjectTrace,
    ServerInstance,
    ServingRequest,
    StepMetrics,
    Telemetry,
    Trace,
    least_loaded,
)

FP16 = NoCompression().cost_spec()


def instance(comp=FP16, **kw):
    cm = ServingCostModel(LLAMA_7B, A6000, LMDEPLOY)
    return ServerInstance(cm, comp, **kw)


def instances(n, **kw):
    return [instance(**kw) for _ in range(n)]


def requests(n, prompt=256, resp=32, spacing=0.5, deadline=None):
    return [
        ServingRequest(
            f"r{i}", i * spacing, prompt, resp, ttft_deadline=deadline
        )
        for i in range(n)
    ]


def burst_requests(n_burst=24, n_tail=8, deadline=2.0):
    """A storm of near-simultaneous arrivals, then a sparse tail: the
    storm should trip scale-ups, the tail should trip drains."""
    reqs = [
        ServingRequest(f"b{i}", 0.05 * i, 384, 64, ttft_deadline=deadline)
        for i in range(n_burst)
    ]
    t0 = 0.05 * n_burst
    reqs += [
        ServingRequest(
            f"t{i}", t0 + 4.0 * (i + 1), 256, 24, ttft_deadline=deadline
        )
        for i in range(n_tail)
    ]
    return reqs


class TestKVTransfer:
    def test_transfer_event_priced_by_link(self):
        trace = Trace()
        fleet = DisaggFleet(instances(1), instances(1))
        res = fleet.serve(requests(3, prompt=300, resp=16), trace=trace)
        xfers = trace.of_kind(EventType.KV_TRANSFER)
        assert len(xfers) == 3
        per_token = LLAMA_7B.kv_bytes_per_token()
        for ev in xfers:
            assert ev.data["tokens"] == 300
            assert ev.data["bytes"] == 300 * per_token
            assert ev.data["seconds"] == pytest.approx(
                transfer_time(NVLINK_A6000, 300 * per_token)
            )
            assert ev.data["link"] == "nvlink-a6000"
            assert ev.instance == "dec0"  # recorded at the receiver
        assert res.kv_transfers == 3
        assert res.kv_transfer_bytes == 3 * 300 * per_token

    def test_compressed_kv_ships_fewer_bytes(self):
        from repro.compression import create

        kivi = create("kivi-4").cost_spec()
        trace = Trace()
        fleet = DisaggFleet(
            instances(1, comp=kivi), instances(1, comp=kivi)
        )
        fleet.serve(requests(1, prompt=400, resp=8), trace=trace)
        ev = trace.of_kind(EventType.KV_TRANSFER)[0]
        full = 400 * LLAMA_7B.kv_bytes_per_token()
        assert ev.data["bytes"] == pytest.approx(
            full * kivi.kv_bytes_ratio, rel=1e-9
        )
        assert ev.data["bytes"] < full

    def test_alternate_link_pricing(self):
        t_nv, t_pci = Trace(), Trace()
        DisaggFleet(instances(1), instances(1)).serve(
            requests(1, prompt=512, resp=8), trace=t_nv
        )
        DisaggFleet(
            instances(1), instances(1), interconnect=PCIE_GEN4
        ).serve(requests(1, prompt=512, resp=8), trace=t_pci)
        s_nv = t_nv.of_kind(EventType.KV_TRANSFER)[0].data["seconds"]
        s_pci = t_pci.of_kind(EventType.KV_TRANSFER)[0].data["seconds"]
        assert s_pci > s_nv  # PCIe link is slower, so the handoff costs more

    def test_fold_parity_columnar_vs_object(self):
        cols, objs = Trace(), ObjectTrace()
        DisaggFleet(instances(1), instances(2)).serve(
            requests(6, prompt=280, resp=24), trace=cols
        )
        DisaggFleet(instances(1), instances(2)).serve(
            requests(6, prompt=280, resp=24), trace=objs
        )
        mc = StepMetrics.from_trace(cols)
        mo = StepMetrics.from_trace(objs)
        assert mc.kv_transfers == mo.kv_transfers == 6
        assert mc.kv_transfer_bytes == mo.kv_transfer_bytes
        assert mc.kv_transfer_seconds == mo.kv_transfer_seconds
        assert mc.as_dict() == mo.as_dict()

    def test_telemetry_counters_match_trace(self):
        tel = Telemetry()
        trace = Trace()
        res = DisaggFleet(instances(1), instances(1)).serve(
            requests(4), trace=trace, telemetry=tel
        )
        assert tel.kv_transfers.total() == res.kv_transfers == 4
        assert tel.kv_transfer_bytes.total() == res.kv_transfer_bytes
        assert tel.kv_transfer_seconds.total() == pytest.approx(
            res.kv_transfer_seconds
        )


class TestDisaggServe:
    def test_ttft_made_by_prefill_pool(self):
        """first_token carries over the handoff: TTFT is the prefill
        pool's emission, while E2E additionally pays the transfer."""
        trace = Trace()
        fleet = DisaggFleet(instances(1), instances(1))
        res = fleet.serve(requests(2, prompt=256, resp=32), trace=trace)
        pf_stage = {
            r.request_id: r for r in res.prefill_results[0].requests
        }
        for r in res.completed:
            stage = pf_stage[r.request_id + "#pf"]
            assert r.first_token == stage.first_token
            assert r.finish > stage.finish  # decode happens after handoff

    def test_kv_ready_skips_prefill_on_decode_pool(self):
        trace = Trace()
        fleet = DisaggFleet(instances(1), instances(1))
        res = fleet.serve(requests(2, prompt=256, resp=32), trace=trace)
        dec_prefills = [
            ev for ev in trace.of_kind(EventType.PREFILL)
            if ev.instance == "dec0"
        ]
        assert dec_prefills == []  # the decode pool never re-prefills
        for r in res.completed:
            assert r.generated == r.response_len

    def test_short_requests_served_whole_on_prefill_pool(self):
        trace = Trace()
        fleet = DisaggFleet(instances(1), instances(1))
        res = fleet.serve(
            [ServingRequest("s0", 0.0, 128, 1)], trace=trace
        )
        assert len(trace.of_kind(EventType.KV_TRANSFER)) == 0
        (r,) = res.completed
        assert r.request_id == "s0" and r.finish is not None
        assert res.assignment["s0"][0] == 0  # stayed on the prefill pool

    def test_prefill_rejection_rejects_logical_request(self):
        fleet = DisaggFleet(instances(1), instances(1))
        budget = fleet.prefill[0].token_budget
        doomed = ServingRequest(
            "x0", 0.0, budget + 500, 64, ttft_deadline=1.0
        )
        ok = ServingRequest("x1", 0.0, 128, 16, ttft_deadline=1.0)
        res = fleet.serve([doomed, ok])
        by_id = {r.request_id: r for r in res.requests}
        assert by_id["x0"].rejected
        assert by_id["x1"].finish is not None
        # a rejected deadline-carrying request counts as a TTFT miss
        assert res.ttft_attainment() == pytest.approx(0.5)

    def test_monolithic_mode_bit_for_bit(self):
        t1, t2 = Trace(), Trace()
        DisaggFleet([], instances(2)).serve(
            requests(10, spacing=0.2), trace=t1
        )
        Cluster(instances(2)).run_online(
            requests(10, spacing=0.2),
            least_loaded,
            lambda r, idx, now: r,
            trace=t2,
        )
        assert list(t1.events) == list(t2.events)
        assert t1.render_timeline() == t2.render_timeline()

    def test_pool_validation(self):
        with pytest.raises(ValueError):
            DisaggFleet(instances(1), [])
        with pytest.raises(ValueError):
            DisaggFleet(instances(2), instances(2), prefill_active=0)
        with pytest.raises(ValueError):
            DisaggFleet(instances(2), instances(2), decode_active=3)


class TestAutoscaler:
    def test_burst_scales_up_and_trough_drains(self):
        trace = Trace()
        fleet = DisaggFleet(
            instances(2),
            instances(4),
            prefill_active=1,
            decode_active=1,
            autoscaler=Autoscaler(tick=0.25, queue_high=2.0),
        )
        res = fleet.serve(burst_requests(), trace=trace)
        assert res.scale_ups >= 1
        assert res.scale_downs >= 1
        ups = trace.of_kind(EventType.SCALE_UP)
        downs = trace.of_kind(EventType.SCALE_DOWN)
        assert len(ups) == res.scale_ups
        assert len(downs) == res.scale_downs
        for ev in ups + downs:
            assert ev.data["pool"] in ("prefill", "decode")
            assert ev.data["size"] >= 1
        # scale events land in the metrics fold and the registry
        m = StepMetrics.from_trace(trace)
        assert m.scale_ups == res.scale_ups
        assert m.scale_downs == res.scale_downs
        tel = res.telemetry
        assert tel is not None  # created internally for the controller
        assert tel.scale_events.total() == res.scale_ups + res.scale_downs
        for pool in ("prefill", "decode"):
            assert tel.pool_size.value(pool=pool) >= 1.0

    def test_drain_respects_min_active(self):
        fleet = DisaggFleet(
            instances(2), instances(2), autoscaler=Autoscaler(min_active=1)
        )
        loop = EventLoop()
        for inst in fleet.prefill + fleet.decode:
            inst.attach(loop)
        fleet._loop = loop
        fleet._pf_active = [0]
        fleet._dec_active = [0]
        assert not fleet.scale_down("prefill", 0.0)  # already at the floor
        assert fleet.scale_up("prefill", 0.0)
        assert fleet.scale_down("prefill", 0.0)
        assert not fleet.scale_down("prefill", 0.0)
        with pytest.raises(ValueError):
            fleet.active_names("spare")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            Autoscaler(tick=0.0)
        with pytest.raises(ValueError):
            Autoscaler(min_active=0)


class TestClusterTelemetryLifecycle:
    """Regression: the active sink must be set by BOTH entry points and
    cleared when the loop drains — a stale sink from an earlier
    run_online() must never receive a later run's route_to events."""

    def _pick(self, req, views, now):
        return 0

    def test_sink_cleared_after_each_run(self):
        tel = Telemetry()
        cluster = Cluster(instances(2))
        cluster.run_online(
            requests(2), self._pick, lambda r, i, n: r, telemetry=tel
        )
        assert cluster._telemetry is None
        cluster.run([requests(2), []], telemetry=tel)
        assert cluster._telemetry is None

    def test_stale_sink_not_published_by_later_run(self):
        tel = Telemetry()
        cluster = Cluster(instances(2))
        cluster.run_online(
            requests(2), self._pick, lambda r, i, n: r, telemetry=tel
        )
        routed_before = tel.routed.total()

        # second run WITHOUT telemetry; a mid-run route_to (the router's
        # fallback re-decode path) must not publish to the stale sink
        fired = []

        def hook(req, at):
            if not fired:
                fired.append(req.request_id)
                fb = ServingRequest(req.request_id + "#fb", at, 64, 4)
                fb.queued_at = at
                cluster.route_to(1, fb)

        cluster.instances[0].on_finish = hook
        try:
            cluster.run([requests(2), []])
        finally:
            cluster.instances[0].on_finish = None
        assert fired  # the mid-run route actually happened
        assert tel.routed.total() == routed_before

    def test_current_sink_receives_mid_run_routes(self):
        tel = Telemetry()
        cluster = Cluster(instances(2))
        fired = []

        def hook(req, at):
            if not fired:
                fired.append(req.request_id)
                fb = ServingRequest(req.request_id + "#fb", at, 64, 4)
                fb.queued_at = at
                cluster.route_to(1, fb)

        cluster.instances[0].on_finish = hook
        try:
            cluster.run([requests(2), []], telemetry=tel)
        finally:
            cluster.instances[0].on_finish = None
        assert tel.routed.value(instance=cluster.names[1]) == 1.0


class TestDoomedOccupancy:
    """Regression: requests flagged doomed at enqueue must not inflate
    waiting_tokens in the window before the rejection pass runs."""

    def test_waiting_tokens_excludes_doomed(self):
        inst = instance()
        loop = EventLoop()
        inst.attach(loop)
        big = ServingRequest("big", 0.0, inst.token_budget + 1000, 8)
        inst.receive(big)
        assert inst.waiting_tokens == 0  # pre-fix: budget + 1008
        ok = ServingRequest("ok", 0.0, 64, 8)
        inst.receive(ok)
        assert inst.waiting_tokens == 64 + 8
        loop.run()
        assert big.rejected and not ok.rejected

    def test_occupancy_view_unaffected_by_doomed(self):
        cluster = Cluster(instances(2))
        loop = cluster._attach_all(None)
        big = ServingRequest("big", 0.0, cluster.instances[0].token_budget + 1, 8)
        cluster.instances[0].receive(big)
        views = cluster.views()
        assert views[0].waiting_tokens == views[1].waiting_tokens == 0
        assert views[0].occupancy == views[1].occupancy


class TestRouteToMidRun:
    def test_online_receive_matches_submit_queue_delays(self):
        """expect/receive (the route_to machinery) must admit
        mid-decode-block arrivals with the same delays as submit()."""
        reqs = requests(8, prompt=320, resp=96, spacing=0.11)
        via_submit = Cluster(instances(1)).run(
            [requests(8, prompt=320, resp=96, spacing=0.11)]
        )[0]
        via_receive, _ = Cluster(instances(1)).run_online(
            reqs, lambda r, v, n: 0, lambda r, i, n: r
        )
        a = {r.request_id: r for r in via_submit.requests}
        b = {r.request_id: r for r in via_receive[0].requests}
        assert a.keys() == b.keys()
        for rid in a:
            assert a[rid].prefill_start == b[rid].prefill_start
            assert a[rid].first_token == b[rid].first_token
            assert a[rid].finish == b[rid].finish
            assert a[rid].queue_delay == b[rid].queue_delay

    def test_fb_redecode_lands_mid_decode_block(self):
        """A #fb re-decode routed at an instant the target is inside a
        decode block is admitted promptly and accounted normally."""
        cluster = Cluster(instances(1, max_batch=4))
        trace = Trace()
        loop = cluster._attach_all(trace)
        base = ServingRequest("b0", 0.0, 256, 400)  # long decode
        cluster.instances[0].submit(base)
        fb = ServingRequest("b0#fb", 0.0, 256, 40)
        # pick a routing instant strictly inside the base decode
        cluster.instances[0].expect(0.9)
        fb.arrival = 0.9
        fb.queued_at = 0.9
        loop.schedule(0.9, lambda: cluster.route_to(0, fb))
        loop.run()
        assert fb.finish is not None and not fb.rejected
        assert base.generated == 400 and fb.generated == 40
        # admitted while the base request was still decoding
        assert fb.prefill_start < base.finish
        admits = [
            ev for ev in trace.of_kind(EventType.ADMIT)
            if ev.request_id == "b0#fb"
        ]
        assert len(admits) == 1
        assert admits[0].data["queued_at"] == pytest.approx(0.9)
        assert fb.queue_delay == pytest.approx(fb.prefill_start - 0.9)
