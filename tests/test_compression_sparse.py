"""Tests for H2O, StreamingLLM, SnapKV and the shared eviction helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.registry import PAPER_ALGORITHMS, available, create
from repro.compression.sparse.h2o import H2OCompressor
from repro.compression.sparse.policies import (
    GrowableScores,
    fold_probs_to_kv_heads,
    select_top_scores,
)
from repro.compression.sparse.snapkv import SnapKVCompressor
from repro.compression.sparse.streaming import StreamingLLMCompressor
from repro.model.cache import LayerCache
from repro.model.config import llama_sim_config
from repro.model.generate import generate
from repro.model.sampling import Sampler
from repro.model.transformer import (
    FlashIncompatibilityError,
    FunctionalTransformer,
)


def _cache(n, batch=2, kvh=2, dh=8, starts=None):
    starts = starts if starts is not None else np.zeros(batch, dtype=int)
    c = LayerCache(batch, kvh, dh, np.asarray(starts))
    rng = np.random.default_rng(0)
    c.append(
        rng.normal(size=(batch, kvh, n, dh)).astype(np.float32),
        rng.normal(size=(batch, kvh, n, dh)).astype(np.float32),
    )
    return c


class TestPolicies:
    def test_fold_probs_mha(self):
        probs = np.ones((2, 4, 3, 10)) / 10
        out = fold_probs_to_kv_heads(probs, 1)
        assert out.shape == (2, 4, 10)
        np.testing.assert_allclose(out, 0.3)

    def test_fold_probs_gqa(self):
        probs = np.ones((1, 4, 2, 5))
        out = fold_probs_to_kv_heads(probs, 2)
        assert out.shape == (1, 2, 5)
        np.testing.assert_allclose(out, 4.0)  # 2 queries x 2 grouped heads

    def test_growable_scores_accumulate(self):
        g = GrowableScores(1)
        g.add(0, np.ones((1, 2, 5)))
        g.add(0, np.ones((1, 2, 8)))  # grew
        s = g.get(0, 8)
        assert s[0, 0, 0] == 2.0 and s[0, 0, 7] == 1.0

    def test_growable_scores_unobserved_raises(self):
        with pytest.raises(RuntimeError):
            GrowableScores(1).get(0, 4)

    def test_select_top_scores(self):
        scores = np.array([[5.0, 1.0, 3.0, 2.0]])
        eligible = np.array([[True, True, True, False]])
        mask = select_top_scores(scores, eligible, 2)
        assert list(mask[0]) == [True, False, True, False]

    def test_select_top_underfull_row(self):
        scores = np.array([[1.0, 2.0]])
        eligible = np.array([[True, False]])
        mask = select_top_scores(scores, eligible, 2)
        assert list(mask[0]) == [True, False]

    def test_select_top_zero_k(self):
        mask = select_top_scores(np.ones((1, 3)), np.ones((1, 3), bool), 0)
        assert not mask.any()

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 500), k=st.integers(1, 20))
    def test_select_top_exact_count_property(self, seed, k):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=(3, 24))
        eligible = rng.random((3, 24)) > 0.3
        mask = select_top_scores(scores, eligible, k)
        counts = mask.sum(axis=-1)
        expect = np.minimum(k, eligible.sum(axis=-1))
        assert (counts == expect).all()
        assert (mask <= eligible).all()


class TestStreamingLLM:
    def test_window_structure(self):
        comp = StreamingLLMCompressor(sink_size=4, recent_size=8)
        c = _cache(n=32)
        comp.compress(0, c, "prefill")
        keep = c.keep[0, 0]
        assert keep[:4].all()          # sinks kept
        assert keep[-8:].all()         # recent kept
        assert not keep[4:-8].any()    # middle evicted

    def test_sink_relative_to_seq_start(self):
        comp = StreamingLLMCompressor(sink_size=4, recent_size=8)
        c = _cache(n=32, starts=[10, 0])
        comp.compress(0, c, "prefill")
        # seq 0 starts at 10: its sinks are positions 10..13
        assert c.keep[0, 0, 10:14].all()
        assert not c.keep[0, 0, :10].any()  # padding stays dead

    def test_noop_under_budget(self):
        comp = StreamingLLMCompressor(sink_size=4, recent_size=8)
        c = _cache(n=10)
        comp.compress(0, c, "prefill")
        assert c.keep.all()

    def test_needs_no_probs(self):
        assert StreamingLLMCompressor.needs_probs is False


class TestH2O:
    def _run(self, comp, model, prompts, **kw):
        return generate(
            model, prompts, compressor=comp,
            sampler=Sampler(greedy=True), **kw,
        )

    def test_budget_enforced(self, llama_model, prompt_factory):
        p, _, _ = prompt_factory.make(depth=700, tail=200, ans_len=3)
        comp = H2OCompressor(hh_size=16, recent_size=112)
        out = self._run(comp, llama_model, [p], max_new_tokens=4)
        assert out.retained_kv_tokens <= 128 + 4

    def test_heavy_hitters_kept(self, llama_model, prompt_factory):
        """The attention sink (position ~seq start) accumulates mass and
        must survive eviction as a heavy hitter."""
        p, _, _ = prompt_factory.make(depth=600, tail=300, ans_len=3)
        model = llama_model
        comp = H2OCompressor(hh_size=64, recent_size=192)
        tok = model.tokenizer
        from repro.model.generate import left_pad

        tokens, seq_start = left_pad([p], tok.special.pad)
        cache = model.new_cache(1, seq_start)
        comp.begin(1, model.config, seq_start)
        model.prefill(tokens, cache, comp)
        # position 0 (BOS, the sink) must still be retained in layer 1
        assert cache[1].keep[0, :, 0].any()

    def test_eviction_irreversible(self, llama_model, prompt_factory):
        p, _, _ = prompt_factory.make(depth=700, tail=200, ans_len=3)
        comp = H2OCompressor(hh_size=8, recent_size=56)
        from repro.model.generate import left_pad

        tok = llama_model.tokenizer
        tokens, seq_start = left_pad([p], tok.special.pad)
        cache = llama_model.new_cache(1, seq_start)
        comp.begin(1, llama_model.config, seq_start)
        llama_model.prefill(tokens, cache, comp)
        evicted = ~cache[1].keep[0, 0].copy()
        logits = llama_model.decode_step(
            np.array([tok.content_ids[0]]), cache, comp
        )
        still_evicted = ~cache[1].keep[0, 0][: len(evicted)]
        assert (still_evicted | ~evicted).all()  # evicted stays evicted

    def test_flash_incompatibility(self, prompt_factory):
        """H2O needs probabilities; flash attention must refuse it."""
        model = FunctionalTransformer(llama_sim_config(), attention_impl="flash")
        p, _, _ = prompt_factory.make()
        with pytest.raises(FlashIncompatibilityError):
            generate(model, [p], compressor=H2OCompressor(), max_new_tokens=2)

    def test_flash_ok_for_structural_methods(self, prompt_factory):
        model = FunctionalTransformer(llama_sim_config(), attention_impl="flash")
        p, a, _ = prompt_factory.make(depth=64, tail=32)
        out = generate(
            model, [p], compressor=StreamingLLMCompressor(),
            sampler=Sampler(greedy=True), max_new_tokens=8,
        )
        assert out.sequences[0] == a

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            H2OCompressor(hh_size=-1)
        with pytest.raises(ValueError):
            H2OCompressor(recent_size=0)


class TestSnapKV:
    def test_prompt_compressed_once(self, llama_model, prompt_factory):
        p, a, _ = prompt_factory.make(depth=700, tail=100, ans_len=3)
        comp = SnapKVCompressor(budget=256, window=16)
        from repro.model.generate import left_pad

        tok = llama_model.tokenizer
        tokens, seq_start = left_pad([p], tok.special.pad)
        cache = llama_model.new_cache(1, seq_start)
        comp.begin(1, llama_model.config, seq_start)
        llama_model.prefill(tokens, cache, comp)
        kept = cache[1].retained_counts()[0, 0]
        assert kept <= 256
        # decode appends without further eviction
        logits = llama_model.decode_step(
            np.array([tok.content_ids[0]]), cache, comp
        )
        assert cache[1].retained_counts()[0, 0] == kept + 1

    def test_query_aware_retrieval_survives(self, llama_model, prompt_factory):
        """SnapKV keeps what the final query attends to (unlike Stream)."""
        prompts, answers = [], []
        for _ in range(6):
            p, a, _ = prompt_factory.make(depth=600, tail=400, ans_len=3)
            prompts.append(p)
            answers.append(a)
        snap = generate(
            llama_model, prompts, compressor=SnapKVCompressor(budget=256),
            sampler=Sampler(greedy=True), max_new_tokens=8,
        )
        stream = generate(
            llama_model, prompts,
            compressor=StreamingLLMCompressor(sink_size=32, recent_size=224),
            sampler=Sampler(greedy=True), max_new_tokens=8,
        )
        snap_acc = sum(s == a for s, a in zip(snap.sequences, answers))
        stream_acc = sum(s == a for s, a in zip(stream.sequences, answers))
        assert snap_acc > stream_acc

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SnapKVCompressor(budget=16, window=32)
        with pytest.raises(ValueError):
            SnapKVCompressor(kernel_size=4)


class TestRegistry:
    def test_available(self):
        assert {"fp16", "kivi", "gear", "h2o", "stream", "snapkv"} <= set(
            available()
        )

    def test_paper_algorithms_constructible(self):
        for name in PAPER_ALGORITHMS:
            comp = create(name)
            assert comp.name == name

    def test_suffix_semantics(self):
        assert create("kivi-2").bits == 2
        assert create("stream-1024").budget == 1024
        assert create("h2o-256").budget == 256
        assert create("snapkv-384").budget == 384

    def test_defaults(self):
        assert create("kivi").bits == 4
        assert create("h2o").budget == 512

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            create("zipcache-4")

    def test_fp16_is_noop(self):
        comp = create("fp16")
        c = _cache(n=64)
        snap = c.k.copy()
        comp.compress(0, c, "prefill")
        np.testing.assert_array_equal(c.k, snap)
        assert c.keep.all()
