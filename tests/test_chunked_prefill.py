"""Tests for Sarathi/vLLM-style chunked prefill and the serving-core
accounting fixes that rode along with it:

- ``prefill_chunk`` cost-model semantics (exact reduction to single-shot
  prefill at ``kv_prefix=0``, cost growing with the cached prefix);
- the ``chunk_size`` knob on ``ServerInstance`` (bit-for-bit parity when
  disabled or when the chunk covers the prompt, work conservation,
  decode-stall reduction, preemption of partial prefills);
- ``first_token`` preserved across recompute preemption;
- degenerate latency summaries for all-rejected streams;
- the unified DECODE_STEP payload (``live`` in both batching modes).
"""

import numpy as np
import pytest

from repro.compression import NoCompression, create
from repro.core.pipeline import CompressedGenerationPipeline
from repro.engines import LMDEPLOY, TRL, TRL_FA, ServingCostModel
from repro.hardware import A6000
from repro.model.arch import LLAMA_7B
from repro.serving import (
    EventType,
    LatencySummary,
    ServerInstance,
    ServingRequest,
    StepMetrics,
    Trace,
    request_latencies,
)

FP16 = NoCompression().cost_spec()
COST_MODEL = ServingCostModel(LLAMA_7B, A6000, LMDEPLOY)


def instance(comp=FP16, engine=LMDEPLOY, **kw):
    return ServerInstance(ServingCostModel(LLAMA_7B, A6000, engine), comp, **kw)


def long_prompt_scenario():
    """Eight short requests decoding when a 3.2k-token prompt lands."""
    reqs = [ServingRequest(f"d{i}", 0.0, 256, 512) for i in range(8)]
    reqs.append(ServingRequest("long", 2.0, 3200, 64))
    return reqs


class TestPrefillChunkCostModel:
    @pytest.mark.parametrize("engine", [LMDEPLOY, TRL, TRL_FA])
    @pytest.mark.parametrize("algo", ["fp16", "kivi-4", "h2o-512", "gear-4"])
    def test_zero_prefix_reduces_to_prefill_exactly(self, engine, algo):
        comp = FP16 if algo == "fp16" else create(algo).cost_spec()
        cm = ServingCostModel(LLAMA_7B, A6000, engine)
        for batch, L in [(1, 512), (1, 3072), (4, 1024)]:
            full = cm.prefill(batch, L, comp)
            chunk = cm.prefill_chunk(batch, L, 0, comp)
            assert chunk.seconds == full.seconds  # bit-for-bit, no tolerance
            assert chunk.breakdown == full.breakdown

    def test_cost_grows_with_prefix(self):
        costs = [
            COST_MODEL.prefill_chunk(1, 512, p, FP16).seconds
            for p in (0, 512, 1024, 2048, 4096)
        ]
        assert all(a < b for a, b in zip(costs, costs[1:]))

    def test_chunked_sum_exceeds_single_shot(self):
        # re-streaming the prefix each chunk makes the chunked total
        # strictly costlier than one shot — chunking buys latency
        # interleaving, not free compute
        L, C = 3072, 512
        single = COST_MODEL.prefill(1, L, FP16).seconds
        chunked = sum(
            COST_MODEL.prefill_chunk(1, C, p, FP16).seconds
            for p in range(0, L, C)
        )
        assert chunked > single
        # ... but not absurdly so on a flash/paged engine
        assert chunked < 2.0 * single

    def test_oom_chunk(self):
        cost = COST_MODEL.prefill_chunk(1, 512, 10**7, FP16)
        assert cost.oom and cost.seconds == float("inf")


class TestChunkSizeParity:
    """``chunk_size=None`` and ``chunk_size >= prompt_len`` must leave
    the simulation bit-for-bit identical to the seed single-shot path."""

    def _e2e(self, **kw):
        inst = instance(**kw)
        reqs = long_prompt_scenario()
        res = inst.run(reqs)
        return [r.e2e_latency for r in res.completed], [
            r.ttft for r in res.completed
        ]

    def test_none_matches_default(self):
        base_e2e, base_ttft = self._e2e()
        none_e2e, none_ttft = self._e2e(chunk_size=None)
        assert base_e2e == none_e2e and base_ttft == none_ttft

    def test_chunk_covering_prompt_matches(self):
        base_e2e, base_ttft = self._e2e()
        big_e2e, big_ttft = self._e2e(chunk_size=4096)
        assert base_e2e == big_e2e  # no tolerance
        assert base_ttft == big_ttft

    def test_chunked_trace_has_no_single_shot_events_for_long(self):
        inst = instance(chunk_size=512)
        trace = Trace()
        inst.run(long_prompt_scenario(), trace=trace)
        long_events = trace.for_request("long")
        kinds = {e.kind for e in long_events}
        assert EventType.PREFILL_CHUNK in kinds
        assert EventType.PREFILL not in kinds
        # short prompts (256 <= chunk) still prefill in one shot
        assert any(
            e.kind == EventType.PREFILL for e in trace.for_request("d0")
        )

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            instance(chunk_size=0)


class TestChunkedExecution:
    def _traced(self, chunk_size, reqs=None, **kw):
        inst = instance(chunk_size=chunk_size, **kw)
        trace = Trace()
        res = inst.run(reqs or long_prompt_scenario(), trace=trace)
        return inst, res, trace

    def test_work_conserved(self):
        _, res, trace = self._traced(512)
        chunks = [
            e for e in trace.of_kind(EventType.PREFILL_CHUNK)
            if e.request_id == "long"
        ]
        assert sum(e.data["chunk"] for e in chunks) == 3200
        assert chunks[-1].data["prefilled"] == 3200
        long = next(r for r in res.completed if r.request_id == "long")
        assert long.prefilled == 3200 and long.generated == 64

    def test_stall_reduced_at_equal_throughput(self):
        def run(chunk):
            _, res, trace = self._traced(chunk)
            m = StepMetrics.from_trace(trace)
            tokens = sum(r.generated for r in res.completed)
            makespan = max(r.finish for r in res.completed)
            return m, tokens / makespan

        m_none, thr_none = run(None)
        m_512, thr_512 = run(512)
        # the acceptance criterion: >= 2x smaller max decode stall at
        # equal total throughput
        assert m_512.max_decode_gap * 2 <= m_none.max_decode_gap
        assert thr_512 == pytest.approx(thr_none, rel=0.02)
        assert m_512.prefill_chunks == 3200 // 512 + 1  # ceil(3200/512)
        assert m_none.prefill_chunks == 0

    def test_decode_steps_interleave_chunks(self):
        _, _, trace = self._traced(512)
        chunks = [
            e.time for e in trace.of_kind(EventType.PREFILL_CHUNK)
        ]
        steps = [e.time for e in trace.of_kind(EventType.DECODE_STEP)]
        # at least one decode step lands strictly between the first and
        # last chunk — the running batch kept emitting tokens
        assert any(chunks[0] < t < chunks[-1] for t in steps)

    def test_first_token_at_last_chunk(self):
        _, res, trace = self._traced(512)
        long = next(r for r in res.completed if r.request_id == "long")
        chunks = [
            e for e in trace.of_kind(EventType.PREFILL_CHUNK)
            if e.request_id == "long"
        ]
        last = chunks[-1]
        assert long.first_token == pytest.approx(
            last.time + last.data["seconds"]
        )

    def test_trace_latencies_exact_in_chunked_mode(self):
        _, res, trace = self._traced(512)
        lat = request_latencies(trace)
        for r in res.completed:
            assert lat[r.request_id] == r.e2e_latency  # no tolerance

    def test_reserve_budget_returns_to_zero(self):
        inst, res, _ = self._traced(512)
        assert len(res.completed) == 9
        assert inst._used == 0 and inst.used_tokens == 0

    def test_zero_response_chunked(self):
        z = ServingRequest("z", 0.0, 1500, 0)
        inst, res, trace = self._traced(512, reqs=[z])
        assert z.finish is not None and z.generated == 0
        assert z.finish == z.first_token  # prefill only
        assert len(trace.of_kind(EventType.PREFILL_CHUNK)) == 3
        assert inst._used == 0

    def test_chunked_with_dynamic_admission_completes(self):
        reqs = [ServingRequest(f"L{i}", 0.0, 3000, 2000) for i in range(24)]
        inst, res, trace = self._traced(512, reqs=reqs, admission="dynamic")
        assert len(res.completed) == 24
        assert all(r.finish is not None for r in res.completed)
        assert len(trace.of_kind(EventType.PREEMPT)) > 0

    def test_partial_prefill_preempted_first(self):
        # PREEMPT events carry the prefilled counter; victims taken
        # mid-prefill re-run their chunks from scratch
        reqs = [ServingRequest(f"L{i}", 0.0, 3000, 2000) for i in range(24)]
        _, res, trace = self._traced(512, reqs=reqs, admission="dynamic")
        preempts = trace.of_kind(EventType.PREEMPT)
        assert all("prefilled" in e.data for e in preempts)
        for r in res.completed:
            assert r.prefilled == r.prompt_len  # fully refilled by the end


class TestFirstTokenPreservedAcrossPreemption:
    """Regression: a victim re-admitted after recompute preemption must
    keep its *earliest* first_token — the client already received those
    tokens — instead of re-measuring TTFT from the last admission."""

    def _preempted_run(self, **kw):
        inst = instance(admission="dynamic", **kw)
        reqs = [ServingRequest(f"L{i}", 0.0, 3000, 2000) for i in range(24)]
        trace = Trace()
        res = inst.run(reqs, trace=trace)
        victims = [r for r in res.completed if r.preemptions > 0]
        assert victims, "scenario must actually preempt"
        return res, trace, victims

    def test_first_token_before_readmission(self):
        _, trace, victims = self._preempted_run()
        for v in victims:
            admits = [
                e for e in trace.of_kind(EventType.ADMIT)
                if e.request_id == v.request_id
            ]
            assert len(admits) == v.preemptions + 1
            preempt = next(
                e for e in trace.of_kind(EventType.PREEMPT)
                if e.request_id == v.request_id
            )
            if preempt.data["generated"] > 0:
                # emitted tokens before eviction: TTFT anchored there
                assert v.first_token <= preempt.time
                assert v.first_token < admits[-1].time

    def test_ttft_monotone_under_preemption(self):
        res, _, victims = self._preempted_run()
        for v in victims:
            assert v.ttft < v.e2e_latency
            assert v.tbot > 0.0

    def test_chunked_preemption_also_preserves(self):
        _, trace, victims = self._preempted_run(chunk_size=512)
        finishes = {e.request_id: e for e in trace.of_kind(EventType.FINISH)}
        for v in victims:
            assert finishes[v.request_id].data["first_token"] == v.first_token


class TestAllRejectedStream:
    """Regression: a stream where every request is rejected used to
    crash ``LatencySummary.from_requests`` with ValueError."""

    def _all_rejected(self, **kw):
        inst = instance(**kw)
        reqs = [
            ServingRequest(f"big{i}", 0.1 * i, inst.token_budget + 10, 10)
            for i in range(3)
        ]
        trace = Trace()
        res = inst.run(reqs, trace=trace)
        assert len(res.completed) == 0 and len(res.rejected) == 3
        return res, trace

    def test_summary_degenerate_not_raise(self):
        res, _ = self._all_rejected()
        s = LatencySummary.from_requests(res.requests)
        assert s == LatencySummary.degenerate()
        assert s.as_dict()["tbot"] == 0.0

    def test_step_metrics_well_defined(self):
        _, trace = self._all_rejected()
        m = StepMetrics.from_trace(trace)
        assert m.rejects == 3 and m.decode_steps == 0
        assert m.max_decode_gap == 0.0 and m.p99_tbot == 0.0


class TestDecodeStepPayloadUnified:
    """Regression: continuous-mode DECODE_STEP events omitted the
    ``live`` field static mode records, so trace rendering diverged."""

    PAYLOAD = {"batch", "kv", "seconds", "used_tokens", "token_budget", "live"}

    def _steps(self, engine):
        inst = instance(engine=engine)
        trace = Trace()
        inst.run(
            [ServingRequest(f"r{i}", 0.1 * i, 256, 16) for i in range(4)],
            trace=trace,
        )
        return trace.of_kind(EventType.DECODE_STEP)

    def test_continuous_records_live(self):
        steps = self._steps(LMDEPLOY)
        assert steps
        for e in steps:
            assert set(e.data) == self.PAYLOAD
            assert e.data["live"] == e.data["batch"]  # membership == batch

    def test_static_payload_matches(self):
        steps = self._steps(TRL)
        assert steps
        for e in steps:
            assert set(e.data) == self.PAYLOAD
            assert e.data["live"] <= e.data["batch"]


class TestPipelinePlumbing:
    def test_simulate_serving_chunked(self):
        pipe = CompressedGenerationPipeline("fp16")
        res = pipe.simulate_serving(
            long_prompt_scenario(), chunk_size=512, with_trace=True
        )
        assert len(res.completed) == 9
        assert len(res.trace.of_kind(EventType.PREFILL_CHUNK)) > 0

    def test_serving_instance_knob(self):
        pipe = CompressedGenerationPipeline("kivi-4")
        inst = pipe.serving_instance(chunk_size=256)
        assert inst.chunk_size == 256
