"""Tests for evaluation runner, length statistics, semantics, reporting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    SemanticScorer,
    VariationRatios,
    d_histogram,
    d_kde,
    dict_rows,
    evaluate_algorithm,
    evaluate_suite,
    flatness,
    format_series,
    format_speedup,
    format_table,
    length_difference,
    mean_score,
    mean_score_by_task,
    verbose_fraction,
)
from repro.datasets import LongBenchSim


class TestLengthStats:
    def test_d_sign_convention(self):
        d = length_difference([10, 10], [5, 20])
        assert d[0] == pytest.approx(0.5)    # shorter -> positive
        assert d[1] == pytest.approx(-1.0)   # longer -> negative

    def test_zero_baseline_guarded(self):
        d = length_difference([0], [5])
        assert np.isfinite(d).all()

    def test_variation_ratios(self):
        d = np.array([0.6, -0.6, 0.0, -0.2])
        vr = VariationRatios.from_d(d)
        assert vr.shorter_50 == pytest.approx(25.0)
        assert vr.longer_50 == pytest.approx(25.0)

    def test_histogram_clipping(self):
        d = np.array([-10.0, 0.5, 0.9])
        centers, counts = d_histogram(d, bins=10, clip=4.0)
        assert counts.sum() == 3
        assert centers.min() >= -4.0 and centers.max() <= 1.0

    def test_kde_integrates_to_one(self):
        rng = np.random.default_rng(0)
        d = rng.normal(-0.5, 0.4, size=400)
        xs, ys = d_kde(d, grid=400)
        area = np.trapezoid(ys, xs)
        assert area == pytest.approx(1.0, abs=0.12)

    def test_kde_degenerate_distribution(self):
        xs, ys = d_kde(np.zeros(10))
        assert np.isfinite(ys).all()

    def test_flatness_orders_spreads(self):
        rng = np.random.default_rng(1)
        tight = rng.normal(0, 0.1, 500)
        wide = rng.normal(0, 0.8, 500)
        assert flatness(wide) > flatness(tight)

    def test_verbose_fraction(self):
        frac = verbose_fraction(
            base_scores=[0.9, 0.9],
            comp_scores=[0.8, 1.0],
            base_lens=[10, 10],
            comp_lens=[15, 15],
        )
        assert frac == pytest.approx(0.5)

    @settings(max_examples=30, deadline=None)
    @given(
        lu=st.lists(st.integers(1, 100), min_size=1, max_size=20),
    )
    def test_identical_lengths_give_zero_d(self, lu):
        d = length_difference(lu, lu)
        np.testing.assert_allclose(d, 0.0)


class TestSemanticScorer:
    def test_identity_scores_one(self):
        s = SemanticScorer()
        assert s.score([10, 11, 12], [10, 11, 12]) == pytest.approx(1.0)

    def test_disjoint_scores_low(self):
        s = SemanticScorer()
        assert s.score([10, 11], [50, 51]) < 0.3

    def test_order_invariant(self):
        s = SemanticScorer()
        assert s.score([10, 11, 12], [12, 11, 10]) == pytest.approx(1.0)

    def test_empty_handling(self):
        s = SemanticScorer()
        assert s.score([], []) == 1.0
        assert s.score([], [10]) == 0.0

    def test_out_of_vocab_rejected(self):
        with pytest.raises(ValueError):
            SemanticScorer().embed([999])

    def test_score_many_alignment(self):
        s = SemanticScorer()
        with pytest.raises(ValueError):
            s.score_many([[1]], [[1], [2]])


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.345], [10, 3.0]], title="T")
        lines = out.split("\n")
        assert lines[0] == "T"
        assert "2.35" in out or "2.34" in out

    def test_format_series(self):
        out = format_series("x", [1, 2], [0.5, 0.25])
        assert out.startswith("x:") and "(1," in out

    def test_format_speedup(self):
        assert format_speedup(1.337) == "1.34x"
        assert format_speedup(float("nan")) == "OOM"
        assert format_speedup(0.0) == "OOM"

    def test_dict_rows(self):
        rows = dict_rows({"b": {"x": 1}, "a": {"x": 2, "y": 3}})
        assert rows[0][0] == "a"
        assert rows[0][1] == 2


class TestEvaluation:
    @pytest.fixture(scope="class")
    def samples(self):
        return LongBenchSim(
            seed=9, min_context=300, max_context=600
        ).build(2, tasks=("qa_single", "fewshot"))

    def test_evaluate_algorithm_records(self, llama_model, samples):
        records = evaluate_algorithm(
            llama_model, samples, "fp16", batch_size=4, max_new_tokens=16
        )
        assert len(records) == len(samples)
        assert all(r.algo == "fp16" for r in records)
        assert all(0 <= r.score <= 1 for r in records)
        # record order matches sample order despite length-sorted batching
        assert [r.sample_id for r in records] == [
            s.sample_id for s in samples
        ]

    def test_evaluate_suite_and_aggregates(self, llama_model, samples):
        results = evaluate_suite(
            llama_model, samples, ("fp16", "stream-256"),
            batch_size=4, max_new_tokens=16,
        )
        assert set(results) == {"fp16", "stream-256"}
        assert 0 <= mean_score(results["fp16"]) <= 1
        by_task = mean_score_by_task(results["fp16"])
        assert set(by_task) == {"qa_single", "fewshot"}
