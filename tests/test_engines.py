"""Tests for the analytical serving cost model and engine presets."""

import numpy as np
import pytest

from repro.compression import create, NoCompression
from repro.engines import (
    LMDEPLOY,
    TRL,
    TRL_FA,
    ServingCostModel,
    get_engine,
)
from repro.hardware import A6000, H800, NVLINK_A6000
from repro.model.arch import LLAMA_7B, LLAMA_13B, LLAMA_70B, MISTRAL_7B

FP16 = NoCompression().cost_spec()


def model(engine=LMDEPLOY, arch=LLAMA_7B, gpu=A6000, tp=1):
    ic = NVLINK_A6000 if tp > 1 else None
    return ServingCostModel(arch, gpu, engine, tp=tp, interconnect=ic)


class TestEnginePresets:
    def test_lookup(self):
        assert get_engine("lmdeploy") is LMDEPLOY
        assert get_engine("TRL") is TRL
        with pytest.raises(KeyError):
            get_engine("vllm")

    def test_engine_ordering_decode(self):
        """Observation 1: LMDeploy > TRL+FA > TRL decode throughput."""
        for b, n in ((1, 512), (8, 1024), (32, 1024)):
            t = {
                e.name: model(e).decode_throughput(b, n, FP16)
                for e in (TRL, TRL_FA, LMDEPLOY)
            }
            assert t["lmdeploy"] > t["trl+fa"] > t["trl"]

    def test_engine_ordering_prefill(self):
        for b, L in ((1, 512), (4, 2048)):
            t = {
                e.name: model(e).prefill_throughput(b, L, FP16)
                for e in (TRL, TRL_FA, LMDEPLOY)
            }
            assert t["lmdeploy"] > t["trl+fa"] > t["trl"]


class TestDecodeCost:
    def test_throughput_grows_with_batch(self):
        m = model()
        t1 = m.decode_throughput(1, 1024, FP16)
        t8 = m.decode_throughput(8, 1024, FP16)
        assert t8 > 4 * t1  # weight-bound regime amortizes

    def test_step_time_grows_with_kv(self):
        m = model()
        assert (
            m.decode_step(8, 4096, FP16).seconds
            > m.decode_step(8, 512, FP16).seconds
        )

    def test_oom_detection(self):
        m = model()
        cost = m.decode_step(64, 8192, FP16)
        assert cost.oom and cost.seconds == float("inf")
        assert m.decode_throughput(64, 8192, FP16) == 0.0

    def test_breakdown_sums(self):
        m = model()
        cost = m.decode_step(8, 2048, FP16)
        assert cost.seconds == pytest.approx(
            sum(cost.breakdown.values()), rel=1e-6
        )

    def test_gqa_reduces_kv_traffic(self):
        """Mistral's 8 KV heads move 4x less than LLaMA's 32."""
        t_llama = model(arch=LLAMA_7B).decode_step(8, 4096, FP16)
        t_mistral = model(arch=MISTRAL_7B).decode_step(8, 4096, FP16)
        attn_l = t_llama.breakdown["attention"]
        attn_m = t_mistral.breakdown["attention"]
        assert attn_m < attn_l / 2


class TestCompressionEffects:
    def test_sparse_wins_at_heavy_kv(self):
        m = model()
        stream = create("stream-512").cost_spec()
        base = m.decode_throughput(8, 4096, FP16)
        assert m.decode_throughput(8, 4096, stream) > 1.2 * base

    def test_speedup_insignificant_at_light_kv(self):
        """Observation 2: no benefit at small batch and short KV."""
        m = model()
        for algo in ("kivi-4", "gear-4", "h2o-512", "stream-512"):
            spec = create(algo).cost_spec()
            ratio = m.decode_throughput(1, 256, spec) / m.decode_throughput(
                1, 256, FP16
            )
            assert 0.85 < ratio < 1.05

    def test_h2o_prefill_penalty_grows_with_length(self):
        m = model()
        h2o = create("h2o-512").cost_spec()
        r1 = m.prefill_throughput(1, 1024, h2o) / m.prefill_throughput(
            1, 1024, FP16
        )
        r2 = m.prefill_throughput(1, 8192, h2o) / m.prefill_throughput(
            1, 8192, FP16
        )
        assert r2 < r1 < 1.0
        assert r2 < 0.6  # paper: 0.51-0.58 at heavy settings

    def test_gear_prefill_slower_than_kivi(self):
        m = model()
        kivi = create("kivi-4").cost_spec()
        gear = create("gear-4").cost_spec()
        tk = m.prefill_throughput(4, 2048, kivi)
        tg = m.prefill_throughput(4, 2048, gear)
        assert tg < tk

    def test_stream_prefill_near_baseline(self):
        m = model()
        stream = create("stream-512").cost_spec()
        ratio = m.prefill_throughput(4, 2048, stream) / m.prefill_throughput(
            4, 2048, FP16
        )
        assert 0.9 < ratio <= 1.01

    def test_quant_oom_before_fp16(self):
        """Fig 1(l): transient FP16 copy OOMs quant methods earlier."""
        m = model(arch=LLAMA_7B)
        kivi = create("kivi-4").cost_spec()
        b, n = 6, 8192
        assert not m.decode_step(b, n, FP16).oom
        assert m.decode_step(b, n, kivi).oom

    def test_sparse_decode_flat_in_kv_len(self):
        """Fig 3(b): sparse attention time saturates at the budget."""
        m = model()
        h2o = create("h2o-512").cost_spec()
        t1 = m.decode_step(8, 1024, h2o).attention_seconds
        t2 = m.decode_step(8, 4096, h2o).attention_seconds
        assert t2 < 1.1 * t1


class TestTensorParallelism:
    def test_tp_lifts_absolute_throughput(self):
        t1 = model(tp=1).decode_throughput(4, 2048, FP16)
        t4 = model(tp=4).decode_throughput(4, 2048, FP16)
        assert t4 > 1.8 * t1

    def test_tp_shrinks_compression_speedup(self):
        """Table 3's headline shape."""
        stream = create("stream-512").cost_spec()
        speedups = []
        for tp in (1, 2, 4):
            m = model(tp=tp)
            speedups.append(
                m.decode_throughput(4, 2048, stream)
                / m.decode_throughput(4, 2048, FP16)
            )
        assert speedups[0] > speedups[1] > speedups[2]

    def test_tp_requires_interconnect(self):
        with pytest.raises(ValueError):
            ServingCostModel(LLAMA_7B, A6000, LMDEPLOY, tp=2)

    def test_70b_serveable_with_tp4_h800(self):
        m = ServingCostModel(
            LLAMA_70B, H800, LMDEPLOY, tp=4, interconnect=NVLINK_A6000
        )
        assert not m.decode_step(4, 2048, FP16).oom

    def test_13b_tighter_than_7b(self):
        m7 = model(arch=LLAMA_7B)
        m13 = model(arch=LLAMA_13B)
        spec = create("kivi-4").cost_spec()
        assert m13.memory.max_batch(
            m13._memory_spec(spec), 4096
        ) < m7.memory.max_batch(m7._memory_spec(spec), 4096)
