"""Tests for serving-level prefix caching: the PrefixIndex, admission
integration (PREFIX_HIT pricing, chunked-prefill composition,
preemption), the compression shareability gate, and cache-affinity
routing."""

import numpy as np
import pytest

from repro.compression import NoCompression, create
from repro.engines import LMDEPLOY, ServingCostModel
from repro.hardware import A6000
from repro.model.arch import LLAMA_7B
from repro.serving import (
    EventType,
    LatencySummary,
    PrefixIndex,
    RoutedRequest,
    Router,
    RoutingPolicy,
    ServerInstance,
    ServingRequest,
    StepMetrics,
    Trace,
)

FP16 = NoCompression().cost_spec()


def instance(comp=FP16, **kw):
    return ServerInstance(ServingCostModel(LLAMA_7B, A6000, LMDEPLOY), comp, **kw)


def conversation(turns=2, sys_len=256, user_len=64, resp=16, gap=30.0):
    """Multi-turn requests whose prompts accumulate history."""
    history = list(range(10_000, 10_000 + sys_len))
    reqs = []
    for t in range(turns):
        prompt = history + [20_000 + t * 1_000 + i for i in range(user_len)]
        reqs.append(
            ServingRequest(
                f"t{t}", t * gap, len(prompt), resp,
                token_ids=tuple(prompt),
            )
        )
        history = prompt + [30_000 + t * 1_000 + i for i in range(resp)]
    return reqs


class TestPrefixIndex:
    def test_insert_then_peek(self):
        idx = PrefixIndex(block_size=16)
        ids = list(range(40))
        assert idx.insert(ids) == 2  # only full blocks registered
        assert idx.peek(ids) == 32
        assert idx.peek(ids[:16]) == 16
        assert idx.peek(list(range(100, 140))) == 0

    def test_peek_is_pure(self):
        idx = PrefixIndex()
        idx.insert(list(range(32)))
        idx.peek(list(range(32)))
        idx.peek(list(range(64, 96)))
        assert idx.hits == 0 and idx.misses == 0

    def test_lookup_counts(self):
        idx = PrefixIndex()
        idx.insert(list(range(32)))
        assert idx.lookup(list(range(32))) == 32
        assert idx.lookup(list(range(64, 96))) == 0
        assert idx.hits == 1 and idx.misses == 1
        assert idx.hit_rate == 0.5

    def test_chained_keys_disambiguate_position(self):
        """The same block content at a different position is a miss."""
        idx = PrefixIndex(block_size=16)
        idx.insert(list(range(16)) + list(range(16)))
        # second block's key chains through the first, so a prompt
        # opening with that content alone only matches block one
        assert idx.peek(list(range(16))) == 16

    def test_capacity_lru_eviction(self):
        idx = PrefixIndex(block_size=16, capacity_blocks=2)
        idx.insert(list(range(32)))
        idx.insert(list(range(100, 132)))
        assert len(idx) == 2
        assert idx.evicted_blocks == 2
        assert idx.peek(list(range(32))) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PrefixIndex(block_size=0)
        with pytest.raises(ValueError):
            PrefixIndex(capacity_blocks=0)


class TestAdmission:
    def test_repeat_prompt_hits_and_cuts_ttft(self):
        inst = instance(prefix_cache=PrefixIndex())
        trace = Trace()
        ids = tuple(range(512))
        reqs = [
            ServingRequest("a", 0.0, 512, 8, token_ids=ids),
            ServingRequest("b", 30.0, 512, 8, token_ids=ids),
        ]
        res = inst.run(reqs, trace=trace)
        hits = trace.of_kind(EventType.PREFIX_HIT)
        assert [e.request_id for e in hits] == ["b"]
        a, b = res.completed
        assert a.cached_prefix == 0
        # full-prompt repeat: capped one token short so the last token
        # is still computed to produce the first output logit
        assert b.cached_prefix == 511
        assert b.ttft < a.ttft / 2

    def test_multi_turn_growing_prefix(self):
        inst = instance(prefix_cache=PrefixIndex())
        trace = Trace()
        res = inst.run(conversation(turns=3), trace=trace)
        later = [r for r in res.completed if r.request_id != "t0"]
        assert all(r.cached_prefix > 0 for r in later)
        # each turn's cached prefix covers at least the previous prompt
        prev_prompt = 0
        for r in sorted(res.completed, key=lambda r: r.arrival):
            assert r.cached_prefix >= prev_prompt // 16 * 16 - 16
            prev_prompt = r.prompt_len
        m = StepMetrics.from_trace(trace)
        assert m.prefix_hits == 2
        assert m.prefix_hit_rate == pytest.approx(2 / 3)
        assert m.prefix_saved_seconds > 0

    def test_no_token_ids_trace_identical_to_disabled(self):
        """Requests without token ids on a prefix-enabled instance
        behave bit-for-bit like the disabled path."""

        def run(prefix):
            inst = instance(
                prefix_cache=PrefixIndex() if prefix else None,
                admission="dynamic", chunk_size=256,
            )
            trace = Trace()
            rng = np.random.default_rng(3)
            arr = np.cumsum(rng.exponential(0.2, size=24))
            reqs = [
                ServingRequest(
                    f"r{i}", float(arr[i]),
                    int(rng.integers(64, 1024)), int(rng.integers(8, 64)),
                )
                for i in range(24)
            ]
            inst.run(reqs, trace=trace)
            return [
                (e.time, e.kind.value, e.request_id, e.data)
                for e in trace.events
            ]

        assert run(prefix=True) == run(prefix=False)

    def test_prefill_event_prices_suffix_only(self):
        inst = instance(prefix_cache=PrefixIndex())
        trace = Trace()
        ids = tuple(range(512))
        inst.run(
            [
                ServingRequest("a", 0.0, 512, 4, token_ids=ids),
                ServingRequest("b", 30.0, 512, 4, token_ids=ids),
            ],
            trace=trace,
        )
        prefills = {e.request_id: e for e in trace.of_kind(EventType.PREFILL)}
        cached = prefills["b"].data["cached"]
        expected = inst.cost_model.prefill_chunk(
            1, 512 - cached, cached, inst.comp
        ).seconds
        assert prefills["b"].data["seconds"] == pytest.approx(expected)
        assert "cached" not in prefills["a"].data

    def test_composes_with_chunked_prefill(self):
        inst = instance(prefix_cache=PrefixIndex(), chunk_size=128)
        trace = Trace()
        ids = tuple(range(1024))
        extended = ids + tuple(range(5_000, 5_300))
        res = inst.run(
            [
                ServingRequest("a", 0.0, 1024, 4, token_ids=ids),
                ServingRequest("b", 60.0, 1324, 4, token_ids=extended),
            ],
            trace=trace,
        )
        chunks = {"a": [], "b": []}
        for e in trace.of_kind(EventType.PREFILL_CHUNK):
            chunks[e.request_id].append(e)
        b = next(r for r in res.completed if r.request_id == "b")
        # warm request starts chunking from the cached prefix and only
        # prefills the 300-token suffix: 3 chunks instead of 11
        assert b.cached_prefix == 1024
        assert len(chunks["a"]) == 8
        assert len(chunks["b"]) == 3
        assert chunks["b"][0].data["prefilled"] == 1024 + 128
        assert chunks["b"][-1].data["prefilled"] == 1324

    def test_preempted_request_rehits_on_readmission(self):
        """Recompute preemption resets cached_prefix, but the request's
        own first prefill populated the index, so re-admission hits."""
        inst = instance(prefix_cache=PrefixIndex(), admission="dynamic")
        trace = Trace()
        rng = np.random.default_rng(0)
        n = 24
        reqs = [
            ServingRequest(
                f"r{i}", i * 0.01, 4000, 800,
                token_ids=tuple(
                    int(t) for t in rng.integers(0, 50_000, size=4000)
                ),
            )
            for i in range(n)
        ]
        res = inst.run(reqs, trace=trace)
        preempted = {e.request_id for e in trace.of_kind(EventType.PREEMPT)}
        assert preempted  # the stream actually overloads the budget
        hits = [e for e in trace.of_kind(EventType.PREFIX_HIT)]
        assert {e.request_id for e in hits} >= preempted
        assert len(res.completed) == n

    def test_compression_gate_blocks_sharing(self):
        """Quantized KV is unshareable: the same index on a KIVI
        instance records no hits and stays empty (Section 3.1.2)."""
        idx = PrefixIndex()
        inst = instance(comp=create("kivi-4").cost_spec(), prefix_cache=idx)
        trace = Trace()
        res = inst.run(conversation(turns=3), trace=trace)
        assert not trace.of_kind(EventType.PREFIX_HIT)
        assert len(idx) == 0
        assert all(r.cached_prefix == 0 for r in res.completed)

    def test_latency_summary_prefix_fields(self):
        inst = instance(prefix_cache=PrefixIndex())
        res = inst.run(conversation(turns=2))
        s = LatencySummary.from_requests(res.completed)
        assert s.prefix_hit_rate == pytest.approx(0.5)
        assert s.cached_prefix_tokens > 0
        assert "prefix_hit_rate" in s.as_dict()
        # without any hit the fields stay out of the dict entirely
        cold = instance().run(conversation(turns=2))
        s0 = LatencySummary.from_requests(cold.completed)
        assert s0.prefix_hit_rate is None
        assert "prefix_hit_rate" not in s0.as_dict()


class TestAffinityRouting:
    def _routed_conversations(self, n_conv=4, turns=3):
        reqs = []
        for c in range(n_conv):
            history = list(range(c * 100_000, c * 100_000 + 256))
            for t in range(turns):
                prompt = history + [
                    c * 100_000 + 50_000 + t * 1_000 + i for i in range(64)
                ]
                reqs.append(
                    RoutedRequest(
                        f"c{c}t{t}", c * 0.05 + t * 2.0, len(prompt), 16,
                        {"fp16": 16}, token_ids=tuple(prompt),
                    )
                )
                history = prompt + [
                    c * 100_000 + 70_000 + t * 1_000 + i for i in range(16)
                ]
        return reqs

    def test_online_affinity_keeps_conversations_home(self):
        router = Router(
            [instance(prefix_cache=PrefixIndex()) for _ in range(3)],
            ["fp16"] * 3,
            RoutingPolicy.PREFIX,
        )
        res = router.serve_online(self._routed_conversations())
        for c in range(4):
            homes = {res.assignment[f"c{c}t{t}"] for t in range(3)}
            assert len(homes) == 1
        later = [
            r for r in res.all_requests() if not r.request_id.endswith("t0")
        ]
        assert all(r.cached_prefix > 0 for r in later)

    def test_probe_does_not_skew_instance_stats(self):
        """Router probes use peek: only real admissions count toward an
        index's hit/miss statistics."""
        instances = [instance(prefix_cache=PrefixIndex()) for _ in range(3)]
        router = Router(instances, ["fp16"] * 3, RoutingPolicy.PREFIX)
        reqs = self._routed_conversations()
        router.serve_online(reqs)
        total = sum(
            idx.hits + idx.misses
            for idx in (inst.prefix_cache for inst in instances)
        )
        assert total == len(reqs)

    def test_offline_prefix_routing_sticky(self):
        router = Router(
            [instance(prefix_cache=PrefixIndex()) for _ in range(3)],
            ["fp16"] * 3,
            RoutingPolicy.PREFIX,
        )
        res = router.serve(self._routed_conversations())
        for c in range(4):
            homes = {res.assignment[f"c{c}t{t}"] for t in range(3)}
            assert len(homes) == 1

    def test_prefix_policy_without_token_ids_falls_back(self):
        router = Router(
            [instance(prefix_cache=PrefixIndex()) for _ in range(2)],
            ["fp16"] * 2,
            RoutingPolicy.PREFIX,
        )
        reqs = [
            RoutedRequest(f"r{i}", i * 0.01, 256, 16, {"fp16": 16})
            for i in range(8)
        ]
        res = router.serve_online(reqs)
        assert len(res.all_requests()) == 8  # least-loaded fallback serves all
