"""Columnar-vs-object equivalence property suite.

The columnar :class:`Trace` (struct-of-arrays ring buffer) must be an
*observationally exact* drop-in for :class:`ObjectTrace` (the original
event-list implementation): identical events, renders, folds and
exports — bit for bit, not approximately.  Each scenario here runs the
same seeded workload twice, once per trace implementation, and asserts
byte/float identity across every consumer surface:

- ``events`` (values AND Python types of every payload entry)
- ``render_timeline`` output
- ``StepMetrics.from_trace`` (columnar fold vs legacy event fold)
- ``request_latencies`` / ``queue_delays``
- JSONL export bytes

Scheduler policies also get a vector-vs-scalar parity check: the NumPy
paths must make exactly the decisions of the tuple-``min`` paths.
"""

import copy
import itertools

import numpy as np
import pytest

from repro.compression import NoCompression
from repro.engines import LMDEPLOY, ServingCostModel
from repro.hardware import A6000
from repro.model.arch import LLAMA_7B
from repro.serving import (
    ObjectTrace,
    PrefixIndex,
    ServerInstance,
    ServingRequest,
    StepMetrics,
    Telemetry,
    Trace,
    dump_jsonl,
    make_policy,
    queue_delays,
    request_latencies,
)

FP16 = NoCompression().cost_spec()


def instance(**kw):
    cm = ServingCostModel(LLAMA_7B, A6000, LMDEPLOY)
    return ServerInstance(cm, FP16, **kw)


def workload(seed, n=40, slo=False, tokens=False):
    rng = np.random.default_rng(seed)
    t = 0.0
    reqs = []
    for i in range(n):
        t += float(rng.exponential(0.2))
        kw = {}
        if slo and rng.random() < 0.7:
            kw["ttft_deadline"] = float(rng.uniform(0.5, 4.0))
            kw["tbot_target"] = float(rng.uniform(0.02, 0.2))
        if tokens:
            # shared 64-token stem with 50% probability -> prefix hits
            stem = tuple(range(64)) if rng.random() < 0.5 else tuple(
                int(x) for x in rng.integers(0, 10_000, 64)
            )
            tail = tuple(int(x) for x in rng.integers(0, 10_000, 192))
            kw["token_ids"] = stem + tail
        reqs.append(
            ServingRequest(
                f"r{i}",
                t,
                prompt_len=256 if tokens else int(rng.integers(16, 512)),
                response_len=int(rng.integers(1, 96)),
                priority=int(rng.integers(0, 4)),
                **kw,
            )
        )
    return reqs


SCENARIOS = {
    "core": dict(kw=dict(max_batch=8)),
    "dynamic": dict(kw=dict(admission="dynamic", max_batch=16)),
    "chunked": dict(kw=dict(chunk_size=64, max_batch=8)),
    "slo": dict(kw=dict(scheduler=make_policy("slo"), max_batch=8), slo=True),
    "priority": dict(kw=dict(scheduler=make_policy("priority"), max_batch=8)),
    "shortest": dict(kw=dict(scheduler=make_policy("shortest"), max_batch=8)),
    "prefix": dict(kw=dict(max_batch=8), tokens=True, prefix=True),
    "telemetry": dict(kw=dict(max_batch=8), telemetry=True),
}


def run_pair(name, seed):
    spec = SCENARIOS[name]
    reqs = workload(
        seed, slo=spec.get("slo", False), tokens=spec.get("tokens", False)
    )
    results = []
    for trace in (Trace(), ObjectTrace()):
        kw = dict(spec["kw"])
        if spec.get("prefix"):
            kw["prefix_cache"] = PrefixIndex(block_size=16)
        tel = Telemetry() if spec.get("telemetry") else None
        inst = instance(**kw)
        res = inst.run(copy.deepcopy(reqs), trace=trace, telemetry=tel)
        results.append((trace, res))
    return results


@pytest.mark.parametrize(
    "name,seed",
    list(itertools.product(SCENARIOS, (0, 1))),
    ids=lambda v: str(v),
)
def test_columnar_matches_object(name, seed, tmp_path):
    (col, col_res), (obj, obj_res) = run_pair(name, seed)
    assert len(col) == len(obj) > 0

    # events: identical values AND identical Python types per payload
    for ce, oe in zip(col.events, obj.events):
        assert ce == oe
        for k, cv in ce.data.items():
            assert type(cv) is type(oe.data[k]), (name, k, cv)

    # rendered timeline is byte-identical
    assert col.render_timeline() == obj.render_timeline()
    assert col.render_timeline(limit=7) == obj.render_timeline(limit=7)

    # folds: vectorized columnar fold == legacy event fold, exactly
    assert StepMetrics.from_trace(col) == StepMetrics.from_trace(obj)
    assert request_latencies(col) == request_latencies(obj)
    assert queue_delays(col) == queue_delays(obj)

    # the simulated requests themselves are unaffected by the trace impl
    assert col_res.requests == obj_res.requests

    # JSONL export bytes are identical
    pc, po = tmp_path / "col.jsonl", tmp_path / "obj.jsonl"
    dump_jsonl(col, pc)
    dump_jsonl(obj, po)
    assert pc.read_bytes() == po.read_bytes()


def test_per_kind_and_per_request_views_match():
    (col, _), (obj, _) = run_pair("dynamic", 3)
    for kind in {e.kind for e in obj.events}:
        assert list(col.of_kind(kind)) == obj.of_kind(kind)
    for rid in obj.request_ids():
        assert list(col.for_request(rid)) == obj.for_request(rid)
    assert col.request_ids() == obj.request_ids()
    assert col.counts() == obj.counts()


class TestSchedulerVectorScalarParity:
    """The NumPy select/victim paths kick in at ``_VECTOR_MIN`` queue
    length; both must pick the same index as the tuple-``min`` scalar
    path for every policy, including all tie patterns."""

    def queue(self, seed, n):
        rng = np.random.default_rng(seed)
        reqs = []
        for i in range(n):
            r = ServingRequest(
                f"q{i}",
                # coarse grid -> frequent arrival ties
                arrival=float(rng.integers(0, 6)) * 0.5,
                prompt_len=int(rng.integers(16, 256)),
                response_len=int(rng.integers(1, 64)),
                priority=int(rng.integers(0, 3)),
                predicted_len=(
                    float(rng.integers(1, 64))
                    if rng.random() < 0.5 else None
                ),
                ttft_deadline=(
                    float(rng.uniform(0.5, 2.0))
                    if rng.random() < 0.5 else None
                ),
                tbot_target=(
                    float(rng.uniform(0.05, 0.2))
                    if rng.random() < 0.5 else None
                ),
            )
            if rng.random() < 0.4:
                r.first_token = r.arrival + float(rng.uniform(0.1, 1.0))
                r.generated = int(rng.integers(1, r.response_len + 1))
            reqs.append(r)
        return reqs

    def scalar_select(self, policy, waiting, clock):
        import repro.serving.scheduler as sched

        saved = sched._VECTOR_MIN
        sched._VECTOR_MIN = 10**9
        try:
            return policy.select(waiting, clock)
        finally:
            sched._VECTOR_MIN = saved

    def scalar_victim(self, policy, running, clock):
        import repro.serving.scheduler as sched

        saved = sched._VECTOR_MIN
        sched._VECTOR_MIN = 10**9
        try:
            return policy.victim(running, clock)
        finally:
            sched._VECTOR_MIN = saved

    @pytest.mark.parametrize(
        "name", ["fcfs", "shortest", "priority", "slo"]
    )
    def test_parity(self, name):
        for seed in range(8):
            reqs = self.queue(seed, 24)
            clock = 5.0
            policy = make_policy(name)
            assert policy.select(reqs, clock) == self.scalar_select(
                policy, reqs, clock
            )
            assert policy.victim(reqs, clock) == self.scalar_victim(
                policy, reqs, clock
            )

    def test_slack_array_matches_scalar(self):
        policy = make_policy("slo")
        reqs = self.queue(11, 32)
        arr = policy.slack_array(reqs, 5.0)
        for i, r in enumerate(reqs):
            assert arr[i] == policy.slack(r, 5.0)
