"""Tests for the synthetic tokenizer."""

import pytest

from repro.model.tokenizer import SyntheticTokenizer


class TestSyntheticTokenizer:
    def test_default_vocab(self):
        tok = SyntheticTokenizer()
        assert tok.vocab_size == 64
        assert tok.n_content == 56

    def test_special_ids_distinct(self):
        tok = SyntheticTokenizer()
        sp = tok.special
        ids = [sp.pad, sp.bos, sp.eos, sp.sep, sp.q, sp.a, sp.nl, sp.fn]
        assert len(set(ids)) == len(ids)
        assert all(i < tok.content_start for i in ids)

    def test_roundtrip(self):
        tok = SyntheticTokenizer()
        ids = [1, 4, 20, 30, 3, 2]
        assert tok.encode(tok.decode(ids)) == ids

    def test_name_lookup(self):
        tok = SyntheticTokenizer()
        assert tok.name(tok.special.eos) == "<eos>"
        assert tok.id("w10") == 10

    def test_unknown_symbol(self):
        with pytest.raises(KeyError):
            SyntheticTokenizer().encode("nonexistent")

    def test_validate(self):
        tok = SyntheticTokenizer()
        tok.validate([0, 63])
        with pytest.raises(ValueError):
            tok.validate([64])
        with pytest.raises(ValueError):
            tok.validate([-1])

    def test_min_vocab_enforced(self):
        with pytest.raises(ValueError):
            SyntheticTokenizer(vocab_size=8)

    def test_content_ids_disjoint_from_specials(self):
        tok = SyntheticTokenizer(vocab_size=32)
        assert min(tok.content_ids) == tok.content_start
        assert max(tok.content_ids) == 31
