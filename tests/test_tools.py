"""Tests for the Section 5 tool suite."""

import numpy as np
import pytest

from repro.compression import NoCompression, create
from repro.engines import LMDEPLOY, ServingCostModel
from repro.hardware import A6000
from repro.model.arch import LLAMA_7B
from repro.model.tokenizer import SyntheticTokenizer
from repro.tools import (
    LengthPredictor,
    N_FEATURES,
    NegativeSampleAnalysis,
    ScoredSample,
    ThroughputPredictor,
    batch_features,
    prompt_features,
    train_per_algorithm,
)
from repro.tools.length_predictor import make_buckets, quantile_buckets


class TestFeatures:
    def test_shape(self):
        tok = SyntheticTokenizer()
        sp = tok.special
        prompt = [sp.bos, 10, 11, sp.q, 40, 50, 51, sp.sep, 12, sp.q, 40]
        f = prompt_features(prompt, tok)
        assert f.shape == (N_FEATURES,)
        assert f[0] == 1.0  # bias

    def test_answer_span_feature(self):
        tok = SyntheticTokenizer()
        sp = tok.special
        prompt = [sp.bos, sp.q, 40, 50, 51, 52, sp.sep, sp.q, 40]
        f = prompt_features(prompt, tok)
        assert f[6] == pytest.approx(np.log1p(3))  # span of 3 values

    def test_conflict_counting(self):
        tok = SyntheticTokenizer()
        sp = tok.special
        one = [sp.bos, sp.q, 40, 50, sp.sep, sp.q, 40]
        two = [sp.bos, sp.q, 40, 51, sp.sep, sp.q, 40, 50, sp.sep, sp.q, 40]
        assert prompt_features(two, tok)[7] > prompt_features(one, tok)[7]

    def test_batch_features(self):
        tok = SyntheticTokenizer()
        sp = tok.special
        prompts = [[sp.bos, sp.q, 40, 50, sp.sep, sp.q, 40]] * 3
        assert batch_features(prompts, tok).shape == (3, N_FEATURES)

    def test_token_stats_feature(self):
        tok = SyntheticTokenizer()
        sp = tok.special
        stats = np.ones(64)
        stats[40] = 0.5
        prompt = [sp.bos, sp.q, 40, 50, sp.sep, sp.q, 40]
        f = prompt_features(prompt, tok, token_stats=stats)
        assert f[10] == 0.5  # final-key magnitude


class TestLengthPredictor:
    def _data(self, n=400, seed=0):
        """Synthetic but learnable: length ~ answer-span feature."""
        rng = np.random.default_rng(seed)
        tok = SyntheticTokenizer()
        sp = tok.special
        prompts, lengths = [], []
        for _ in range(n):
            span = int(rng.integers(3, 24))
            vals = [int(x) for x in rng.integers(36, 63, size=span)]
            key = 35
            p = [sp.bos] + [int(x) for x in rng.integers(8, 35, size=40)]
            p += [sp.q, key] + vals + [sp.sep]
            p += [int(x) for x in rng.integers(8, 35, size=20)] + [sp.q, key]
            prompts.append(p)
            lengths.append(max(1, span + int(rng.integers(-1, 2))))
        return prompts, lengths, tok

    def test_learnable_mapping(self):
        prompts, lengths, tok = self._data()
        trained = train_per_algorithm(
            prompts, {"fp16": lengths}, tokenizer=tok
        )
        assert trained["fp16"]["accuracy"] > 0.8

    def test_bucket_helpers(self):
        b = make_buckets(512, 12)
        assert b[0] == 1 and b[-1] == 512
        q = quantile_buckets([3, 3, 4, 8, 9, 20, 40], 4)
        assert (np.diff(q) > 0).all()

    def test_unfitted_raises(self):
        p = LengthPredictor()
        with pytest.raises(RuntimeError):
            p.predict_length(np.zeros((1, N_FEATURES)))

    def test_feature_dim_checked(self):
        p = LengthPredictor()
        with pytest.raises(ValueError):
            p.fit(np.zeros((10, 5)), [1] * 10)

    def test_accuracy_definition(self):
        prompts, lengths, tok = self._data(n=200)
        trained = train_per_algorithm(prompts, {"x": lengths}, tokenizer=tok)
        pred = trained["x"]["predictor"]
        feats = batch_features(prompts, tok)
        acc = pred.accuracy(feats, lengths)
        assert 0.0 <= acc <= 1.0


class TestThroughputPredictor:
    def _predictor(self, noise=0.0):
        cm = ServingCostModel(LLAMA_7B, A6000, LMDEPLOY)
        specs = {
            "fp16": NoCompression().cost_spec(),
            "stream-512": create("stream-512").cost_spec(),
        }
        return ThroughputPredictor(
            cm, specs, profile_noise=noise, seed=0
        ).profile()

    def test_on_grid_near_exact(self):
        p = self._predictor(noise=0.0)
        cm = ServingCostModel(LLAMA_7B, A6000, LMDEPLOY)
        gt = cm.decode_step(8, 1024, NoCompression().cost_spec()).seconds
        pred = p.predict_seconds("fp16", "decode", 8, 1024)
        assert pred == pytest.approx(gt, rel=0.02)

    def test_off_grid_accuracy(self):
        p = self._predictor(noise=0.03)
        acc = p.accuracy(
            [("decode", 3, 700), ("decode", 12, 1500), ("prefill", 6, 900)]
        )
        assert all(v > 0.8 for v in acc.values())

    def test_throughput_helpers(self):
        p = self._predictor()
        assert p.predict_decode_throughput("fp16", 8, 1024) > 0
        assert p.predict_prefill_throughput("fp16", 4, 512) > 0

    def test_unknown_algo_or_stage(self):
        p = self._predictor()
        with pytest.raises(KeyError):
            p.predict_seconds("zip", "decode", 1, 128)
        with pytest.raises(ValueError):
            p.predict_seconds("fp16", "train", 1, 128)


class TestNegativeSampler:
    def _analysis(self):
        baseline = {}
        kivi = {}
        gear = {}
        # 10 samples: baseline perfect; kivi fails 0-2, gear fails 1-3
        for i in range(10):
            sid = f"s{i}"
            baseline[sid] = ScoredSample(sid, "qa", 1.0)
            kivi[sid] = ScoredSample(sid, "qa", 0.0 if i <= 2 else 1.0)
            gear[sid] = ScoredSample(sid, "qa", 0.0 if 1 <= i <= 3 else 1.0)
        return NegativeSampleAnalysis(baseline, {"kivi": kivi, "gear": gear})

    def test_single_algo_negatives(self):
        a = self._analysis()
        assert a.negatives(["kivi"], 0.1) == {"s0", "s1", "s2"}
        assert a.negatives(["gear"], 0.1) == {"s1", "s2", "s3"}

    def test_combined_set_is_intersection(self):
        """Algorithm 1: a sample is negative only if ALL algos fail."""
        a = self._analysis()
        assert a.negatives(["kivi", "gear"], 0.1) == {"s1", "s2"}

    def test_threshold_one_keeps_only_total_failures(self):
        a = self._analysis()
        assert a.negatives(["kivi"], 1.0) == set()  # score 0 >= 0*base

    def test_benign_filter(self):
        baseline = {
            "good": ScoredSample("good", "qa", 1.0),
            "bad": ScoredSample("bad", "qa", 0.0),
        }
        algo = {
            "good": ScoredSample("good", "qa", 0.0),
            "bad": ScoredSample("bad", "qa", 0.0),
        }
        a = NegativeSampleAnalysis(baseline, {"x": algo})
        assert a.negatives(["x"], 0.1) == {"good"}  # 'bad' is not benign

    def test_counts_by_threshold_monotone(self):
        a = self._analysis()
        counts = a.counts_by_threshold(
            {"kivi": ["kivi"]}, [0.05, 0.5, 0.99]
        )["kivi"]
        assert counts[0] >= counts[1] >= counts[2]

    def test_counts_by_task(self):
        a = self._analysis()
        assert a.counts_by_task(["kivi"], 0.1) == {"qa": 3}

    def test_benchmark_union(self):
        a = self._analysis()
        assert a.benchmark_ids(["kivi", "gear"], 0.1) == [
            "s0", "s1", "s2", "s3"
        ]

    def test_scores_on_groups(self):
        a = self._analysis()
        table = a.scores_on(["s0", "s1"], {"qa": "Question Answering"})
        row = table["Question Answering"]
        assert row["baseline"] == 100.0
        assert row["kivi"] == 0.0

    def test_missing_scores_rejected(self):
        baseline = {"a": ScoredSample("a", "qa", 1.0)}
        with pytest.raises(ValueError):
            NegativeSampleAnalysis(baseline, {"x": {}})

    def test_invalid_theta(self):
        a = self._analysis()
        with pytest.raises(ValueError):
            a.negatives(["kivi"], 1.5)

    def test_unknown_algo(self):
        a = self._analysis()
        with pytest.raises(KeyError):
            a.negatives(["zip"], 0.1)
