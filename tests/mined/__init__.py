"""Auto-mined regression tests.

Each ``test_mined_*.py`` file here was distilled from a recorded
serving trace by ``python -m repro.cli analyze --emit-tests`` (see
``repro.serving.mining.emit_regression_tests``): the anomaly miner
flagged an incident, the workload was minimized down to the smallest
recorded subset that still fires the detector, and the scenario plus
that subset were frozen into a standalone pytest case.  Regenerate
from a fresh trace rather than editing by hand.
"""
