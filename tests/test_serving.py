"""Tests for the serving simulator, router and latency metrics."""

import numpy as np
import pytest

from repro.compression import NoCompression, create
from repro.engines import LMDEPLOY, TRL, ServingCostModel
from repro.hardware import A6000
from repro.model.arch import LLAMA_7B
from repro.serving import (
    LatencySummary,
    RoutedRequest,
    Router,
    RoutingPolicy,
    ServerInstance,
    ServingRequest,
    cdf,
    tbot,
)

FP16 = NoCompression().cost_spec()


def instance(comp=FP16, engine=LMDEPLOY, max_batch=32):
    cm = ServingCostModel(LLAMA_7B, A6000, engine)
    return ServerInstance(cm, comp, max_batch=max_batch)


def requests(n, prompt=256, resp=32, spacing=1.0, start=0.0):
    return [
        ServingRequest(
            request_id=f"r{i}",
            arrival=start + i * spacing,
            prompt_len=prompt,
            response_len=resp,
        )
        for i in range(n)
    ]


class TestServingRequest:
    def test_latency_properties(self):
        r = ServingRequest("a", arrival=1.0, prompt_len=10, response_len=5)
        r.first_token = 1.5
        r.finish = 3.0
        assert r.ttft == pytest.approx(0.5)
        assert r.e2e_latency == pytest.approx(2.0)
        assert r.total_tokens == 15

    def test_unserved_raises(self):
        r = ServingRequest("a", 0.0, 10, 5)
        with pytest.raises(RuntimeError):
            _ = r.ttft


class TestServerInstance:
    def test_all_requests_complete(self):
        inst = instance()
        res = inst.run(requests(12, spacing=0.05))
        assert all(r.finish is not None for r in res.requests)
        assert all(r.generated >= r.response_len for r in res.requests)

    def test_latency_positive_and_ordered(self):
        inst = instance()
        res = inst.run(requests(6, spacing=0.2))
        assert (res.e2e > 0).all()
        assert (res.ttft <= res.e2e + 1e-9).all()

    def test_idle_server_fast_single_request(self):
        inst = instance()
        res = inst.run(requests(1))
        # prefill + 31 decode steps at ~20ms/step: well under 2 seconds
        assert res.mean_e2e() < 2.0

    def test_congestion_raises_latency(self):
        light = instance().run(requests(8, spacing=2.0))
        heavy = instance().run(requests(8, spacing=0.01))
        assert heavy.mean_e2e() > light.mean_e2e()

    def test_compressed_instance_admits_more_tokens(self):
        fp = instance(FP16)
        sp = instance(create("stream-512").cost_spec())
        assert sp.token_budget >= fp.token_budget

    def test_static_batching_engine(self):
        inst = instance(engine=TRL)
        res = inst.run(requests(6, spacing=0.01))
        assert all(r.finish is not None for r in res.requests)

    def test_continuous_beats_static_under_load(self):
        reqs_a = requests(10, spacing=0.05)
        reqs_b = requests(10, spacing=0.05)
        cont = instance(engine=LMDEPLOY).run(reqs_a)
        stat = instance(engine=TRL).run(reqs_b)
        assert cont.mean_e2e() < stat.mean_e2e()

    def test_percentiles(self):
        res = instance().run(requests(10, spacing=0.1))
        assert res.percentile_e2e(99) >= res.percentile_e2e(50)

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            instance(max_batch=0)


class TestRouter:
    def _routed(self, n=16, algos=("fp16", "stream-512")):
        rng = np.random.default_rng(0)
        arr = np.cumsum(rng.exponential(0.2, size=n))
        return [
            RoutedRequest(
                request_id=f"r{i}",
                arrival=float(arr[i]),
                prompt_len=int(rng.integers(128, 512)),
                intended_len=24,
                lengths_by_algo={a: 24 for a in algos},
            )
            for i in range(n)
        ]

    def test_load_balance_spreads(self):
        insts = [instance() for _ in range(4)]
        router = Router(
            insts, ["fp16"] * 4, RoutingPolicy.LOAD_BALANCE
        )
        res = router.serve(self._routed(16, ("fp16",)))
        used = set(res.assignment.values())
        assert len(used) >= 3  # requests spread over instances

    def test_policy_requires_predictors(self):
        insts = [instance() for _ in range(2)]
        with pytest.raises(ValueError):
            Router(insts, ["fp16", "fp16"], RoutingPolicy.THROUGHPUT)
        with pytest.raises(ValueError):
            Router(insts, ["fp16", "fp16"], RoutingPolicy.LENGTH)

    def test_instance_algo_mismatch(self):
        with pytest.raises(ValueError):
            Router([instance()], ["a", "b"], RoutingPolicy.LOAD_BALANCE)

    def test_length_policy_prefers_short(self):
        algos = ["fp16", "stream-512"]
        insts = [instance(), instance(create("stream-512").cost_spec())]
        reqs = self._routed(8, tuple(algos))
        for r in reqs:
            r.lengths_by_algo = {"fp16": 10, "stream-512": 40}
        router = Router(
            insts, algos, RoutingPolicy.LENGTH,
            length_fn=lambda req, a: float(req.lengths_by_algo[a]),
        )
        res = router.serve(reqs)
        assert all(idx == 0 for idx in res.assignment.values())

    def test_all_served(self):
        algos = ["fp16", "stream-512", "stream-512", "stream-512"]
        insts = [
            instance(
                FP16 if a == "fp16" else create(a).cost_spec()
            )
            for a in algos
        ]
        router = Router(
            insts, algos, RoutingPolicy.BOTH,
            throughput_fn=lambda a, b, kv: 200.0,
            length_fn=lambda req, a: 24.0,
        )
        res = router.serve(self._routed(20, tuple(set(algos))))
        assert len(res.all_e2e()) == 20


class TestLatencySummaryExtended:
    def _served(self):
        # hand-built lifecycle: arrival 0, queued 0.5s, prefill to first
        # token at 1.0, ten tokens finishing at 10.0
        reqs = []
        for i in range(4):
            r = ServingRequest(f"s{i}", 0.0, 64, 10)
            r.prefill_start = 0.5
            r.first_token = 1.0
            r.finish = 10.0
            r.generated = 10
            reqs.append(r)
        return reqs

    def test_from_requests_fields(self):
        s = LatencySummary.from_requests(self._served())
        assert s.mean == pytest.approx(10.0)
        assert s.queue_delay == pytest.approx(0.5)
        assert s.tbot == pytest.approx(9.0 / 9)
        assert s.as_dict()["tbot"] == pytest.approx(1.0)
        assert s.as_dict()["queue_delay"] == pytest.approx(0.5)

    def test_from_samples_leaves_fields_unset(self):
        s = LatencySummary.from_samples([1.0, 2.0])
        assert s.tbot is None and s.queue_delay is None
        assert "tbot" not in s.as_dict()

    def test_from_requests_skips_rejected(self):
        reqs = self._served()
        reqs[0].rejected = True
        s = LatencySummary.from_requests(reqs)
        assert s.mean == pytest.approx(10.0)

    def test_from_requests_empty_degenerate(self):
        # an all-rejected stream must summarize cleanly (zeros), not
        # crash experiments under tight token budgets
        s = LatencySummary.from_requests([])
        assert s.mean == s.p99 == s.max == 0.0
        assert s.tbot == 0.0 and s.queue_delay == 0.0

    def test_from_requests_all_rejected_degenerate(self):
        reqs = self._served()
        for r in reqs:
            r.rejected = True
        s = LatencySummary.from_requests(reqs)
        assert s == LatencySummary.degenerate()

    def test_single_token_response_tbot_zero(self):
        r = ServingRequest("one", 0.0, 64, 1)
        r.prefill_start = 0.0
        r.first_token = 1.0
        r.finish = 1.0
        r.generated = 1
        s = LatencySummary.from_requests([r])
        assert s.tbot == 0.0

    def test_router_result_surfaces_tbot_and_queue_delay(self):
        insts = [instance() for _ in range(2)]
        router = Router(insts, ["fp16"] * 2, RoutingPolicy.LOAD_BALANCE)
        rng = np.random.default_rng(3)
        arr = np.cumsum(rng.exponential(0.2, size=8))
        reqs = [
            RoutedRequest(f"r{i}", float(arr[i]), 256, 24, {"fp16": 24})
            for i in range(8)
        ]
        s = router.serve(reqs).latency_summary()
        assert s.tbot is not None and s.tbot > 0.0
        assert s.queue_delay is not None and s.queue_delay >= 0.0


class TestMetrics:
    def test_summary(self):
        s = LatencySummary.from_samples([1.0, 2.0, 3.0, 4.0])
        assert s.mean == pytest.approx(2.5)
        assert s.max == 4.0
        assert s.p50 <= s.p90 <= s.p99
        assert set(s.as_dict()) == {"mean", "p50", "p90", "p99", "max"}

    def test_summary_empty_raises(self):
        with pytest.raises(ValueError):
            LatencySummary.from_samples([])

    def test_cdf_monotone(self):
        xs, ys = cdf(np.random.default_rng(0).exponential(1.0, 500))
        assert (np.diff(ys) >= 0).all()
        assert ys[-1] == pytest.approx(1.0)

    def test_tbot(self):
        assert tbot(e2e=10.0, ttft=1.0, response_len=10) == pytest.approx(1.0)
        assert tbot(5.0, 5.0, 1) == 0.0
