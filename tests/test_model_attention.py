"""Tests for attention kernels: naive vs flash equivalence, biases, masks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.attention import (
    HeadBias,
    build_score_mask,
    expand_kv,
    flash_attention,
    naive_attention,
)
from repro.model.config import HeadRole


def _random_qkv(rng, b, h, kvh, sq, n, dh):
    q = rng.normal(size=(b, h, sq, dh)).astype(np.float32)
    k = rng.normal(size=(b, kvh, n, dh)).astype(np.float32)
    v = rng.normal(size=(b, kvh, n, dh)).astype(np.float32)
    return q, k, v


class TestHeadBias:
    def test_none_is_zero(self):
        bias = HeadBias("none", 0.0)
        m = bias.matrix(np.arange(3), np.arange(5))
        assert not m.any()

    def test_prev_token_peaks_at_i_minus_1(self):
        bias = HeadBias("prev_token", 10.0)
        m = bias.matrix(np.array([4]), np.arange(5))
        assert np.argmax(m[0]) == 3

    def test_sink_bonus_at_zero(self):
        bias = HeadBias("sink", 3.0)
        m = bias.matrix(np.array([2]), np.arange(4))
        assert m[0, 0] == 3.0 and m[0, 1:].sum() == 0

    def test_recency_monotone(self):
        bias = HeadBias("recency", 0.01)
        m = bias.matrix(np.array([10]), np.arange(10))
        assert (np.diff(m[0]) > 0).all()  # later keys less penalized

    def test_for_role_mapping(self):
        assert HeadBias.for_role(HeadRole.PREV_TOKEN, 40, 5).kind == "prev_token"
        assert HeadBias.for_role(HeadRole.SINK, 40, 5).kind == "sink"
        assert HeadBias.for_role(HeadRole.INDUCTION, 40, 5, 0.01).kind == "recency"
        assert HeadBias.for_role(HeadRole.INDUCTION, 40, 5, 0.0).kind == "none"
        assert HeadBias.for_role(HeadRole.NOISE, 40, 5).kind == "none"

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            HeadBias("weird", 1.0).matrix(np.arange(2), np.arange(2))


class TestExpandKV:
    def test_identity_for_mha(self):
        x = np.ones((1, 4, 3, 2))
        assert expand_kv(x, 1) is x

    def test_gqa_repeat(self):
        x = np.arange(4).reshape(1, 2, 2, 1).astype(float)
        y = expand_kv(x, 2)
        assert y.shape == (1, 4, 2, 1)
        assert (y[0, 0] == y[0, 1]).all()
        assert (y[0, 2] == y[0, 3]).all()


class TestMask:
    def test_causal(self):
        m = build_score_mask(np.arange(3), np.arange(3), None)
        assert m[0, 0, 0, 1] < -1e8  # future masked
        assert m[0, 0, 2, 0] == 0.0

    def test_eviction_mask(self):
        keep = np.ones((1, 1, 3), dtype=bool)
        keep[0, 0, 1] = False
        m = build_score_mask(np.array([2]), np.arange(3), keep)
        assert m[0, 0, 0, 1] < -1e8
        assert m[0, 0, 0, 0] == 0.0


class TestEquivalence:
    @pytest.mark.parametrize("gqa", [1, 2])
    @pytest.mark.parametrize("tile", [4, 16, 128])
    def test_flash_matches_naive(self, gqa, tile):
        rng = np.random.default_rng(0)
        h, kvh = 4, 4 // gqa
        q, k, v = _random_qkv(rng, 2, h, kvh, 5, 37, 8)
        q_pos = np.arange(32, 37)
        k_pos = np.arange(37)
        biases = [HeadBias("none", 0)] * h
        out_n, _ = naive_attention(q, k, v, q_pos, k_pos, biases, gqa_group=gqa)
        out_f = flash_attention(
            q, k, v, q_pos, k_pos, biases, gqa_group=gqa, tile=tile
        )
        np.testing.assert_allclose(out_n, out_f, rtol=1e-4, atol=1e-5)

    def test_flash_matches_naive_with_biases_and_eviction(self):
        rng = np.random.default_rng(1)
        q, k, v = _random_qkv(rng, 2, 4, 4, 3, 29, 8)
        q_pos = np.arange(26, 29)
        k_pos = np.arange(29)
        biases = [
            HeadBias("prev_token", 20.0),
            HeadBias("recency", 0.01),
            HeadBias("sink", 4.0),
            HeadBias("none", 0.0),
        ]
        keep = rng.random((2, 4, 29)) > 0.3
        keep[:, :, -3:] = True  # keep recent
        out_n, _ = naive_attention(q, k, v, q_pos, k_pos, biases, keep=keep)
        out_f = flash_attention(q, k, v, q_pos, k_pos, biases, keep=keep, tile=7)
        np.testing.assert_allclose(out_n, out_f, rtol=1e-4, atol=1e-5)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(4, 48),
        sq=st.integers(1, 6),
        tile=st.integers(2, 64),
    )
    def test_flash_naive_property(self, seed, n, sq, tile):
        """Property: streaming softmax == materialized softmax."""
        rng = np.random.default_rng(seed)
        q, k, v = _random_qkv(rng, 1, 2, 2, sq, n, 4)
        q_pos = np.arange(n - sq, n)
        k_pos = np.arange(n)
        biases = [HeadBias("none", 0)] * 2
        out_n, _ = naive_attention(q, k, v, q_pos, k_pos, biases)
        out_f = flash_attention(q, k, v, q_pos, k_pos, biases, tile=tile)
        np.testing.assert_allclose(out_n, out_f, rtol=1e-3, atol=1e-4)


class TestProbabilities:
    def test_probs_normalized(self):
        rng = np.random.default_rng(2)
        q, k, v = _random_qkv(rng, 2, 4, 4, 3, 20, 8)
        _, probs = naive_attention(
            q, k, v, np.arange(17, 20), np.arange(20),
            [HeadBias("none", 0)] * 4,
        )
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-5)

    def test_causality_in_probs(self):
        rng = np.random.default_rng(3)
        q, k, v = _random_qkv(rng, 1, 2, 2, 4, 10, 8)
        q_pos = np.arange(4)  # early queries
        _, probs = naive_attention(
            q, k, v, q_pos, np.arange(10), [HeadBias("none", 0)] * 2
        )
        # query at position 0 can only attend key 0
        assert probs[0, 0, 0, 0] == pytest.approx(1.0)
        assert probs[0, 0, 0, 1:].sum() == pytest.approx(0.0, abs=1e-6)

    def test_evicted_get_zero_mass(self):
        rng = np.random.default_rng(4)
        q, k, v = _random_qkv(rng, 1, 2, 2, 1, 10, 8)
        keep = np.ones((1, 2, 10), dtype=bool)
        keep[0, :, 3] = False
        _, probs = naive_attention(
            q, k, v, np.array([9]), np.arange(10),
            [HeadBias("none", 0)] * 2, keep=keep,
        )
        assert probs[0, :, 0, 3].max() < 1e-6
