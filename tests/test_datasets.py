"""Tests for the LongBench-sim / ShareGPT-sim generators and task metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    LongBenchSim,
    ShareGPTSim,
    TASK_GROUPS,
    TASK_METRICS,
    TASK_TYPES,
    edit_similarity,
    exact_match,
    rouge_like,
    score,
    sequence_accuracy,
    token_f1,
)


class TestMetrics:
    def test_exact_match(self):
        assert exact_match([1, 2], [1, 2]) == 1.0
        assert exact_match([1, 2], [2, 1]) == 0.0

    def test_token_f1_partial(self):
        assert token_f1([1, 2, 3], [1, 2, 4]) == pytest.approx(2 / 3)

    def test_token_f1_empty(self):
        assert token_f1([], []) == 1.0
        assert token_f1([], [1]) == 0.0
        assert token_f1([1], []) == 0.0

    def test_sequence_accuracy_positional(self):
        assert sequence_accuracy([1, 9, 3], [1, 2, 3]) == pytest.approx(2 / 3)
        assert sequence_accuracy([1], [1, 2, 3]) == pytest.approx(1 / 3)

    def test_edit_similarity(self):
        assert edit_similarity([1, 2, 3], [1, 2, 3]) == 1.0
        assert edit_similarity([1, 2, 3], [1, 2]) == pytest.approx(2 / 3)
        assert edit_similarity([], []) == 1.0
        assert edit_similarity([1], []) == 0.0

    def test_rouge_like_uses_bigrams(self):
        # same bag, different order: unigram F1 1.0 but bigram overlap < 1
        assert rouge_like([1, 2, 3], [3, 2, 1]) < 1.0
        assert rouge_like([1, 2, 3], [1, 2, 3]) == 1.0

    def test_score_dispatch(self):
        assert score("exact_match", [1], [1]) == 1.0
        with pytest.raises(KeyError):
            score("bleu", [1], [1])

    @settings(max_examples=40, deadline=None)
    @given(
        a=st.lists(st.integers(0, 10), max_size=12),
        b=st.lists(st.integers(0, 10), max_size=12),
    )
    def test_metrics_bounded_and_symmetric_identity(self, a, b):
        """Property: all metrics in [0, 1]; identity scores 1."""
        for name in ("exact_match", "token_f1", "rouge_like",
                     "sequence_accuracy", "edit_similarity"):
            v = score(name, a, b)
            assert 0.0 <= v <= 1.0
            assert score(name, a, a) == 1.0

    @settings(max_examples=30, deadline=None)
    @given(
        a=st.lists(st.integers(0, 5), min_size=1, max_size=10),
        b=st.lists(st.integers(0, 5), min_size=1, max_size=10),
    )
    def test_edit_similarity_symmetric(self, a, b):
        assert edit_similarity(a, b) == pytest.approx(edit_similarity(b, a))


class TestLongBenchSim:
    def test_all_tasks_generated(self):
        samples = LongBenchSim(seed=0, min_context=400, max_context=700).build(2)
        tasks = {s.task for s in samples}
        assert tasks == set(TASK_TYPES)
        assert len(samples) == 2 * len(TASK_TYPES)

    def test_metric_mapping(self):
        for t in TASK_TYPES:
            assert TASK_METRICS[t] in (
                "token_f1", "rouge_like", "exact_match", "edit_similarity"
            )
            assert t in TASK_GROUPS

    def test_deterministic(self):
        a = LongBenchSim(seed=5).build(1)
        b = LongBenchSim(seed=5).build(1)
        assert [s.prompt for s in a] == [s.prompt for s in b]

    def test_prompts_end_with_question(self):
        gen = LongBenchSim(seed=1, min_context=400, max_context=700)
        for s in gen.build(2):
            assert s.prompt[-2] == gen.tok.special.q

    def test_answers_retrievable_from_prompt(self):
        """Every answer span must literally appear in the prompt."""
        gen = LongBenchSim(seed=2, min_context=400, max_context=700)
        for s in gen.build(2):
            prompt = s.prompt
            ans = s.answer
            found = any(
                prompt[i : i + len(ans)] == ans
                for i in range(len(prompt) - len(ans))
            )
            assert found, f"{s.sample_id} answer not embedded"

    def test_unknown_task_rejected(self):
        with pytest.raises(KeyError):
            LongBenchSim().build(1, tasks=("mystery",))

    def test_baseline_solves_suite(self, llama_model):
        """The functional model must handle the suite well at FP16."""
        from repro.analysis.evaluation import evaluate_algorithm, mean_score

        samples = LongBenchSim(
            seed=3, min_context=400, max_context=800
        ).build(3)
        records = evaluate_algorithm(
            llama_model, samples, "fp16", batch_size=9, max_new_tokens=24
        )
        assert mean_score(records) > 0.6


class TestShareGPTSim:
    def test_build_count_and_ids(self):
        reqs = ShareGPTSim(seed=0).build(10)
        assert len(reqs) == 10
        assert len({r.request_id for r in reqs}) == 10

    def test_prompt_length_bounds(self):
        gen = ShareGPTSim(seed=1, min_prompt=96, max_prompt=1024)
        for r in gen.build(50):
            # structural parts can exceed the target slightly
            assert 60 <= r.prompt_len <= 1400

    def test_reference_embedded(self):
        for r in ShareGPTSim(seed=2).build(10):
            ref = r.reference
            assert len(ref) == r.intended_length
            found = any(
                r.prompt[i : i + len(ref)] == ref
                for i in range(len(r.prompt) - len(ref))
            )
            assert found

    def test_final_token_is_key(self):
        gen = ShareGPTSim(seed=3)
        for r in gen.build(5):
            assert r.prompt[-2] == gen.tok.special.q

    def test_arrival_times_poisson(self):
        gen = ShareGPTSim(seed=4)
        arr = gen.arrival_times(2000, requests_per_second=10.0)
        assert (np.diff(arr) > 0).all()
        assert np.mean(np.diff(arr)) == pytest.approx(0.1, rel=0.15)

    def test_arrival_invalid_rate(self):
        with pytest.raises(ValueError):
            ShareGPTSim().arrival_times(10, 0.0)

    def test_distractor_fraction(self):
        reqs = ShareGPTSim(seed=5, distractor_fraction=1.0).build(10)
        assert all(r.meta["has_distractor"] == 1.0 for r in reqs)
        reqs = ShareGPTSim(seed=5, distractor_fraction=0.0).build(10)
        assert all(r.meta["has_distractor"] == 0.0 for r in reqs)
