"""Edge-case coverage for the trace folds (StepMetrics, LatencySummary,
request_latencies, queue_delays), a golden test pinning the rendered
timeline format, and a property test for the Trace per-kind /
per-request indices against the brute-force scan."""

import numpy as np
import pytest

from repro.compression import NoCompression
from repro.engines import LMDEPLOY, ServingCostModel
from repro.hardware import A6000
from repro.model.arch import LLAMA_7B
from repro.serving import (
    EventType,
    LatencySummary,
    ServerInstance,
    ServingRequest,
    StepMetrics,
    Trace,
    TraceEvent,
    queue_delays,
    request_latencies,
)

FP16 = NoCompression().cost_spec()


def instance(**kw):
    cm = ServingCostModel(LLAMA_7B, A6000, LMDEPLOY)
    return ServerInstance(cm, FP16, **kw)


class TestStepMetricsEdges:
    def test_empty_trace(self):
        m = StepMetrics.from_trace(Trace())
        assert m.decode_steps == 0
        assert m.finishes == 0
        assert m.partial_requests == 0
        assert m.mean_queue_delay == 0.0
        assert m.mean_tbot == 0.0
        assert m.p99_tbot == 0.0
        assert m.goodput == 0.0
        assert m.ttft_attainment == 1.0
        assert m.tbot_attainment == 1.0
        assert m.prefix_hit_rate == 0.0
        assert m.render()  # renders without raising

    def test_all_rejected(self):
        inst = instance()
        # prompts beyond the token budget: nothing can ever be admitted
        reqs = [
            ServingRequest(f"x{i}", 0.1 * i, inst.token_budget + 10, 8)
            for i in range(3)
        ]
        trace = Trace()
        res = inst.run(reqs, trace=trace)
        assert len(res.completed) == 0
        m = StepMetrics.from_trace(trace)
        assert m.rejects == 3
        assert m.admits == m.finishes == m.decode_steps == 0
        assert m.partial_requests == 0  # rejected, not partial
        assert m.goodput == 0.0
        assert LatencySummary.from_requests(res.requests) == (
            LatencySummary.degenerate()
        )

    def test_preempt_then_finish(self):
        inst = instance(admission="dynamic")
        reqs = [ServingRequest(f"L{i}", 0.0, 3000, 2000) for i in range(24)]
        trace = Trace()
        res = inst.run(reqs, trace=trace)
        m = StepMetrics.from_trace(trace)
        assert m.preempts > 0
        assert m.finishes == 24
        assert m.partial_requests == 0
        # queue delay must use the last (re)queue epoch, matching the
        # per-request accounting exactly
        want = float(np.mean([r.queue_delay for r in res.completed]))
        assert m.mean_queue_delay == pytest.approx(want)

    def test_single_token_response(self):
        # generated == 1 defines no TBOT interval; folds must not div/0
        inst = instance()
        trace = Trace()
        res = inst.run(
            [ServingRequest("one", 0.0, 64, 1)], trace=trace
        )
        assert res.completed[0].generated == 1
        m = StepMetrics.from_trace(trace)
        assert m.finishes == 1
        assert m.mean_tbot == 0.0
        assert m.p99_tbot == 0.0
        summ = LatencySummary.from_requests(res.completed)
        assert summ.tbot == 0.0
        assert summ.mean > 0.0

    def test_slo_fields_absent(self):
        inst = instance()
        trace = Trace()
        res = inst.run(
            [ServingRequest("r0", 0.0, 64, 8)], trace=trace
        )
        assert "ttft_deadline" not in trace.of_kind(EventType.FINISH)[0].data
        m = StepMetrics.from_trace(trace)
        assert m.ttft_attainment == 1.0
        assert m.tbot_attainment == 1.0
        assert m.goodput > 0.0
        summ = LatencySummary.from_requests(res.completed)
        assert summ.ttft_attainment is None
        assert summ.tbot_attainment is None
        assert "ttft_attainment" not in summ.as_dict()


class TestPartialTraces:
    def finished_trace(self):
        trace = Trace()
        instance(max_batch=8).run(
            [ServingRequest(f"r{i}", 0.2 * i, 128, 16) for i in range(6)],
            trace=trace,
        )
        return trace

    def drop(self, trace, pred):
        cut = Trace()
        for e in trace.events:
            if not pred(e):
                cut.append(e)
        return cut

    def test_truncated_trace_counts_partials(self):
        trace = self.finished_trace()
        # cut everything after r2's finish: every request already
        # admitted but not yet finished is left dangling in the trace
        cutoff = next(
            e.time for e in trace.of_kind(EventType.FINISH)
            if e.request_id == "r2"
        )
        cut = self.drop(trace, lambda e: e.time > cutoff)
        m = StepMetrics.from_trace(cut)
        assert m.finishes == 3
        assert m.partial_requests == m.admits - m.finishes
        assert m.partial_requests >= 1
        assert m.mean_tbot > 0.0

    def test_finish_missing_arrival_skipped(self):
        trace = self.finished_trace()
        bad = Trace()
        for e in trace.events:
            data = dict(e.data)
            if e.kind is EventType.FINISH and e.request_id == "r0":
                data.pop("arrival")
            bad.append(
                TraceEvent(e.time, e.kind, e.request_id, e.instance, data)
            )
        lats = request_latencies(bad)
        assert "r0" not in lats
        assert len(lats) == 5
        m = StepMetrics.from_trace(bad)
        # r0's FINISH still counts as a finish, but its stats are
        # skipped and it is reported as incomplete
        assert m.finishes == 6
        assert m.partial_requests == 1

    def test_admit_missing_epochs_skipped(self):
        trace = self.finished_trace()
        bad = Trace()
        for e in trace.events:
            data = dict(e.data)
            if e.kind is EventType.ADMIT:
                data.pop("queued_at", None)
                data.pop("arrival", None)
            bad.append(
                TraceEvent(e.time, e.kind, e.request_id, e.instance, data)
            )
        assert queue_delays(bad) == {}
        assert StepMetrics.from_trace(bad).mean_queue_delay == 0.0

    def test_decode_step_missing_payload_skipped(self):
        trace = self.finished_trace()
        bad = Trace()
        for e in trace.events:
            data = dict(e.data)
            if e.kind is EventType.DECODE_STEP:
                data.pop("used_tokens", None)
            bad.append(
                TraceEvent(e.time, e.kind, e.request_id, e.instance, data)
            )
        m = StepMetrics.from_trace(bad)
        assert m.decode_steps == 0
        assert m.mean_budget_utilization == 0.0


class TestRenderGolden:
    def test_event_render_golden(self):
        # pinned format: bools as 1/0, ints with thousands separators,
        # floats at four decimals
        e = TraceEvent(
            time=1.5,
            kind=EventType.FINISH,
            request_id="r7",
            instance="inst0",
            data={
                "arrival": 0.25,
                "generated": 12345,
                "ttft_miss": True,
                "tbot_miss": False,
                "note": "x",
            },
        )
        assert e.render() == (
            "    1.5000s  FINISH        [inst0] r7           "
            "arrival=0.2500 generated=12,345 ttft_miss=1 tbot_miss=0 note=x"
        )

    def test_event_render_no_instance(self):
        e = TraceEvent(0.0, EventType.ADMIT, "r0", data={"arrival": 0.0})
        assert e.render() == (
            "    0.0000s  ADMIT         r0           arrival=0.0000"
        )


class TestTraceIndexProperty:
    def test_indexed_equals_scan(self):
        rng = np.random.default_rng(7)
        kinds = list(EventType)
        trace = Trace()
        for i in range(500):
            kind = kinds[int(rng.integers(len(kinds)))]
            rid = f"r{int(rng.integers(12))}" if rng.random() > 0.1 else ""
            trace.record(
                float(i) * 0.01, kind, rid, data=float(rng.random())
            )
        for kind in kinds:
            scan = [e for e in trace.events if e.kind is kind]
            assert trace.of_kind(kind) == scan
        rids = {e.request_id for e in trace.events}
        for rid in rids:
            scan = [e for e in trace.events if e.request_id == rid]
            assert trace.for_request(rid) == scan
        assert trace.for_request("nope") == []
        # no-copy pin: repeat calls return the same cached view object
        # (folds call these many times), invalidated only by new events
        assert trace.of_kind(EventType.FINISH) is trace.of_kind(
            EventType.FINISH
        )
        assert trace.for_request("r3") is trace.for_request("r3")
        trace.record(9.99, EventType.FINISH, "r3")
        assert trace.of_kind(EventType.FINISH)[-1].time == 9.99
        assert trace.for_request("r3")[-1].kind is EventType.FINISH
        # request_ids: distinct, non-empty, first-appearance order
        seen = []
        for e in trace.events:
            if e.request_id and e.request_id not in seen:
                seen.append(e.request_id)
        assert trace.request_ids() == seen
        counts = trace.counts()
        assert sum(counts.values()) == len(trace)
