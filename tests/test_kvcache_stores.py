"""Tests for the systems-level KV-cache stores."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvcache import (
    CapacityError,
    ContiguousStore,
    PagedStore,
    QuantizedPagedStore,
)


class TestContiguous:
    def test_power_of_two_reservation(self):
        s = ContiguousStore(4096)
        s.add_sequence("a", 100)
        assert s.stats().allocated_tokens == 128

    def test_growth_copies(self):
        s = ContiguousStore(4096)
        s.add_sequence("a", 100)
        for _ in range(29):
            s.append("a")
        assert s.stats().copied_tokens == 128  # one realloc at 129 tokens

    def test_eviction_does_not_release(self):
        s = ContiguousStore(4096)
        s.add_sequence("a", 256)
        s.evict("a", list(range(100)))
        st_ = s.stats()
        assert st_.allocated_tokens == 256
        assert st_.live_tokens == 156
        assert st_.internal_fragmentation > 0.3

    def test_free_releases(self):
        s = ContiguousStore(4096)
        s.add_sequence("a", 256)
        s.free("a")
        assert s.stats().allocated_tokens == 0

    def test_capacity_error(self):
        s = ContiguousStore(128)
        with pytest.raises(CapacityError):
            s.add_sequence("a", 200)

    def test_duplicate_sequence(self):
        s = ContiguousStore(1024)
        s.add_sequence("a", 10)
        with pytest.raises(KeyError):
            s.add_sequence("a", 10)

    def test_over_eviction_raises(self):
        s = ContiguousStore(1024)
        s.add_sequence("a", 10)
        with pytest.raises(ValueError):
            s.evict("a", list(range(11)))


class TestPaged:
    def test_block_count(self):
        s = PagedStore(1024, block_size=16)
        s.add_sequence("a", 33)
        assert s.sequence_blocks("a") == 3  # ceil(33/16)

    def test_no_copy_on_growth(self):
        s = PagedStore(4096, block_size=16)
        s.add_sequence("a", 100)
        for _ in range(300):
            s.append("a")
        assert s.stats().copied_tokens == 0

    def test_free_returns_blocks(self):
        s = PagedStore(1024, block_size=16)
        s.add_sequence("a", 512)
        s.free("a")
        assert s.stats().allocated_tokens == 0
        s.add_sequence("b", 1024)  # capacity fully reusable

    def test_holes_create_fragmentation(self):
        s = PagedStore(4096, block_size=16)
        s.add_sequence("a", 512)
        s.evict("a", list(range(0, 512, 2)))  # every other slot
        st_ = s.stats()
        assert st_.live_tokens == 256
        assert st_.allocated_tokens == 512  # no block fully dead
        assert st_.internal_fragmentation == pytest.approx(0.5)

    def test_dead_blocks_need_compaction(self):
        """Fully dead blocks stay allocated until explicit compaction."""
        s = PagedStore(4096, block_size=16)
        s.add_sequence("a", 128)
        s.evict("a", list(range(0, 32)))  # kill first two blocks entirely
        assert s.stats().allocated_tokens == 128
        s.compact_sequence("a")
        assert s.stats().allocated_tokens == 96

    def test_compaction_recovers_memory(self):
        s = PagedStore(4096, block_size=16)
        s.add_sequence("a", 512)
        s.evict("a", list(range(0, 512, 2)))
        copied = s.compact_sequence("a")
        assert copied == 256
        st_ = s.stats()
        assert st_.allocated_tokens == 256
        assert st_.copied_tokens == 256

    def test_failed_admission_rolls_back(self):
        s = PagedStore(64, block_size=16)
        s.add_sequence("a", 48)
        with pytest.raises(CapacityError):
            s.add_sequence("b", 32)
        # the partial allocation of "b" must have been released
        assert s.stats().allocated_tokens == 48
        s.add_sequence("c", 16)

    def test_invalid_eviction_position(self):
        s = PagedStore(256, block_size=16)
        s.add_sequence("a", 10)
        with pytest.raises(ValueError):
            s.evict("a", [10])

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 200),
        block=st.sampled_from([8, 16, 32]),
    )
    def test_live_token_conservation_property(self, seed, block):
        """Property: live tokens == appended - evicted, always."""
        rng = np.random.default_rng(seed)
        s = PagedStore(16384, block_size=block)
        appended = {}
        evicted = {}
        for i in range(5):
            n = int(rng.integers(1, 200))
            s.add_sequence(f"s{i}", n)
            appended[f"s{i}"] = n
            evicted[f"s{i}"] = set()
        for _ in range(30):
            sid = f"s{int(rng.integers(0, 5))}"
            if rng.random() < 0.5:
                s.append(sid)
                appended[sid] += 1
            else:
                alive = [
                    p for p in range(appended[sid]) if p not in evicted[sid]
                ]
                if alive:
                    p = int(rng.choice(alive))
                    s.evict(sid, [p])
                    evicted[sid].add(p)
        total_live = sum(
            appended[k] - len(evicted[k]) for k in appended
        )
        assert s.stats().live_tokens == total_live


class TestPrefixCachedPaged:
    """Content-addressed sharing, LRU retention, and the compression/
    shareability friction in the paged store."""

    IDS = list(range(40))  # 2 full 16-token blocks + 8-token tail

    def _store(self, capacity=4096):
        return PagedStore(capacity, block_size=16, prefix_caching=True)

    def test_identical_prompt_shares_full_blocks(self):
        s = self._store()
        assert s.add_sequence("a", 40, self.IDS) == 0
        assert s.add_sequence("b", 40, self.IDS) == 32
        # b holds the same two leading blocks plus its own tail
        assert s.block_ref_count("b", 0) == 2
        assert s.block_ref_count("b", 1) == 2
        assert s.block_ref_count("b", 2) == 1
        assert s.stats().allocated_tokens == 4 * 16  # not 6
        assert s.prefix_hits == 1 and s.reused_tokens == 32

    def test_free_shared_then_cached(self):
        s = self._store()
        s.add_sequence("a", 40, self.IDS)
        s.add_sequence("b", 40, self.IDS)
        s.free("a")  # shared blocks survive for b; a's tail returns
        assert s.block_ref_count("b", 0) == 1
        assert s.cached_blocks == 0
        assert s.stats().allocated_tokens == 3 * 16
        s.free("b")  # hashed blocks retained in the LRU pool
        assert s.cached_blocks == 2
        st_ = s.stats()
        assert st_.live_tokens == 0
        assert st_.cached_tokens == 32
        # a later identical prompt revives the cached blocks
        assert s.add_sequence("c", 40, self.IDS) == 32
        assert s.cached_blocks == 0

    def test_lru_reclaimed_when_free_list_dry(self):
        s = self._store(capacity=4 * 16)
        s.add_sequence("a", 32, self.IDS[:32])
        s.free("a")
        assert s.cached_blocks == 2
        # unhashable allocation must reclaim the cached pool, not fail
        s.add_sequence("b", 4 * 16)
        assert s.cached_block_evictions == 2
        assert s.cached_blocks == 0

    def test_evict_all_slots_of_shared_block(self):
        """Sparse eviction of a whole shared block privatizes first:
        the peer keeps the pristine, still-cached prefix."""
        s = self._store()
        s.add_sequence("a", 40, self.IDS)
        s.add_sequence("b", 40, self.IDS)
        s.evict("b", list(range(16)))  # every slot of b's first block
        assert s.stats().copied_tokens == 16  # copy-on-write
        assert s.block_ref_count("a", 0) == 1  # b detached
        assert s.sequence_tokens("b") == 24
        assert s.recount_sequence_tokens("b") == 24
        # a is untouched and its blocks still serve prefix hits
        assert s.sequence_tokens("a") == 40
        assert s.cached_prefix(self.IDS) == 32

    def test_mutation_invalidates_hash(self):
        """Quantization write-back (mark_mutated) keeps the slots but
        breaks shareability — the Section 3.1.2 friction."""
        s = self._store()
        s.add_sequence("a", 40, self.IDS)
        assert s.cached_prefix(self.IDS) == 32
        s.mark_mutated("a", [0])
        assert s.cached_prefix(self.IDS) == 0
        assert s.sequence_tokens("a") == 40  # no holes punched
        # the mutated block is released on free; the second block's
        # content is still pristine, so it alone stays cached
        s.free("a")
        assert s.cached_blocks == 1
        assert s.stats().cached_tokens == 16

    def test_append_extends_hash_chain(self):
        s = self._store()
        s.add_sequence("a", 40, self.IDS)
        decode = list(range(100, 108))
        s.append("a", 8, decode)  # closes the 48-token third block
        full = self.IDS + decode
        assert s.cached_prefix(full) == 48
        # unknown content breaks the chain permanently
        s.append("a", 16)
        s.append("a", 16, list(range(200, 216)))
        assert s.cached_prefix(full) == 48

    def test_compact_fully_evicted_sequence(self):
        s = self._store()
        s.add_sequence("a", 32, self.IDS[:32])
        s.evict("a", list(range(32)))
        assert s.sequence_tokens("a") == 0
        assert s.compact_sequence("a") == 0
        assert s.sequence_blocks("a") == 0
        assert s.stats().allocated_tokens == 0
        s.append("a")  # still usable after compaction to zero
        assert s.sequence_tokens("a") == 1

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 300))
    def test_running_counters_match_recount(self, seed):
        """Property: the O(1) running counters in stats() and
        sequence_tokens() always equal the slow recount oracles."""
        rng = np.random.default_rng(seed)
        s = self._store(capacity=2048)
        prompts = [list(range(p, p + 48)) for p in (0, 0, 16, 400)]
        alive = set()
        for step in range(60):
            op = rng.integers(0, 5)
            if op == 0 and len(alive) < 6:
                sid = f"s{step}"
                ids = prompts[int(rng.integers(0, len(prompts)))]
                try:
                    s.add_sequence(sid, len(ids), ids)
                    alive.add(sid)
                except CapacityError:
                    pass
            elif alive:
                sid = sorted(alive)[int(rng.integers(0, len(alive)))]
                if op == 1:
                    s.append(sid, 1, [int(rng.integers(0, 50))])
                elif op == 2:
                    # live <= length, so this is always a valid position
                    n = s.sequence_tokens(sid)
                    if n:
                        s.evict(sid, [int(rng.integers(0, n))])
                elif op == 3:
                    s.compact_sequence(sid)
                else:
                    s.free(sid)
                    alive.discard(sid)
            fast, slow = s.stats(), s.recount_stats()
            assert fast == slow
            for sid in alive:
                assert s.sequence_tokens(sid) == s.recount_sequence_tokens(sid)


class TestQuantizedPaged:
    def test_migration_on_aging(self):
        s = QuantizedPagedStore(
            65536, residual_window=128, group_size=32
        )
        s.add_sequence("a", 512)
        assert s.migrated_tokens == 384  # 512-128 aged out at admission
        assert s.sequence_tokens("a") == 512

    def test_residual_stays_fp16(self):
        s = QuantizedPagedStore(65536, residual_window=128)
        s.add_sequence("a", 200)
        assert s._seqs["a"].fp16_tokens <= 128 + 32  # window + open group

    def test_effective_bytes_blend(self):
        s = QuantizedPagedStore(
            65536, residual_window=128, quant_bytes_per_token=0.25
        )
        s.add_sequence("a", 2048)
        eff = s.effective_bytes_per_token("a")
        assert 0.25 < eff < 0.35  # mostly quantized

    def test_decode_appends_migrate(self):
        s = QuantizedPagedStore(65536, residual_window=128, group_size=32)
        s.add_sequence("a", 128)
        before = s.migrated_tokens
        for _ in range(64):
            s.append("a")
        assert s.migrated_tokens >= before + 32

    def test_eviction_unsupported(self):
        s = QuantizedPagedStore(65536)
        s.add_sequence("a", 64)
        with pytest.raises(NotImplementedError):
            s.evict("a", [0])

    def test_free(self):
        s = QuantizedPagedStore(65536)
        s.add_sequence("a", 512)
        s.free("a")
        assert s.stats().live_tokens == 0

    def test_window_must_cover_group(self):
        with pytest.raises(ValueError):
            QuantizedPagedStore(65536, residual_window=16, group_size=32)
