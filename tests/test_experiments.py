"""Tests for the experiment modules (paper-shape assertions).

The analytic experiments run at full fidelity; the generation-based
ones run on a tiny scale here — their full versions are exercised by
the benchmark harness.
"""

import numpy as np
import pytest

from repro.core.config import ExperimentScale
from repro.experiments import (
    ALGOS,
    ALL_ALGOS,
    ablations,
    fig1_throughput,
    fig2_h800,
    fig3_attention_time,
    table3_tp,
)
from repro.experiments.common import ExperimentResult, comp_spec

TINY = ExperimentScale(
    name="tiny",
    sharegpt_requests=24,
    longbench_per_task=4,
    router_requests=24,
    max_new_tokens=32,
    batch_size=12,
)


class TestFig1:
    def test_engine_series_ordering(self):
        series = fig1_throughput.fp16_decode_by_engine(kv_len=1024)
        for i in range(len(fig1_throughput.BATCHES)):
            vals = {e: s[i] for e, s in series.items()}
            if min(vals.values()) > 0:  # skip OOM cells
                assert vals["lmdeploy"] > vals["trl"]

    def test_stream_speedup_grows_with_kv(self):
        s_small = fig1_throughput.algo_speedup_by_engine(kv_len=512)
        s_big = fig1_throughput.algo_speedup_by_engine(kv_len=4096)
        assert s_big["lmdeploy"][1] > s_small["lmdeploy"][1]

    def test_trl_speedup_exceeds_lmdeploy_speedup(self):
        """Observation 1: TRL exaggerates compression speedups."""
        s = fig1_throughput.algo_speedup_by_engine(kv_len=4096)
        assert s["trl"][1] > s["lmdeploy"][1]

    def test_grid_has_oom_cells(self):
        grid = fig1_throughput.throughput_grid("decode")
        kivi = grid["kivi-4"]
        assert any(v == 0.0 for v in kivi.values())

    def test_quant_ooms_where_fp16_survives(self):
        grid = fig1_throughput.throughput_grid(
            "decode", batches=(6,), lengths=(8192,)
        )
        assert grid["fp16"][(6, 8192)] > 0
        assert grid["kivi-4"][(6, 8192)] == 0.0
        assert grid["stream-512"][(6, 8192)] > 0

    def test_run_renders(self):
        res = fig1_throughput.run()
        assert isinstance(res, ExperimentResult)
        text = res.render()
        assert "Figure 1" in text and "OOM" in text or "0" in text


class TestFig2:
    def test_h800_speedups_smaller_than_a6000(self):
        """Higher bandwidth narrows compression's relative benefit."""
        a = fig1_throughput.throughput_grid(
            "decode", arch="llama-7b", gpu="a6000",
            batches=(8,), lengths=(4096,),
        )
        h = fig1_throughput.throughput_grid(
            "decode", arch="llama-7b", gpu="h800",
            batches=(8,), lengths=(4096,),
        )
        sp_a = a["stream-512"][(8, 4096)] / a["fp16"][(8, 4096)]
        sp_h = h["stream-512"][(8, 4096)] / h["fp16"][(8, 4096)]
        assert sp_h < sp_a

    def test_run(self):
        res = fig2_h800.run()
        assert "70B" in res.name


class TestFig3:
    def test_sparse_decode_attention_flat(self):
        series = fig3_attention_time.attention_time_series(
            "decode", (1024, 4096), batch=8
        )
        h2o = series["h2o-512"]
        fp16 = series["fp16"]
        assert fp16[1] > 2 * fp16[0]
        assert h2o[1] < 1.5 * h2o[0]

    def test_h2o_prefill_attention_dominates(self):
        series = fig3_attention_time.attention_time_series(
            "prefill", (4096,), batch=1
        )
        assert series["h2o-512"][0] > 2 * series["fp16"][0]

    def test_run(self):
        res = fig3_attention_time.run()
        assert len(res.tables) == 2


class TestTable3:
    def test_decode_speedup_shrinks_with_tp(self):
        data = table3_tp.tp_speedups("decode")
        for algo in ALGOS:
            assert data[1][algo] > data[4][algo]

    def test_fp16_throughput_grows_with_tp(self):
        data = table3_tp.tp_speedups("decode")
        assert data[4]["fp16"] > data[2]["fp16"] > data[1]["fp16"]

    def test_h2o_prefill_worst(self):
        data = table3_tp.tp_speedups("prefill")
        for tp in (1, 2, 4):
            assert data[tp]["h2o-512"] == min(
                data[tp][a] for a in ALGOS
            )

    def test_run(self):
        res = table3_tp.run()
        assert "Table 3" in res.name


class TestGenerationExperiments:
    """Tiny-scale smoke tests of the data-driven experiments."""

    @pytest.fixture(scope="class", autouse=True)
    def _fresh_caches(self):
        from repro.experiments.genruns import clear_caches

        clear_caches()
        yield
        clear_caches()

    def test_table5(self):
        from repro.experiments import table5_length_ratio

        res = table5_length_ratio.run(TINY)
        ratios = res.data["ratios"]
        assert set(ratios) >= {"T=0.9", "T=1.1"} | set(ALGOS)
        for vr in ratios.values():
            assert 0 <= vr.shorter_50 <= 100
            assert 0 <= vr.longer_50 <= 100

    def test_fig6_counts_decline_with_threshold(self):
        from repro.experiments import fig6_negative_threshold

        res = fig6_negative_threshold.run(TINY)
        for label, series in res.data["counts"].items():
            assert all(
                a >= b for a, b in zip(series, series[1:])
            ), f"{label} counts not non-increasing"

    def test_fig7_breakdown_totals_match_fig6(self):
        from repro.experiments import (
            fig6_negative_threshold,
            fig7_negative_tasks,
        )

        analysis = fig6_negative_threshold.build_analysis(TINY)
        for algo in ALGOS:
            by_task = analysis.counts_by_task([algo], 0.10)
            assert sum(by_task.values()) == len(
                analysis.negatives([algo], 0.10)
            )

    def test_table7_scores(self):
        from repro.experiments import table7_negative_bench

        res = table7_negative_bench.run(TINY)
        assert "benchmark_size" in res.data

    def test_genrun_caching(self):
        from repro.experiments.genruns import sharegpt_run

        a = sharegpt_run(TINY, "fp16", 1.0)
        b = sharegpt_run(TINY, "fp16", 1.0)
        assert a is b  # memoized


class TestAblations:
    def test_flash_vs_naive(self):
        res = ablations.flash_vs_naive()
        ratios = [float(r[3][:-1]) for r in res.data["rows"]]
        assert all(r > 1.0 for r in ratios)

    def test_paged_block_size_fragmentation(self):
        res = ablations.paged_block_size()
        fragged = [float(r[3][:-1]) for r in res.data["rows"]]
        # bigger blocks fragment more under hole-punching eviction
        assert fragged[-1] >= fragged[0]
