"""Tests for the programmatic Observation checks."""

from repro.analysis.observations import (
    check_observation_1,
    check_observation_2,
    check_observation_3,
    check_observation_5,
    verify_all,
)
from repro.core.config import ExperimentScale

TINY = ExperimentScale(
    name="tiny3",
    sharegpt_requests=16,
    longbench_per_task=3,
    router_requests=16,
    max_new_tokens=32,
    batch_size=8,
)


class TestAnalyticObservations:
    def test_observation_1_holds(self):
        check = check_observation_1()
        assert check.holds
        assert check.evidence["speedup_trl"] > check.evidence["speedup_lmdeploy"]

    def test_observation_2_holds(self):
        check = check_observation_2()
        assert check.holds

    def test_evidence_is_plain_floats(self):
        check = check_observation_1()
        assert all(isinstance(v, float) for v in check.evidence.values())


class TestGenerativeObservations:
    def test_observation_3_structure(self):
        check = check_observation_3(TINY)
        assert check.observation == 3
        assert "flatness_kivi2" in check.evidence

    def test_observation_5_structure(self):
        check = check_observation_5(TINY)
        assert set(check.evidence) >= {"neg_combined"}
        # the ensemble can never have MORE negatives than the best single
        singles = [v for k, v in check.evidence.items() if k != "neg_combined"]
        assert check.evidence["neg_combined"] <= min(singles)
