"""Tests for SLO-aware serving: the slack scheduler, deadline metrics,
queue-delay epoch accounting, submit/receive parity on the online
routing path, the decode-gap idle fix, and the lone-drop REJECT payload."""

import numpy as np
import pytest

from repro.compression import NoCompression
from repro.core.pipeline import CompressedGenerationPipeline
from repro.engines import LMDEPLOY, ServingCostModel
from repro.hardware import A6000
from repro.model.arch import LLAMA_7B
from repro.serving import (
    Cluster,
    EventType,
    FCFSPolicy,
    LatencySummary,
    PriorityPolicy,
    RoutedRequest,
    Router,
    RoutingPolicy,
    ServerInstance,
    ServingRequest,
    ShortestFirstPolicy,
    SlackPolicy,
    StepMetrics,
    Trace,
    make_policy,
    queue_delays,
)

FP16 = NoCompression().cost_spec()


def instance(comp=FP16, engine=LMDEPLOY, **kw):
    cm = ServingCostModel(LLAMA_7B, A6000, engine)
    return ServerInstance(cm, comp, **kw)


def requests(n, prompt=256, resp=32, spacing=1.0, start=0.0, **kw):
    return [
        ServingRequest(f"r{i}", start + i * spacing, prompt, resp, **kw)
        for i in range(n)
    ]


def interference_stream():
    """Long deadline-free salvo at t=0, tight-deadline shorts after."""
    bg = [ServingRequest(f"bg{i}", 0.0, 3072, 64) for i in range(4)]
    ia = [
        ServingRequest(
            f"ia{i}", 0.2 + i * 0.05, 256, 32,
            ttft_deadline=1.0, tbot_target=0.5,
        )
        for i in range(4)
    ]
    return bg + ia


class TestSlackPolicy:
    def test_slack_before_first_token(self):
        p = SlackPolicy()
        req = ServingRequest("a", 2.0, 128, 32, ttft_deadline=1.5)
        assert p.slack(req, 3.0) == pytest.approx(2.0 + 1.5 - 3.0)

    def test_slack_infinite_without_deadline(self):
        p = SlackPolicy()
        assert p.slack(ServingRequest("a", 0.0, 128, 32), 5.0) == float("inf")

    def test_slack_after_first_token_uses_tbot_milestone(self):
        p = SlackPolicy()
        req = ServingRequest("a", 0.0, 128, 11, tbot_target=0.1)
        req.first_token = 2.0
        req.generated = 5
        # milestone: first_token + tbot * (response_len - 1)
        assert p.slack(req, 2.5) == pytest.approx(2.0 + 0.1 * 10 - 2.5)
        # decoding with no TBOT target: infinite slack
        req.tbot_target = None
        req.ttft_deadline = 0.5  # TTFT already behind us — irrelevant now
        assert p.slack(req, 2.5) == float("inf")

    def test_seconds_per_token_discounts_remaining_work(self):
        p = SlackPolicy(seconds_per_token=0.01)
        req = ServingRequest("a", 0.0, 100, 32, ttft_deadline=2.0)
        assert p.slack(req, 0.0) == pytest.approx(2.0 - 0.01 * 100)

    def test_select_most_urgent_first(self):
        w = [
            ServingRequest("free", 0.0, 128, 32),
            ServingRequest("loose", 0.1, 128, 32, ttft_deadline=10.0),
            ServingRequest("tight", 0.2, 128, 32, ttft_deadline=1.0),
        ]
        assert SlackPolicy().select(w, 0.5) == 2

    def test_select_falls_back_to_arrival_order(self):
        w = requests(3, spacing=0.1)
        assert SlackPolicy().select(w, 1.0) == FCFSPolicy().select(w, 1.0)

    def test_victim_most_slack_first(self):
        r = [
            ServingRequest("tight", 0.0, 128, 32, ttft_deadline=1.0),
            ServingRequest("free", 0.0, 128, 32),
        ]
        assert SlackPolicy().victim(r, 0.5) == 1

    def test_victim_falls_back_to_most_recent(self):
        r = requests(3, spacing=0.1)
        assert SlackPolicy().victim(r, 1.0) == len(r) - 1

    def test_make_policy(self):
        assert make_policy("slo").name == "slo"
        assert isinstance(make_policy("slo"), SlackPolicy)


class TestVictimEdgeCases:
    def test_single_element_batches(self):
        lone = [ServingRequest("a", 0.0, 128, 32, priority=3)]
        for policy in (
            FCFSPolicy(), ShortestFirstPolicy(), PriorityPolicy(), SlackPolicy()
        ):
            assert policy.victim(lone, 1.0) == 0

    def test_shortest_with_generated_past_prediction(self):
        # a predictor under-shot: generated > predicted_len makes the
        # remaining work negative, which must still rank below a request
        # with genuine work left
        over = ServingRequest("over", 0.0, 128, 64, predicted_len=10.0)
        over.generated = 30
        fresh = ServingRequest("fresh", 0.0, 128, 64, predicted_len=50.0)
        fresh.generated = 5
        assert ShortestFirstPolicy().victim([over, fresh]) == 1
        assert ShortestFirstPolicy().victim([over]) == 0

    def test_priority_tie_breaks_most_recent(self):
        tied = [
            ServingRequest(f"p{i}", 0.0, 128, 32, priority=2) for i in range(3)
        ]
        # equal priorities: the most recently admitted goes first
        assert PriorityPolicy().victim(tied) == 2
        mixed = tied + [ServingRequest("low", 0.0, 128, 32, priority=1)]
        assert PriorityPolicy().victim(mixed) == 3


class TestSloMatchesFcfsWithoutDeadlines:
    """With no deadlines anywhere, the slo policy must reproduce FCFS
    bit-for-bit in both scheduling roles."""

    def _timestamps(self, res):
        return [
            (r.request_id, r.prefill_start, r.first_token, r.finish)
            for r in res.requests
        ]

    def test_admission_identical(self):
        a = instance(scheduler=make_policy("fcfs")).run(requests(8, spacing=0.05))
        b = instance(scheduler=make_policy("slo")).run(requests(8, spacing=0.05))
        assert self._timestamps(a) == self._timestamps(b)  # no tolerance

    def test_preemption_identical(self):
        overload = lambda: [
            ServingRequest(f"L{i}", 0.0, 3000, 2000) for i in range(24)
        ]
        ta, tb = Trace(), Trace()
        a = instance(admission="dynamic").run(overload(), trace=ta)
        b = instance(admission="dynamic", scheduler=make_policy("slo")).run(
            overload(), trace=tb
        )
        assert len(ta.of_kind(EventType.PREEMPT)) > 0  # scenario preempts
        assert self._timestamps(a) == self._timestamps(b)
        assert [r.preemptions for r in a.requests] == [
            r.preemptions for r in b.requests
        ]


class TestSloScheduling:
    def test_slo_beats_fcfs_under_interference(self):
        def attainment(policy):
            trace = Trace()
            inst = instance(scheduler=make_policy(policy))
            inst.run(interference_stream(), trace=trace)
            return StepMetrics.from_trace(trace).ttft_attainment

        fcfs, slo = attainment("fcfs"), attainment("slo")
        assert slo > fcfs
        assert slo == 1.0  # every deadline met once urgency is honoured

    def test_slo_reorders_admission(self):
        reqs = interference_stream()
        instance(scheduler=make_policy("slo")).run(reqs)
        ia_first = max(r.first_token for r in reqs if r.request_id.startswith("ia"))
        bg_last = max(r.first_token for r in reqs if r.request_id.startswith("bg"))
        assert ia_first < bg_last  # urgent shorts jump the salvo


class TestSloMetrics:
    def _hand_trace(self):
        # two deadlined requests, one meeting and one missing TTFT, plus
        # a deadline-free one — built by hand, no simulator involved
        t = Trace()
        t.record(0.0, EventType.ADMIT, "hit", arrival=0.0, queued_at=0.0,
                 ttft_deadline=1.0)
        t.record(2.0, EventType.FINISH, "hit", arrival=0.0, first_token=0.5,
                 generated=10, ttft_deadline=1.0)
        t.record(0.5, EventType.ADMIT, "miss", arrival=0.0, queued_at=0.0,
                 ttft_deadline=1.0)
        t.record(4.0, EventType.FINISH, "miss", arrival=0.0, first_token=2.0,
                 generated=20, ttft_deadline=1.0, ttft_miss=1)
        t.record(1.0, EventType.ADMIT, "free", arrival=1.0, queued_at=1.0)
        t.record(5.0, EventType.FINISH, "free", arrival=1.0, first_token=1.5,
                 generated=30)
        return t

    def test_attainment_and_goodput_from_trace(self):
        m = StepMetrics.from_trace(self._hand_trace())
        assert m.ttft_attainment == pytest.approx(0.5)
        assert m.tbot_attainment == 1.0  # no TBOT targets anywhere
        # attained tokens: hit (10) + free (30); makespan 5.0 - 0.0
        assert m.goodput == pytest.approx(40 / 5.0)
        assert m.mean_queue_delay == pytest.approx((0.0 + 0.5 + 0.0) / 3)

    def test_attainment_defaults_without_targets(self):
        t = Trace()
        t.record(1.0, EventType.FINISH, "a", arrival=0.0, first_token=0.5,
                 generated=4)
        m = StepMetrics.from_trace(t)
        assert m.ttft_attainment == 1.0 and m.tbot_attainment == 1.0
        assert m.goodput == pytest.approx(4 / 1.0)

    def test_latency_summary_attainment(self):
        reqs = requests(4, resp=8, spacing=0.0, ttft_deadline=1.0)
        for i, r in enumerate(reqs):
            r.prefill_start = r.arrival
            r.first_token = r.arrival + (0.5 if i < 3 else 2.0)  # one miss
            r.generated = 8
            r.finish = r.first_token + 1.0
        s = LatencySummary.from_requests(reqs)
        assert s.ttft_attainment == pytest.approx(0.75)
        assert s.tbot_attainment is None  # no TBOT targets set
        span = max(r.finish for r in reqs) - min(r.arrival for r in reqs)
        assert s.goodput == pytest.approx(3 * 8 / span)
        assert {"ttft_attainment", "goodput"} <= set(s.as_dict())

    def test_request_slo_properties(self):
        r = ServingRequest("a", 0.0, 128, 10, ttft_deadline=1.0, tbot_target=0.2)
        r.first_token, r.finish, r.generated = 0.5, 1.5, 10
        assert r.ttft_met is True
        assert r.tbot_met is True and r.slo_met
        r.finish = 5.0  # tbot now (5.0-0.5)/9 = 0.5 > 0.2
        assert r.tbot_met is False and not r.slo_met
        free = ServingRequest("b", 0.0, 128, 10)
        free.first_token, free.finish, free.generated = 0.5, 1.5, 10
        assert free.ttft_met is None and free.slo_met  # vacuously true

    def test_pipeline_stamps_fleet_wide_slo(self):
        pipe = CompressedGenerationPipeline("fp16")
        res = pipe.simulate_serving(
            requests(4, spacing=0.2), scheduler="slo",
            ttft_slo=5.0, tbot_slo=1.0,
        )
        s = LatencySummary.from_requests(res.completed)
        assert s.ttft_attainment is not None
        assert s.tbot_attainment is not None


class TestQueueDelayEpoch:
    """Queue delay is measured from the last (re)queue, so the trace-side
    mean must equal the request-side mean even with preemptions."""

    def _preempting_run(self):
        inst = instance(admission="dynamic")
        trace = Trace()
        res = inst.run(
            [ServingRequest(f"L{i}", 0.0, 3000, 2000) for i in range(24)],
            trace=trace,
        )
        assert len(trace.of_kind(EventType.PREEMPT)) > 0
        return res, trace

    def test_trace_mean_matches_requests(self):
        res, trace = self._preempting_run()
        m = StepMetrics.from_trace(trace)
        expected = float(np.mean([r.queue_delay for r in res.completed]))
        assert m.mean_queue_delay == pytest.approx(expected, rel=1e-12)

    def test_per_request_delays_match(self):
        res, trace = self._preempting_run()
        delays = queue_delays(trace)
        for r in res.completed:
            assert delays[r.request_id] == pytest.approx(r.queue_delay)

    def test_preempt_payload_carries_requeue_epoch(self):
        _, trace = self._preempting_run()
        for e in trace.of_kind(EventType.PREEMPT):
            assert e.data["requeued_at"] == e.time


class TestSubmitReceiveParity:
    """The online routing path (expect + receive) must admit arrivals
    with exactly the queue delays of the offline submit() path."""

    def _stream(self):
        # arrivals landing mid-decode-block: long responses keep the
        # instance decoding while the next request arrives
        return requests(8, resp=64, spacing=0.02)

    def test_identical_queue_delays(self):
        offline = instance().run(self._stream())
        cluster = Cluster([instance()])
        results, assignment = cluster.run_online(
            self._stream(),
            pick=lambda req, views, now: 0,
            make=lambda req, idx, now: req,
        )
        online = results[0]
        assert set(assignment.values()) == {0}
        for a, b in zip(offline.requests, online.requests):
            assert a.request_id == b.request_id
            assert a.queue_delay == b.queue_delay  # no tolerance
            assert a.finish == b.finish

    def test_routed_arrival_breaks_decode_block(self):
        # one long-running request, then a late arrival routed online:
        # its prefill must start at (or before) the arrival-aligned step
        # boundary, not a full decode_block later
        long = ServingRequest("long", 0.0, 256, 200)
        late = ServingRequest("late", 0.5, 128, 8)
        offline = instance().run([long, late])
        expected = late.prefill_start
        cluster = Cluster([instance()])
        results, _ = cluster.run_online(
            [ServingRequest("long", 0.0, 256, 200),
             ServingRequest("late", 0.5, 128, 8)],
            pick=lambda req, views, now: 0,
            make=lambda req, idx, now: req,
        )
        routed_late = [r for r in results[0].requests if r.request_id == "late"]
        assert routed_late[0].prefill_start == expected


class TestDecodeGap:
    def test_idle_between_bursts_not_a_stall(self):
        inst = instance()
        trace = Trace()
        burst1 = requests(4, resp=16, spacing=0.0)
        burst2 = requests(4, resp=16, spacing=0.0, start=100.0)
        for i, r in enumerate(burst2):
            r.request_id = f"s{i}"
        inst.run(burst1 + burst2, trace=trace)
        m = StepMetrics.from_trace(trace)
        # the ~100s of idle between bursts is not a decode stall: no
        # client was mid-stream, nobody waited for a token
        assert m.max_decode_gap < 50.0

    def test_real_stall_still_counts(self):
        # a single-shot long prefill freezes a running decode: that gap
        # has a client mid-stream and must be reported
        inst = instance()
        trace = Trace()
        long_decode = ServingRequest("decode", 0.0, 256, 200)
        big_prefill = ServingRequest("big", 0.5, 3072, 8)
        inst.run([long_decode, big_prefill], trace=trace)
        stall = inst.cost_model.prefill(1, 3072, FP16).seconds
        m = StepMetrics.from_trace(trace)
        assert m.max_decode_gap >= stall


class TestLoneDropReject:
    def test_reject_payload_records_generated(self):
        inst = instance()
        req = ServingRequest("doomed", 0.0, 256, 32)
        trace = Trace()
        # prefill succeeds, then every decode step prices to infinity
        inst._step_seconds = lambda batch, kv: float("inf")
        res = inst.run([req], trace=trace)
        assert req.rejected and len(res.completed) == 0
        rejects = trace.of_kind(EventType.REJECT)
        assert len(rejects) == 1
        assert rejects[0].data["generated"] == 1  # prefill's token emitted
        assert rejects[0].request_id == "doomed"


class TestSloRouting:
    def _mixed(self, n=12):
        rng = np.random.default_rng(3)
        arr = np.cumsum(rng.exponential(0.05, size=n))
        return [
            RoutedRequest(
                request_id=f"m{i}",
                arrival=float(arr[i]),
                prompt_len=2048 if i % 2 == 0 else 256,
                intended_len=32,
                lengths_by_algo={"fp16": 32},
                ttft_deadline=None if i % 2 == 0 else 0.5,
            )
            for i in range(n)
        ]

    def test_slo_routing_needs_no_predictors(self):
        Router([instance(), instance()], ["fp16"] * 2, RoutingPolicy.SLO)

    def test_slo_routing_serves_online(self):
        router = Router(
            [instance(), instance()], ["fp16"] * 2, RoutingPolicy.SLO
        )
        res = router.serve_online(self._mixed())
        assert res.mode == "online"
        assert len(res.all_e2e()) == 12
        s = res.latency_summary()
        assert s.ttft_attainment is not None

    def test_pick_prefers_slack_for_deadlined(self):
        router = Router(
            [instance(), instance()], ["fp16"] * 2, RoutingPolicy.SLO
        )
        free = RoutedRequest("f", 0.0, 256, 16, {"fp16": 16})
        tight = RoutedRequest("t", 0.0, 256, 16, {"fp16": 16},
                              ttft_deadline=0.5)
        load_tokens = np.array([0.0, 5000.0])
        load_seconds = np.array([0.0, 3.0])
        assert router._pick(free, load_tokens, load_seconds) == 0
        # deadlined: max slack = the instance with the least backlog
        assert router._pick(tight, load_tokens, load_seconds) == 0
        assert router._pick(
            tight, np.array([9000.0, 0.0]), np.array([6.0, 0.0])
        ) == 1
