"""Tests for compression-aware routing and the router edge-case fixes:
empty-fleet summaries, per-run affinity reset, prefix tie-breaking,
the risk gate, and the verify-and-fallback path."""

import numpy as np
import pytest

from repro.compression import NoCompression, create
from repro.engines import LMDEPLOY, ServingCostModel
from repro.hardware import A6000
from repro.model.arch import LLAMA_7B
from repro.serving import (
    EventLoop,
    EventType,
    PrefixIndex,
    RoutedRequest,
    Router,
    RoutingPolicy,
    ServerInstance,
    StepMetrics,
    Trace,
)
from repro.serving.cluster import InstanceView
from repro.serving.telemetry import Telemetry

FP16 = NoCompression().cost_spec()
KIVI = create("kivi-4").cost_spec()
STREAM = create("stream-512").cost_spec()


def instance(comp=FP16, **kw):
    cm = ServingCostModel(LLAMA_7B, A6000, LMDEPLOY)
    return ServerInstance(cm, comp, **kw)


def routed(rid, arrival=0.0, prompt=256, resp=32, algos=("fp16",), **kw):
    return RoutedRequest(
        request_id=rid,
        arrival=arrival,
        prompt_len=prompt,
        intended_len=resp,
        lengths_by_algo={a: resp for a in algos},
        **kw,
    )


def view(index, used=0, waiting=0, queue=0, budget=100_000):
    return InstanceView(
        index=index, name=f"inst{index}", queue_depth=queue, running=0,
        used_tokens=used, waiting_tokens=waiting, token_budget=budget,
    )


# ----------------------------------------------------------------------
# satellite fix 1: empty / all-rejected fleet summaries
# ----------------------------------------------------------------------
class TestEmptyFleetSummaries:
    def _all_rejected(self):
        # prompts larger than the KV budget are rejected at admission
        fleet = [instance(), instance()]
        too_big = max(i.token_budget for i in fleet) + 16
        router = Router(fleet, ["fp16", "fp16"], RoutingPolicy.LOAD_BALANCE)
        return router.serve(
            [routed(f"r{i}", prompt=too_big) for i in range(4)]
        )

    def test_all_rejected_all_e2e_empty(self):
        res = self._all_rejected()
        lats = res.all_e2e()  # pre-fix: np.concatenate([]) ValueError
        assert isinstance(lats, np.ndarray)
        assert lats.size == 0

    def test_all_rejected_mean_e2e_zero(self):
        # matches LatencySummary.degenerate(): zeros, not NaN/raise
        assert self._all_rejected().mean_e2e() == 0.0

    def test_all_rejected_latency_summary_degenerate(self):
        s = self._all_rejected().latency_summary()
        assert s.mean == 0.0
        assert s.goodput == 0.0

    def test_empty_request_list(self):
        router = Router(
            [instance()], ["fp16"], RoutingPolicy.LOAD_BALANCE
        )
        res = router.serve([])
        assert res.all_e2e().size == 0
        assert res.mean_e2e() == 0.0


# ----------------------------------------------------------------------
# satellite fix 2: per-run state reset on repeated serve()
# ----------------------------------------------------------------------
class TestRepeatedServe:
    def test_prefix_home_reset_between_serves(self):
        router = Router(
            [instance(), instance()], ["fp16", "fp16"], RoutingPolicy.PREFIX
        )
        shared = tuple(range(256))
        other = tuple(range(1000, 1256))
        # run 1: the shared head's first occurrence lands least-loaded
        # (instance 0) and becomes its offline "home"
        first = router.serve([routed("a", 0.0, token_ids=shared)])
        assert first.assignment["a"] == 0
        # run 2: a fresh serve must re-derive affinity.  With instance 0
        # already loaded by an earlier arrival, the shared head's first
        # occurrence now belongs on instance 1 — a stale home map from
        # run 1 would pin it back to instance 0.
        second = router.serve(
            [
                routed("warm", 0.0, token_ids=other),
                routed("b", 0.01, token_ids=shared),
            ]
        )
        assert second.assignment["warm"] == 0
        assert second.assignment["b"] == 1

    def test_repeated_serve_is_deterministic(self):
        router = Router(
            [instance(), instance()], ["fp16", "fp16"], RoutingPolicy.PREFIX
        )
        reqs = [
            routed(f"r{i}", 0.1 * i, token_ids=tuple(range(i % 3, 256)))
            for i in range(6)
        ]
        a = router.serve(reqs).assignment
        b = router.serve(reqs).assignment
        assert a == b


# ----------------------------------------------------------------------
# satellite fix 3: online prefix ties break by least live load
# ----------------------------------------------------------------------
class TestPrefixTieBreak:
    def _warm_router(self):
        insts = [
            instance(prefix_cache=PrefixIndex()),
            instance(prefix_cache=PrefixIndex()),
        ]
        ids = tuple(range(256))
        for inst in insts:  # the same system prompt warm everywhere
            inst.prefix_cache.insert(ids)
        router = Router(insts, ["fp16", "fp16"], RoutingPolicy.PREFIX)
        return router, ids

    def test_tie_goes_to_least_loaded(self):
        router, ids = self._warm_router()
        req = routed("t", token_ids=ids)
        drain = np.ones(2)
        # pre-fix: np.argmax on equal cached lengths always picked 0
        busy0 = [view(0, used=8000), view(1, used=0)]
        assert router._pick_online(req, busy0, drain) == 1
        busy1 = [view(0, used=0), view(1, used=8000)]
        assert router._pick_online(req, busy1, drain) == 0

    def test_longer_prefix_still_wins_over_load(self):
        router, ids = self._warm_router()
        router.instances[1].prefix_cache.insert(tuple(range(512)))
        req = routed("t", prompt=512, token_ids=tuple(range(512)))
        views = [view(0, used=0), view(1, used=8000)]
        assert router._pick_online(req, views, np.ones(2)) == 1


# ----------------------------------------------------------------------
# satellite: slo arrivals without deadlines mixed with deadlined ones
# ----------------------------------------------------------------------
class TestSloDeadlineFreeMix:
    def test_mixed_deadline_stream_serves(self):
        router = Router(
            [instance(), instance()], ["fp16", "fp16"], RoutingPolicy.SLO
        )
        reqs = [
            routed(f"r{i}", 0.05 * i,
                   ttft_deadline=None if i % 2 else 1.0)
            for i in range(8)
        ]
        res = router.serve_online(reqs)
        assert len(res.all_e2e()) == 8
        s = res.latency_summary()
        # attainment is computed over the deadlined half only
        assert s.ttft_attainment is not None
        assert 0.0 <= s.ttft_attainment <= 1.0


# ----------------------------------------------------------------------
# the compression policy: risk gate, reroutes, localisation
# ----------------------------------------------------------------------
class TestCompressionPolicy:
    def _router(self, **kw):
        insts = [instance(), instance(KIVI)]
        return Router(
            insts, ["fp16", "kivi-4"], RoutingPolicy.COMPRESSION, **kw
        ), insts

    def test_risk_at_threshold_is_gated(self):
        router, _ = self._router(risk_threshold=0.5)
        req = routed("r", risk=0.5, algos=("fp16", "kivi-4"))
        # empty fleet state: the compressed instance would win on speed
        views = [view(0), view(1)]
        assert router._pick_online(req, views, np.ones(2)) == 0
        assert router._reroutes >= 0

    def test_risk_below_threshold_not_gated(self):
        router, _ = self._router(risk_threshold=0.5)
        safe = routed("s", risk=0.49, algos=("fp16", "kivi-4"))
        views = [view(0, used=9000, waiting=9000), view(1)]
        assert router._pick_online(safe, views, np.ones(2)) == 1

    def test_reroute_recorded_in_trace_and_metrics(self):
        router, _ = self._router(risk_threshold=0.5)
        reqs = [
            routed("risky", 0.0, risk=1.0, algos=("fp16", "kivi-4")),
            routed("safe", 0.05, risk=0.0, algos=("fp16", "kivi-4")),
        ]
        trace = Trace()
        res = router.serve_online(reqs, trace=trace)
        assert res.assignment["risky"] == 0
        m = StepMetrics.from_trace(trace)
        assert m.reroutes == res.reroutes
        assert m.fallbacks == 0
        if res.reroutes:
            rows = trace.rows_of(EventType.REROUTE)
            assert len(rows) == res.reroutes

    def test_gate_denial_emits_reroute_event(self):
        router, insts = self._router(risk_threshold=0.5)
        req = routed("r", risk=1.0, algos=("fp16", "kivi-4"))
        # compressed looks far cheaper; the gate must deny it
        views = [view(0, used=20000, waiting=20000, queue=4), view(1)]
        trace = Trace()
        loop = EventLoop()
        for inst in insts:
            inst.attach(loop, trace=trace)
        idx = router._pick_online(req, views, np.ones(2), now=0.0)
        assert idx == 0
        assert router._reroutes == 1
        rows = trace.rows_of(EventType.REROUTE)
        assert len(rows) == 1

    def test_instance_risks_localised_by_length_predictor(self):
        insts = [instance(), instance(KIVI), instance(STREAM)]
        # predicted contraction only under the sparse algorithm
        def length_fn(req, algo):
            return 8.0 if algo == "stream-512" else float(req.intended_len)
        router = Router(
            insts, ["fp16", "kivi-4", "stream-512"],
            RoutingPolicy.COMPRESSION, length_fn=length_fn,
            risk_threshold=0.5,
        )
        req = routed("r", resp=32, risk=1.0,
                     algos=("fp16", "kivi-4", "stream-512"))
        risks = router._instance_risks(req, 1.0)
        assert risks[0] == 0.0          # lossless never carries risk
        assert risks[1] == 0.0          # predicted full-length: safe here
        assert risks[2] == pytest.approx(1.0)
        # the gate therefore only blocks the sparse instance
        views = [view(0, used=50000, waiting=50000, queue=8),
                 view(1, used=40000, waiting=40000, queue=8), view(2)]
        assert router._pick_online(req, views, np.ones(3)) in (0, 1)

    def test_instance_risks_spread_without_length_signal(self):
        router, _ = self._router()
        req = routed("r", risk=0.75, algos=("fp16", "kivi-4"))
        risks = router._instance_risks(req, 0.75)
        assert risks[0] == 0.0
        assert risks[1] == pytest.approx(0.75)

    def test_offline_compression_policy_serves(self):
        router, _ = self._router(risk_threshold=0.5)
        reqs = [
            routed(f"r{i}", 0.2 * i, risk=float(i % 2),
                   algos=("fp16", "kivi-4"))
            for i in range(6)
        ]
        res = router.serve(reqs)
        assert res.mode == "offline"
        # gated requests (risk 1.0 >= 0.5) never land compressed
        for i in range(6):
            if i % 2:
                assert res.assignment[f"r{i}"] == 0

    def test_risk_fn_overrides_request_field(self):
        router, _ = self._router(
            risk_fn=lambda r: 1.0, risk_threshold=0.5
        )
        req = routed("r", risk=0.0, algos=("fp16", "kivi-4"))
        views = [view(0, used=20000, waiting=20000, queue=4), view(1)]
        assert router._pick_online(req, views, np.ones(2)) == 0

    def test_invalid_configs_raise(self):
        with pytest.raises(ValueError):
            self._router(risk_threshold=-0.1)
        with pytest.raises(ValueError):
            Router([instance()], ["fp16"], RoutingPolicy.LOAD_BALANCE,
                   fallback=True)


# ----------------------------------------------------------------------
# verify-and-fallback
# ----------------------------------------------------------------------
class TestVerifyAndFallback:
    def _fleet(self):
        return [instance(), instance(KIVI)], ["fp16", "kivi-4"]

    def _serve(self, trace=None, telemetry=None, **kw):
        insts, algos = self._fleet()
        router = Router(
            insts, algos, RoutingPolicy.COMPRESSION, fallback=True, **kw
        )
        # all risk on the compressed instance; optimistic mode still
        # routes there when it is the cheaper placement
        reqs = [
            routed("risky", 0.0, risk=1.0, algos=algos),
            routed("safe", 0.1, risk=0.0, algos=algos),
        ]
        return router.serve_online(reqs, trace=trace, telemetry=telemetry)

    def test_failed_verification_reenqueues_on_fp16(self):
        res = self._serve(verify_fn=lambda r: True, risk_threshold=2.0)
        # every compressed decode fails verification -> one fb each
        compressed_served = [
            rid for rid, idx in res.assignment.items()
            if idx == 1 and not rid.endswith("#fb")
        ]
        assert compressed_served  # the optimistic path used kivi
        assert set(res.fallbacks) == set(compressed_served)
        for rid, fb_rid in res.fallbacks.items():
            assert fb_rid == rid + "#fb"
            assert res.assignment[fb_rid] == 0  # lossless target

    def test_fallback_preserves_first_token_accounting(self):
        res = self._serve(verify_fn=lambda r: True, risk_threshold=2.0)
        by_id = {r.request_id: r for r in res.all_requests()}
        merged = {r.request_id: r for r in res.effective_requests()}
        assert not any(rid.endswith("#fb") for rid in merged)
        for rid, fb_rid in res.fallbacks.items():
            orig, fb, eff = by_id[rid], by_id[fb_rid], merged[rid]
            # client-visible: original's arrival + first token, the
            # re-decode's finish + token count
            assert eff.arrival == orig.arrival
            assert eff.first_token == orig.first_token
            assert eff.finish == fb.finish
            assert eff.generated == fb.generated
            assert eff.finish > orig.finish

    def test_fallback_events_and_metrics(self):
        trace = Trace()
        tel = Telemetry()
        res = self._serve(
            verify_fn=lambda r: True, risk_threshold=2.0,
            trace=trace, telemetry=tel,
        )
        n_fb = len(res.fallbacks)
        assert n_fb > 0
        m = StepMetrics.from_trace(trace)
        assert m.fallbacks == n_fb
        rows = trace.rows_of(EventType.FALLBACK)
        assert len(rows) == n_fb
        # telemetry counter aggregates across the fleet
        total = sum(v for _, v in tel.fallbacks.series())
        assert total == n_fb

    def test_default_verification_uses_localised_risk(self):
        insts, algos = self._fleet()
        router = Router(
            insts, algos, RoutingPolicy.COMPRESSION,
            fallback=True, risk_threshold=0.5,
        )
        reqs = [routed("r", 0.0, risk=1.0, algos=algos)]
        res = router.serve_online(reqs)
        if res.assignment["r"] == 1:  # decoded compressed -> re-decoded
            assert res.fallbacks == {"r": "r#fb"}
        else:
            assert res.fallbacks == {}

    def test_passing_verification_no_fallback(self):
        res = self._serve(verify_fn=lambda r: False)
        assert res.fallbacks == {}
        assert all(not r.request_id.endswith("#fb")
                   for r in res.all_requests())

    def test_offline_fallback_rejected(self):
        insts, algos = self._fleet()
        router = Router(
            insts, algos, RoutingPolicy.COMPRESSION, fallback=True
        )
        with pytest.raises(ValueError):
            router.serve([routed("r", algos=algos)])

    def test_effective_summary_counts_originals_only(self):
        res = self._serve(verify_fn=lambda r: True, risk_threshold=2.0)
        assert len(res.effective_requests()) == 2
        s = res.effective_summary()
        assert s.goodput >= 0.0
