"""Trace replay harness: exported runs must reproduce bit-for-bit.

The simulator is deterministic, so a JSONL export with scenario +
workload headers is a complete benchmark: rebuilding the fleet from
the header and re-serving the workload with recorded routing must
produce a ``StepMetrics`` fold identical to the recording on every
field.  These tests pin that for the disaggregated fleet, the static
monolithic baseline, a single-instance run with prefix caching and
chunked prefill, and the degraded paths (workload reconstructed from
events alone, truncated recordings, missing scenario headers).
"""

import numpy as np
import pytest

from repro.experiments import serving_disagg
from repro.serving import (
    StepMetrics,
    Telemetry,
    Trace,
    build_scenario,
    dump_jsonl,
    fleet_scenario,
    instance_config,
    load_jsonl,
    replay_trace,
    workload_specs,
)
from repro.serving.replay import (
    extract_assignment,
    extract_workload,
    logical_id,
    make_requests,
    pinned_pick,
)


def export_fleet(tmp_path, kind="disagg", rate=3.0, n=40):
    """Record one small fleet run and export it with headers."""
    specs = serving_disagg.build_workload(rate, n=n)
    path = tmp_path / f"{kind}.jsonl"
    serving_disagg.run_fleet(kind, rate, specs, export_path=str(path))
    return path


def test_disagg_replay_is_exact(tmp_path):
    trace = load_jsonl(export_fleet(tmp_path, "disagg"))
    report = replay_trace(trace)
    assert report.exact, report.drift
    assert report.events_replayed == report.events_recorded == len(trace)
    assert report.routing == "recorded"
    assert not report.partial and not report.unreplayable
    assert report.events_per_second > 0


def test_static_replay_is_exact(tmp_path):
    trace = load_jsonl(export_fleet(tmp_path, "static-2"))
    report = replay_trace(trace)
    assert report.exact, report.drift
    assert "EXACT" in report.render()


def test_replay_without_workload_header_reconstructs_from_events(tmp_path):
    trace = load_jsonl(export_fleet(tmp_path, "disagg"))
    trace.meta.pop("workload")
    report = replay_trace(trace)
    # every request completed, so the event-only reconstruction is
    # complete and the replay still lands exactly on the recording
    assert report.exact, report.drift


def test_single_instance_scenario_replays_prefix_and_chunking(tmp_path):
    # fp16: prefix sharing is gated off for compressed KV (Section 3.1.2)
    scenario = fleet_scenario(decode=[instance_config(
        algo="fp16", policy="slo", chunk_size=256, prefix_caching=True,
        max_batch=16,
    )])
    rng = np.random.default_rng(3)
    arrivals = np.cumsum(rng.exponential(0.25, size=24))
    shared = tuple(range(50_000, 50_256))
    specs = []
    for i in range(24):
        prompt = int(rng.integers(300, 900))
        ids = (shared + tuple(range(i * 10_000, i * 10_000 + prompt)))[:prompt]
        specs.append(dict(
            request_id=f"r{i}", arrival=float(arrivals[i]),
            prompt_len=prompt, response_len=int(rng.integers(16, 64)),
            ttft_deadline=1.0, tbot_target=0.05, token_ids=list(ids),
        ))
    fleet = build_scenario(scenario)
    trace = Trace()
    fleet.serve(make_requests(specs), trace=trace)
    assert StepMetrics.from_trace(trace).prefix_hits > 0

    path = tmp_path / "single.jsonl"
    dump_jsonl(trace, path, scenario=scenario, workload=specs)
    report = replay_trace(load_jsonl(path))
    assert report.exact, report.drift


def test_replay_requires_scenario():
    trace = Trace()
    with pytest.raises(ValueError, match="scenario"):
        replay_trace(trace)


def test_replay_rejects_bad_routing(tmp_path):
    trace = load_jsonl(export_fleet(tmp_path, "static-2"))
    with pytest.raises(ValueError, match="routing"):
        replay_trace(trace, routing="weird")


def test_live_routing_replays_full_workload(tmp_path):
    trace = load_jsonl(export_fleet(tmp_path, "disagg"))
    report = replay_trace(trace, routing="live")
    assert report.routing == "live"
    # a deterministic fleet re-routed by its own default policy is the
    # recording: the recorded run used that same policy
    assert report.exact, report.drift


def test_replay_publishes_drift_gauge(tmp_path):
    trace = load_jsonl(export_fleet(tmp_path, "static-2"))
    telemetry = Telemetry()
    report = replay_trace(trace, telemetry=telemetry)
    assert report.exact
    assert telemetry.replay_drift.value() == 0.0


def test_partial_recording_is_flagged_and_drifts(tmp_path):
    specs = serving_disagg.build_workload(3.0, n=40)
    path = tmp_path / "partial.jsonl"
    fleet = serving_disagg.build_fleet("static-2")
    trace = Trace(max_events=64)
    fleet.serve(serving_disagg.make_requests(specs), trace=trace)
    assert trace.dropped_events > 0
    dump_jsonl(
        trace, path,
        scenario=serving_disagg.scenario_config("static-2"),
        workload=[dict(
            request_id=r, arrival=a, prompt_len=p, response_len=g,
            ttft_deadline=serving_disagg.TTFT_SLO,
        ) for r, a, p, g in specs],
    )
    report = replay_trace(load_jsonl(path))
    assert report.partial
    # the truncated recording cannot match a full replay
    assert not report.exact
    assert "PARTIAL" in report.render()


def test_scenario_config_matches_build_fleet(tmp_path):
    # the exported header and the experiment's own constructor agree
    scenario = serving_disagg.scenario_config("disagg")
    fleet = build_scenario(scenario)
    assert len(fleet.prefill) == serving_disagg.PREFILL_POOL
    assert len(fleet.decode) == serving_disagg.DECODE_POOL
    assert fleet.autoscaler is not None
    mono = build_scenario(serving_disagg.scenario_config("static-4"))
    assert not mono.prefill and len(mono.decode) == 4


def test_logical_id_strips_stage_suffixes():
    assert logical_id("r07#pf") == "r07"
    assert logical_id("r07#fb") == "r07"
    assert logical_id("r07") == "r07"


def test_instance_config_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown instance config"):
        instance_config(batch_size=4)


def test_make_requests_rejects_unknown_spec_keys():
    with pytest.raises(ValueError):
        make_requests([{"request_id": "r0", "arrival": 0.0,
                        "prompt_len": 8, "response_len": 4,
                        "bogus": 1}])


def test_workload_specs_roundtrip_requests():
    reqs = make_requests([
        dict(request_id="a", arrival=0.5, prompt_len=100, response_len=10,
             ttft_deadline=2.0, token_ids=[1, 2, 3]),
    ])
    spec = workload_specs(reqs)[0]
    assert spec["request_id"] == "a"
    assert spec["ttft_deadline"] == 2.0
    again = make_requests([spec])[0]
    assert again.prompt_len == 100 and again.token_ids == (1, 2, 3)


def test_pinned_pick_restores_recorded_placement(tmp_path):
    trace = load_jsonl(export_fleet(tmp_path, "disagg"))
    assignment = extract_assignment(trace)
    assert assignment  # the recording placed work on named instances
    pick = pinned_pick(assignment)

    class View:
        def __init__(self, name):
            self.name = name
            self.queue_depth = 0
            self.running_count = 0
            self.used_tokens = 0
            self.token_budget = 1
            self.active_batch = 0
            self.max_batch = 1

    (lrid, pool), target = next(
        ((k, v) for k, v in assignment.items() if k[1] == "decode")
    )
    views = [View("dec0"), View("dec1"), View(target)]
    # dedupe in case target is dec0/dec1
    views = list({v.name: v for v in views}.values())
    req = make_requests([dict(request_id=lrid, arrival=0.0,
                              prompt_len=8, response_len=4)])[0]
    assert views[pick(req, views, 0.0)].name == target


def test_extract_workload_flags_synthetic_stages(tmp_path):
    trace = load_jsonl(export_fleet(tmp_path, "disagg"))
    wl = extract_workload(trace)
    assert wl.synthetic.get("#pf", 0) > 0
    assert not wl.partial
    recorded_n = len(trace.meta["workload"])
    # events alone recover every request that completed
    assert len(wl.specs) + len(wl.unreplayable) <= recorded_n
    assert len(wl.specs) > 0
