"""Tests for the runtime KV cache, sampling, and generation plumbing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.cache import LayerCache, SessionCache
from repro.model.generate import generate, left_pad
from repro.model.layers import softmax
from repro.model.sampling import Sampler
from repro.model.tokenizer import SyntheticTokenizer


def _cache(batch=2, kvh=2, dh=4, starts=(0, 0)):
    return LayerCache(batch, kvh, dh, np.array(starts))


class TestLayerCache:
    def test_append_and_views(self):
        c = _cache()
        k = np.ones((2, 2, 3, 4), dtype=np.float32)
        c.append(k, 2 * k)
        assert c.length == 3
        assert c.k.shape == (2, 2, 3, 4)
        assert (c.v == 2).all()

    def test_growth_preserves_content(self):
        c = _cache()
        for i in range(5):
            c.append(
                np.full((2, 2, 40, 4), i, dtype=np.float32),
                np.full((2, 2, 40, 4), i, dtype=np.float32),
            )
        assert c.length == 200
        assert c.capacity >= 200
        assert (c.k[:, :, 0] == 0).all()
        assert (c.k[:, :, -1] == 4).all()

    def test_padding_masked(self):
        c = _cache(starts=(2, 0))
        c.append(np.zeros((2, 2, 4, 4)), np.zeros((2, 2, 4, 4)))
        assert not c.keep[0, 0, 0] and not c.keep[0, 0, 1]
        assert c.keep[0, 0, 2] and c.keep[1, 0, 0]

    def test_evict_and_counts(self):
        c = _cache()
        c.append(np.zeros((2, 2, 10, 4)), np.zeros((2, 2, 10, 4)))
        c.evict(np.array([0]), np.array([1]), np.array([5]))
        counts = c.retained_counts()
        assert counts[0, 1] == 9 and counts[0, 0] == 10 and counts[1, 1] == 10

    def test_overwrite(self):
        c = _cache()
        c.append(np.zeros((2, 2, 8, 4)), np.zeros((2, 2, 8, 4)))
        c.overwrite(slice(2, 4), np.ones((2, 2, 2, 4)), np.ones((2, 2, 2, 4)))
        assert (c.k[:, :, 2:4] == 1).all()
        assert (c.k[:, :, :2] == 0).all()

    def test_session_cache(self):
        s = SessionCache(3, 2, 2, 4, np.zeros(2, dtype=int))
        assert len(s) == 3
        s[0].append(np.zeros((2, 2, 5, 4)), np.zeros((2, 2, 5, 4)))
        assert s[0].length == 5
        assert s.retained_tokens() > 0


class TestLeftPad:
    def test_alignment(self):
        tokens, starts = left_pad([[1, 2], [1, 2, 3, 4]], pad_id=0)
        assert tokens.shape == (2, 4)
        assert list(tokens[0]) == [0, 0, 1, 2]
        assert list(starts) == [2, 0]

    def test_empty_prompt_raises(self):
        with pytest.raises(ValueError):
            left_pad([[1], []], pad_id=0)
        with pytest.raises(ValueError):
            left_pad([], pad_id=0)


class TestSampler:
    def test_greedy_argmax(self):
        s = Sampler(greedy=True)
        logits = np.array([[0.0, 5.0, 1.0], [9.0, 0.0, 0.0]])
        assert list(s.sample(logits)) == [1, 0]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Sampler(temperature=0.0)
        with pytest.raises(ValueError):
            Sampler(top_p=0.0)
        with pytest.raises(ValueError):
            Sampler(top_p=1.5)

    def test_seeded_reproducible(self):
        logits = np.random.default_rng(0).normal(size=(4, 10))
        a = Sampler(seed=3).sample(logits)
        b = Sampler(seed=3).sample(logits)
        np.testing.assert_array_equal(a, b)

    def test_reseed(self):
        logits = np.random.default_rng(0).normal(size=(4, 10))
        s = Sampler(seed=3)
        first = s.sample(logits)
        s.reseed(3)
        np.testing.assert_array_equal(first, s.sample(logits))

    def test_low_temperature_approaches_greedy(self):
        logits = np.array([[0.0, 3.0, 1.0]] * 100)
        s = Sampler(temperature=0.05, seed=0)
        ids = s.sample(logits)
        assert (ids == 1).mean() > 0.99

    def test_top_p_excludes_tail(self):
        # one dominant token (p~0.95), top_p=0.5 must always pick it
        logits = np.array([[5.0, 0.0, 0.0, 0.0]] * 200)
        s = Sampler(temperature=1.0, top_p=0.5, seed=1)
        assert (s.sample(logits) == 0).all()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), temp=st.floats(0.5, 2.0))
    def test_samples_within_vocab(self, seed, temp):
        logits = np.random.default_rng(seed).normal(size=(8, 16))
        ids = Sampler(temperature=temp, seed=seed).sample(logits)
        assert ((ids >= 0) & (ids < 16)).all()

    def test_sampling_distribution_matches_softmax(self):
        logits = np.array([[0.0, 1.0, 2.0]])
        s = Sampler(seed=0)
        draws = np.array([s.sample(logits)[0] for _ in range(4000)])
        freq = np.bincount(draws, minlength=3) / 4000
        expected = softmax(logits)[0]
        np.testing.assert_allclose(freq, expected, atol=0.04)


class TestGenerate:
    def test_finished_sequences_stop_growing(self, llama_model, prompt_factory):
        p1, a1, _ = prompt_factory.make(depth=32, tail=16, ans_len=2)
        p2, a2, _ = prompt_factory.make(depth=32, tail=16, ans_len=6)
        out = generate(
            llama_model, [p1, p2], sampler=Sampler(greedy=True), max_new_tokens=12
        )
        assert out.response_lengths[0] <= out.response_lengths[1]
        assert out.sequences[0] == a1

    def test_hit_max_flag(self, llama_model, prompt_factory):
        p, _, _ = prompt_factory.make(depth=32, tail=16, ans_len=6)
        out = generate(
            llama_model, [p], sampler=Sampler(greedy=True), max_new_tokens=2
        )
        assert out.hit_max[0]
        assert out.response_lengths[0] == 2

    def test_output_excludes_specials(self, llama_model, prompt_factory):
        tok = llama_model.tokenizer
        p, _, _ = prompt_factory.make()
        out = generate(
            llama_model, [p], sampler=Sampler(greedy=True), max_new_tokens=8
        )
        assert tok.special.eos not in out.sequences[0]
        assert tok.special.pad not in out.sequences[0]
