"""Tests for the CLI runner and the cached generation-run layer."""

import numpy as np
import pytest

from repro.cli import EXPERIMENTS, main
from repro.core.config import ExperimentScale
from repro.experiments import genruns

TINY = ExperimentScale(
    name="tiny2",
    sharegpt_requests=12,
    longbench_per_task=2,
    router_requests=12,
    max_new_tokens=24,
    batch_size=6,
)


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table8" in out

    def test_run_analytic(self, capsys, tmp_path):
        assert main(["run", "table3", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert (tmp_path / "table3.txt").exists()

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_registry_complete(self):
        expected = {
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
            "table3", "table4", "table5", "table6", "table7", "table8",
            "chunked", "slo", "prefix", "router", "disagg", "replay",
        }
        assert expected == set(EXPERIMENTS)


class TestGenRuns:
    @pytest.fixture(autouse=True)
    def _fresh(self):
        genruns.clear_caches()
        yield
        genruns.clear_caches()

    def test_requests_cached_per_scale(self):
        a = genruns.sharegpt_requests(TINY)
        b = genruns.sharegpt_requests(TINY)
        assert a is b
        assert len(a) == TINY.sharegpt_requests

    def test_run_outputs_aligned_with_requests(self):
        reqs = genruns.sharegpt_requests(TINY)
        run = genruns.sharegpt_run(TINY, "fp16", 1.0)
        assert len(run.lengths) == len(reqs)
        assert len(run.responses) == len(reqs)
        # all responses are real token lists
        assert all(isinstance(r, list) for r in run.responses)
        assert (run.lengths == [len(r) for r in run.responses]).all()

    def test_distinct_configs_distinct_cache_entries(self):
        a = genruns.sharegpt_run(TINY, "fp16", 1.0)
        b = genruns.sharegpt_run(TINY, "fp16", 0.9)
        assert a is not b

    def test_lengths_by_algo(self):
        lens = genruns.sharegpt_lengths_by_algo(
            TINY, ("fp16", "stream-512")
        )
        assert set(lens) == {"fp16", "stream-512"}
        assert all(v.shape == (TINY.sharegpt_requests,) for v in lens.values())

    def test_longbench_eval_cached(self):
        a = genruns.longbench_eval(TINY, ("fp16",))
        b = genruns.longbench_eval(TINY, ("fp16",))
        assert a is b
        assert len(a["fp16"]) == TINY.longbench_per_task * 6
