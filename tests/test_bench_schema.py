"""Schema check for the machine-readable benchmark artifacts.

Every ``results/BENCH_*.json`` file is a mapping of benchmark sections,
and every section must carry a non-empty ``entries`` list of
``{name, value, unit}`` records (the flat view downstream tooling
consumes).  The check runs over whatever BENCH files are present so a
fresh checkout (before any benchmark run) trivially passes, while a
benchmark that writes a malformed file fails CI.
"""

import json
import pathlib

import pytest

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"
BENCH_FILES = sorted(RESULTS.glob("BENCH_*.json"))


def test_bench_files_exist():
    # the repo ships its benchmark artifacts; an empty glob means the
    # results were deleted without being regenerated
    assert BENCH_FILES, "no results/BENCH_*.json artifacts found"


@pytest.mark.parametrize(
    "path", BENCH_FILES, ids=[p.name for p in BENCH_FILES]
)
def test_bench_schema(path):
    data = json.loads(path.read_text())
    assert isinstance(data, dict) and data, f"{path.name}: empty payload"
    for section, payload in data.items():
        assert isinstance(payload, dict), f"{path.name}:{section}"
        entries = payload.get("entries")
        assert isinstance(entries, list) and entries, (
            f"{path.name}:{section} must carry a non-empty entries list"
        )
        for e in entries:
            assert isinstance(e, dict), f"{path.name}:{section}: {e!r}"
            assert isinstance(e.get("name"), str) and e["name"], e
            assert isinstance(e.get("value"), (int, float)) and not isinstance(
                e["value"], bool
            ), e
            assert isinstance(e.get("unit"), str) and e["unit"], e
            # entry names are rooted at their section slug
            assert e["name"] == section or e["name"].startswith(
                section + "."
            ) or e["name"].startswith(section + "["), e["name"]
