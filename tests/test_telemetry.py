"""Tests for the serving telemetry stack: metrics registry semantics,
the Telemetry sink published into by a live run, span derivation and
cross-checking, JSONL / Chrome exporters, the dashboard renderer, and
the bit-for-bit equivalence of the disabled path."""

import json

import pytest

from repro.compression import NoCompression
from repro.engines import LMDEPLOY, ServingCostModel
from repro.hardware import A6000
from repro.kvcache.paged import PagedStore
from repro.model.arch import LLAMA_7B
from repro.serving import (
    EventLoop,
    EventType,
    NullTelemetry,
    ObjectTrace,
    PrefixIndex,
    ServerInstance,
    ServingRequest,
    StepMetrics,
    Telemetry,
    Trace,
    build_spans,
    dump_jsonl,
    load_jsonl,
    render_dashboard,
    request_latencies,
    to_chrome_trace,
    validate_spans,
    write_chrome_trace,
)
from repro.serving.telemetry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    log_buckets,
    sparkline,
)
from repro.serving.telemetry.core import active

FP16 = NoCompression().cost_spec()


def instance(comp=FP16, **kw):
    cm = ServingCostModel(LLAMA_7B, A6000, LMDEPLOY)
    return ServerInstance(cm, comp, **kw)


def requests(n, prompt=256, resp=32, spacing=0.25, **kw):
    return [
        ServingRequest(f"r{i}", i * spacing, prompt, resp, **kw)
        for i in range(n)
    ]


def shared_prefix_requests(n, prompt=256, resp=16, spacing=0.25):
    shared = tuple(range(50_000, 50_000 + 128))
    return [
        ServingRequest(
            f"r{i}",
            i * spacing,
            prompt,
            resp,
            token_ids=tuple([*shared, *range(i * 10_000, i * 10_000 + prompt)][:prompt]),
        )
        for i in range(n)
    ]


# ----------------------------------------------------------------------
# registry primitives
# ----------------------------------------------------------------------
class TestRegistry:
    def test_log_buckets_span_and_monotonicity(self):
        b = log_buckets(1e-4, 1e3, per_decade=3)
        assert b[0] == pytest.approx(1e-4)
        assert b[-1] == pytest.approx(1e3)
        assert len(b) == 22  # 7 decades * 3 + 1
        assert list(b) == sorted(b)
        assert DEFAULT_BUCKETS == b

    def test_log_buckets_validation(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1e-3, 1.0, per_decade=0)

    def test_counter(self):
        r = MetricsRegistry()
        c = r.counter("x_total", "help", labels=("instance",))
        c.inc(instance="a")
        c.inc(2.5, instance="a")
        c.inc(instance="b")
        assert c.value(instance="a") == pytest.approx(3.5)
        assert c.total() == pytest.approx(4.5)
        with pytest.raises(ValueError):
            c.inc(-1.0, instance="a")
        with pytest.raises(ValueError):
            c.inc(wrong="a")

    def test_gauge(self):
        r = MetricsRegistry()
        g = r.gauge("depth")
        g.set(3)
        g.set(1)
        assert g.value() == 1.0

    def test_histogram_observe_and_quantile(self):
        r = MetricsRegistry()
        h = r.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        counts, total, n = h.aggregate()
        assert counts == [1, 2, 1, 0]  # last is the +Inf overflow
        assert n == 4
        assert total == pytest.approx(6.05)
        assert h.mean() == pytest.approx(6.05 / 4)
        # p50 lands inside the (0.1, 1.0] bucket
        assert 0.1 <= h.quantile(0.5) <= 1.0
        assert h.quantile(0.0) <= h.quantile(0.99)

    def test_histogram_overflow_bucket(self):
        r = MetricsRegistry()
        h = r.histogram("lat", buckets=(1.0,))
        h.observe(100.0)
        counts, _, _ = h.aggregate()
        assert counts == [0, 1]
        assert h.quantile(0.5) == 1.0  # clamped to the top bound

    def test_get_or_create_and_mismatch(self):
        r = MetricsRegistry()
        c1 = r.counter("x_total", labels=("a",))
        assert r.counter("x_total", labels=("a",)) is c1
        with pytest.raises(ValueError):
            r.gauge("x_total", labels=("a",))
        with pytest.raises(ValueError):
            r.counter("x_total", labels=("b",))

    def test_prometheus_exposition(self):
        r = MetricsRegistry(const_labels={"policy": "fcfs"})
        c = r.counter("reqs_total", "requests", labels=("instance",))
        c.inc(3, instance="i0")
        h = r.histogram("lat_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = r.render_prometheus()
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{instance="i0",policy="fcfs"} 3' in text
        assert "# TYPE lat_seconds histogram" in text
        # cumulative buckets: 1 at le=0.1, 2 at le=1, 2 at +Inf
        assert 'lat_seconds_bucket{le="0.1",policy="fcfs"} 1' in text
        assert 'lat_seconds_bucket{le="1",policy="fcfs"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf",policy="fcfs"} 2' in text
        assert 'lat_seconds_count{policy="fcfs"} 2' in text

    def test_snapshot_shape(self):
        r = MetricsRegistry()
        r.counter("c_total").inc()
        r.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = r.snapshot()
        assert snap["c_total"]["type"] == "counter"
        assert snap["c_total"]["series"][0]["value"] == 1.0
        assert snap["h"]["buckets"] == [1.0]
        assert snap["h"]["series"][0]["count"] == 1


# ----------------------------------------------------------------------
# the live sink
# ----------------------------------------------------------------------
class TestTelemetrySink:
    def test_run_publishes_counters_and_histograms(self):
        inst = instance(max_batch=8)
        trace = Trace()
        tel = Telemetry(labels={"policy": "fcfs"})
        result = inst.run(requests(6), trace=trace, telemetry=tel)
        assert len(result.completed) == 6
        # every recorded event also hit the events counter
        assert tel.events_total.total() == len(trace)
        counts = trace.counts()
        by_kind = {}
        for labels, v in tel.events_total.series():
            by_kind[labels["kind"]] = by_kind.get(labels["kind"], 0) + int(v)
        assert by_kind == counts
        # one TTFT observation per finish, one step observation per step
        _, _, n_ttft = tel.ttft.aggregate()
        assert n_ttft == counts["FINISH"]
        _, _, n_steps = tel.step_seconds.aggregate()
        assert n_steps == counts["DECODE_STEP"]
        # sampled series exist for the gauges the dashboard plots
        assert any(m == "queue_depth" for _, m in tel.series)
        assert tel.loop_fired.value() > 0

    def test_prefix_publishing(self):
        inst = instance(max_batch=8, prefix_cache=PrefixIndex(block_size=16))
        tel = Telemetry()
        inst.run(shared_prefix_requests(5), telemetry=tel)
        hits = tel.prefix_lookups.value(outcome="hit")
        misses = tel.prefix_lookups.value(outcome="miss")
        assert hits + misses == 5
        assert hits >= 1
        assert tel.prefix_cached_tokens.total() > 0
        assert tel.prefix_blocks.value() > 0

    def test_standalone_prefix_index_sink(self):
        tel = Telemetry()
        idx = PrefixIndex(block_size=4, telemetry=tel)
        idx.insert(range(8))
        idx.lookup(range(8))
        idx.lookup(range(100, 108))
        assert tel.prefix_lookups.value(outcome="hit") == 1
        assert tel.prefix_lookups.value(outcome="miss") == 1
        assert tel.prefix_blocks.value() == 2

    def test_paged_store_sink(self):
        tel = Telemetry()
        store = PagedStore(1024, block_size=16, telemetry=tel)
        store.add_sequence("s", 64)
        assert tel.kv_live_tokens.value() == 64
        assert tel.kv_allocated_tokens.value() == 64
        store.evict("s", [0, 1])
        assert tel.kv_live_tokens.value() == 62
        store.free("s")
        assert tel.kv_live_tokens.value() == 0

    def test_slo_miss_counter(self):
        inst = instance(max_batch=2)
        tel = Telemetry()
        inst.run(
            requests(6, spacing=0.05, ttft_deadline=1e-4), telemetry=tel
        )
        assert tel.slo_misses.value(instance="", slo="ttft") > 0

    def test_disabled_path_is_bit_for_bit_identical(self):
        reqs = requests(8, spacing=0.1)
        t_plain, t_tel, t_null = Trace(), Trace(), Trace()
        instance(max_batch=4).run(reqs, trace=t_plain)
        instance(max_batch=4).run(reqs, trace=t_tel, telemetry=Telemetry())
        instance(max_batch=4).run(
            reqs, trace=t_null, telemetry=NullTelemetry()
        )
        assert t_plain.events == t_tel.events
        assert t_plain.events == t_null.events

    def test_active_normalizer(self):
        tel = Telemetry()
        assert active(None) is None
        assert active(NullTelemetry()) is None
        assert active(tel) is tel

    def test_batched_decode_fold_matches_per_event(self):
        from repro.serving import TraceEvent

        times = [0.1, 0.2, 0.3]
        kvs = [100, 104, 108]
        secs = [0.01, 0.5, 0.012]  # middle one lands in a later bucket
        used = [500, 516, 532]
        per_event, batched = Telemetry(), Telemetry()
        for j in range(3):
            per_event.on_event(
                TraceEvent(
                    times[j], EventType.DECODE_STEP, "", "i0",
                    {
                        "batch": 4, "kv": kvs[j], "seconds": secs[j],
                        "used_tokens": used[j], "token_budget": 4096,
                        "live": 4,
                    },
                )
            )
        batched.on_decode_steps("i0", times, 4, kvs, secs, used, 4096)
        assert per_event.snapshot() == batched.snapshot()
        assert (
            per_event.series[("i0", "kv_occupancy")]
            == batched.series[("i0", "kv_occupancy")]
        )

    def test_trace_buffer_gauges(self):
        inst = instance(max_batch=4)
        trace = Trace()
        tel = Telemetry()
        inst.run(requests(6), trace=trace, telemetry=tel)
        stats = trace.memory_stats()
        assert tel.trace_events.value(instance="") == stats["events"]
        assert tel.trace_capacity.value(instance="") == stats["capacity"]
        assert (
            tel.trace_buffer_bytes.value(instance="")
            == stats["buffer_bytes"]
        )
        assert tel.trace_dropped.value(instance="") == 0
        snap = tel.snapshot()
        assert "serving_trace_buffer_bytes" in snap
        # ObjectTrace has no memory_stats: gauges simply stay unset
        tel2 = Telemetry()
        instance(max_batch=4).run(
            requests(4), trace=ObjectTrace(), telemetry=tel2
        )
        assert tel2.trace_events._values == {}


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
class TestSpans:
    def run_trace(self, **kw):
        trace = Trace()
        inst = instance(**kw)
        inst.run(requests(6, spacing=0.2), trace=trace)
        return trace

    def test_build_and_validate(self):
        trace = self.run_trace(max_batch=8)
        roots = build_spans(trace)
        validate_spans(trace, roots)
        assert len(roots) == len(request_latencies(trace))
        for root in roots:
            assert root.meta["status"] == "finished"
            names = [c.name for c in root.children]
            assert "prefill" in names
            assert "decode" in names

    def test_root_duration_matches_e2e(self):
        trace = self.run_trace(max_batch=4)
        lats = request_latencies(trace)
        for root in build_spans(trace):
            assert root.duration == pytest.approx(
                lats[root.request_id], abs=1e-9
            )

    def test_preemption_episodes(self):
        # an overloaded dynamic-admission instance preempts; the victim
        # must grow a preempted marker plus a second queue_wait episode
        trace = Trace()
        inst = instance(admission="dynamic")
        inst.run(
            [ServingRequest(f"L{i}", 0.0, 3000, 2000) for i in range(24)],
            trace=trace,
        )
        assert len(trace.of_kind(EventType.PREEMPT)) > 0
        roots = build_spans(trace)
        validate_spans(trace, roots)
        preempted = [
            r
            for r in roots
            if any(c.name == "preempted" for c in r.children)
        ]
        assert preempted
        for root in preempted:
            waits = [c for c in root.children if c.name == "queue_wait"]
            assert len(waits) >= 2
            episodes = {c.meta.get("episode") for c in waits}
            assert len(episodes) >= 2

    def test_partial_trace_flagged(self):
        trace = self.run_trace(max_batch=8)
        cut = Trace()
        for e in trace.events:
            if e.kind is EventType.FINISH and e.request_id == "r5":
                continue
            cut.append(e)
        roots = {r.request_id: r for r in build_spans(cut)}
        assert roots["r5"].meta["status"] == "partial"
        validate_spans(cut, list(roots.values()))

    def test_chunked_prefill_spans(self):
        trace = Trace()
        inst = instance(max_batch=8, chunk_size=128)
        inst.run(requests(4, prompt=512, spacing=0.2), trace=trace)
        assert len(trace.of_kind(EventType.PREFILL_CHUNK)) > 0
        roots = build_spans(trace)
        validate_spans(trace, roots)
        chunky = [
            r
            for r in roots
            if any(c.name == "prefill_chunk" for c in r.children)
        ]
        assert chunky


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestExport:
    def make_trace(self):
        trace = Trace()
        inst = instance(max_batch=8, prefix_cache=PrefixIndex(block_size=16))
        inst.run(
            shared_prefix_requests(6),
            trace=trace,
        )
        return trace

    def test_jsonl_round_trip_is_exact(self, tmp_path):
        trace = self.make_trace()
        path = tmp_path / "trace.jsonl"
        assert dump_jsonl(trace, path) == len(trace)
        loaded = load_jsonl(path)
        assert len(loaded) == len(trace)
        assert loaded.events == trace.events
        # the fold on the reloaded trace is the in-memory fold, exactly
        assert StepMetrics.from_trace(loaded) == StepMetrics.from_trace(trace)
        assert request_latencies(loaded) == request_latencies(trace)

    def test_jsonl_tolerates_corrupt_lines(self, tmp_path):
        trace = self.make_trace()
        path = tmp_path / "trace.jsonl"
        dump_jsonl(trace, path)
        lines = path.read_text().splitlines()
        lines.insert(3, "{not json")
        lines.append(lines[-1][: len(lines[-1]) // 2])  # truncated tail
        lines.append("")
        path.write_text("\n".join(lines) + "\n")
        loaded = load_jsonl(path)
        assert len(loaded) == len(trace)
        m = StepMetrics.from_trace(loaded)
        assert m == StepMetrics.from_trace(trace)

    def test_chrome_trace_valid_and_nested(self, tmp_path):
        trace = self.make_trace()
        doc = to_chrome_trace(trace)
        # valid JSON end to end
        doc2 = json.loads(json.dumps(doc))
        events = doc2["traceEvents"]
        assert events
        phases = {e["ph"] for e in events}
        assert "X" in phases and "M" in phases
        for e in events:
            assert {"name", "ph", "pid", "tid"} <= e.keys()
            if e["ph"] == "X":
                assert e["dur"] >= 0.0
        # per request lane: every child X event nests inside its root
        for tid in {e["tid"] for e in events if e["ph"] == "X"}:
            lane = [e for e in events if e["ph"] == "X" and e["tid"] == tid]
            root = next(e for e in lane if e["name"].startswith("request "))
            lo, hi = root["ts"], root["ts"] + root["dur"]
            for e in lane:
                assert e["ts"] >= lo - 1e-3
                assert e["ts"] + e["dur"] <= hi + 1e-3
        path = tmp_path / "trace.chrome.json"
        assert write_chrome_trace(trace, path) == len(events)
        assert json.loads(path.read_text())["traceEvents"]

    def test_chrome_instant_markers(self):
        trace = Trace()
        inst = instance(admission="dynamic")
        inst.run(
            [ServingRequest(f"L{i}", 0.0, 3000, 2000) for i in range(24)],
            trace=trace,
        )
        doc = to_chrome_trace(trace)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert any(e["name"] == "PREEMPT" for e in instants)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters and all("args" in e for e in counters)


# ----------------------------------------------------------------------
# dashboard
# ----------------------------------------------------------------------
class TestDashboard:
    def test_sparkline_shapes(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0, 1.0]) == "▁▁▁"
        line = sparkline(list(range(100)), width=24)
        assert len(line) == 24
        assert line[0] == "▁" and line[-1] == "█"

    def test_render_sections(self):
        inst = instance(max_batch=8)
        trace = Trace()
        tel = Telemetry(labels={"policy": "fcfs"})
        inst.run(
            requests(6, spacing=0.2, ttft_deadline=5.0),
            trace=trace,
            telemetry=tel,
        )
        text = render_dashboard(tel, trace)
        assert "serving telemetry" in text
        assert "policy=fcfs" in text
        assert "ttft_attainment" in text
        assert "queue_depth" in text
        assert "latency histograms" in text
        assert "ttft" in text

    def test_render_without_trace(self):
        tel = Telemetry()
        text = render_dashboard(tel)
        assert "serving telemetry" in text
        assert "ttft_attainment" not in text


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCli:
    def test_dashboard_command(self, tmp_path, capsys):
        from repro.cli import main

        prom = tmp_path / "metrics.prom"
        assert main([
            "dashboard", "--n", "5", "--prefix-caching",
            "--prom-out", str(prom),
        ]) == 0
        out = capsys.readouterr().out
        assert "serving telemetry" in out
        assert "# TYPE serving_events_total counter" in prom.read_text()

    def test_dashboard_refresh_frames(self, capsys):
        from repro.cli import main

        assert main(["dashboard", "--n", "4", "--refresh", "2.0"]) == 0
        out = capsys.readouterr().out
        assert out.count("serving telemetry") >= 2

    def test_trace_export(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "trace", "--n", "5", "--export", "jsonl", "--export", "chrome",
            "--out", str(tmp_path),
        ]) == 0
        loaded = load_jsonl(tmp_path / "trace.jsonl")
        assert len(loaded) > 0
        assert StepMetrics.from_trace(loaded).finishes == 5
        doc = json.loads((tmp_path / "trace.chrome.json").read_text())
        assert doc["traceEvents"]
