"""Warm-prefill prefix reuse at the model level.

The acceptance bar is *bitwise* equality: a warm FP16 prefill that
adopts cached K/V must produce logits identical to a cold recompute.
The model prefills in absolute-position-aligned blocks
(``prefill_block``) precisely so each full block's K/V is a
deterministic function of its prefix tokens; these tests pin that
contract and the PrefixCache bookkeeping around it.
"""

import numpy as np
import pytest

from repro.compression import create
from repro.model.cache import PrefixCache
from repro.model.config import llama_sim_config
from repro.model.generate import generate, left_pad
from repro.model.transformer import FunctionalTransformer


@pytest.fixture(scope="module")
def model():
    # small blocks so short test prompts span several of them
    return FunctionalTransformer(llama_sim_config(), prefill_block=16)


def _prompt(factory, depth, tail):
    p, _, _ = factory.make(depth=depth, tail=tail, ans_len=3)
    return p


def _cold_prefill(model, prompt):
    tokens, starts = left_pad([prompt], model.tokenizer.special.pad)
    cache = model.new_cache(1, starts)
    logits = model.prefill(tokens, cache, None)
    return logits, cache


class TestBitExactness:
    def test_warm_prefill_logits_bit_equal(self, model, prompt_factory):
        first = _prompt(prompt_factory, depth=40, tail=30)
        extended = first + _prompt(prompt_factory, depth=20, tail=10)

        pc = PrefixCache()
        generate(model, [first], max_new_tokens=2, prefix_cache=pc)

        match = pc.longest_match(extended, align=model.prefill_block)
        assert match is not None
        reused, layer_kv = match
        assert reused == len(first) // model.prefill_block * model.prefill_block

        tokens, starts = left_pad([extended], model.tokenizer.special.pad)
        warm_cache = model.new_cache(1, starts)
        for li, (k, v) in enumerate(layer_kv):
            warm_cache[li].append(k[None], v[None])
        warm = model.prefill(tokens[:, reused:], warm_cache, None)

        cold, cold_cache = _cold_prefill(model, extended)
        assert (warm == cold).all()  # bitwise, not approx
        for li in range(model.config.n_layers):
            assert (warm_cache[li].k == cold_cache[li].k).all()
            assert (warm_cache[li].v == cold_cache[li].v).all()

    def test_warm_generation_matches_cold(self, model, prompt_factory):
        first = _prompt(prompt_factory, depth=35, tail=20)
        extended = first + _prompt(prompt_factory, depth=18, tail=12)

        pc = PrefixCache()
        generate(model, [first], max_new_tokens=2, prefix_cache=pc)
        warm = generate(model, [extended], max_new_tokens=16, prefix_cache=pc)
        cold = generate(model, [extended], max_new_tokens=16)
        assert warm.reused_prefix_tokens > 0
        assert cold.reused_prefix_tokens == 0
        assert warm.sequences == cold.sequences

    def test_identical_prompt_reuses_aligned_prefix(self, model, prompt_factory):
        p = _prompt(prompt_factory, depth=50, tail=30)
        pc = PrefixCache()
        a = generate(model, [p], max_new_tokens=4, prefix_cache=pc)
        b = generate(model, [p], max_new_tokens=4, prefix_cache=pc)
        assert a.reused_prefix_tokens == 0
        # capped below the full prompt, rounded to a block boundary
        assert b.reused_prefix_tokens == (
            (len(p) - 1) // model.prefill_block * model.prefill_block
        )
        assert a.sequences == b.sequences


class TestGating:
    def test_compressed_runs_never_touch_cache(self, model, prompt_factory):
        p = _prompt(prompt_factory, depth=60, tail=30)
        pc = PrefixCache()
        comp = create("kivi-4")
        out = generate(
            model, [p], compressor=comp, max_new_tokens=2, prefix_cache=pc
        )
        assert out.reused_prefix_tokens == 0
        assert len(pc) == 0  # mutated K/V is unshareable (§3.1.2)

    def test_batched_runs_skip_cache(self, model, prompt_factory):
        p1 = _prompt(prompt_factory, depth=40, tail=20)
        p2 = _prompt(prompt_factory, depth=30, tail=25)
        pc = PrefixCache()
        out = generate(model, [p1, p2], max_new_tokens=2, prefix_cache=pc)
        assert out.reused_prefix_tokens == 0
        assert len(pc) == 0

    def test_trailing_partial_block_not_stored(self, model, prompt_factory):
        p = _prompt(prompt_factory, depth=40, tail=20)
        pc = PrefixCache()
        generate(model, [p], max_new_tokens=2, prefix_cache=pc)
        stored = next(iter(pc._entries))
        assert len(stored) == len(p) // model.prefill_block * model.prefill_block


class TestPrefixCacheUnit:
    def _layers(self, length, fill=1.0):
        return [
            (
                np.full((2, length, 4), fill, dtype=np.float32),
                np.full((2, length, 4), -fill, dtype=np.float32),
            )
        ]

    def test_put_copies_arrays(self):
        pc = PrefixCache()
        layers = self._layers(8)
        pc.put(range(8), layers)
        layers[0][0][:] = 99.0  # caller's buffer keeps mutating
        _, cached = pc.longest_match(list(range(8)) + [60])
        assert (cached[0][0] == 1.0).all()

    def test_alignment_rounds_down(self):
        pc = PrefixCache()
        pc.put(range(20), self._layers(20))
        matched, layers = pc.longest_match(list(range(20)) + [60], align=16)
        assert matched == 16
        assert layers[0][0].shape[1] == 16

    def test_reuse_capped_below_prompt_len(self):
        pc = PrefixCache()
        pc.put(range(8), self._layers(8))
        matched, _ = pc.longest_match(list(range(8)), align=1)
        assert matched == 7  # at least one token must be computed

    def test_miss_and_stats(self):
        pc = PrefixCache()
        pc.put(range(8), self._layers(8))
        assert pc.longest_match([50, 51, 52]) is None
        pc.longest_match(list(range(8)) + [60])
        assert pc.misses == 1 and pc.hits == 1 and pc.reused_tokens == 8

    def test_lru_eviction(self):
        pc = PrefixCache(max_entries=2)
        pc.put(range(8), self._layers(8))
        pc.put(range(20, 28), self._layers(8))
        pc.put(range(40, 48), self._layers(8))
        assert len(pc) == 2
        assert pc.longest_match(list(range(9))) is None  # oldest evicted

    def test_longest_of_multiple_matches_wins(self):
        pc = PrefixCache()
        pc.put(range(8), self._layers(8))
        pc.put(range(16), self._layers(16))
        matched, _ = pc.longest_match(list(range(16)) + [60], align=8)
        assert matched == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            PrefixCache(max_entries=0)
