"""Tests of transformer forward internals and architecture presets."""

import numpy as np
import pytest

import repro.model.transformer as transformer_mod
from repro.model.arch import (
    LLAMA_7B,
    LLAMA_70B,
    MISTRAL_7B,
    get_arch,
    list_archs,
)
from repro.model.config import llama_sim_config, mistral_sim_config
from repro.model.generate import generate, left_pad
from repro.model.sampling import Sampler
from repro.model.transformer import FunctionalTransformer


class TestArchPresets:
    def test_lookup(self):
        assert get_arch("llama-7b") is LLAMA_7B
        with pytest.raises(KeyError):
            get_arch("gpt-4")
        assert "mistral-7b" in list_archs()

    def test_param_counts_plausible(self):
        """Presets land near their nominal parameter counts."""
        assert 6.0e9 < LLAMA_7B.param_count() < 7.5e9
        assert 65e9 < LLAMA_70B.param_count() < 75e9
        assert 6.5e9 < MISTRAL_7B.param_count() < 8.0e9

    def test_gqa_dimensions(self):
        assert LLAMA_70B.gqa_group == 8
        assert MISTRAL_7B.kv_dim == 8 * 128
        assert LLAMA_7B.gqa_group == 1

    def test_kv_bytes(self):
        # llama-7b: 2 * 32 layers * 4096 * 2 bytes = 1 MiB per token
        assert LLAMA_7B.kv_bytes_per_token() == 2 * 32 * 4096 * 2
        assert MISTRAL_7B.kv_bytes_per_token() == LLAMA_7B.kv_bytes_per_token() // 4


class TestChunkedPrefill:
    def test_chunked_matches_unchunked(self, prompt_factory, monkeypatch):
        """Query chunking must not change prefill outputs."""
        p, _, _ = prompt_factory.make(depth=200, tail=100, ans_len=3)
        cfg = llama_sim_config()

        def run(chunk_elements):
            monkeypatch.setattr(
                transformer_mod, "_CHUNK_ELEMENTS", chunk_elements
            )
            model = FunctionalTransformer(cfg)
            tokens, starts = left_pad([p], model.tokenizer.special.pad)
            cache = model.new_cache(1, starts)
            return model.prefill(tokens, cache, None)

        big = run(10**9)     # single chunk
        small = run(50_000)  # many chunks
        np.testing.assert_allclose(big, small, rtol=1e-4, atol=1e-4)

    def test_flash_impl_matches_naive_generation(self, prompt_factory):
        cfg = llama_sim_config()
        naive = FunctionalTransformer(cfg, attention_impl="naive")
        flash = FunctionalTransformer(cfg, attention_impl="flash")
        p, a, _ = prompt_factory.make(depth=100, tail=60, ans_len=3)
        out_n = generate(naive, [p], sampler=Sampler(greedy=True), max_new_tokens=6)
        out_f = generate(flash, [p], sampler=Sampler(greedy=True), max_new_tokens=6)
        assert out_n.sequences == out_f.sequences == [a]


class TestBatchInvariance:
    def test_batched_matches_single(self, llama_model, prompt_factory):
        """Left-padded batching must not change greedy outputs."""
        prompts = []
        for n in (60, 140, 220):  # deliberately unequal lengths
            p, _, _ = prompt_factory.make(depth=n, tail=40, ans_len=3)
            prompts.append(p)
        batched = generate(
            llama_model, prompts, sampler=Sampler(greedy=True), max_new_tokens=6
        )
        singles = [
            generate(
                llama_model, [p], sampler=Sampler(greedy=True), max_new_tokens=6
            ).sequences[0]
            for p in prompts
        ]
        assert batched.sequences == singles

    def test_batched_compression_matches_single(self, llama_model, prompt_factory):
        from repro.compression import create

        prompts = []
        for n in (80, 200):
            p, _, _ = prompt_factory.make(depth=n, tail=500, ans_len=3)
            prompts.append(p)
        comp = create("stream-256")
        batched = generate(
            llama_model, prompts, compressor=comp,
            sampler=Sampler(greedy=True), max_new_tokens=6,
        )
        singles = [
            generate(
                llama_model, [p], compressor=create("stream-256"),
                sampler=Sampler(greedy=True), max_new_tokens=6,
            ).sequences[0]
            for p in prompts
        ]
        assert batched.sequences == singles


class TestGQAForward:
    def test_gqa_cache_has_fewer_heads(self, mistral_model, prompt_factory):
        p, _, _ = prompt_factory.make(depth=60, tail=30)
        tokens, starts = left_pad([p], mistral_model.tokenizer.special.pad)
        cache = mistral_model.new_cache(1, starts)
        mistral_model.prefill(tokens, cache, None)
        cfg = mistral_model.config
        assert cache[0].k.shape[1] == cfg.n_kv_heads == cfg.n_heads // 2
