"""Tests of the constructed circuit: builder, config, retrieval behaviour."""

import numpy as np
import pytest

from repro.model.builder import build_weights, code_matrix, token_magnitudes
from repro.model.config import (
    FunctionalModelConfig,
    HeadRole,
    llama_sim_config,
    mistral_sim_config,
)
from repro.model.generate import generate
from repro.model.sampling import Sampler
from repro.model.transformer import FunctionalTransformer


class TestConfig:
    def test_subspaces_tile_d_model(self):
        cfg = llama_sim_config()
        spans = [cfg.subspace(n) for n in ("cur", "prev", "out", "scratch")]
        assert spans[0][0] == 0
        for (a, b), (c, d) in zip(spans, spans[1:]):
            assert b == c
        assert spans[-1][1] == cfg.d_model

    def test_unknown_subspace(self):
        with pytest.raises(KeyError):
            llama_sim_config().subspace("nope")

    def test_head_roles_layout(self):
        roles = llama_sim_config().head_roles()
        assert roles[0][0] == HeadRole.PREV_TOKEN
        assert roles[-1][1] == HeadRole.INDUCTION
        assert roles[-1][0] == HeadRole.SALIENCE
        assert roles[-1][2] == HeadRole.SINK

    def test_gqa_divisibility(self):
        cfg = FunctionalModelConfig(n_heads=4, gqa_group=3)
        with pytest.raises(ValueError):
            _ = cfg.n_kv_heads

    def test_mistral_is_gqa(self):
        cfg = mistral_sim_config()
        assert cfg.gqa_group == 2
        assert cfg.n_kv_heads == cfg.n_heads // 2


class TestBuilder:
    def test_code_matrix_orthonormal(self):
        cfg = llama_sim_config()
        c = code_matrix(cfg)
        np.testing.assert_allclose(c @ c.T, np.eye(cfg.vocab_size), atol=1e-10)

    def test_code_matrix_dense(self):
        """No entry dominates: codes are spread, not one-hot."""
        c = code_matrix(llama_sim_config())
        assert np.abs(c).max() < 0.9

    def test_magnitudes_clipped_and_specials_unit(self):
        cfg = llama_sim_config()
        m = token_magnitudes(cfg)
        lo, hi = cfg.magnitude_clip
        assert (m >= lo).all() and (m <= hi).all()
        assert (m[:8] == 1.0).all()

    def test_weights_float32(self):
        w = build_weights(llama_sim_config())
        assert w.embedding.dtype == np.float32
        assert w.layers[0].attn.w_q.dtype == np.float32
        assert w.layers[0].mlp.w_down.dtype == np.float32

    def test_deterministic_given_seed(self):
        a = build_weights(llama_sim_config(seed=7))
        b = build_weights(llama_sim_config(seed=7))
        np.testing.assert_array_equal(a.embedding, b.embedding)

    def test_seed_changes_weights(self):
        a = build_weights(llama_sim_config(seed=7))
        b = build_weights(llama_sim_config(seed=8))
        assert not np.array_equal(a.embedding, b.embedding)

    def test_bos_pad_never_emitted(self):
        w = build_weights(llama_sim_config())
        assert w.logit_bias[0] < -1e8  # pad
        assert w.logit_bias[1] < -1e8  # bos

    def test_head_dim_must_match_vocab(self):
        with pytest.raises(ValueError):
            build_weights(FunctionalModelConfig(vocab_size=64, head_dim=32))


class TestRetrieval:
    def test_greedy_retrieval_exact(self, llama_model, prompt_factory):
        prompts, answers = [], []
        for _ in range(6):
            p, a, _ = prompt_factory.make(depth=128, tail=64, ans_len=3)
            prompts.append(p)
            answers.append(a)
        out = generate(
            llama_model, prompts, sampler=Sampler(greedy=True), max_new_tokens=8
        )
        assert sum(s == a for s, a in zip(out.sequences, answers)) >= 5

    def test_eos_terminates(self, llama_model, prompt_factory):
        p, a, _ = prompt_factory.make(depth=64, tail=32, ans_len=3)
        out = generate(
            llama_model, [p], sampler=Sampler(greedy=True), max_new_tokens=32
        )
        assert out.response_lengths[0] == 3
        assert not out.hit_max[0]

    def test_gqa_model_also_retrieves(self, mistral_model, prompt_factory):
        prompts, answers = [], []
        for _ in range(4):
            p, a, _ = prompt_factory.make(depth=96, tail=48, ans_len=3)
            prompts.append(p)
            answers.append(a)
        out = generate(
            mistral_model, prompts, sampler=Sampler(greedy=True), max_new_tokens=8
        )
        assert sum(s == a for s, a in zip(out.sequences, answers)) >= 3

    def test_recency_prefers_latest_record(self, llama_model, prompt_factory):
        """With a same-key decoy earlier, the later record must win."""
        p, answer, decoy = prompt_factory.make(
            depth=64, tail=64, ans_len=3, decoy_gap=600
        )
        out = generate(
            llama_model, [p], sampler=Sampler(greedy=True), max_new_tokens=8
        )
        assert out.sequences[0] == answer
        assert out.sequences[0] != decoy

    def test_deeper_model_still_works(self, prompt_factory):
        model = FunctionalTransformer(llama_sim_config(n_layers=3))
        p, a, _ = prompt_factory.make(depth=64, tail=32, ans_len=3)
        out = generate(
            model, [p], sampler=Sampler(greedy=True), max_new_tokens=8
        )
        assert out.sequences[0] == a
