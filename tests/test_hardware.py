"""Tests for GPU specs, roofline timing, memory model and interconnect."""

import numpy as np
import pytest

from repro.hardware import (
    A6000,
    H800,
    A100_80G,
    AccessPattern,
    InterconnectSpec,
    MemoryModel,
    NVLINK_A6000,
    NVLINK_H800,
    OpCost,
    OutOfMemoryError,
    PCIE_GEN4,
    Roofline,
    allreduce_time,
    transfer_time,
    get_gpu,
    list_gpus,
)
from repro.hardware.memory import KVMemorySpec
from repro.hardware.roofline import BANDWIDTH_EFFICIENCY
from repro.model.arch import LLAMA_7B, LLAMA_13B, LLAMA_70B


class TestSpecs:
    def test_registry_lookup(self):
        assert get_gpu("a6000") is A6000
        assert get_gpu("H800") is H800

    def test_unknown_gpu_raises(self):
        with pytest.raises(KeyError):
            get_gpu("tpu-v5")

    def test_list_gpus_contains_all(self):
        names = list_gpus()
        assert {"a6000", "h800", "a100-80g"} <= set(names)

    def test_h800_faster_than_a6000(self):
        assert H800.mem_bandwidth > A6000.mem_bandwidth
        assert H800.tensor_flops > A6000.tensor_flops

    def test_memory_capacity(self):
        assert A6000.memory_gb == pytest.approx(48.0)
        assert H800.memory_gb == pytest.approx(80.0)

    def test_ridge_intensity_positive(self):
        for gpu in (A6000, H800, A100_80G):
            assert gpu.ridge_intensity() > 0


class TestRoofline:
    def test_memory_bound_op(self):
        r = Roofline(A6000)
        op = OpCost("x", flops=1e6, bytes=1e9)
        t = r.time_op(op)
        assert t.bound == "memory"
        assert t.seconds >= t.memory_seconds

    def test_compute_bound_op(self):
        r = Roofline(A6000)
        op = OpCost("x", flops=1e13, bytes=1e6)
        assert r.time_op(op).bound == "compute"

    def test_overhead_bound_op(self):
        r = Roofline(A6000)
        op = OpCost("x", flops=0, bytes=0, launches=100)
        t = r.time_op(op)
        assert t.bound == "overhead"
        assert t.seconds == pytest.approx(100 * A6000.kernel_launch_overhead)

    def test_access_pattern_ordering(self):
        """Worse access patterns must never be faster."""
        r = Roofline(A6000)
        base = OpCost("x", bytes=1e9, pattern=AccessPattern.STREAM)
        times = {
            p: r.time_op(OpCost("x", bytes=1e9, pattern=p)).seconds
            for p in AccessPattern
        }
        assert times[AccessPattern.SPARSE_GATHER] > times[AccessPattern.STREAM]
        assert times[AccessPattern.GROUP_QUANT] > times[AccessPattern.PAGED_KV]

    def test_bandwidth_efficiencies_within_unit(self):
        for eff in BANDWIDTH_EFFICIENCY.values():
            assert 0 < eff <= 1

    def test_total_and_breakdown_consistent(self):
        r = Roofline(A6000)
        ops = [
            OpCost("a", flops=1e9),
            OpCost("b", bytes=1e8),
            OpCost("a", bytes=5e7),
        ]
        total = r.total_seconds(ops)
        breakdown = r.breakdown(ops)
        assert set(breakdown) == {"a", "b"}
        assert sum(breakdown.values()) == pytest.approx(total)

    def test_scaled_op(self):
        op = OpCost("x", flops=10.0, bytes=20.0, launches=3)
        s = op.scaled(2.0)
        assert s.flops == 20.0 and s.bytes == 40.0 and s.launches == 3

    def test_compute_efficiency_override(self):
        fast = Roofline(A6000, compute_efficiency={"tensor": 0.9})
        slow = Roofline(A6000, compute_efficiency={"tensor": 0.3})
        op = OpCost("x", flops=1e13)
        assert fast.time_op(op).seconds < slow.time_op(op).seconds


class TestMemoryModel:
    def test_weights_fit_7b(self):
        mm = MemoryModel(LLAMA_7B, A6000)
        bd = mm.breakdown(KVMemorySpec.fp16(LLAMA_7B), batch=1, kv_len=128)
        assert bd.fits
        assert 12e9 < bd.weights < 15e9  # ~13.5 GB of FP16 weights

    def test_70b_needs_tp(self):
        mm1 = MemoryModel(LLAMA_70B, A6000, tp=1)
        assert not mm1.breakdown(
            KVMemorySpec.fp16(LLAMA_70B), 1, 128
        ).fits
        mm4 = MemoryModel(LLAMA_70B, H800, tp=4)
        assert mm4.breakdown(KVMemorySpec.fp16(LLAMA_70B), 1, 128).fits

    def test_kv_grows_with_batch_and_len(self):
        mm = MemoryModel(LLAMA_7B, A6000)
        spec = KVMemorySpec.fp16(LLAMA_7B)
        small = mm.breakdown(spec, 1, 512).kv_quantized
        big = mm.breakdown(spec, 4, 2048).kv_quantized
        assert big == pytest.approx(small * 16)

    def test_quant_transient_exceeds_fp16_peak(self):
        """Quantize-after-prefill peaks above the FP16 baseline."""
        mm = MemoryModel(LLAMA_7B, A6000)
        fp16 = KVMemorySpec.fp16(LLAMA_7B)
        quant = KVMemorySpec(
            bytes_per_token_per_layer=fp16.bytes_per_token_per_layer * 0.31,
            residual_fp16_tokens=128,
            transient_fp16_copy=True,
        )
        b, n = 8, 4096
        assert (
            mm.breakdown(quant, b, n).peak_bytes
            > mm.breakdown(fp16, b, n).peak_bytes
        )

    def test_quant_steady_state_below_fp16(self):
        mm = MemoryModel(LLAMA_7B, A6000)
        fp16 = KVMemorySpec.fp16(LLAMA_7B)
        quant = KVMemorySpec(
            bytes_per_token_per_layer=fp16.bytes_per_token_per_layer * 0.31,
            residual_fp16_tokens=128,
            transient_fp16_copy=True,
        )
        assert (
            mm.breakdown(quant, 4, 4096).steady_bytes
            < mm.breakdown(fp16, 4, 4096).steady_bytes
        )

    def test_sparse_budget_caps_kv(self):
        mm = MemoryModel(LLAMA_7B, A6000)
        capped = KVMemorySpec(
            bytes_per_token_per_layer=LLAMA_7B.kv_bytes_per_token_per_layer(),
            max_tokens=512,
        )
        a = mm.breakdown(capped, 4, 1024).kv_quantized
        b = mm.breakdown(capped, 4, 8192).kv_quantized
        assert a == b  # capped at the budget

    def test_check_raises_oom(self):
        mm = MemoryModel(LLAMA_13B, A6000)
        with pytest.raises(OutOfMemoryError):
            mm.check(KVMemorySpec.fp16(LLAMA_13B), batch=64, kv_len=8192)

    def test_max_batch_monotone_in_len(self):
        mm = MemoryModel(LLAMA_7B, A6000)
        spec = KVMemorySpec.fp16(LLAMA_7B)
        assert mm.max_batch(spec, 512) >= mm.max_batch(spec, 4096)

    def test_max_batch_boundary(self):
        mm = MemoryModel(LLAMA_7B, A6000)
        spec = KVMemorySpec.fp16(LLAMA_7B)
        b = mm.max_batch(spec, 2048)
        assert mm.breakdown(spec, b, 2048).fits
        assert not mm.breakdown(spec, b + 1, 2048).fits

    def test_invalid_args(self):
        mm = MemoryModel(LLAMA_7B, A6000)
        with pytest.raises(ValueError):
            mm.breakdown(KVMemorySpec.fp16(LLAMA_7B), 0, 128)
        with pytest.raises(ValueError):
            MemoryModel(LLAMA_7B, A6000, tp=0)

    def test_breakdown_dict_keys(self):
        mm = MemoryModel(LLAMA_7B, A6000)
        d = mm.breakdown(KVMemorySpec.fp16(LLAMA_7B), 1, 128).as_dict()
        assert d["capacity_gib"] == pytest.approx(48.0)
        assert d["peak_gib"] > 0


class TestInterconnect:
    def test_single_gpu_free(self):
        assert allreduce_time(NVLINK_A6000, 1e6, 1) == 0.0

    def test_latency_floor(self):
        t = allreduce_time(NVLINK_A6000, 0, 4)
        assert t == pytest.approx(NVLINK_A6000.latency)

    def test_scales_with_bytes(self):
        t1 = allreduce_time(NVLINK_A6000, 1e6, 4)
        t2 = allreduce_time(NVLINK_A6000, 2e6, 4)
        assert t2 > t1

    def test_ring_factor(self):
        """2(g-1)/g volume factor: group of 2 moves half of group of inf."""
        spec = NVLINK_A6000
        b = 1e9
        t2 = allreduce_time(spec, b, 2) - spec.latency
        t8 = allreduce_time(spec, b, 8) - spec.latency
        assert t8 / t2 == pytest.approx((2 * 7 / 8) / (2 * 1 / 2))

    def test_h800_faster(self):
        assert allreduce_time(NVLINK_H800, 1e8, 4) < allreduce_time(
            NVLINK_A6000, 1e8, 4
        )

    def test_negative_bytes_raises(self):
        with pytest.raises(ValueError):
            allreduce_time(NVLINK_A6000, -1, 2)

    def test_group_size_validated(self):
        with pytest.raises(ValueError):
            allreduce_time(NVLINK_A6000, 1e6, 0)
        with pytest.raises(ValueError):
            allreduce_time(NVLINK_A6000, 1e6, -2)

    def test_bad_bandwidth_rejected(self):
        broken = InterconnectSpec(name="broken", link_bandwidth=0.0)
        with pytest.raises(ValueError):
            allreduce_time(broken, 1e6, 4)
        with pytest.raises(ValueError):
            transfer_time(broken, 1e6)


class TestInterconnectSpecTable:
    """Pin the published link parameters the serving models price with."""

    def test_spec_values(self):
        assert NVLINK_A6000.link_bandwidth == pytest.approx(56.25e9)
        assert NVLINK_A6000.latency == pytest.approx(12e-6)
        assert NVLINK_H800.link_bandwidth == pytest.approx(200e9)
        assert NVLINK_H800.latency == pytest.approx(9e-6)
        assert PCIE_GEN4.link_bandwidth == pytest.approx(24e9)
        assert PCIE_GEN4.latency == pytest.approx(25e-6)

    def test_transfer_time_arithmetic(self):
        nbytes = 1e9
        for spec in (NVLINK_A6000, NVLINK_H800, PCIE_GEN4):
            assert transfer_time(spec, nbytes) == pytest.approx(
                spec.latency + nbytes / spec.link_bandwidth
            )

    def test_zero_bytes_pays_latency(self):
        assert transfer_time(PCIE_GEN4, 0) == pytest.approx(PCIE_GEN4.latency)

    def test_link_ordering(self):
        # faster links move the same KV payload sooner
        b = 1e8
        assert transfer_time(NVLINK_H800, b) < transfer_time(NVLINK_A6000, b)
        assert transfer_time(NVLINK_A6000, b) < transfer_time(PCIE_GEN4, b)

    def test_negative_bytes_raises(self):
        with pytest.raises(ValueError):
            transfer_time(NVLINK_A6000, -1)
