"""Tests for the affine group quantization codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.compression.quant.codec import (
    payload_bytes_ratio,
    quant_dequant_per_channel,
    quant_dequant_per_token,
    roundtrip_stats,
)


class TestPerChannel:
    def test_extremes_exact(self):
        """Group min/max are representable exactly."""
        x = np.random.default_rng(0).normal(size=(2, 3, 32, 8))
        y = quant_dequant_per_channel(x, bits=4)
        lo = x.min(axis=-2)
        hi = x.max(axis=-2)
        np.testing.assert_allclose(y.min(axis=-2), lo, atol=1e-12)
        np.testing.assert_allclose(y.max(axis=-2), hi, atol=1e-12)

    def test_error_bounded_by_half_step(self):
        x = np.random.default_rng(1).normal(size=(4, 32, 16))
        for bits in (2, 4, 8):
            y = quant_dequant_per_channel(x, bits)
            span = x.max(axis=-2) - x.min(axis=-2)
            step = span / (2**bits - 1)
            err = np.abs(y - x)
            assert (err <= step[..., None, :] / 2 + 1e-12).all()

    def test_more_bits_less_error(self):
        x = np.random.default_rng(2).normal(size=(2, 32, 8))
        errs = [
            np.abs(quant_dequant_per_channel(x, b) - x).mean()
            for b in (2, 4, 8)
        ]
        assert errs[0] > errs[1] > errs[2]

    def test_constant_channel_lossless(self):
        x = np.full((1, 16, 4), 3.7)
        np.testing.assert_allclose(quant_dequant_per_channel(x, 2), x)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quant_dequant_per_channel(np.zeros((1, 4, 4)), 0)

    @settings(max_examples=30, deadline=None)
    @given(
        arr=arrays(
            np.float64,
            (2, 16, 4),
            elements=st.floats(-10, 10, allow_nan=False),
        ),
        bits=st.integers(1, 8),
    )
    def test_roundtrip_error_bound_property(self, arr, bits):
        """Property: |x - deq(q(x))| <= step/2 for every element."""
        y = quant_dequant_per_channel(arr, bits)
        span = arr.max(axis=-2, keepdims=True) - arr.min(axis=-2, keepdims=True)
        step = np.where(span > 0, span / (2**bits - 1), 1.0)
        assert (np.abs(y - arr) <= step / 2 + 1e-9).all()


class TestPerToken:
    def test_group_shape_validation(self):
        with pytest.raises(ValueError):
            quant_dequant_per_token(np.zeros((1, 4, 10)), 4, group_channels=3)

    def test_error_bounded(self):
        x = np.random.default_rng(3).normal(size=(2, 8, 64))
        y = quant_dequant_per_token(x, 4, group_channels=32)
        xg = x.reshape(2, 8, 2, 32)
        span = xg.max(axis=-1) - xg.min(axis=-1)
        step = (span / 15).reshape(2, 8, 2, 1)
        err = np.abs((y - x).reshape(2, 8, 2, 32))
        assert (err <= step / 2 + 1e-12).all()

    def test_shape_preserved(self):
        x = np.random.default_rng(4).normal(size=(3, 5, 64))
        assert quant_dequant_per_token(x, 2, 32).shape == x.shape

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 100),
        bits=st.integers(1, 8),
        group=st.sampled_from([4, 8, 16]),
    )
    def test_idempotent_property(self, seed, bits, group):
        """Property: quantizing twice equals quantizing once."""
        x = np.random.default_rng(seed).normal(size=(2, 6, 16))
        once = quant_dequant_per_token(x, bits, group)
        twice = quant_dequant_per_token(once, bits, group)
        np.testing.assert_allclose(once, twice, atol=1e-9)


class TestStatsAndRatio:
    def test_roundtrip_stats(self):
        x = np.random.default_rng(5).normal(size=(2, 16, 8))
        y = quant_dequant_per_channel(x, 4)
        s = roundtrip_stats(x, y, 4)
        assert s.bits == 4
        assert s.n_elements == x.size
        assert 0 <= s.mean_abs_error <= s.max_abs_error

    def test_payload_ratio_ordering(self):
        r2 = payload_bytes_ratio(2, 128, 32)
        r4 = payload_bytes_ratio(4, 128, 32)
        r8 = payload_bytes_ratio(8, 128, 32)
        assert r2 < r4 < r8 < 1.0

    def test_payload_ratio_value(self):
        # 4 bits payload + 2 fp16 scales per 32-group = 0.25 + 0.0625
        assert payload_bytes_ratio(4, 128, 32) == pytest.approx(0.3125)

    def test_small_groups_cost_more_metadata(self):
        assert payload_bytes_ratio(4, 128, 8) > payload_bytes_ratio(4, 128, 64)
