"""End-to-end integration scenarios across the whole stack."""

import numpy as np
import pytest

from repro import CompressedGenerationPipeline
from repro.analysis import SemanticScorer, length_difference
from repro.compression import create
from repro.datasets import LongBenchSim, ShareGPTSim, score
from repro.model.generate import generate
from repro.model.sampling import Sampler


class TestAccuracyStack:
    """Observation 5/6 mechanics hold end-to-end on fresh data."""

    def test_eviction_hurts_deep_answers_only(self, llama_model, prompt_factory):
        deep, shallow = [], []
        answers_deep, answers_shallow = [], []
        for _ in range(5):
            p, a, _ = prompt_factory.make(depth=600, tail=700, ans_len=4)
            deep.append(p)
            answers_deep.append(a)
            p, a, _ = prompt_factory.make(depth=600, tail=100, ans_len=4)
            shallow.append(p)
            answers_shallow.append(a)
        comp = create("stream-512")
        out_deep = generate(
            llama_model, deep, compressor=comp,
            sampler=Sampler(greedy=True), max_new_tokens=8,
        )
        out_shallow = generate(
            llama_model, shallow, compressor=comp,
            sampler=Sampler(greedy=True), max_new_tokens=8,
        )
        acc_deep = np.mean(
            [s == a for s, a in zip(out_deep.sequences, answers_deep)]
        )
        acc_shallow = np.mean(
            [s == a for s, a in zip(out_shallow.sequences, answers_shallow)]
        )
        assert acc_shallow > acc_deep

    def test_negative_sample_pipeline_end_to_end(self, llama_model):
        """Generate, score, and collect negatives on fresh data."""
        from repro.analysis.evaluation import evaluate_suite
        from repro.tools.negative_sampler import (
            NegativeSampleAnalysis,
            ScoredSample,
        )

        samples = LongBenchSim(
            seed=21, min_context=500, max_context=1100
        ).build(4, tasks=("qa_single", "summarization", "synthetic"))
        results = evaluate_suite(
            llama_model, samples, ("fp16", "stream-512"),
            batch_size=12, max_new_tokens=24,
        )
        baseline = {
            r.sample_id: ScoredSample(r.sample_id, r.task, r.score)
            for r in results["fp16"]
        }
        by_algo = {
            "stream-512": {
                r.sample_id: ScoredSample(r.sample_id, r.task, r.score)
                for r in results["stream-512"]
            }
        }
        analysis = NegativeSampleAnalysis(baseline, by_algo)
        negatives = analysis.negatives(["stream-512"], 0.10)
        # eviction must produce at least one negative on deep answers
        assert len(negatives) >= 1
        assert negatives <= analysis.benign_ids


class TestLengthStack:
    def test_compression_inflates_lengths(self, llama_model):
        reqs = ShareGPTSim(seed=31, distractor_fraction=0.6).build(32)
        prompts = [r.prompt for r in reqs]
        base = generate(
            llama_model, prompts,
            sampler=Sampler(temperature=1.0, top_p=0.95, seed=1),
            max_new_tokens=48,
        )
        comp = generate(
            llama_model, prompts, compressor=create("kivi-2"),
            sampler=Sampler(temperature=1.0, top_p=0.95, seed=1),
            max_new_tokens=48,
        )
        d = length_difference(base.response_lengths, comp.response_lengths)
        assert d.mean() < 0.05  # net lengthening (negative D) or ~neutral

    def test_semantic_score_on_inflated_outputs(self, llama_model):
        reqs = ShareGPTSim(seed=41).build(12)
        out = generate(
            llama_model, [r.prompt for r in reqs],
            sampler=Sampler(greedy=True), max_new_tokens=32,
        )
        scorer = SemanticScorer(llama_model.config)
        scores = scorer.score_many(
            out.sequences, [r.reference for r in reqs]
        )
        assert scores.mean() > 0.7  # greedy fp16 tracks references


class TestServingStack:
    def test_pipeline_to_simulator(self):
        """Generated lengths feed the simulator for real E2E numbers."""
        from repro.engines import LMDEPLOY, ServingCostModel
        from repro.hardware import A6000
        from repro.model.arch import LLAMA_7B
        from repro.serving import ServerInstance, ServingRequest

        pipe = CompressedGenerationPipeline("stream-512")
        reqs = ShareGPTSim(seed=51).build(8)
        out = pipe.generate(
            [r.prompt for r in reqs],
            sampler=Sampler(greedy=True),
            max_new_tokens=32,
        )
        inst = ServerInstance(
            ServingCostModel(LLAMA_7B, A6000, LMDEPLOY),
            pipe.compressor.cost_spec(),
        )
        sim = inst.run(
            [
                ServingRequest(
                    request_id=r.request_id,
                    arrival=0.2 * i,
                    prompt_len=r.prompt_len,
                    response_len=max(1, int(out.response_lengths[i])),
                )
                for i, r in enumerate(reqs)
            ]
        )
        assert sim.mean_e2e() > 0
        assert len(sim.requests) == 8

    def test_compression_helps_under_heavy_load(self):
        """The systems benefit: smaller caches absorb more concurrency."""
        from repro.engines import LMDEPLOY, ServingCostModel
        from repro.hardware import A6000
        from repro.model.arch import LLAMA_7B
        from repro.serving import ServerInstance, ServingRequest

        def run_with(algo):
            spec = (
                CompressedGenerationPipeline(algo).compressor.cost_spec()
            )
            inst = ServerInstance(
                ServingCostModel(LLAMA_7B, A6000, LMDEPLOY), spec
            )
            reqs = [
                ServingRequest(f"r{i}", 0.02 * i, 3072, 64)
                for i in range(32)
            ]
            return inst.run(reqs).mean_e2e()

        assert run_with("stream-512") < run_with("fp16")
