"""Anomaly miner: detectors, incident clustering, regression emission.

Each detector gets a synthetic trace built to fire it and a quiet
control that must not; ``mine`` is pinned on clustering/scoring
semantics and the telemetry counters; the emitter is pinned on
minimization, idempotency, and producing runnable pytest modules.
"""

import numpy as np
import pytest

from repro.serving import (
    DETECTORS,
    EventType,
    StepMetrics,
    Telemetry,
    Trace,
    default_detectors,
    emit_regression_tests,
    fleet_scenario,
    instance_config,
    make_detector,
    mine,
    run_mined_scenario,
)
from repro.serving.mining import minimize_specs
from repro.serving.replay import build_scenario, make_requests


def test_registry_has_the_five_classes():
    assert set(DETECTORS) == {
        "slo_miss_cluster", "preemption_storm", "prefix_thrash",
        "kv_transfer_stall", "autoscaler_flap",
    }
    assert {d.name for d in default_detectors()} == set(DETECTORS)


def test_make_detector_unknown_name():
    with pytest.raises(KeyError, match="unknown detector"):
        make_detector("gpu_on_fire")


def test_slo_miss_cluster_fires_on_burst_and_not_on_spread():
    det = make_detector("slo_miss_cluster", window=5.0, min_misses=3)
    burst, spread = Trace(), Trace()
    for i in range(4):
        burst.record(1.0 + 0.2 * i, EventType.FINISH, f"r{i}", "inst0",
                     arrival=0.0, first_token=1.0, generated=8, ttft_miss=1)
        spread.record(100.0 * i, EventType.FINISH, f"r{i}", "inst0",
                      arrival=0.0, first_token=1.0, generated=8, ttft_miss=1)
    hits = det.scan(burst)
    assert hits and hits[0].detector == "slo_miss_cluster"
    assert len(hits[0].request_ids) == 4
    assert det.scan(spread) == []


def test_preemption_storm_threshold():
    det = make_detector("preemption_storm", window=2.0, min_preempts=3)
    t = Trace()
    for i in range(3):
        t.record(1.0 + 0.1 * i, EventType.PREEMPT, f"r{i}", "inst0",
                 requeued_at=1.0 + 0.1 * i)
    assert det.scan(t)
    quiet = Trace()
    quiet.record(1.0, EventType.PREEMPT, "r0", "inst0", requeued_at=1.0)
    assert det.scan(quiet) == []


def test_prefix_thrash_needs_a_hit_then_a_preempt():
    det = make_detector("prefix_thrash", min_cached=16)
    t = Trace()
    t.record(1.0, EventType.PREFIX_HIT, "r0", "inst0",
             cached=128, prompt=512, saved_seconds=0.05)
    t.record(2.0, EventType.PREEMPT, "r0", "inst0", requeued_at=2.0)
    hits = det.scan(t)
    assert hits and hits[0].evidence["cached_tokens_lost"] == 128
    # preempting a request that never hit the cache is not thrash
    other = Trace()
    other.record(2.0, EventType.PREEMPT, "r0", "inst0", requeued_at=2.0)
    assert det.scan(other) == []


def test_kv_transfer_stall_absolute_threshold():
    det = make_detector("kv_transfer_stall", stall_seconds=2.0)
    t = Trace()
    # several prompt transfers with prompt decode admits; one waits 5s
    for i, wait in enumerate((0.05, 0.06, 0.04, 5.0)):
        ts = float(i)
        t.record(ts, EventType.KV_TRANSFER, f"r{i}", "dec0",
                 bytes=1e6, seconds=0.01, tokens=256, link="nvlink-a6000")
        t.record(ts + wait, EventType.ADMIT, f"r{i}", "dec0",
                 arrival=ts, queued_at=ts + wait)
    hits = det.scan(t)
    assert len(hits) == 1
    assert hits[0].request_ids == ("r3",)
    assert hits[0].evidence["stalled"] is True


def test_autoscaler_flap_opposite_directions_same_pool():
    det = make_detector("autoscaler_flap", window=3.0)
    t = Trace()
    t.record(1.0, EventType.SCALE_UP, "", "dec2", pool="decode", size=3)
    t.record(2.0, EventType.SCALE_DOWN, "", "dec2", pool="decode", size=2)
    hits = det.scan(t)
    assert hits and hits[0].evidence["pool"] == "decode"
    # same direction twice, or different pools, is not flapping
    steady = Trace()
    steady.record(1.0, EventType.SCALE_UP, "", "dec2", pool="decode", size=3)
    steady.record(2.0, EventType.SCALE_UP, "", "dec3", pool="decode", size=4)
    steady.record(2.5, EventType.SCALE_DOWN, "", "pf1", pool="prefill",
                  size=1)
    assert det.scan(steady) == []


def test_mine_clusters_and_scores():
    t = Trace()
    # two well-separated SLO-miss bursts -> two incidents, one class
    for base in (0.0, 100.0):
        for i in range(3):
            t.record(base + 0.2 * i, EventType.FINISH, f"r{base:.0f}-{i}",
                     "inst0", arrival=base, first_token=base + 3.0,
                     generated=8, ttft_miss=1)
    report = mine(t, cluster_gap=2.0)
    assert report.anomaly_classes == ["slo_miss_cluster"]
    assert len(report.incidents) == 2
    assert report.incidents[0].score >= report.incidents[1].score
    assert not report.partial
    assert "slo_miss_cluster" in report.render()


def test_mine_publishes_telemetry_counters():
    t = Trace()
    for i in range(3):
        t.record(0.2 * i, EventType.FINISH, f"r{i}", "inst0",
                 arrival=0.0, first_token=3.0, generated=8, ttft_miss=1)
    telemetry = Telemetry()
    report = mine(t, telemetry=telemetry)
    assert report.incidents
    assert telemetry.mined_anomalies.value(
        detector="slo_miss_cluster") >= 1.0
    assert telemetry.mined_incidents.value(
        detector="slo_miss_cluster") == float(
            sum(1 for i in report.incidents
                if i.detector == "slo_miss_cluster"))


def test_mine_flags_truncated_recordings():
    t = Trace(max_events=8)
    for i in range(64):
        t.record(0.1 * i, EventType.DECODE_STEP, "", "inst0",
                 batch=1, kv=8, seconds=0.01, used_tokens=8,
                 token_budget=64, live=1)
    report = mine(t)
    assert report.partial and report.dropped_events == t.dropped_events
    assert "PARTIAL" in report.render()


def overload_case():
    """Dynamic admission + heavy prompts: preempts under KV pressure."""
    scenario = fleet_scenario(decode=[instance_config(
        algo="fp16", max_batch=32, admission="dynamic")])
    rng = np.random.default_rng(7)
    arrivals = np.cumsum(rng.exponential(1 / 40.0, size=28))
    specs = [
        dict(request_id=f"r{i:02d}", arrival=float(arrivals[i]),
             prompt_len=int(rng.integers(1500, 3000)),
             response_len=int(rng.integers(400, 900)),
             ttft_deadline=1.5)
        for i in range(28)
    ]
    return scenario, specs


def test_run_mined_scenario_and_minimize():
    scenario, specs = overload_case()
    hits = run_mined_scenario(scenario, specs, "preemption_storm")
    assert hits, "overload workload must preempt"
    minimal = minimize_specs(scenario, specs, "preemption_storm",
                             max_evals=32)
    assert minimal is not None
    assert len(minimal) < len(specs)
    assert run_mined_scenario(scenario, minimal, "preemption_storm")
    # a detector that never fires on the scenario yields None
    assert minimize_specs(scenario, specs[:2], "preemption_storm",
                          max_evals=4) is None


def test_emit_regression_tests_runnable_and_idempotent(tmp_path):
    scenario, specs = overload_case()
    fleet = build_scenario(scenario)
    trace = Trace()
    fleet.serve(make_requests(specs), trace=trace)
    report = mine(trace, detectors=[make_detector("preemption_storm")])
    assert report.incidents

    out = tmp_path / "mined"
    written = emit_regression_tests(report, scenario, specs, out,
                                    max_evals=24)
    assert len(written) == 1
    assert written[0].name.startswith("test_mined_preemption_storm_")
    # the emitted module is immediately runnable and self-verifying
    ns = {}
    exec(compile(written[0].read_text(), str(written[0]), "exec"), ns)
    test_fn = next(v for k, v in ns.items() if k.startswith("test_"))
    test_fn()
    # re-emitting the same incident is a no-op (same digest, same file)
    again = emit_regression_tests(report, scenario, specs, out,
                                  max_evals=24)
    assert again == written
    assert len(list(out.glob("test_mined_*.py"))) == 1
