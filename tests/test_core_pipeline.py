"""Tests for the public pipeline API and experiment scales."""

import numpy as np
import pytest

from repro import CompressedGenerationPipeline, create, current_scale
from repro.core.config import FULL, SMALL
from repro.model.sampling import Sampler


class TestPipeline:
    def test_default_construction(self):
        p = CompressedGenerationPipeline()
        assert p.algorithm == "fp16"
        assert p.arch.name == "llama-7b"

    def test_unknown_model_flavour(self):
        with pytest.raises(KeyError):
            CompressedGenerationPipeline(model="gpt-sim")

    def test_generate_roundtrip(self):
        p = CompressedGenerationPipeline("stream-512")
        tok = p.tokenizer
        sp = tok.special
        rng = np.random.default_rng(0)
        filler = [int(x) for x in rng.choice(tok.content_ids[:28], size=64)]
        key, v = 40, [50, 51, 52]
        prompt = [sp.bos] + filler + [sp.q, key] + v + [sp.sep, sp.q, key]
        out = p.generate([prompt], sampler=Sampler(greedy=True), max_new_tokens=8)
        assert out.sequences[0] == v

    def test_estimate_serving(self):
        p = CompressedGenerationPipeline("kivi-4")
        est = p.estimate_serving(batch=8, prompt_len=1024)
        assert est.prefill.seconds > 0
        assert est.decode.seconds > 0
        assert est.decode_throughput > 0
        assert est.memory.peak_bytes > est.memory.weights

    def test_estimate_detects_oom(self):
        p = CompressedGenerationPipeline("fp16")
        est = p.estimate_serving(batch=64, prompt_len=8192)
        assert est.decode.oom
        assert est.decode_throughput == 0.0

    def test_throughput_helpers_consistent(self):
        p = CompressedGenerationPipeline("stream-512")
        d = p.decode_throughput(8, 2048)
        assert d == pytest.approx(
            p.cost_model.decode_throughput(
                8, 2048, p.compressor.cost_spec()
            )
        )

    def test_max_batch_positive(self):
        p = CompressedGenerationPipeline("h2o-512")
        assert p.max_batch(2048) >= 1

    def test_sparse_pipeline_admits_larger_batches(self):
        fp = CompressedGenerationPipeline("fp16")
        sp = CompressedGenerationPipeline("stream-512")
        assert sp.max_batch(4096) > fp.max_batch(4096)

    def test_mistral_flavour(self):
        p = CompressedGenerationPipeline(model="mistral-sim", arch="mistral-7b")
        assert p.config.gqa_group == 2

    def test_tp_pipeline(self):
        p = CompressedGenerationPipeline("fp16", arch="llama-70b",
                                         gpu="h800", tp=4)
        est = p.estimate_serving(batch=4, prompt_len=2048)
        assert not est.decode.oom


class TestScales:
    def test_scale_selection(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale() is SMALL
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert current_scale() is FULL

    def test_full_is_larger(self):
        assert FULL.sharegpt_requests > SMALL.sharegpt_requests
        assert FULL.longbench_per_task > SMALL.longbench_per_task
        assert FULL.is_full and not SMALL.is_full
