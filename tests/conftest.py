"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.config import llama_sim_config, mistral_sim_config
from repro.model.tokenizer import SyntheticTokenizer
from repro.model.transformer import FunctionalTransformer


@pytest.fixture(scope="session")
def llama_model() -> FunctionalTransformer:
    """Session-shared LLaMA-style functional model."""
    return FunctionalTransformer(llama_sim_config())


@pytest.fixture(scope="session")
def mistral_model() -> FunctionalTransformer:
    """Session-shared Mistral-style (GQA) functional model."""
    return FunctionalTransformer(mistral_sim_config())


@pytest.fixture(scope="session")
def tokenizer() -> SyntheticTokenizer:
    return SyntheticTokenizer()


class PromptFactory:
    """Builds retrieval prompts the circuit can answer.

    Uses disjoint filler/record alphabets; optionally inserts a decoy
    record with the same key (conflicting information).
    """

    def __init__(self, tokenizer: SyntheticTokenizer, seed: int = 0) -> None:
        self.tok = tokenizer
        self.rng = np.random.default_rng(seed)
        content = tokenizer.content_ids
        half = len(content) // 2
        self.filler_alpha = content[:half]
        self.record_alpha = content[half:]

    def filler(self, n: int):
        return [int(x) for x in self.rng.choice(self.filler_alpha, size=n)]

    def make(
        self,
        depth: int = 64,
        tail: int = 64,
        ans_len: int = 3,
        decoy_gap: int = 0,
    ):
        """Returns (prompt, answer, decoy_answer_or_None)."""
        sp = self.tok.special
        key = int(self.rng.choice(self.record_alpha))
        pool = [c for c in self.record_alpha if c != key]
        picks = self.rng.choice(pool, size=2 * ans_len, replace=False)
        answer = [int(x) for x in picks[:ans_len]]
        decoy = [int(x) for x in picks[ans_len:]]
        parts = [sp.bos] + self.filler(depth)
        if decoy_gap > 0:
            parts += [sp.q, key] + decoy + [sp.sep] + self.filler(decoy_gap)
        parts += [sp.q, key] + answer + [sp.sep]
        parts += self.filler(tail) + [sp.q, key]
        return parts, answer, (decoy if decoy_gap else None)


@pytest.fixture()
def prompt_factory(tokenizer) -> PromptFactory:
    return PromptFactory(tokenizer, seed=1234)
