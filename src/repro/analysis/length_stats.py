"""Response-length distribution analysis (Section 4.3).

The paper's headline statistic is the *response length difference*
``D = (L_un - L_cs) / L_un`` — negative when compression lengthens the
response.  This module computes D distributions, the Table 5 variation
ratios, kernel density estimates for the Fig. 4 panels, and the verbose-
output criterion of Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np
from scipy.stats import gaussian_kde


def length_difference(
    uncompressed: Sequence[int], compressed: Sequence[int]
) -> np.ndarray:
    """Per-sample ``D = (L_un - L_cs) / L_un``."""
    lu = np.maximum(np.asarray(uncompressed, dtype=float), 1.0)
    lc = np.asarray(compressed, dtype=float)
    return (lu - lc) / lu


@dataclass(frozen=True)
class VariationRatios:
    """Table 5 statistics: fraction with large length changes."""

    shorter_50: float  # % of samples with D >= 0.5 (much shorter)
    longer_50: float   # % of samples with D <= -0.5 (much longer)

    @staticmethod
    def from_d(d: np.ndarray) -> "VariationRatios":
        """Compute from a D sample."""
        return VariationRatios(
            shorter_50=100.0 * float(np.mean(d >= 0.5)),
            longer_50=100.0 * float(np.mean(d <= -0.5)),
        )


def d_histogram(
    d: np.ndarray, bins: int = 40, clip: float = 4.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of D clipped to [-clip, 1] (Fig. 4 bars)."""
    dc = np.clip(d, -clip, 1.0)
    counts, edges = np.histogram(dc, bins=bins, range=(-clip, 1.0))
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, counts


def d_kde(
    d: np.ndarray, grid: int = 200, clip: float = 4.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Kernel density estimate of D (Fig. 4 line)."""
    dc = np.clip(np.asarray(d, dtype=float), -clip, 1.0)
    if np.std(dc) < 1e-9:
        xs = np.linspace(-clip, 1.0, grid)
        ys = np.zeros_like(xs)
        ys[np.argmin(np.abs(xs - dc.mean()))] = 1.0
        return xs, ys
    kde = gaussian_kde(dc)
    xs = np.linspace(-clip, 1.0, grid)
    return xs, kde(xs)


def flatness(d: np.ndarray) -> float:
    """Spread of the D distribution (higher = flatter, Obs. 3)."""
    return float(np.std(np.clip(d, -4.0, 1.0)))


def verbose_fraction(
    base_scores: Sequence[float],
    comp_scores: Sequence[float],
    base_lens: Sequence[int],
    comp_lens: Sequence[int],
) -> float:
    """Fraction of *verbose* outputs per the paper's Table 4 criterion.

    Verbose: quality no better than baseline while output is no shorter.
    """
    qb = np.asarray(base_scores, dtype=float)
    qc = np.asarray(comp_scores, dtype=float)
    lb = np.asarray(base_lens, dtype=float)
    lc = np.asarray(comp_lens, dtype=float)
    return float(np.mean((qc <= qb) & (lc >= lb)))
