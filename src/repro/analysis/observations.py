"""Programmatic checks of the paper's six Observations.

Each check re-derives one of the paper's takeaways from this
repository's own measurements and returns the evidence, so a user can
ask "does the reproduction actually support the paper's claims?" with
one call.  Observations 1-2 are analytic (cost model); 3-6 consume the
shared generation runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.analysis.length_stats import flatness, length_difference
from repro.core.config import ExperimentScale, current_scale
from repro.experiments.common import ALGOS, comp_spec, cost_model


@dataclass
class ObservationCheck:
    """Outcome of one observation's verification."""

    observation: int
    claim: str
    holds: bool
    evidence: Dict[str, float]


def check_observation_1() -> ObservationCheck:
    """TRL exaggerates compression speedups vs production engines."""
    stream = comp_spec("stream-512")
    fp16 = comp_spec("fp16")
    trl = cost_model(engine="trl")
    lmd = cost_model(engine="lmdeploy")
    b, n = 4, 4096
    s_trl = trl.decode_throughput(b, n, stream) / trl.decode_throughput(b, n, fp16)
    s_lmd = lmd.decode_throughput(b, n, stream) / lmd.decode_throughput(b, n, fp16)
    return ObservationCheck(
        observation=1,
        claim="speedups measured on TRL exceed those on LMDeploy",
        holds=s_trl > s_lmd,
        evidence={"speedup_trl": s_trl, "speedup_lmdeploy": s_lmd},
    )


def check_observation_2() -> ObservationCheck:
    """Compression can be net-negative at light settings, positive at
    heavy ones."""
    lmd = cost_model()
    fp16 = comp_spec("fp16")
    light, heavy = [], []
    for algo in ALGOS:
        spec = comp_spec(algo)
        light.append(
            lmd.decode_throughput(1, 256, spec)
            / lmd.decode_throughput(1, 256, fp16)
        )
        heavy.append(
            lmd.decode_throughput(8, 4096, spec)
            / lmd.decode_throughput(8, 4096, fp16)
        )
    return ObservationCheck(
        observation=2,
        claim="no benefit at light KV, real benefit at heavy KV",
        holds=max(light) < 1.05 and max(heavy) > 1.2,
        evidence={
            "max_speedup_light": max(light),
            "max_speedup_heavy": max(heavy),
        },
    )


def _length_runs(scale: ExperimentScale, model: str):
    from repro.experiments.genruns import sharegpt_run

    base = sharegpt_run(scale, "fp16", 1.0, model).lengths
    return base, {
        a: sharegpt_run(scale, a, 1.0, model).lengths for a in ALGOS
    }


def check_observation_3(
    scale: ExperimentScale = None, model: str = "llama"
) -> ObservationCheck:
    """Compression skews the length distribution toward longer outputs,
    more so at higher compression ratios."""
    from repro.experiments.genruns import sharegpt_run

    scale = scale or current_scale()
    base, by_algo = _length_runs(scale, model)
    mean_d = {
        a: float(length_difference(base, lens).mean())
        for a, lens in by_algo.items()
    }
    lo = sharegpt_run(scale, "kivi-4", 1.0, model).lengths
    hi = sharegpt_run(scale, "kivi-2", 1.0, model).lengths
    flat_lo = flatness(length_difference(base, lo))
    flat_hi = flatness(length_difference(base, hi))
    return ObservationCheck(
        observation=3,
        claim="compression lengthens outputs; higher ratios flatten D",
        holds=min(mean_d.values()) < 0.02 and flat_hi >= flat_lo,
        evidence={**{f"meanD_{a}": v for a, v in mean_d.items()},
                  "flatness_kivi4": flat_lo, "flatness_kivi2": flat_hi},
    )


def check_observation_4(
    scale: ExperimentScale = None, model: str = "llama"
) -> ObservationCheck:
    """End-to-end latency gains are modest once lengths are measured."""
    from repro.experiments.fig5_latency_cdf import e2e_latencies

    scale = scale or current_scale()
    lats = e2e_latencies(scale, model)
    base = float(np.mean(lats["fp16"]))
    best = min(float(np.mean(lats[a])) for a in ALGOS)
    return ObservationCheck(
        observation=4,
        claim="mean E2E speedup from compression stays below 1.5x",
        holds=base / best < 1.5,
        evidence={"fp16_mean_s": base, "best_algo_mean_s": best,
                  "best_speedup": base / best},
    )


def check_observation_5(
    scale: ExperimentScale = None, model: str = "llama"
) -> ObservationCheck:
    """Negative samples exist for every algorithm; combining shrinks
    but does not erase them."""
    from repro.experiments.fig6_negative_threshold import build_analysis

    scale = scale or current_scale()
    analysis = build_analysis(scale, model)
    singles = {a: len(analysis.negatives([a], 0.10)) for a in ALGOS}
    combined = len(analysis.negatives(list(ALGOS), 0.10))
    return ObservationCheck(
        observation=5,
        claim="every algorithm has negatives; ensembles shrink the set",
        holds=sum(v > 0 for v in singles.values()) >= 2
        and combined <= min(singles.values()),
        evidence={**{f"neg_{a}": float(v) for a, v in singles.items()},
                  "neg_combined": float(combined)},
    )


def check_observation_6(
    scale: ExperimentScale = None, model: str = "llama"
) -> ObservationCheck:
    """Fragility is task-unbalanced: QA/summarization suffer most."""
    from repro.experiments.fig6_negative_threshold import build_analysis

    scale = scale or current_scale()
    analysis = build_analysis(scale, model)
    fragile = 0
    robust = 0
    for a in ALGOS:
        by_task = analysis.counts_by_task([a], 0.10)
        fragile += sum(
            by_task.get(t, 0)
            for t in ("qa_single", "qa_multi", "summarization")
        )
        robust += by_task.get("fewshot", 0) + by_task.get("code", 0)
    return ObservationCheck(
        observation=6,
        claim="QA + summarization collect more negatives than few-shot + code",
        holds=fragile >= robust,
        evidence={"qa_summ_negatives": float(fragile),
                  "fewshot_code_negatives": float(robust)},
    )


ALL_CHECKS: List[Callable[..., ObservationCheck]] = [
    check_observation_1,
    check_observation_2,
    check_observation_3,
    check_observation_4,
    check_observation_5,
    check_observation_6,
]


def verify_all(
    scale: ExperimentScale = None, model: str = "llama"
) -> List[ObservationCheck]:
    """Run every observation check (3-6 trigger generation runs)."""
    scale = scale or current_scale()
    out = [check_observation_1(), check_observation_2()]
    for fn in ALL_CHECKS[2:]:
        out.append(fn(scale, model))
    return out
