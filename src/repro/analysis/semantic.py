"""Semantic similarity scoring (Table 4).

The paper scores semantic similarity between a model response and a
reference response.  Here both are sequences over the synthetic
vocabulary; similarity is the cosine between magnitude-weighted bags of
the model's own token codes — the natural analogue of embedding-based
semantic scoring.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.model.builder import code_matrix, token_magnitudes
from repro.model.config import FunctionalModelConfig


class SemanticScorer:
    """Embedding-bag cosine similarity over the synthetic vocabulary."""

    def __init__(self, config: Optional[FunctionalModelConfig] = None) -> None:
        cfg = config or FunctionalModelConfig()
        self._codes = code_matrix(cfg) * token_magnitudes(cfg)[:, None]
        self._vocab = cfg.vocab_size

    def embed(self, ids: Sequence[int]) -> np.ndarray:
        """Mean token-code embedding of a sequence."""
        if len(ids) == 0:
            return np.zeros(self._codes.shape[1])
        arr = np.asarray(ids)
        if (arr < 0).any() or (arr >= self._vocab).any():
            raise ValueError("token id outside vocabulary")
        return self._codes[arr].mean(axis=0)

    def score(self, a: Sequence[int], b: Sequence[int]) -> float:
        """Cosine similarity in [0, 1] (negative cosines floored at 0)."""
        ea, eb = self.embed(a), self.embed(b)
        na, nb = np.linalg.norm(ea), np.linalg.norm(eb)
        if na == 0 or nb == 0:
            return 1.0 if na == nb else 0.0
        return float(max(0.0, ea @ eb / (na * nb)))

    def score_many(
        self, preds: Sequence[Sequence[int]], refs: Sequence[Sequence[int]]
    ) -> np.ndarray:
        """Vector of scores for aligned prediction/reference pairs."""
        if len(preds) != len(refs):
            raise ValueError("preds and refs must align")
        return np.array([self.score(p, r) for p, r in zip(preds, refs)])
