"""Plain-text table/series formatting for experiment outputs.

Every experiment module renders its result through these helpers so the
benchmark harness prints rows shaped like the paper's tables and the
series behind its figures.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Union

Number = Union[int, float]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    precision: int = 2,
) -> str:
    """Fixed-width table with a title line."""

    def fmt(x: object) -> str:
        if isinstance(x, float):
            return f"{x:.{precision}f}"
        return str(x)

    cells = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[Number], ys: Sequence[Number], precision: int = 3
) -> str:
    """One figure series as ``name: (x, y) ...`` pairs."""
    pairs = " ".join(
        f"({x:g}, {y:.{precision}f})" for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"


def format_speedup(value: float) -> str:
    """Paper-style relative-speedup cell, e.g. ``1.34x`` or ``OOM``."""
    if value != value or value in (float("inf"), 0.0):  # nan / oom
        return "OOM"
    return f"{value:.2f}x"


def dict_rows(
    data: Mapping[str, Mapping[str, object]], row_key: str = "row"
) -> List[List[object]]:
    """Flatten ``{row: {col: val}}`` into table rows (sorted by row)."""
    cols: List[str] = []
    for row in data.values():
        for c in row:
            if c not in cols:
                cols.append(c)
    return [[r] + [data[r].get(c, "") for c in cols] for r in sorted(data)]
