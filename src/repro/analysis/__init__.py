"""Analysis utilities: evaluation runner, length statistics, semantics."""

from repro.analysis.evaluation import (
    EvalRecord,
    evaluate_algorithm,
    evaluate_suite,
    mean_score,
    mean_score_by_task,
)
from repro.analysis.length_stats import (
    VariationRatios,
    d_histogram,
    d_kde,
    flatness,
    length_difference,
    verbose_fraction,
)
from repro.analysis.reporting import (
    dict_rows,
    format_series,
    format_speedup,
    format_table,
)
from repro.analysis.observations import (
    ObservationCheck,
    verify_all,
)
from repro.analysis.semantic import SemanticScorer

__all__ = [
    "EvalRecord",
    "evaluate_algorithm",
    "evaluate_suite",
    "mean_score",
    "mean_score_by_task",
    "VariationRatios",
    "d_histogram",
    "d_kde",
    "flatness",
    "length_difference",
    "verbose_fraction",
    "dict_rows",
    "format_series",
    "format_speedup",
    "format_table",
    "ObservationCheck",
    "verify_all",
    "SemanticScorer",
]
