"""Batched evaluation of compression algorithms on the functional model.

Groups samples by prompt length (left-padding waste control), runs
batched generation under each algorithm, and scores outputs with the
task metrics.  This is the workhorse behind the accuracy, negative-
sample and length-distribution experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.compression.base import Compressor, NoCompression
from repro.compression.registry import create
from repro.datasets.longbench import Sample
from repro.datasets.metrics import score
from repro.model.generate import generate
from repro.model.sampling import Sampler
from repro.model.transformer import FunctionalTransformer


@dataclass
class EvalRecord:
    """Scored output of one sample under one algorithm."""

    sample_id: str
    task: str
    algo: str
    score: float
    response: List[int]
    response_len: int
    prompt_len: int
    hit_max: bool


def _batches(
    samples: Sequence[Sample], batch_size: int
) -> List[List[int]]:
    """Index batches grouped by similar prompt length."""
    order = sorted(range(len(samples)), key=lambda i: samples[i].prompt_len)
    return [
        order[i : i + batch_size] for i in range(0, len(order), batch_size)
    ]


def evaluate_algorithm(
    model: FunctionalTransformer,
    samples: Sequence[Sample],
    algo: str,
    sampler: Optional[Sampler] = None,
    batch_size: int = 16,
    max_new_tokens: int = 48,
) -> List[EvalRecord]:
    """Run and score all ``samples`` under algorithm ``algo``.

    ``algo`` is a registry name ("fp16", "kivi-4", ...).  Greedy decoding
    by default (accuracy studies); pass a stochastic sampler for length
    studies.
    """
    compressor: Optional[Compressor] = None
    if algo != "fp16":
        compressor = create(algo)
    records: List[EvalRecord] = [None] * len(samples)  # type: ignore
    for batch_idx in _batches(samples, batch_size):
        batch = [samples[i] for i in batch_idx]
        out = generate(
            model,
            [s.prompt for s in batch],
            compressor=compressor,
            sampler=sampler or Sampler(greedy=True),
            max_new_tokens=max_new_tokens,
        )
        for k, i in enumerate(batch_idx):
            s = batch[k]
            resp = out.sequences[k]
            records[i] = EvalRecord(
                sample_id=s.sample_id,
                task=s.task,
                algo=algo,
                score=score(s.metric, resp, s.answer),
                response=resp,
                response_len=len(resp),
                prompt_len=s.prompt_len,
                hit_max=bool(out.hit_max[k]),
            )
    return records


def evaluate_suite(
    model: FunctionalTransformer,
    samples: Sequence[Sample],
    algos: Sequence[str],
    sampler: Optional[Sampler] = None,
    batch_size: int = 16,
    max_new_tokens: int = 48,
) -> Dict[str, List[EvalRecord]]:
    """Evaluate several algorithms on the same samples."""
    return {
        algo: evaluate_algorithm(
            model, samples, algo, sampler, batch_size, max_new_tokens
        )
        for algo in algos
    }


def mean_score(records: Sequence[EvalRecord]) -> float:
    """Mean score over records (0-1)."""
    return float(np.mean([r.score for r in records]))


def mean_score_by_task(
    records: Sequence[EvalRecord],
) -> Dict[str, float]:
    """Mean score per task type."""
    by_task: Dict[str, List[float]] = {}
    for r in records:
        by_task.setdefault(r.task, []).append(r.score)
    return {t: float(np.mean(v)) for t, v in by_task.items()}
