"""Analytical models of LLM serving engines (TRL, TRL+FA, LMDeploy)."""

from repro.engines.base import EngineConfig, ServingCostModel, StageCost
from repro.engines.presets import ENGINES, LMDEPLOY, TRL, TRL_FA, get_engine

__all__ = [
    "EngineConfig",
    "ServingCostModel",
    "StageCost",
    "ENGINES",
    "LMDEPLOY",
    "TRL",
    "TRL_FA",
    "get_engine",
]
