"""Serving-engine presets matching the paper's evaluation stacks.

- ``TRL`` — eager HuggingFace transformers: multi-pass attention, no KV
  paging, per-op kernel launches and Python dispatch per decode step.
- ``TRL_FA`` — transformers with FlashAttention 2 enabled: one-pass
  attention, still eager elsewhere.
- ``LMDEPLOY`` — the production engine the paper standardizes on:
  FlashAttention + PagedAttention, fused kernels, CUDA-graph-style low
  step overhead and continuous batching.

Overhead constants are calibrated so the FP16 baseline reproduces the
qualitative gaps of Fig. 1(a-b): LMDeploy > TRL+FA > TRL, with the gap
widening at small batch (dispatch-bound) and long KV (multi-pass-bound).
"""

from __future__ import annotations

from repro.engines.base import EngineConfig

TRL = EngineConfig(
    name="trl",
    flash_attention=False,
    paged_kv=False,
    gemm_efficiency=0.42,
    step_overhead=3.5e-3,
    prefill_overhead=4.0e-3,
    launches_per_layer_decode=22,
    launches_per_layer_prefill=26,
    attn_decode_kv_passes=2.0,
    attn_kernel_tuning=0.85,  # eager kernels leave bandwidth on the table
    supports_continuous_batching=False,
)

TRL_FA = EngineConfig(
    name="trl+fa",
    flash_attention=True,
    paged_kv=False,
    gemm_efficiency=0.45,
    step_overhead=2.8e-3,
    prefill_overhead=3.0e-3,
    launches_per_layer_decode=16,
    launches_per_layer_prefill=18,
    attn_decode_kv_passes=1.0,
    attn_kernel_tuning=0.92,
    supports_continuous_batching=False,
)

LMDEPLOY = EngineConfig(
    name="lmdeploy",
    flash_attention=True,
    paged_kv=True,
    gemm_efficiency=0.60,
    step_overhead=3.0e-4,
    prefill_overhead=1.0e-3,
    launches_per_layer_decode=6,
    launches_per_layer_prefill=8,
    attn_decode_kv_passes=1.0,
    attn_kernel_tuning=1.05,  # hand-tuned paged kernels hide indirection
    supports_continuous_batching=True,
)

ENGINES = {e.name: e for e in (TRL, TRL_FA, LMDEPLOY)}


def get_engine(name: str) -> EngineConfig:
    """Look up an engine preset by name."""
    key = name.lower()
    if key not in ENGINES:
        raise KeyError(f"unknown engine {name!r}; known: {sorted(ENGINES)}")
    return ENGINES[key]
