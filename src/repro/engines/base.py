"""Analytical serving-engine cost model.

``ServingCostModel`` prices one prefill pass or one decode step of a
real-dimension architecture (:class:`repro.model.arch.ArchSpec`) on a
GPU (:class:`repro.hardware.specs.GPUSpec`) under a serving engine
(:class:`EngineConfig`) and a compression algorithm
(:class:`repro.compression.base.CompressionCostSpec`).

The decomposition follows the paper's Section 2.4: decode attention is
bandwidth-bound on KV traffic, decode GEMMs are weight-bandwidth-bound
at small batch, prefill is compute-bound, and every compression design
choice shows up as either reduced KV traffic (the win) or extra passes /
kernels / irregular access (the cost).  Tensor parallelism shards heads
and MLP columns and adds two ring all-reduces per layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.compression.base import CompressionCostSpec
from repro.hardware.interconnect import InterconnectSpec, allreduce_time
from repro.hardware.memory import KVMemorySpec, MemoryModel
from repro.hardware.roofline import AccessPattern, OpCost, Roofline
from repro.hardware.specs import GPUSpec
from repro.model.arch import ArchSpec

FP16_BYTES = 2


@dataclass(frozen=True)
class EngineConfig:
    """Performance-relevant traits of one serving engine.

    Attributes
    ----------
    name: engine label ("trl", "trl+fa", "lmdeploy").
    flash_attention: one-pass attention (no score materialization).
    paged_kv: PagedAttention-style block-table KV management.
    gemm_efficiency: fraction of tensor peak for large GEMMs.
    step_overhead: fixed host-side seconds per decode step (eager
        framework dispatch; the dominant cost of TRL at small batch).
    prefill_overhead: fixed host-side seconds per prefill call.
    launches_per_layer_decode / launches_per_layer_prefill:
        kernel launches per decoder layer (fusion reduces these).
    supports_continuous_batching: iteration-level scheduling support.
    """

    name: str
    flash_attention: bool
    paged_kv: bool
    gemm_efficiency: float
    step_overhead: float
    prefill_overhead: float
    launches_per_layer_decode: int
    launches_per_layer_prefill: int
    attn_decode_kv_passes: float = 1.0
    attn_kernel_tuning: float = 1.0
    supports_continuous_batching: bool = False


@dataclass
class StageCost:
    """Priced execution of one prefill pass or decode step."""

    seconds: float
    breakdown: Dict[str, float] = field(default_factory=dict)
    oom: bool = False

    @property
    def attention_seconds(self) -> float:
        """Attention-layer time incl. compression work (Fig. 3 readout)."""
        return (
            self.breakdown.get("attention", 0.0)
            + self.breakdown.get("compression", 0.0)
        )


class ServingCostModel:
    """Prices serving stages for one (arch, gpu, engine, tp) deployment."""

    def __init__(
        self,
        arch: ArchSpec,
        gpu: GPUSpec,
        engine: EngineConfig,
        tp: int = 1,
        interconnect: Optional[InterconnectSpec] = None,
    ) -> None:
        if tp > 1 and interconnect is None:
            raise ValueError("tensor parallelism requires an interconnect spec")
        self.arch = arch
        self.gpu = gpu
        self.engine = engine
        self.tp = tp
        self.interconnect = interconnect
        self.roofline = Roofline(
            gpu,
            compute_efficiency={
                "tensor": engine.gemm_efficiency,
                "tensor_small": min(0.35, engine.gemm_efficiency),
            },
        )
        self.memory = MemoryModel(arch, gpu, tp)

    # ------------------------------------------------------------------
    def _fits(
        self, comp: CompressionCostSpec, batch: int, kv_len: int,
        prefill_len: Optional[int] = None,
    ) -> bool:
        spec = self._memory_spec(comp)
        return self.memory.breakdown(spec, batch, kv_len, prefill_len).fits

    def _memory_spec(self, comp: CompressionCostSpec) -> KVMemorySpec:
        fp16 = self.arch.kv_bytes_per_token_per_layer()
        return KVMemorySpec(
            bytes_per_token_per_layer=fp16 * comp.kv_bytes_ratio,
            residual_fp16_tokens=comp.residual_fp16_tokens,
            max_tokens=comp.sparse_budget,
            transient_fp16_copy=comp.kv_bytes_ratio < 1.0,
        )

    def _kv_pattern(self, comp: CompressionCostSpec) -> AccessPattern:
        if comp.kv_access != AccessPattern.CONTIGUOUS_KV:
            return comp.kv_access
        return (
            AccessPattern.PAGED_KV
            if self.engine.paged_kv
            else AccessPattern.CONTIGUOUS_KV
        )

    def _gemm_unit(self, batch_tokens: int) -> str:
        return "tensor" if batch_tokens >= 256 else "tensor_small"

    # ------------------------------------------------------------------
    def _decode_ops(
        self, batch: int, kv_len: int, comp: CompressionCostSpec
    ):
        a, tp = self.arch, self.tp
        eng = self.engine
        ops = []

        # projections + MLP: weight-bandwidth-bound at small batch
        gemm_flops = (
            2 * batch
            * (
                a.d_model * (a.q_dim + 2 * a.kv_dim)
                + a.q_dim * a.d_model
                + 3 * a.d_model * a.d_ff
            )
            / tp
        )
        weight_bytes = (
            a.d_model * (a.q_dim + 2 * a.kv_dim)
            + a.q_dim * a.d_model
            + 3 * a.d_model * a.d_ff
        ) * a.dtype_bytes / tp
        ops.append(
            OpCost(
                "gemm",
                flops=gemm_flops,
                bytes=weight_bytes,
                launches=0,
                pattern=AccessPattern.STREAM,
                compute_unit=self._gemm_unit(batch),
            )
        )

        # attention: KV traffic split into quantized body + fp16 residual;
        # eager engines re-load KV across the multi-pass attention
        eff_tokens = comp.effective_kv_tokens(kv_len)
        resid = float(min(eff_tokens, comp.residual_fp16_tokens))
        aged = eff_tokens - resid
        passes = eng.attn_decode_kv_passes / eng.attn_kernel_tuning
        elems_per_tok = 2 * (a.n_kv_heads // max(1, min(tp, a.n_kv_heads))) * a.head_dim
        aged_bytes = (
            batch * aged * elems_per_tok * FP16_BYTES * comp.kv_bytes_ratio * passes
        )
        resid_bytes = batch * resid * elems_per_tok * FP16_BYTES * passes
        attn_flops = 4 * batch * (a.n_heads // tp) * eff_tokens * a.head_dim
        ops.append(
            OpCost(
                "attention",
                flops=attn_flops,
                bytes=aged_bytes,
                launches=0,
                pattern=self._kv_pattern(comp),
                compute_unit="vector",
            )
        )
        if resid_bytes:
            ops.append(
                OpCost(
                    "attention",
                    bytes=resid_bytes,
                    launches=0,
                    pattern=self._kv_pattern(comp)
                    if comp.kv_bytes_ratio == 1.0
                    else AccessPattern.CONTIGUOUS_KV,
                )
            )

        # compression work: dequant flops, score pass, eviction kernels
        comp_ops = []
        if comp.dequant_flops_per_element:
            n_elems = batch * aged * elems_per_tok
            comp_ops.append(
                OpCost(
                    "compression",
                    flops=comp.dequant_flops_per_element * n_elems,
                    launches=comp.extra_kv_segments,
                    compute_unit="vector",
                )
            )
        if comp.decode_score_pass:
            score_bytes = 2 * batch * (a.n_heads // tp) * eff_tokens * FP16_BYTES
            comp_ops.append(
                OpCost(
                    "compression",
                    flops=6 * batch * (a.n_kv_heads // tp) * eff_tokens,
                    bytes=score_bytes,
                    launches=1,
                    compute_unit="vector",
                )
            )
        if comp.evict_overhead_launches:
            comp_ops.append(
                OpCost(
                    "compression",
                    launches=comp.evict_overhead_launches,
                )
            )
        ops.extend(comp_ops)

        # framework dispatch per layer
        ops.append(OpCost("dispatch", launches=eng.launches_per_layer_decode))
        return ops

    def decode_step(
        self, batch: int, kv_len: int, comp: CompressionCostSpec
    ) -> StageCost:
        """Time of one decode iteration for the whole batch."""
        if not self._fits(comp, batch, kv_len):
            return StageCost(seconds=float("inf"), oom=True)
        a = self.arch
        ops = self._decode_ops(batch, kv_len, comp)
        per_layer = self.roofline.total_seconds(ops)
        breakdown = self.roofline.breakdown(ops)
        comm = 0.0
        if self.tp > 1:
            comm = 2 * allreduce_time(
                self.interconnect, batch * a.d_model * FP16_BYTES, self.tp
            )
        total = a.n_layers * (per_layer + comm) + self.engine.step_overhead
        breakdown = {k: v * a.n_layers for k, v in breakdown.items()}
        breakdown["comm"] = comm * a.n_layers
        breakdown["host"] = self.engine.step_overhead
        return StageCost(seconds=total, breakdown=breakdown)

    # ------------------------------------------------------------------
    def _prefill_ops(
        self,
        batch: int,
        prompt_len: int,
        comp: CompressionCostSpec,
        kv_prefix: int = 0,
    ):
        """Ops of one prefill pass over ``prompt_len`` new tokens.

        ``kv_prefix`` is the number of prompt tokens whose KV is already
        cached (chunked prefill): the new tokens attend over the prefix
        as well as themselves, and the prefix KV must be re-read from
        the cache.  ``kv_prefix=0`` is a single-shot prefill.
        """
        a, tp, eng = self.arch, self.tp, self.engine
        L = prompt_len
        ctx = kv_prefix + L  # KV context the new tokens attend over
        ops = []
        gemm_flops = (
            2 * batch * L
            * (
                a.d_model * (a.q_dim + 2 * a.kv_dim)
                + a.q_dim * a.d_model
                + 3 * a.d_model * a.d_ff
            )
            / tp
        )
        weight_bytes = (
            a.d_model * (a.q_dim + 2 * a.kv_dim)
            + a.q_dim * a.d_model
            + 3 * a.d_model * a.d_ff
        ) * a.dtype_bytes / tp
        act_bytes = 6 * batch * L * a.d_model * a.dtype_bytes / tp
        ops.append(
            OpCost(
                "gemm",
                flops=gemm_flops,
                bytes=weight_bytes + act_bytes,
                launches=0,
                pattern=AccessPattern.STREAM,
                compute_unit="tensor",
            )
        )

        # causal attention: each new token attends the cached prefix
        # plus the chunk itself (the full prompt when kv_prefix=0)
        attn_flops = 2 * batch * (a.n_heads // tp) * L * ctx * a.head_dim
        qkv_bytes = 4 * batch * (a.n_heads // tp) * L * a.head_dim * FP16_BYTES
        eager_bytes = 0.0
        if not eng.flash_attention:
            # eager attention materializes S and P (two extra passes)
            eager_bytes = 2 * batch * (a.n_heads // tp) * L * ctx * FP16_BYTES
        ops.append(
            OpCost(
                "attention",
                flops=attn_flops,
                bytes=qkv_bytes + eager_bytes,
                launches=0,
                pattern=AccessPattern.STREAM,
                compute_unit="tensor",
            )
        )
        if kv_prefix > 0:
            # re-read the already-cached prefix KV (the recurring cost
            # of chunking: every chunk streams the prefix again)
            prefix_elems = (
                2 * batch
                * (a.n_kv_heads // max(1, min(tp, a.n_kv_heads)))
                * kv_prefix * a.head_dim
            )
            ops.append(
                OpCost(
                    "attention",
                    bytes=prefix_elems * FP16_BYTES * comp.kv_bytes_ratio,
                    launches=0,
                    pattern=self._kv_pattern(comp),
                )
            )

        comp_ops = []
        # importance scoring: re-compute attention for the scored rows
        # and stream the materialized FP32 score matrices through HBM —
        # the work FlashAttention's one-pass formulation cannot avoid
        # once an algorithm needs the scores (Section 3.1.2).
        if comp.prefill_score_passes:
            rows = L if comp.score_rows is None else min(L, comp.score_rows)
            recompute_flops = 2 * batch * (a.n_heads // tp) * rows * ctx * a.head_dim
            score_bytes = (
                comp.prefill_score_passes
                * batch * (a.n_heads // tp) * rows * ctx * 4
            )
            comp_ops.append(
                OpCost(
                    "compression",
                    flops=recompute_flops,
                    bytes=score_bytes,
                    launches=2,
                    pattern=AccessPattern.STREAM,
                    compute_unit="tensor",
                )
            )

        # compressing the prompt KV
        kv_elems = 2 * batch * (a.n_kv_heads // max(1, min(tp, a.n_kv_heads))) * L * a.head_dim
        if comp.prefill_quant_flops_per_element:
            quant_bytes = kv_elems * FP16_BYTES + comp.prefill_kv_passes_fp32 * kv_elems * 4
            comp_ops.append(
                OpCost(
                    "compression",
                    flops=comp.prefill_quant_flops_per_element * kv_elems,
                    bytes=quant_bytes,
                    launches=2,
                    compute_unit="vector",
                )
            )
        if comp.lowrank_ratio:
            rank = max(2, int(comp.lowrank_ratio * a.kv_dim))
            comp_ops.append(
                OpCost(
                    "compression",
                    flops=8 * kv_elems * rank,
                    launches=3,
                    compute_unit="tensor_small",
                )
            )
        if comp.sparse_budget is not None and comp.prefill_score_passes:
            # top-k selection over the prompt scores
            comp_ops.append(
                OpCost(
                    "compression",
                    flops=10 * batch * (a.n_kv_heads // tp) * ctx,
                    launches=2,
                    compute_unit="vector",
                )
            )
        ops.extend(comp_ops)
        ops.append(OpCost("dispatch", launches=eng.launches_per_layer_prefill))
        return ops

    def prefill(
        self, batch: int, prompt_len: int, comp: CompressionCostSpec
    ) -> StageCost:
        """Time of one prefill pass for the whole batch."""
        return self.prefill_chunk(batch, prompt_len, 0, comp)

    def prefill_chunk(
        self,
        batch: int,
        chunk_len: int,
        kv_prefix: int,
        comp: CompressionCostSpec,
    ) -> StageCost:
        """Time of one chunked-prefill pass: ``chunk_len`` new prompt
        tokens attending over ``kv_prefix`` already-cached tokens.

        ``kv_prefix=0`` with the full prompt as the chunk is exactly
        :meth:`prefill` (same ops, same arithmetic — bit-for-bit), so
        unchunked serving reproduces single-shot costs.  A later chunk
        pays for re-streaming the cached prefix KV, so per-chunk cost
        grows with ``kv_prefix`` — the real cost of Sarathi/vLLM-style
        chunked prefill.
        """
        if not self._fits(
            comp, batch, kv_prefix + chunk_len, prefill_len=chunk_len
        ):
            return StageCost(seconds=float("inf"), oom=True)
        a = self.arch
        ops = self._prefill_ops(batch, chunk_len, comp, kv_prefix=kv_prefix)
        per_layer = self.roofline.total_seconds(ops)
        breakdown = self.roofline.breakdown(ops)
        comm = 0.0
        if self.tp > 1:
            comm = 2 * allreduce_time(
                self.interconnect,
                batch * chunk_len * a.d_model * FP16_BYTES,
                self.tp,
            )
        total = a.n_layers * (per_layer + comm) + self.engine.prefill_overhead
        breakdown = {k: v * a.n_layers for k, v in breakdown.items()}
        breakdown["comm"] = comm * a.n_layers
        breakdown["host"] = self.engine.prefill_overhead
        return StageCost(seconds=total, breakdown=breakdown)

    # ------------------------------------------------------------------
    def decode_throughput(
        self, batch: int, kv_len: int, comp: CompressionCostSpec
    ) -> float:
        """Decode tokens/second (0.0 on OOM)."""
        cost = self.decode_step(batch, kv_len, comp)
        return 0.0 if cost.oom else batch / cost.seconds

    def prefill_throughput(
        self, batch: int, prompt_len: int, comp: CompressionCostSpec
    ) -> float:
        """Prefill tokens/second (0.0 on OOM)."""
        cost = self.prefill(batch, prompt_len, comp)
        return 0.0 if cost.oom else batch * prompt_len / cost.seconds
