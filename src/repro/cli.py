"""Command-line runner for the paper's experiments.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig1 table3
    python -m repro.cli run all            # every main-paper artifact
    REPRO_SCALE=full python -m repro.cli run table5

Each experiment prints its rendered tables; ``--out DIR`` also writes
them to ``DIR/<name>.txt``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Callable, Dict

from repro.core.config import current_scale
from repro.experiments import (
    fig1_throughput,
    fig2_h800,
    fig3_attention_time,
    fig4_length_dist,
    fig5_latency_cdf,
    fig6_negative_threshold,
    fig7_negative_tasks,
    table3_tp,
    table4_semantic,
    table5_length_ratio,
    table6_predictors,
    table7_negative_bench,
    table8_router,
)

_ANALYTIC = {
    "fig1": lambda scale: fig1_throughput.run(),
    "fig2": lambda scale: fig2_h800.run(),
    "fig3": lambda scale: fig3_attention_time.run(),
    "table3": lambda scale: table3_tp.run(),
}

_GENERATION = {
    "table4": table4_semantic.run,
    "table5": table5_length_ratio.run,
    "fig4": fig4_length_dist.run,
    "fig5": fig5_latency_cdf.run,
    "fig6": fig6_negative_threshold.run,
    "fig7": fig7_negative_tasks.run,
    "table6": table6_predictors.run,
    "table7": table7_negative_bench.run,
    "table8": table8_router.run,
}

EXPERIMENTS: Dict[str, Callable] = {**_ANALYTIC, **_GENERATION}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment names")
    runp = sub.add_parser("run", help="run experiments by name")
    runp.add_argument("names", nargs="+", help="experiment names or 'all'")
    runp.add_argument("--out", type=pathlib.Path, default=None,
                      help="also write rendered output to this directory")
    args = parser.parse_args(argv)

    if args.command == "list":
        scale = current_scale()
        print(f"scale: {scale.name} (set REPRO_SCALE=full for paper scale)")
        for name in EXPERIMENTS:
            kind = "analytic" if name in _ANALYTIC else "generation"
            print(f"  {name:8s} [{kind}]")
        return 0

    names = list(EXPERIMENTS) if "all" in args.names else args.names
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        print(f"known: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2

    scale = current_scale()
    for name in names:
        t0 = time.time()
        result = EXPERIMENTS[name](scale)
        text = result.render()
        print(text)
        print(f"[{name} done in {time.time() - t0:.1f}s]\n")
        if args.out:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
