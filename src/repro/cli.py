"""Command-line runner for the paper's experiments.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig1 table3
    python -m repro.cli run all            # every main-paper artifact
    REPRO_SCALE=full python -m repro.cli run table5
    python -m repro.cli trace --algo kivi-4 --n 16 --policy shortest

Each experiment prints its rendered tables; ``--out DIR`` also writes
them to ``DIR/<name>.txt``.  ``trace`` runs a synthetic request stream
through the event-driven serving simulator and dumps the step-level
timeline (ADMIT / PREFILL / DECODE_STEP / PREEMPT / FINISH / REJECT)
plus the aggregated scheduler metrics.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Callable, Dict

from repro.core.config import current_scale
from repro.experiments import (
    chunked_prefill,
    prefix_caching,
    slo_admission,
    fig1_throughput,
    fig2_h800,
    fig3_attention_time,
    fig4_length_dist,
    fig5_latency_cdf,
    fig6_negative_threshold,
    fig7_negative_tasks,
    table3_tp,
    table4_semantic,
    table5_length_ratio,
    table6_predictors,
    table7_negative_bench,
    table8_router,
)

_ANALYTIC = {
    "fig1": lambda scale: fig1_throughput.run(),
    "fig2": lambda scale: fig2_h800.run(),
    "fig3": lambda scale: fig3_attention_time.run(),
    "table3": lambda scale: table3_tp.run(),
    "chunked": lambda scale: chunked_prefill.run(),
    "slo": lambda scale: slo_admission.run(),
    "prefix": lambda scale: prefix_caching.run(),
}

_GENERATION = {
    "table4": table4_semantic.run,
    "table5": table5_length_ratio.run,
    "fig4": fig4_length_dist.run,
    "fig5": fig5_latency_cdf.run,
    "fig6": fig6_negative_threshold.run,
    "fig7": fig7_negative_tasks.run,
    "table6": table6_predictors.run,
    "table7": table7_negative_bench.run,
    "table8": table8_router.run,
}

EXPERIMENTS: Dict[str, Callable] = {**_ANALYTIC, **_GENERATION}


def run_trace(args) -> int:
    """Serve a synthetic stream and dump the step-level timeline."""
    import numpy as np

    from repro.compression import NoCompression, create
    from repro.engines import ServingCostModel
    from repro.engines.presets import get_engine
    from repro.hardware.specs import get_gpu
    from repro.model.arch import get_arch
    from repro.serving import (
        LatencySummary,
        PrefixIndex,
        ServerInstance,
        ServingRequest,
        StepMetrics,
        Trace,
        make_policy,
    )

    comp = (
        NoCompression() if args.algo == "fp16" else create(args.algo)
    ).cost_spec()
    inst = ServerInstance(
        ServingCostModel(get_arch(args.arch), get_gpu(args.gpu), get_engine(args.engine)),
        comp,
        max_batch=args.max_batch,
        scheduler=make_policy(args.policy),
        admission=args.admission,
        chunk_size=args.chunk_size,
        prefix_cache=PrefixIndex() if args.prefix_caching else None,
    )
    rng = np.random.default_rng(args.seed)
    arrivals = np.cumsum(rng.exponential(1.0 / args.rps, size=args.n))
    prompts = rng.integers(64, 1024, size=args.n)
    resps = rng.integers(8, 256, size=args.n)

    def token_ids(i: int, length: int):
        # every prompt opens with the same synthetic system prompt, so
        # later arrivals hit the prefix cache on its full blocks
        if not args.prefix_caching:
            return None
        shared = range(50_000, 50_000 + 256)
        unique = range(i * 10_000, i * 10_000 + length)
        return tuple([*shared, *unique][:length])

    reqs = [
        ServingRequest(
            request_id=f"r{i}",
            arrival=float(arrivals[i]),
            prompt_len=int(prompts[i]),
            response_len=int(resps[i]),
            ttft_deadline=args.ttft_slo,
            tbot_target=args.tbot_slo,
            token_ids=token_ids(i, int(prompts[i])),
        )
        for i in range(args.n)
    ]
    trace = Trace()
    result = inst.run(reqs, trace=trace)
    chunk = "off" if args.chunk_size is None else str(args.chunk_size)
    slo = ""
    if args.ttft_slo is not None or args.tbot_slo is not None:
        slo = (
            f", SLO ttft<={args.ttft_slo or 'off'}s"
            f" tbot<={args.tbot_slo or 'off'}s"
        )
    prefix = ", prefix caching on" if args.prefix_caching else ""
    lines = [
        f"{args.n} requests @ {args.rps:.1f} req/s on {args.algo}/{args.engine} "
        f"({args.policy} scheduler, {args.admission} admission, "
        f"chunked prefill {chunk}, token budget {inst.token_budget}{slo}{prefix})",
        "",
        trace.render_timeline(limit=args.limit),
        "",
        "== step metrics ==",
        StepMetrics.from_trace(trace).render(),
    ]
    if result.completed:
        lines += [
            "",
            "== latency summary ==",
            "\n".join(
                f"{k:24s} {v:.4f}"
                for k, v in LatencySummary.from_requests(result.completed)
                .as_dict()
                .items()
            ),
        ]
    text = "\n".join(lines)
    print(text)
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "trace.txt").write_text(text + "\n")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment names")
    runp = sub.add_parser("run", help="run experiments by name")
    runp.add_argument("names", nargs="+", help="experiment names or 'all'")
    runp.add_argument("--out", type=pathlib.Path, default=None,
                      help="also write rendered output to this directory")
    tracep = sub.add_parser(
        "trace", help="dump a serving run's step-level event timeline"
    )
    tracep.add_argument("--algo", default="fp16", help="compression algorithm")
    tracep.add_argument("--arch", default="llama-7b")
    tracep.add_argument("--gpu", default="a6000")
    tracep.add_argument("--engine", default="lmdeploy")
    tracep.add_argument("--n", type=int, default=16, help="request count")
    tracep.add_argument("--rps", type=float, default=4.0, help="arrival rate")
    tracep.add_argument("--max-batch", type=int, default=64)
    tracep.add_argument("--policy", default="fcfs",
                        choices=["fcfs", "shortest", "priority", "slo"])
    tracep.add_argument("--admission", default="reserve",
                        choices=["reserve", "dynamic"])
    tracep.add_argument("--chunk-size", type=int, default=None,
                        help="chunked-prefill chunk size in tokens "
                             "(default: single-shot prefill)")
    tracep.add_argument("--ttft-slo", type=float, default=None,
                        help="per-request TTFT deadline in seconds "
                             "(FINISH events flag ttft_miss=1 inline)")
    tracep.add_argument("--tbot-slo", type=float, default=None,
                        help="per-request TBOT target in seconds/token "
                             "(FINISH events flag tbot_miss=1 inline)")
    tracep.add_argument("--prefix-caching", action="store_true",
                        help="attach a prefix index; the synthetic "
                             "prompts share a 256-token system prompt "
                             "so warm arrivals log PREFIX_HIT events")
    tracep.add_argument("--seed", type=int, default=0)
    tracep.add_argument("--limit", type=int, default=None,
                        help="cap the number of timeline lines printed")
    tracep.add_argument("--out", type=pathlib.Path, default=None,
                        help="also write the timeline to this directory")
    args = parser.parse_args(argv)

    if args.command == "trace":
        return run_trace(args)

    if args.command == "list":
        scale = current_scale()
        print(f"scale: {scale.name} (set REPRO_SCALE=full for paper scale)")
        for name in EXPERIMENTS:
            kind = "analytic" if name in _ANALYTIC else "generation"
            print(f"  {name:8s} [{kind}]")
        return 0

    names = list(EXPERIMENTS) if "all" in args.names else args.names
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        print(f"known: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2

    scale = current_scale()
    for name in names:
        t0 = time.time()
        result = EXPERIMENTS[name](scale)
        text = result.render()
        print(text)
        print(f"[{name} done in {time.time() - t0:.1f}s]\n")
        if args.out:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
