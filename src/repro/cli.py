"""Command-line runner for the paper's experiments.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig1 table3
    python -m repro.cli run all            # every main-paper artifact
    REPRO_SCALE=full python -m repro.cli run table5
    python -m repro.cli trace --algo kivi-4 --n 16 --policy shortest

Each experiment prints its rendered tables; ``--out DIR`` also writes
them to ``DIR/<name>.txt``.  ``trace`` runs a synthetic request stream
through the event-driven serving simulator and dumps the step-level
timeline (ADMIT / PREFILL / DECODE_STEP / PREEMPT / FINISH / REJECT)
plus the aggregated scheduler metrics; ``--export jsonl`` /
``--export chrome`` additionally write the raw event stream as JSONL
(reloadable via ``repro.serving.load_jsonl``) or as Chrome/Perfetto
``trace_event`` JSON (open in ``chrome://tracing`` or
https://ui.perfetto.dev).  ``dashboard`` serves the same stream with
telemetry enabled and renders an ASCII dashboard — sparkline gauge
series, latency histograms, SLO topline; ``--refresh S`` re-renders a
frame every S simulated seconds while the run progresses.

``replay`` rebuilds a recorded run from an exported JSONL trace
(scenario + workload headers, written by ``disagg --export-trace`` or
``trace --export jsonl``), re-serves it, and reports any drift in the
folded ``StepMetrics`` — a deterministic build replays bit-for-bit.
``analyze`` mines a recorded trace for anomalies (SLO-miss clusters,
preemption storms, prefix cache-thrash, KV-transfer stalls, autoscaler
flapping), clusters them into scored incidents, and with
``--emit-tests DIR`` distills the top incident per detector into a
standalone pytest regression case with a minimized workload.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Callable, Dict

from repro.core.config import current_scale
from repro.experiments import (
    chunked_prefill,
    prefix_caching,
    serving_disagg,
    serving_replay,
    serving_router,
    slo_admission,
    fig1_throughput,
    fig2_h800,
    fig3_attention_time,
    fig4_length_dist,
    fig5_latency_cdf,
    fig6_negative_threshold,
    fig7_negative_tasks,
    table3_tp,
    table4_semantic,
    table5_length_ratio,
    table6_predictors,
    table7_negative_bench,
    table8_router,
)

_ANALYTIC = {
    "fig1": lambda scale: fig1_throughput.run(),
    "fig2": lambda scale: fig2_h800.run(),
    "fig3": lambda scale: fig3_attention_time.run(),
    "table3": lambda scale: table3_tp.run(),
    "chunked": lambda scale: chunked_prefill.run(),
    "slo": lambda scale: slo_admission.run(),
    "prefix": lambda scale: prefix_caching.run(),
    "router": lambda scale: serving_router.run(),
    "disagg": lambda scale: serving_disagg.run(),
    "replay": lambda scale: serving_replay.run(),
}

_GENERATION = {
    "table4": table4_semantic.run,
    "table5": table5_length_ratio.run,
    "fig4": fig4_length_dist.run,
    "fig5": fig5_latency_cdf.run,
    "fig6": fig6_negative_threshold.run,
    "fig7": fig7_negative_tasks.run,
    "table6": table6_predictors.run,
    "table7": table7_negative_bench.run,
    "table8": table8_router.run,
}

EXPERIMENTS: Dict[str, Callable] = {**_ANALYTIC, **_GENERATION}


def _build_serving(args):
    """Shared ``trace`` / ``dashboard`` setup: one instance plus its
    synthetic request stream, and a one-line run description."""
    import numpy as np

    from repro.compression import NoCompression, create
    from repro.engines import ServingCostModel
    from repro.engines.presets import get_engine
    from repro.hardware.specs import get_gpu
    from repro.model.arch import get_arch
    from repro.serving import (
        PrefixIndex,
        ServerInstance,
        ServingRequest,
        make_policy,
    )

    comp = (
        NoCompression() if args.algo == "fp16" else create(args.algo)
    ).cost_spec()
    inst = ServerInstance(
        ServingCostModel(get_arch(args.arch), get_gpu(args.gpu), get_engine(args.engine)),
        comp,
        max_batch=args.max_batch,
        scheduler=make_policy(args.policy),
        admission=args.admission,
        chunk_size=args.chunk_size,
        prefix_cache=PrefixIndex() if args.prefix_caching else None,
    )
    rng = np.random.default_rng(args.seed)
    arrivals = np.cumsum(rng.exponential(1.0 / args.rps, size=args.n))
    prompts = rng.integers(64, 1024, size=args.n)
    resps = rng.integers(8, 256, size=args.n)

    def token_ids(i: int, length: int):
        # every prompt opens with the same synthetic system prompt, so
        # later arrivals hit the prefix cache on its full blocks
        if not args.prefix_caching:
            return None
        shared = range(50_000, 50_000 + 256)
        unique = range(i * 10_000, i * 10_000 + length)
        return tuple([*shared, *unique][:length])

    reqs = [
        ServingRequest(
            request_id=f"r{i}",
            arrival=float(arrivals[i]),
            prompt_len=int(prompts[i]),
            response_len=int(resps[i]),
            ttft_deadline=args.ttft_slo,
            tbot_target=args.tbot_slo,
            token_ids=token_ids(i, int(prompts[i])),
        )
        for i in range(args.n)
    ]
    chunk = "off" if args.chunk_size is None else str(args.chunk_size)
    slo = ""
    if args.ttft_slo is not None or args.tbot_slo is not None:
        slo = (
            f", SLO ttft<={args.ttft_slo or 'off'}s"
            f" tbot<={args.tbot_slo or 'off'}s"
        )
    prefix = ", prefix caching on" if args.prefix_caching else ""
    header = (
        f"{args.n} requests @ {args.rps:.1f} req/s on {args.algo}/{args.engine} "
        f"({args.policy} scheduler, {args.admission} admission, "
        f"chunked prefill {chunk}, token budget {inst.token_budget}{slo}{prefix})"
    )
    return inst, reqs, header


def run_trace(args) -> int:
    """Serve a synthetic stream and dump the step-level timeline."""
    from repro.serving import (
        LatencySummary,
        StepMetrics,
        Trace,
        dump_jsonl,
        write_chrome_trace,
    )

    inst, reqs, header = _build_serving(args)
    trace = Trace()
    result = inst.run(reqs, trace=trace)
    lines = [
        header,
        "",
        trace.render_timeline(limit=args.limit),
        "",
        "== step metrics ==",
        StepMetrics.from_trace(trace).render(),
    ]
    stats = trace.memory_stats()
    lines += [
        "",
        "== trace buffer ==",
        (
            f"events={stats['events']:,} capacity={stats['capacity']:,} "
            f"payload_columns={stats['payload_columns']} "
            f"buffer_bytes={stats['buffer_bytes']:,} "
            f"dropped={stats['dropped_events']}"
        ),
    ]
    if result.completed:
        lines += [
            "",
            "== latency summary ==",
            "\n".join(
                f"{k:24s} {v:.4f}"
                for k, v in LatencySummary.from_requests(result.completed)
                .as_dict()
                .items()
            ),
        ]
    text = "\n".join(lines)
    print(text)
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "trace.txt").write_text(text + "\n")
    for fmt in args.export or ():
        out_dir = args.out or pathlib.Path(".")
        out_dir.mkdir(parents=True, exist_ok=True)
        if fmt == "jsonl":
            from repro.serving import instance_config, fleet_scenario, workload_specs

            path = out_dir / "trace.jsonl"
            # embed scenario + workload headers so `repro.cli replay`
            # can rebuild this exact run from the file alone
            scenario = fleet_scenario(decode=[instance_config(
                algo=args.algo, arch=args.arch, gpu=args.gpu,
                engine=args.engine, max_batch=args.max_batch,
                policy=args.policy, admission=args.admission,
                chunk_size=args.chunk_size,
                prefix_caching=args.prefix_caching,
            )])
            dump_jsonl(trace, path, scenario=scenario,
                       workload=workload_specs(reqs))
        else:
            path = out_dir / "trace.chrome.json"
            write_chrome_trace(trace, path)
        print(f"[exported {fmt} -> {path}]")
    return 0


def run_dashboard(args) -> int:
    """Serve a synthetic stream with telemetry on; render the dashboard."""
    from repro.serving import EventLoop, Telemetry, Trace, render_dashboard

    inst, reqs, header = _build_serving(args)
    telemetry = Telemetry(
        labels={"policy": args.policy, "compression": args.algo}
    )
    trace = Trace()
    loop = EventLoop(telemetry=telemetry)
    inst.attach(loop, trace, telemetry)
    for r in sorted(reqs, key=lambda r: r.arrival):
        inst.submit(r)
    print(header)
    if args.refresh:
        # live mode: advance the simulated clock in --refresh slices and
        # re-render the dashboard from the registry as it stands mid-run
        clear = "\x1b[H\x1b[2J" if sys.stdout.isatty() else ""
        horizon = 0.0
        while loop.pending:
            horizon = max(horizon + args.refresh, loop.now)
            loop.run(until=horizon)
            frame = render_dashboard(telemetry, trace)
            sep = "" if clear else f"\n--- frame @ {loop.now:.3f}s ---\n"
            print(f"{clear}{sep}{frame}")
    else:
        loop.run()
        print(render_dashboard(telemetry, trace))
    if args.prom_out:
        args.prom_out.parent.mkdir(parents=True, exist_ok=True)
        args.prom_out.write_text(telemetry.render_prometheus())
        print(f"[prometheus exposition -> {args.prom_out}]")
    return 0


def run_route(args) -> int:
    """One compression-aware routing run at a chosen risk threshold."""
    from repro.serving import RoutingPolicy

    requests, ratios = serving_router.build_workload(
        n=args.n, seed=args.seed
    )
    rows = []
    if args.baselines:
        for fleet, algo in (
            ("fp16-static", "fp16"),
            ("compressed-static", "kivi-4"),
        ):
            row = serving_router.run_fleet(
                (algo,) * len(serving_router.MIXED_ALGOS),
                requests, ratios, policy=RoutingPolicy.LOAD_BALANCE,
            )
            rows.append(dict(row, fleet=fleet))
    row = serving_router.run_fleet(
        serving_router.MIXED_ALGOS, requests, ratios,
        risk_threshold=args.risk_threshold, fallback=args.fallback,
    )
    rows.append(dict(row, fleet="mixed"))
    print(
        f"compression routing: {args.n} requests, "
        f"risk threshold {args.risk_threshold:g}, "
        f"fallback {'on' if args.fallback else 'off'}"
    )
    cols = ("fleet", "policy", "quality", "goodput", "ttft_attainment",
            "mean_e2e", "reroutes", "fallbacks")
    print("  ".join(f"{c:>15s}" for c in cols))
    for r in rows:
        cells = []
        for c in cols:
            v = r[c]
            cells.append(
                f"{v:>15.3f}" if isinstance(v, float) else f"{v!s:>15s}"
            )
        print("  ".join(cells))
    return 0


def run_disagg(args) -> int:
    """One disaggregated-fleet run, optionally against the static
    monolithic baselines, at a chosen arrival-rate multiplier."""
    specs = serving_disagg.build_workload(
        args.rate_scale, n=args.n, seed=args.seed
    )
    kinds = ["disagg"]
    if args.baselines:
        kinds = [
            f"static-{n}" for n in serving_disagg.STATIC_SIZES
        ] + kinds
    print(
        f"disaggregated serving: {args.n} requests at "
        f"{args.rate_scale:g}x the base rate "
        f"(diurnal +-{serving_disagg.DIURNAL_AMP:.0%}, "
        f"{serving_disagg.BURST_MULT:g}x burst storm, "
        f"{serving_disagg.TTFT_SLO:g}s TTFT SLO)"
    )
    cols = ("fleet", "ttft_attainment", "mean_ttft", "p95_e2e",
            "completed", "kv_transfers", "kv_transfer_mb",
            "scale_ups", "scale_downs")
    print("  ".join(f"{c:>15s}" for c in cols))
    for kind in kinds:
        export = args.export_trace if kind == "disagg" else None
        if export is not None:
            export.parent.mkdir(parents=True, exist_ok=True)
        r = serving_disagg.run_fleet(
            kind, args.rate_scale, specs, export_path=export
        )
        cells = []
        for c in cols:
            v = r[c]
            cells.append(
                f"{v:>15.3f}" if isinstance(v, float) else f"{v!s:>15s}"
            )
        print("  ".join(cells))
    if args.export_trace is not None:
        print(f"[exported replayable trace -> {args.export_trace}]")
    return 0


def run_replay(args) -> int:
    """Rebuild and re-serve a recorded run; report metric drift."""
    from repro.serving import Telemetry, load_jsonl, replay_trace

    trace = load_jsonl(args.path)
    telemetry = Telemetry(labels={"source": args.path.name})
    report = replay_trace(trace, routing=args.routing, telemetry=telemetry)
    print(report.render())
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "replay.txt").write_text(report.render() + "\n")
    if args.strict and not report.exact:
        print(f"[strict] replay drifted on {len(report.drift)} field(s)",
              file=sys.stderr)
        return 1
    return 0


def run_analyze(args) -> int:
    """Mine a recorded trace for anomalies; optionally emit regression
    tests distilled from the highest-scoring incidents."""
    from repro.serving import (
        default_detectors,
        emit_regression_tests,
        load_jsonl,
        make_detector,
        mine,
    )
    from repro.serving.replay import extract_workload

    trace = load_jsonl(args.path)
    detectors = None
    if args.detectors:
        detectors = [make_detector(n) for n in args.detectors]
    report = mine(trace, detectors=detectors, cluster_gap=args.cluster_gap)
    print(report.render(limit=args.limit))
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "analyze.txt").write_text(
            report.render(limit=args.limit) + "\n"
        )
    if args.emit_tests is not None:
        scenario = trace.meta.get("scenario")
        if scenario is None:
            print("[emit-tests] trace has no scenario header; cannot "
                  "rebuild the run for minimization", file=sys.stderr)
            return 2
        specs = extract_workload(trace).specs
        written = emit_regression_tests(
            report, scenario, specs, args.emit_tests,
            min_score=args.min_score, max_tests=args.max_tests,
            max_evals=args.max_evals,
        )
        for path in written:
            print(f"[emitted regression test -> {path}]")
        if not written:
            print("[emit-tests] no incident survived minimization]")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment names")
    runp = sub.add_parser("run", help="run experiments by name")
    runp.add_argument("names", nargs="+", help="experiment names or 'all'")
    runp.add_argument("--out", type=pathlib.Path, default=None,
                      help="also write rendered output to this directory")
    def add_serving_args(p):
        p.add_argument("--algo", default="fp16", help="compression algorithm")
        p.add_argument("--arch", default="llama-7b")
        p.add_argument("--gpu", default="a6000")
        p.add_argument("--engine", default="lmdeploy")
        p.add_argument("--n", type=int, default=16, help="request count")
        p.add_argument("--rps", type=float, default=4.0, help="arrival rate")
        p.add_argument("--max-batch", type=int, default=64)
        p.add_argument("--policy", default="fcfs",
                       choices=["fcfs", "shortest", "priority", "slo"])
        p.add_argument("--admission", default="reserve",
                       choices=["reserve", "dynamic"])
        p.add_argument("--chunk-size", type=int, default=None,
                       help="chunked-prefill chunk size in tokens "
                            "(default: single-shot prefill)")
        p.add_argument("--ttft-slo", type=float, default=None,
                       help="per-request TTFT deadline in seconds "
                            "(FINISH events flag ttft_miss=1 inline)")
        p.add_argument("--tbot-slo", type=float, default=None,
                       help="per-request TBOT target in seconds/token "
                            "(FINISH events flag tbot_miss=1 inline)")
        p.add_argument("--prefix-caching", action="store_true",
                       help="attach a prefix index; the synthetic "
                            "prompts share a 256-token system prompt "
                            "so warm arrivals log PREFIX_HIT events")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--out", type=pathlib.Path, default=None,
                       help="also write rendered output to this directory")

    tracep = sub.add_parser(
        "trace", help="dump a serving run's step-level event timeline"
    )
    add_serving_args(tracep)
    tracep.add_argument("--limit", type=int, default=None,
                        help="cap the number of timeline lines printed")
    tracep.add_argument("--export", action="append", default=None,
                        choices=["jsonl", "chrome"],
                        help="also export the raw event stream "
                             "(repeatable; jsonl reloads via "
                             "repro.serving.load_jsonl, chrome opens in "
                             "chrome://tracing / Perfetto)")
    dashp = sub.add_parser(
        "dashboard",
        help="serve a synthetic stream with telemetry; render an ASCII "
             "dashboard of gauges, histograms, and SLO attainment",
    )
    add_serving_args(dashp)
    dashp.add_argument("--refresh", type=float, default=None,
                       help="re-render a frame every REFRESH simulated "
                            "seconds while the run progresses "
                            "(default: one frame at the end)")
    dashp.add_argument("--prom-out", type=pathlib.Path, default=None,
                       help="write the Prometheus text exposition of the "
                            "final registry to this file")
    routep = sub.add_parser(
        "route",
        help="serve the mixed-compression fleet through the "
             "compression-aware router at one risk threshold",
    )
    routep.add_argument("--n", type=int, default=96, help="request count")
    routep.add_argument("--seed", type=int, default=11)
    routep.add_argument("--risk-threshold", type=float, default=0.5,
                        help="per-instance risk at or above this gates "
                             "(fallback off) or fails verification "
                             "(fallback on)")
    routep.add_argument("--fallback", action="store_true",
                        help="VeriCache-style optimistic mode: route "
                             "compressed, re-decode failed "
                             "verifications on FP16")
    routep.add_argument("--baselines", action="store_true",
                        help="also serve the static FP16 and static "
                             "compressed fleets for comparison")
    disaggp = sub.add_parser(
        "disagg",
        help="serve a bursty diurnal workload on the disaggregated "
             "prefill/decode fleet with telemetry-driven autoscaling",
    )
    disaggp.add_argument("--n", type=int,
                         default=serving_disagg.N_REQUESTS,
                         help="request count")
    disaggp.add_argument("--seed", type=int, default=serving_disagg.SEED)
    disaggp.add_argument("--rate-scale", type=float, default=10.0,
                         help="arrival-rate multiplier over the base "
                              "rate (the experiment sweeps 1x-10x)")
    disaggp.add_argument("--baselines", action="store_true",
                         help="also serve the static monolithic fleets "
                              "for comparison")
    disaggp.add_argument("--export-trace", type=pathlib.Path, default=None,
                         help="export the disagg run as replayable JSONL "
                              "(scenario + workload headers; feed to "
                              "`repro.cli replay` / `repro.cli analyze`)")
    replayp = sub.add_parser(
        "replay",
        help="rebuild a recorded run from an exported JSONL trace, "
             "re-serve it, and report StepMetrics drift",
    )
    replayp.add_argument("path", type=pathlib.Path,
                         help="JSONL trace with a scenario header "
                              "(see `disagg --export-trace` / "
                              "`trace --export jsonl`)")
    replayp.add_argument("--routing", default="recorded",
                         choices=["recorded", "live"],
                         help="'recorded' pins every request to the "
                              "instance it ran on; 'live' re-routes "
                              "through the fleet's picker")
    replayp.add_argument("--strict", action="store_true",
                         help="exit nonzero if the replayed metrics "
                              "drift from the recording")
    replayp.add_argument("--out", type=pathlib.Path, default=None,
                         help="also write the replay report to this "
                              "directory")
    analyzep = sub.add_parser(
        "analyze",
        help="mine a recorded trace for anomalies (SLO-miss clusters, "
             "preemption storms, KV-transfer stalls, prefix thrash, "
             "autoscaler flapping); optionally emit regression tests",
    )
    analyzep.add_argument("path", type=pathlib.Path,
                          help="JSONL trace to mine")
    from repro.serving.mining import DETECTORS

    analyzep.add_argument("--detectors", action="append", default=None,
                          choices=sorted(DETECTORS),
                          help="run only these detectors (repeatable; "
                               "default: all)")
    analyzep.add_argument("--cluster-gap", type=float, default=2.0,
                          help="max seconds between anomalies merged "
                               "into one incident")
    analyzep.add_argument("--limit", type=int, default=None,
                          help="cap the number of incidents printed")
    analyzep.add_argument("--emit-tests", type=pathlib.Path, default=None,
                          help="distill the top incident per detector "
                               "into a pytest file under this directory "
                               "(requires a scenario header)")
    analyzep.add_argument("--min-score", type=float, default=0.0,
                          help="skip incidents scoring below this")
    analyzep.add_argument("--max-tests", type=int, default=5,
                          help="cap on emitted test files")
    analyzep.add_argument("--max-evals", type=int, default=48,
                          help="re-simulation budget for workload "
                               "minimization per emitted test")
    analyzep.add_argument("--out", type=pathlib.Path, default=None,
                          help="also write the mining report to this "
                               "directory")
    args = parser.parse_args(argv)

    if args.command == "trace":
        return run_trace(args)
    if args.command == "dashboard":
        return run_dashboard(args)
    if args.command == "route":
        return run_route(args)
    if args.command == "disagg":
        return run_disagg(args)
    if args.command == "replay":
        return run_replay(args)
    if args.command == "analyze":
        return run_analyze(args)

    if args.command == "list":
        scale = current_scale()
        print(f"scale: {scale.name} (set REPRO_SCALE=full for paper scale)")
        for name in EXPERIMENTS:
            kind = "analytic" if name in _ANALYTIC else "generation"
            print(f"  {name:8s} [{kind}]")
        return 0

    names = list(EXPERIMENTS) if "all" in args.names else args.names
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        print(f"known: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2

    scale = current_scale()
    for name in names:
        t0 = time.time()
        result = EXPERIMENTS[name](scale)
        text = result.render()
        print(text)
        print(f"[{name} done in {time.time() - t0:.1f}s]\n")
        if args.out:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
