"""Event-driven simulator of serving instances.

One :class:`ServerInstance` is a state machine driven by a shared
:class:`~repro.serving.events.EventLoop`: request arrivals and engine
wake-ups are timed events, and each wake-up performs one unit of work —
admit-and-prefill one request, or run decode steps for the running
batch.  Both batching disciplines run on the same loop:

- *continuous* (iteration-level, LMDeploy/vLLM-style): requests join
  and leave the batch between decode steps; each step is priced for the
  batch's **current** membership and KV lengths, so a request finishing
  mid-block immediately re-prices its peers' steps.
- *static* (eager TRL): a batch is formed, prefilled together, and
  decoded until all members finish; steps stay priced at the formed
  batch size (stragglers hold their padded slots).

With ``chunk_size`` set, continuous mode runs Sarathi/vLLM-style
**chunked prefill**: a prompt longer than the chunk is admitted and
filled chunk by chunk, each chunk alternating with one decode step for
the running batch, so a 3k-token prefill no longer stalls every running
decode for its whole duration.  Each chunk is priced by
``ServingCostModel.prefill_chunk`` (its cost grows with the cached
prefix it attends over), partially-prefilled requests count toward the
KV budget, and under dynamic admission they are the *first* preemption
victims (dropping chunk KV loses no emitted tokens).  ``chunk_size=None``
(the default) reproduces single-shot prefill bit-for-bit; static mode
ignores the knob (eager engines prefill the whole batch at once).

With a :class:`~repro.serving.prefix.PrefixIndex` attached, admission
runs **automatic prefix caching**: a prompt whose leading KV blocks are
already resident (same tokens, same position — matched content-
addressed, like vLLM's prefix caching / SGLang's RadixAttention) starts
with ``req.prefilled = cached`` and only the uncached suffix is priced,
via the same ``prefill_chunk`` model chunked prefill uses — the two
features compose.  Completed prefills register their prompt's blocks
for future arrivals.  Sharing is FP16-only: a compressed instance
(``kv_bytes_ratio < 1`` or a sparse budget) never shares, since evicted
or quantized blocks no longer hold what their content hash promises —
the paper's Section 3.1.2 friction between compression and paged reuse.

Admission is gated by a KV-token budget derived from the memory model.
Two admission modes exist: ``"reserve"`` (seed behaviour — a request's
peak KV footprint is reserved at admission, so the budget can never be
exhausted mid-decode) and ``"dynamic"`` (only the live footprint
counts; decode growth can exhaust the budget, triggering vLLM-style
recompute **preemption** of a policy-chosen victim).  Requests whose
peak footprint exceeds the budget outright are *rejected* with a
recorded failure instead of stalling the clock.

Admission order and preemption victims come from a pluggable
:class:`~repro.serving.scheduler.SchedulerPolicy` (FCFS by default).
Every decision can be recorded in a :class:`~repro.serving.trace.Trace`
for step-level observability (``python -m repro.cli trace``), and the
same event stream can opt-in feed a live
:class:`~repro.serving.telemetry.Telemetry` sink (metrics registry +
dashboard series; ``python -m repro.cli dashboard``) — with
``telemetry=None`` (the default) the instrumentation adds nothing and
traces stay bit-for-bit identical to an uninstrumented run.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compression.base import CompressionCostSpec
from repro.engines.base import ServingCostModel
from repro.serving.events import EventLoop
from repro.serving.prefix import PrefixIndex
from repro.serving.request import ServingRequest
from repro.serving.scheduler import FCFSPolicy, SchedulerPolicy
from repro.serving.telemetry.core import active as _active_telemetry
from repro.serving.trace import EventType, Trace, TraceEvent

ADMISSION_MODES = ("reserve", "dynamic")


@dataclass
class SimulationResult:
    """Outcome of serving a request stream on one instance."""

    requests: List[ServingRequest]
    trace: Optional[Trace] = None

    @property
    def completed(self) -> List[ServingRequest]:
        """Requests that were actually served."""
        return [r for r in self.requests if not r.rejected]

    @property
    def rejected(self) -> List[ServingRequest]:
        """Requests dropped because they could never fit the budget."""
        return [r for r in self.requests if r.rejected]

    def _collect(self, attr: str) -> np.ndarray:
        return np.array([getattr(r, attr) for r in self.completed])

    @property
    def e2e(self) -> np.ndarray:
        """Per-request end-to-end latencies (served requests only)."""
        return self._collect("e2e_latency")

    @property
    def ttft(self) -> np.ndarray:
        """Per-request times to first token."""
        return self._collect("ttft")

    def mean_e2e(self) -> float:
        """Average end-to-end latency (Table 8's headline metric)."""
        lats = self.e2e
        return float(lats.mean()) if lats.size else 0.0

    def percentile_e2e(self, q: float) -> float:
        """E2E latency percentile (e.g. 99 for tail latency)."""
        lats = self.e2e
        return float(np.percentile(lats, q)) if lats.size else 0.0


class ServerInstance:
    """One GPU (or TP group) running one compression configuration."""

    def __init__(
        self,
        cost_model: ServingCostModel,
        comp: CompressionCostSpec,
        max_batch: int = 64,
        decode_block: int = 8,
        scheduler: Optional[SchedulerPolicy] = None,
        admission: str = "reserve",
        chunk_size: Optional[int] = None,
        prefix_cache: Optional[PrefixIndex] = None,
        name: str = "",
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 (or None for single-shot)")
        if admission not in ADMISSION_MODES:
            raise ValueError(
                f"admission must be one of {ADMISSION_MODES}, got {admission!r}"
            )
        self.cost_model = cost_model
        self.comp = comp
        self.max_batch = max_batch
        self.decode_block = decode_block
        self.scheduler = scheduler or FCFSPolicy()
        self.admission = admission
        self.chunk_size = chunk_size
        self.prefix_cache = prefix_cache
        self.name = name
        self.token_budget = self._token_budget()
        self._step_cache: Dict[Tuple[int, int], float] = {}
        self._loop: Optional[EventLoop] = None
        self._trace: Optional[Trace] = None
        self._telemetry = None
        # optional (request, finish_time) completion hook — the router's
        # verify-and-fallback path re-enqueues suspect decodes from here.
        # Deliberately not reset by attach(): the owner installs it once
        # per run, before the cluster attaches instances to the loop.
        self.on_finish: Optional[Callable[[ServingRequest, float], None]] = None
        self._init_state()

    def _token_budget(self) -> int:
        """KV tokens that fit alongside weights and workspace."""
        spec = self.cost_model._memory_spec(self.comp)
        mem = self.cost_model.memory
        lo, hi = 0, 4_000_000
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if mem.breakdown(spec, 1, mid).fits:
                lo = mid
            else:
                hi = mid - 1
        return lo

    @property
    def _prefix_shareable(self) -> bool:
        """Whether this instance can reuse cached prefixes at all.

        FP16 only: quantized or sparsely-evicted KV blocks diverge from
        the content their hash promises (paper Section 3.1.2), and
        static batching has no per-request admission to consult a cache
        from.
        """
        return (
            self.prefix_cache is not None
            and self.comp.kv_bytes_ratio == 1.0
            and self.comp.sparse_budget is None
            and self.cost_model.engine.supports_continuous_batching
        )

    def peek_prefix(self, token_ids: Optional[Sequence[int]]) -> int:
        """Cached-prefix tokens this instance holds for ``token_ids``
        (pure probe for cache-affinity routing; no stats, no LRU touch)."""
        if not self._prefix_shareable or token_ids is None:
            return 0
        return self.prefix_cache.peek(token_ids)

    def _prefix_lookup(self, now: float, req: ServingRequest) -> int:
        """Resident-prefix tokens for an admission; records PREFIX_HIT.

        ``saved_seconds`` is the single-shot prefill delta the reuse
        avoids — telemetry, not the priced cost (a chunked admission's
        actual schedule differs).
        """
        if not self._prefix_shareable or req.token_ids is None:
            return 0
        cached = min(self.prefix_cache.lookup(req.token_ids), req.prompt_len - 1)
        req.cached_prefix = cached
        if self._telemetry is not None:
            self._telemetry.on_prefix_lookup(cached)
            self._telemetry.sample_prefix(self.prefix_cache)
        if cached:
            saved = (
                self.cost_model.prefill(1, req.prompt_len, self.comp).seconds
                - self.cost_model.prefill_chunk(
                    1, req.prompt_len - cached, cached, self.comp
                ).seconds
            )
            self._record(
                now, EventType.PREFIX_HIT, req.request_id,
                cached=cached, prompt=req.prompt_len, saved_seconds=saved,
            )
        return cached

    def _prefix_insert(self, req: ServingRequest) -> None:
        """Register a fully-prefilled prompt's blocks for future reuse."""
        if self._prefix_shareable and req.token_ids is not None:
            self.prefix_cache.insert(req.token_ids)
            if self._telemetry is not None:
                self._telemetry.sample_prefix(self.prefix_cache)

    def _request_tokens(self, req: ServingRequest) -> int:
        """KV tokens a request will occupy at its peak.

        The peak is static per (request, compression config), so it is
        memoized on the request — admission feasibility, overflow checks
        and ``waiting_tokens`` probe it constantly.
        """
        key = self.comp.sparse_budget
        cache = req.peak_cache
        if cache is not None and cache[0] == key:
            return cache[1]
        total = req.total_tokens
        if key is not None:
            total = min(total, key + req.response_len)
        req.peak_cache = (key, total)
        return total

    def _live_tokens(self, req: ServingRequest) -> int:
        """KV tokens a request occupies right now (dynamic admission)."""
        return min(req.prompt_len + max(1, req.generated), self._request_tokens(req))

    # ------------------------------------------------------------------
    # event-loop attachment
    # ------------------------------------------------------------------
    def _init_state(self) -> None:
        self._waiting: List[ServingRequest] = []
        # arrived requests whose peak footprint exceeds the budget:
        # flagged once at enqueue (the peak is static), so the per-wake
        # rejection pass is O(1) when nothing is doomed instead of a
        # full queue scan
        self._doomed: List[ServingRequest] = []
        # whether the waiting queue is arrival-sorted (loop events fire
        # in time order, so only an out-of-order requeue breaks it) —
        # lets FCFS-like policies take the head without a scan
        self._waiting_sorted = True
        self._running: List[ServingRequest] = []
        self._future: List[float] = []  # arrival times not yet reached
        self._used = 0
        self._wake_at: Optional[float] = None
        self._submitted: List[ServingRequest] = []
        # chunked-prefill state: the request currently mid-prefill, and
        # whose turn the next wake-up is (chunk vs decode step)
        self._prefilling: Optional[ServingRequest] = None
        self._decode_turn = False
        # static-batching state
        self._sbatch: List[ServingRequest] = []
        self._sbatch_size = 0
        self._sstep = 0
        self._smax_prompt = 0

    def attach(
        self,
        loop: EventLoop,
        trace: Optional[Trace] = None,
        telemetry=None,
    ) -> None:
        """Bind this instance to a (possibly shared) event loop.

        ``telemetry`` is an opt-in :class:`~repro.serving.telemetry.
        Telemetry` sink: every recorded event is also folded into its
        metrics registry, and each wake-up samples live gauges.  Left
        ``None`` (or passed a disabled sink), nothing is published and
        the run is bit-for-bit the uninstrumented one.
        """
        self._loop = loop
        self._trace = trace
        self._telemetry = _active_telemetry(telemetry)
        self._init_state()

    def submit(self, req: ServingRequest) -> None:
        """Schedule a request's arrival on the attached loop."""
        assert self._loop is not None, "attach() before submit()"
        self._submitted.append(req)
        heapq.heappush(self._future, req.arrival)
        self._loop.schedule(req.arrival, partial(self._on_arrival, req))

    def expect(self, at: float) -> None:
        """Pre-register a *possible* future arrival time.

        The online routing path decides the target instance only at the
        arrival instant, after any in-flight decode block has already
        been simulated past it — so without advance notice a routed
        request waited up to a full ``decode_block`` before admission
        was even considered, while ``submit()`` arrivals broke the block
        at their arrival time.  ``Cluster.run_online`` calls this on
        every instance for every arrival; entries that turn out to be
        someone else's request are pruned at the next wake-up.
        """
        heapq.heappush(self._future, at)

    def receive(self, req: ServingRequest) -> None:
        """Accept a request *now* (online routing path).

        Consumes the matching :meth:`expect` entry exactly like
        ``_on_arrival`` does for ``submit()``, so both paths admit
        mid-decode-block arrivals with identical queue delays.
        """
        assert self._loop is not None, "attach() before receive()"
        self._submitted.append(req)
        if self._future and self._future[0] <= req.arrival:
            heapq.heappop(self._future)
        self._enqueue(req)
        self._ensure_wake()

    def result(self) -> SimulationResult:
        """Collect the outcome after the loop has drained."""
        reqs = sorted(self._submitted, key=lambda r: r.arrival)
        return SimulationResult(requests=reqs, trace=self._trace)

    # live state (read by Cluster / online Router)
    @property
    def queue_depth(self) -> int:
        """Requests waiting (arrived, not yet admitted)."""
        return len(self._waiting)

    @property
    def running_count(self) -> int:
        """Requests currently decoding or mid-prefill."""
        mid = 1 if self._prefilling is not None else 0
        return len(self._running) + len(self._sbatch) + mid

    @property
    def used_tokens(self) -> int:
        """Live KV-token occupancy."""
        if self.admission == "dynamic":
            live = sum(self._live_tokens(r) for r in self._running)
            if self._prefilling is not None:
                live += self._prefilling.prefilled
        else:
            live = self._used
        return live + self._static_used()

    @property
    def waiting_tokens(self) -> int:
        """Peak KV tokens of everything still queued.

        Requests flagged doomed at enqueue are excluded: they sit in
        the waiting queue only until the next wake-up's rejection pass,
        and their (over-budget, often huge) peaks would show phantom
        load to an online router probing ``InstanceView.occupancy`` in
        that window — misrouting real arrivals toward other instances
        while this one is actually about to free up.
        """
        total = sum(self._request_tokens(r) for r in self._waiting)
        if self._doomed:
            total -= sum(self._request_tokens(r) for r in self._doomed)
        return total

    def _static_used(self) -> int:
        return sum(self._request_tokens(r) for r in self._sbatch)

    # ------------------------------------------------------------------
    def run(
        self,
        requests: Sequence[ServingRequest],
        trace: Optional[Trace] = None,
        telemetry=None,
    ) -> SimulationResult:
        """Serve ``requests`` on a private event loop; returns latencies."""
        telemetry = _active_telemetry(telemetry)
        loop = EventLoop(telemetry=telemetry)
        self.attach(loop, trace, telemetry)
        for r in sorted(requests, key=lambda r: r.arrival):
            self.submit(r)
        loop.run()
        return self.result()

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, req: ServingRequest) -> None:
        if self._future and self._future[0] <= req.arrival:
            heapq.heappop(self._future)
        self._enqueue(req)
        self._ensure_wake()

    def _enqueue(self, req: ServingRequest) -> None:
        """Append to the waiting queue, flagging can-never-fit requests
        for the next wake-up's rejection pass."""
        waiting = self._waiting
        if waiting:
            if req.arrival < waiting[-1].arrival:
                self._waiting_sorted = False
        else:
            self._waiting_sorted = True  # removals preserve order
        waiting.append(req)
        if self._request_tokens(req) > self.token_budget:
            self._doomed.append(req)

    def _ensure_wake(self) -> None:
        if self._wake_at is None:
            self._schedule_wake(self._loop.now)

    def _schedule_wake(self, at: float) -> None:
        self._wake_at = at
        self._loop.schedule(at, self._wake)

    def record_event(
        self, time: float, kind: EventType, rid: str = "", **data
    ) -> None:
        """Public trace/telemetry append attributed to this instance.

        The router uses this to emit fleet-level decisions (``REROUTE``
        / ``FALLBACK``) into the same trace stream the instance writes,
        so folds and spans see one consistent timeline per request.
        """
        self._record(time, kind, rid, **data)

    def _record(self, time: float, kind: EventType, rid: str = "", **data) -> None:
        trace, tel = self._trace, self._telemetry
        if tel is None:
            if trace is not None:
                # columnar traces decompose the payload straight into
                # the columns; no TraceEvent object is built at all
                trace.record_fields(time, kind, rid, self.name, data)
            return
        event = TraceEvent(time, kind, rid, self.name, data)
        if trace is not None:
            trace.append(event)
        tel.on_event(event)

    def _record_admit(self, now: float, req: ServingRequest) -> None:
        """ADMIT event carrying the (re)queue epoch and SLO targets."""
        data = {
            "arrival": req.arrival,
            "queued_at": req.queued_at if req.queued_at is not None else req.arrival,
        }
        if req.ttft_deadline is not None:
            data["ttft_deadline"] = req.ttft_deadline
        if req.tbot_target is not None:
            data["tbot_target"] = req.tbot_target
        self._record(now, EventType.ADMIT, req.request_id, **data)

    def _wake(self) -> None:
        self._wake_at = None
        now = self._loop.now
        if self._telemetry is not None:
            self._telemetry.sample_instance(now, self)
        # drop stale expected-arrival entries: every arrival event at or
        # before `now` has already fired (setup-scheduled events precede
        # same-time wake-ups), so anything left is an online arrival
        # that was routed to a different instance
        while self._future and self._future[0] <= now:
            heapq.heappop(self._future)
        self._reject_impossible(now)
        if self.cost_model.engine.supports_continuous_batching:
            self._wake_continuous(now)
        else:
            self._wake_static(now)

    def _reject_impossible(self, now: float) -> None:
        """Drop arrived requests whose peak footprint can never fit.

        Only the requests flagged at enqueue are visited (the waiting
        queue holds arrived requests only — arrivals are loop events —
        and the budget and each peak are static), in queue order.
        """
        if not self._doomed:
            return
        for req in self._doomed:
            self._waiting.remove(req)
            req.rejected = True
            self._record(
                now, EventType.REJECT, req.request_id,
                need=self._request_tokens(req),
                token_budget=self.token_budget,
            )
        self._doomed.clear()

    def _reject(self, now: float, req: ServingRequest, need: int) -> None:
        self._waiting.remove(req)
        req.rejected = True
        self._record(
            now, EventType.REJECT, req.request_id,
            need=need, token_budget=self.token_budget,
        )

    # ------------------------------------------------------------------
    # continuous (iteration-level) batching
    # ------------------------------------------------------------------
    def _wake_continuous(self, now: float) -> None:
        if self._prefilling is not None:
            # a chunked prefill is in progress: alternate one decode
            # step with each chunk so running requests keep emitting
            # tokens while the long prompt fills in
            if self._running and self._decode_turn:
                self._decode(now, limit=1)
            else:
                self._prefill_chunk(now)
            return
        if self._try_admit(now):
            return
        if self._running:
            self._decode(now)
        # else: idle — the next arrival event re-wakes us

    def _admit_need(self, req: ServingRequest) -> int:
        if self.admission == "dynamic":
            return self._live_tokens(req)
        return self._request_tokens(req)

    def _try_admit(self, now: float) -> bool:
        """Admit (and prefill) one request if the policy's pick fits."""
        # the waiting queue holds arrived requests only (arrivals are
        # loop events fired at their arrival time), so no re-filter
        arrived = self._waiting
        if not arrived or len(self._running) >= self.max_batch:
            return False
        if self.scheduler.head_of_sorted and self._waiting_sorted:
            req = arrived[0]  # FCFS on a sorted queue: head-of-line
        else:
            req = arrived[self.scheduler.select(arrived, now)]
        need = self._admit_need(req)
        if self.used_tokens + need > self.token_budget:
            return False  # head-of-line stall until a finish frees budget
        if req.kv_ready:
            # disaggregated decode-stage ingest: the prompt KV arrived
            # with the request (the prefill was priced on the prefill
            # pool and the move by the interconnect model), so admission
            # costs nothing here — the request goes straight to the
            # running batch with its prompt KV counted against the
            # budget.  The prefix index is not consulted or updated:
            # migrated blocks were never hashed on this instance.
            self._waiting.remove(req)
            req.prefill_start = now
            self._record_admit(now, req)
            if req.first_token is None:
                req.first_token = now
            req.prefilled = req.prompt_len
            if req.generated == 0:
                req.generated = 1 if req.response_len > 0 else 0
            if req.done:
                self._finish(req, now)
            else:
                self._running.append(req)
                if self.admission == "reserve":
                    self._used += need
            self._schedule_wake(now)
            return True
        cached = self._prefix_lookup(now, req)
        if (
            self.chunk_size is not None
            and req.prompt_len - cached > self.chunk_size
        ):
            return self._admit_chunked(now, req, need, cached)
        if cached:
            # only the uncached suffix runs; the resident prefix is
            # attended over, not recomputed (prefill_chunk prices that)
            cost = self.cost_model.prefill_chunk(
                1, req.prompt_len - cached, cached, self.comp
            )
        else:
            cost = self.cost_model.prefill(1, req.prompt_len, self.comp)
        if cost.oom:
            self._reject(now, req, need)
            self._schedule_wake(now)
            return True
        self._waiting.remove(req)
        req.prefill_start = now
        self._record_admit(now, req)
        data = {"seconds": cost.seconds, "prompt": req.prompt_len}
        if cached:
            data["cached"] = cached
        self._record(now, EventType.PREFILL, req.request_id, **data)
        end = now + cost.seconds
        if req.first_token is None:  # preserved across recompute preemption
            req.first_token = end
        req.prefilled = req.prompt_len
        req.generated = 1 if req.response_len > 0 else 0
        self._prefix_insert(req)
        if req.done:
            self._finish(req, end)
        else:
            self._running.append(req)
            if self.admission == "reserve":
                self._used += need
        self._schedule_wake(end)
        return True

    def _admit_chunked(
        self, now: float, req: ServingRequest, need: int, cached: int = 0
    ) -> bool:
        """Start a chunked prefill: the prompt fills chunk by chunk,
        interleaved with decode steps for the running batch.  A cached
        prefix is already-filled KV, so chunking starts there."""
        self._waiting.remove(req)
        req.prefill_start = now
        req.prefilled = cached
        self._record_admit(now, req)
        self._prefilling = req
        if self.admission == "reserve":
            self._used += need
        self._prefill_chunk(now)
        return True

    def _prefill_chunk(self, now: float) -> None:
        """Run the next chunk of the in-progress prefill."""
        req = self._prefilling
        chunk = min(self.chunk_size, req.prompt_len - req.prefilled)
        cost = self.cost_model.prefill_chunk(
            1, chunk, req.prefilled, self.comp
        )
        if cost.oom:
            # a later chunk can OOM on activation memory even when the
            # first fit; the request can never complete here — drop it
            self._prefilling = None
            if self.admission == "reserve":
                self._used -= self._request_tokens(req)
            req.prefilled = 0
            req.rejected = True
            self._record(
                now, EventType.REJECT, req.request_id,
                need=self._request_tokens(req), token_budget=self.token_budget,
            )
            self._schedule_wake(now)
            return
        end = now + cost.seconds
        req.prefilled += chunk
        self._record(
            now, EventType.PREFILL_CHUNK, req.request_id,
            seconds=cost.seconds, chunk=chunk,
            prefilled=req.prefilled, prompt=req.prompt_len,
        )
        if req.prefilled >= req.prompt_len:
            self._prefilling = None
            if req.first_token is None:
                req.first_token = end
            req.generated = 1 if req.response_len > 0 else 0
            self._prefix_insert(req)
            if req.done:
                if self.admission == "reserve":
                    self._used -= self._request_tokens(req)
                self._finish(req, end)
            else:
                self._running.append(req)
        self._decode_turn = True  # decodes get the next slot
        self._schedule_wake(end)

    def _finish(self, req: ServingRequest, at: float) -> None:
        req.finish = at
        data = {
            "arrival": req.arrival,
            "first_token": req.first_token,
            "generated": req.generated,
        }
        if req.ttft_deadline is not None:
            data["ttft_deadline"] = req.ttft_deadline
            if req.first_token - req.arrival > req.ttft_deadline:
                data["ttft_miss"] = 1
        if req.tbot_target is not None:
            data["tbot_target"] = req.tbot_target
            if (
                req.generated > 1
                and (at - req.first_token) / (req.generated - 1)
                > req.tbot_target
            ):
                data["tbot_miss"] = 1
        self._record(at, EventType.FINISH, req.request_id, **data)
        if self.on_finish is not None:
            self.on_finish(req, at)

    def _decode_kv_len(self, running: List[ServingRequest]) -> int:
        lens = [r.prompt_len + r.generated for r in running]
        return int(np.mean(lens)) if lens else 0

    def _step_seconds(self, batch: int, kv: int) -> float:
        key = (batch, kv)
        cached = self._step_cache.get(key)
        if cached is None:
            cached = self.cost_model.decode_step(batch, kv, self.comp).seconds
            self._step_cache[key] = cached
        return cached

    def _decode(self, now: float, limit: Optional[int] = None) -> None:
        """Run up to ``decode_block`` steps (or ``limit`` while a chunked
        prefill is interleaving); stop early whenever batch membership
        changes (finish/preempt) so every step is priced for the batch
        actually executing it, or when a new arrival lands.

        Preemption runs *before* each step is priced (vLLM-style): the
        budget check uses the footprint the step is about to write, so
        the executing step always fits.  The pre-fix simulator preempted
        after the step, letting the overflowing step itself be priced
        against a state the memory model rejects — ``seconds=inf`` —
        and silently running the clock to infinity.

        Within one burst the batch membership is constant, so the
        per-step accounting is precomputed on arrays for the whole
        block (:meth:`_decode_burst`): the first-finisher step from the
        minimum remaining response, the budget-overflow horizon from
        the batch's cumulative KV growth, and the trace writes as one
        columnar append.  Steps that hit a boundary the burst cannot
        model — budget overflow forcing a preemption, or a cost-model
        OOM (``seconds=inf``) — fall back to :meth:`_decode_step_slow`,
        the original single-step logic.  Both paths make identical
        decisions at identical clocks.
        """
        clock = now
        self._decode_turn = False
        remaining = self.decode_block if limit is None else limit
        while remaining > 0 and self._running:
            ran, clock, stop = self._decode_burst(clock, remaining)
            remaining -= ran
            if stop or remaining <= 0:
                break
            clock, stop = self._decode_step_slow(clock)
            remaining -= 1
            if stop:
                break
        self._schedule_wake(clock)

    def _decode_burst(
        self, clock: float, max_steps: int
    ) -> Tuple[int, float, bool]:
        """Run consecutive fixed-membership decode steps in bulk.

        Returns ``(steps_ran, clock, stop)``; ``stop`` means the block
        is over (a finish or a mid-block arrival — the same break
        points as the per-step loop).  ``steps_ran == 0`` with
        ``stop=False`` means the very next step needs the slow path
        (preemption pressure or an OOM-priced step).
        """
        running = self._running
        batch = len(running)
        # steps until the earliest finisher leaves the batch (>= 1:
        # running requests are never done)
        fin = min(r.response_len - r.generated for r in running)
        k = fin if fin < max_steps else max_steps
        extra = (
            self._prefilling.prefilled if self._prefilling is not None else 0
        )
        if self.admission == "dynamic":
            # pre-step budget check for step j: every member grows one
            # KV token per step, capped at its peak — find the horizon
            # where the batched footprint first overflows
            base = np.fromiter(
                (r.prompt_len + r.generated for r in running),
                np.int64, count=batch,
            )
            peak = np.fromiter(
                (self._request_tokens(r) for r in running),
                np.int64, count=batch,
            )
            budget = self.token_budget - extra
            if int(peak.sum()) > budget:
                for j in range(k):
                    if int(np.minimum(base + (j + 1), peak).sum()) > budget:
                        k = j
                        break
            if k <= 0:
                return 0, clock, False  # slow path preempts first
        kv_sum = sum(r.prompt_len + r.generated for r in running)
        next_arr = self._future[0] if self._future else None
        inf = float("inf")
        times: List[float] = []
        kvs: List[int] = []
        dts: List[float] = []
        executed = 0
        stop = False
        for _ in range(k):
            # int(sum / batch) is exactly int(np.mean(lengths)) for
            # lengths whose sum stays exact in float64
            kv = int(kv_sum / batch)
            dt = self._step_seconds(batch, kv)
            if dt == inf:
                break  # slow path evicts or drops
            clock += dt
            kv_sum += batch
            times.append(clock)
            kvs.append(kv)
            dts.append(dt)
            executed += 1
            if executed == fin:
                stop = True  # this step finished someone
                break
            if next_arr is not None and next_arr <= clock:
                stop = True  # a new arrival landed mid-block
                break
        if executed == 0:
            return 0, clock, stop
        for r in running:
            r.generated += executed
        trace, tel = self._trace, self._telemetry
        if trace is not None or tel is not None:
            if self.admission == "dynamic":
                steps = np.arange(1, executed + 1)
                used = [
                    int(u) + extra
                    for u in np.minimum(
                        base[None, :] + steps[:, None], peak
                    ).sum(axis=1)
                ]
            else:
                used = self._used + self._static_used()
            fast = (
                getattr(trace, "record_decode_steps", None)
                if trace is not None else None
            )
            if fast is not None or trace is None:
                # columnar trace (or no trace at all): the whole burst
                # lands in one batched call per sink
                if fast is not None:
                    fast(
                        self.name, times, batch, kvs, dts, used,
                        self.token_budget,
                    )
                if tel is not None:
                    tel.on_decode_steps(
                        self.name, times, batch, kvs, dts, used,
                        self.token_budget,
                    )
            else:
                for i in range(executed):
                    self._record(
                        times[i], EventType.DECODE_STEP,
                        batch=batch, kv=kvs[i], seconds=dts[i],
                        used_tokens=(
                            used[i] if isinstance(used, list) else used
                        ),
                        token_budget=self.token_budget,
                        live=batch,
                    )
        if executed == fin:
            for r in [r for r in running if r.done]:
                running.remove(r)
                if self.admission == "reserve":
                    self._used -= self._request_tokens(r)
                self._finish(r, clock)
        return executed, clock, stop

    def _decode_step_slow(self, clock: float) -> Tuple[float, bool]:
        """One decode step with the original per-step logic — handles
        the boundaries the burst cannot: pre-step preemption pressure
        and OOM-priced (``seconds=inf``) steps.  Returns ``(clock,
        stop)`` with ``stop=True`` when the block must end (membership
        changed, a drop, or a mid-block arrival)."""
        preempted = False
        if self.admission == "dynamic":
            preempted = self._preempt_if_needed(clock, pre_step=True)
        if not self._running:
            return clock, True
        batch = len(self._running)
        kv = self._decode_kv_len(self._running)
        dt = self._step_seconds(batch, kv)
        while dt == float("inf") and self._evict_victim(clock):
            # memory-model OOM the token budget missed (per-batch
            # workspace overhead): evict one victim and re-price
            preempted = True
            batch = len(self._running)
            kv = self._decode_kv_len(self._running)
            dt = self._step_seconds(batch, kv)
        if dt == float("inf"):
            # a request whose decode can never fit: drop the
            # scheduler's victim (the request whose footprint caused
            # the OOM, per policy) rather than spinning the clock to
            # infinity
            victim = self._running.pop(
                self.scheduler.victim(self._running, clock)
            )
            if self.admission == "reserve":
                self._used -= self._request_tokens(victim)
            victim.rejected = True
            self._record(
                clock, EventType.REJECT, victim.request_id,
                need=self._request_tokens(victim),
                token_budget=self.token_budget,
                generated=victim.generated,
            )
            return clock, True
        clock += dt
        for r in self._running:
            r.generated += 1
        self._record(
            clock, EventType.DECODE_STEP,
            batch=batch, kv=kv, seconds=dt,
            used_tokens=self.used_tokens, token_budget=self.token_budget,
            live=len(self._running),
        )
        changed = preempted
        for r in [r for r in self._running if r.done]:
            self._running.remove(r)
            if self.admission == "reserve":
                self._used -= self._request_tokens(r)
            self._finish(r, clock)
            changed = True
        if changed:
            return clock, True  # membership changed: re-price next wake
        if self._future and self._future[0] <= clock:
            return clock, True  # a new arrival landed mid-block
        return clock, False

    def _overflow(self, pre_step: bool = False) -> bool:
        """Live footprint (decoding + partially-prefilled) over budget?

        With ``pre_step=True`` the check uses the footprint *after* the
        step about to run (each running request writes one more KV
        token), so the step that executes is guaranteed to fit.
        """
        grow = 1 if pre_step else 0
        live = sum(
            min(
                r.prompt_len + max(1, r.generated) + grow,
                self._request_tokens(r),
            )
            for r in self._running
        )
        if self._prefilling is not None:
            live += self._prefilling.prefilled
        return live > self.token_budget

    def _evict_victim(self, clock: float) -> bool:
        """Evict one request to reclaim memory and requeue it for
        recompute.  A partially-prefilled request is the first victim —
        dropping its chunk KV loses no emitted tokens — then the
        policy's pick among the decoding batch (never the last one, so
        forward progress is guaranteed)."""
        if self._prefilling is not None:
            victim = self._prefilling
            self._prefilling = None
        elif len(self._running) > 1:
            victim = self._running.pop(
                self.scheduler.victim(self._running, clock)
            )
        else:
            return False
        if self.admission == "reserve":
            self._used -= self._request_tokens(victim)
        self._record(
            clock, EventType.PREEMPT, victim.request_id,
            generated=victim.generated,
            prefilled=victim.prefilled,
            requeued_at=clock,
            used_tokens=self.used_tokens,
            token_budget=self.token_budget,
        )
        victim.generated = 0  # recompute-style: KV dropped, re-prefill
        victim.prefilled = 0
        victim.cached_prefix = 0  # re-admission consults the index afresh
        victim.kv_ready = False  # migrated KV dropped too: re-prefill here
        victim.preemptions += 1
        victim.queued_at = clock  # queue delay restarts at the requeue
        self._enqueue(victim)
        return True

    def _preempt_if_needed(self, clock: float, pre_step: bool = False) -> bool:
        """Evict victims until the live footprint fits the budget."""
        preempted = False
        while self._overflow(pre_step) and self._evict_victim(clock):
            preempted = True
        return preempted

    # ------------------------------------------------------------------
    # static batching (engines without continuous batching)
    # ------------------------------------------------------------------
    def _wake_static(self, now: float) -> None:
        if self._sbatch:
            self._static_decode(now)
            return
        self._form_static_batch(now)

    def _form_static_batch(self, now: float) -> None:
        if not self._waiting:
            return  # idle until the next arrival
        batch: List[ServingRequest] = []
        used = 0
        pool = list(self._waiting)
        take_head = self.scheduler.head_of_sorted and self._waiting_sorted
        while pool and len(batch) < self.max_batch:
            req = pool[0] if take_head else pool[self.scheduler.select(pool, now)]
            need = self._request_tokens(req)
            if used + need > self.token_budget:
                break  # head-of-line: keep the policy's ordering
            pool.remove(req)
            used += need
            batch.append(req)
        if not batch:
            return
        max_prompt = max(r.prompt_len for r in batch)
        cost = self.cost_model.prefill(len(batch), max_prompt, self.comp)
        if cost.oom:
            widest = max(batch, key=lambda r: r.prompt_len)
            self._reject(now, widest, self._request_tokens(widest))
            self._schedule_wake(now)
            return
        end = now + cost.seconds
        for r in batch:
            self._waiting.remove(r)
            r.prefill_start = now
            self._record_admit(now, r)
            r.first_token = end
            r.generated = 1 if r.response_len > 0 else 0
        self._record(
            now, EventType.PREFILL,
            seconds=cost.seconds, batch=len(batch), prompt=max_prompt,
        )
        for r in batch:
            if r.done:
                self._finish(r, end)
        self._sbatch = [r for r in batch if not r.done]
        self._sbatch_size = len(batch)
        self._sstep = 0
        self._smax_prompt = max_prompt
        self._schedule_wake(end)

    def _static_decode(self, now: float) -> None:
        """One decode step; stragglers hold the batch, so the step stays
        priced at the *formed* batch size (padded execution)."""
        kv = self._smax_prompt + 1 + self._sstep
        dt = self._step_seconds(self._sbatch_size, kv)
        clock = now + dt
        for r in self._sbatch:
            r.generated += 1
        self._record(
            clock, EventType.DECODE_STEP,
            batch=self._sbatch_size, kv=kv, seconds=dt,
            used_tokens=self.used_tokens, token_budget=self.token_budget,
            live=len(self._sbatch),
        )
        for r in [r for r in self._sbatch if r.done]:
            self._sbatch.remove(r)
            self._finish(r, clock)
        self._sstep += 1
        if not self._sbatch:
            self._sbatch_size = 0
        self._schedule_wake(clock)
