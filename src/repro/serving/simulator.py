"""Discrete-event simulator of one serving instance.

Implements iteration-level (continuous) batching as in LMDeploy/vLLM:
each loop iteration either admits a waiting request (running its prefill)
or executes one decode step for the whole running batch, with step times
priced by the analytical :class:`repro.engines.base.ServingCostModel`.
Admission is gated by a KV-token budget derived from the memory model,
so compression algorithms with smaller caches admit more concurrency —
the systems-level benefit KV compression is meant to buy.

Engines without continuous batching (eager TRL) fall back to static
batching: a batch is formed from waiting requests, prefilled together
and decoded until *all* members finish (stragglers hold the batch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.compression.base import CompressionCostSpec
from repro.engines.base import ServingCostModel
from repro.serving.request import ServingRequest


@dataclass
class SimulationResult:
    """Outcome of serving a request stream on one instance."""

    requests: List[ServingRequest]

    def _collect(self, attr: str) -> np.ndarray:
        return np.array([getattr(r, attr) for r in self.requests])

    @property
    def e2e(self) -> np.ndarray:
        """Per-request end-to-end latencies."""
        return self._collect("e2e_latency")

    @property
    def ttft(self) -> np.ndarray:
        """Per-request times to first token."""
        return self._collect("ttft")

    def mean_e2e(self) -> float:
        """Average end-to-end latency (Table 8's headline metric)."""
        return float(self.e2e.mean())

    def percentile_e2e(self, q: float) -> float:
        """E2E latency percentile (e.g. 99 for tail latency)."""
        return float(np.percentile(self.e2e, q))


class ServerInstance:
    """One GPU (or TP group) running one compression configuration."""

    def __init__(
        self,
        cost_model: ServingCostModel,
        comp: CompressionCostSpec,
        max_batch: int = 64,
        decode_block: int = 8,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.cost_model = cost_model
        self.comp = comp
        self.max_batch = max_batch
        self.decode_block = decode_block
        self.token_budget = self._token_budget()

    def _token_budget(self) -> int:
        """KV tokens that fit alongside weights and workspace."""
        spec = self.cost_model._memory_spec(self.comp)
        mem = self.cost_model.memory
        lo, hi = 0, 4_000_000
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if mem.breakdown(spec, 1, mid).fits:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def _request_tokens(self, req: ServingRequest) -> int:
        """KV tokens a request will occupy at its peak."""
        total = req.total_tokens
        if self.comp.sparse_budget is not None:
            total = min(total, self.comp.sparse_budget + req.response_len)
        return total

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[ServingRequest]) -> SimulationResult:
        """Serve ``requests`` (sorted by arrival); returns latencies."""
        reqs = sorted(requests, key=lambda r: r.arrival)
        if self.cost_model.engine.supports_continuous_batching:
            self._run_continuous(reqs)
        else:
            self._run_static(reqs)
        return SimulationResult(requests=list(reqs))

    # ------------------------------------------------------------------
    def _decode_kv_len(self, running: List[ServingRequest]) -> int:
        lens = [r.prompt_len + r.generated for r in running]
        return int(np.mean(lens)) if lens else 0

    def _run_continuous(self, reqs: List[ServingRequest]) -> None:
        clock = 0.0
        waiting = list(reqs)
        running: List[ServingRequest] = []
        used_tokens = 0

        while waiting or running:
            # admit every arrived request that fits
            admitted = False
            while waiting and len(running) < self.max_batch:
                nxt = waiting[0]
                if nxt.arrival > clock and not running:
                    clock = nxt.arrival  # idle until next arrival
                if nxt.arrival > clock:
                    break
                need = self._request_tokens(nxt)
                if used_tokens + need > self.token_budget:
                    break
                waiting.pop(0)
                nxt.prefill_start = clock
                cost = self.cost_model.prefill(1, nxt.prompt_len, self.comp)
                clock += cost.seconds
                nxt.first_token = clock
                nxt.generated = 1
                used_tokens += need
                running.append(nxt)
                admitted = True
                if nxt.done:
                    nxt.finish = clock
                    running.remove(nxt)
                    used_tokens -= need
            if admitted:
                continue
            if not running:
                continue  # loop back; clock jumps to next arrival

            # a block of decode steps for the whole running batch
            kv = self._decode_kv_len(running)
            step = self.cost_model.decode_step(len(running), kv, self.comp)
            steps = self.decode_block
            if waiting and waiting[0].arrival > clock:
                # don't overshoot the next arrival too far
                gap = waiting[0].arrival - clock
                steps = max(1, min(steps, int(gap / max(step.seconds, 1e-9)) + 1))
            for _ in range(steps):
                clock += step.seconds
                for r in running:
                    r.generated += 1
                finished = [r for r in running if r.done]
                for r in finished:
                    r.finish = clock
                    running.remove(r)
                    used_tokens -= self._request_tokens(r)
                if finished:
                    break

    def _run_static(self, reqs: List[ServingRequest]) -> None:
        clock = 0.0
        idx = 0
        n = len(reqs)
        while idx < n:
            batch: List[ServingRequest] = []
            clock = max(clock, reqs[idx].arrival)
            used = 0
            while (
                idx < n
                and len(batch) < self.max_batch
                and reqs[idx].arrival <= clock
            ):
                need = self._request_tokens(reqs[idx])
                if used + need > self.token_budget:
                    break
                used += need
                batch.append(reqs[idx])
                idx += 1
            if not batch:
                clock = reqs[idx].arrival
                continue
            max_prompt = max(r.prompt_len for r in batch)
            cost = self.cost_model.prefill(len(batch), max_prompt, self.comp)
            for r in batch:
                r.prefill_start = clock
            clock += cost.seconds
            for r in batch:
                r.first_token = clock
                r.generated = 1
            remaining = max(r.response_len for r in batch) - 1
            for s in range(remaining):
                kv = max_prompt + 1 + s
                step = self.cost_model.decode_step(len(batch), kv, self.comp)
                clock += step.seconds
                for r in batch:
                    if not r.done:
                        r.generated += 1
                        if r.done:
                            r.finish = clock
            for r in batch:
                if r.finish is None:
                    r.finish = clock
