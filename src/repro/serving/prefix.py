"""Content-addressed prefix index of the serving simulator.

The simulator prices time, not tensors, so the serving-level prefix
cache tracks *which* KV blocks an instance holds, keyed the same way
:class:`~repro.kvcache.paged.PagedStore` keys physical blocks: each
full block of ``block_size`` token ids gets a chained key (its own ids
plus the key of the block before it), making a cached prefix exactly a
chain of matching keys.  Admission asks "how many prompt tokens are
already resident?" and prices only the uncached suffix via
``ServingCostModel.prefill_chunk``; a cache-affinity router asks the
same question on every instance (:meth:`peek` — no statistics, no LRU
touch) to steer a conversation back to the instance holding its
history.

Capacity is bounded in blocks with LRU eviction, mirroring the
unreferenced-block retention pool of :class:`PagedStore`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Sequence, Tuple

#: chained content key of one full block: (previous block's key, token ids)
BlockKey = Tuple[Optional[tuple], Tuple[int, ...]]


class PrefixIndex:
    """LRU set of cached KV-block keys for one serving instance."""

    def __init__(
        self,
        block_size: int = 16,
        capacity_blocks: int = 4096,
        telemetry=None,
    ) -> None:
        if block_size < 1:
            raise ValueError("block_size must be positive")
        if capacity_blocks < 1:
            raise ValueError("capacity_blocks must be positive")
        self.block_size = block_size
        self.capacity_blocks = capacity_blocks
        self._blocks: "OrderedDict[BlockKey, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evicted_blocks = 0
        # duck-typed sink (repro.serving.telemetry.Telemetry); optional so
        # a standalone index (outside a ServerInstance) can publish too
        self.telemetry = telemetry

    def __len__(self) -> int:
        return len(self._blocks)

    def _keys(self, token_ids: Sequence[int]) -> "list[BlockKey]":
        ids = tuple(int(t) for t in token_ids)
        keys = []
        prev: Optional[tuple] = None
        for i in range(len(ids) // self.block_size):
            key: BlockKey = (prev, ids[i * self.block_size:(i + 1) * self.block_size])
            keys.append(key)
            prev = key
        return keys

    def peek(self, token_ids: Sequence[int]) -> int:
        """Cached-prefix length in tokens; pure (no stats, no LRU touch).

        Routers probe every instance per arrival — a probe must not
        refresh recency or skew hit-rate accounting on instances that
        don't receive the request.
        """
        matched = 0
        for key in self._keys(token_ids):
            if key not in self._blocks:
                break
            matched += self.block_size
        return matched

    def lookup(self, token_ids: Sequence[int]) -> int:
        """Cached-prefix length for an admission: counts hit/miss and
        refreshes the matched blocks' LRU recency."""
        matched = 0
        for key in self._keys(token_ids):
            if key not in self._blocks:
                break
            self._blocks.move_to_end(key)
            matched += self.block_size
        if matched:
            self.hits += 1
        else:
            self.misses += 1
        if self.telemetry is not None:
            self.telemetry.on_prefix_lookup(matched)
            self.telemetry.sample_prefix(self)
        return matched

    def insert(self, token_ids: Sequence[int]) -> int:
        """Register every full block of ``token_ids`` as resident;
        returns blocks newly added.  Oldest blocks fall off LRU when
        capacity is exceeded."""
        added = 0
        for key in self._keys(token_ids):
            if key in self._blocks:
                self._blocks.move_to_end(key)
            else:
                self._blocks[key] = None
                added += 1
        while len(self._blocks) > self.capacity_blocks:
            self._blocks.popitem(last=False)
            self.evicted_blocks += 1
        if self.telemetry is not None:
            self.telemetry.sample_prefix(self)
        return added

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that matched at least one block."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
