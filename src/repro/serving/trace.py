"""Step-level trace of a serving simulation, stored column-wise.

Every scheduling decision the event-driven simulator makes can be
recorded as a typed :class:`TraceEvent`:

- ``ADMIT``        — a request left the queue (data: ``arrival``,
  ``queued_at`` — the last (re)queue epoch, which is the arrival for a
  fresh request and the preemption instant for a requeued one — plus
  ``ttft_deadline`` / ``tbot_target`` when SLO targets are set).
- ``PREFIX_HIT``   — admission found part of the prompt's KV already
  resident in the instance's prefix index (data: ``cached``, ``prompt``,
  ``saved_seconds`` — the single-shot prefill time the reuse avoids).
- ``PREFILL``      — its prompt pass ran in one shot (data: ``seconds``;
  after a prefix hit also ``cached``, the reused tokens not re-priced).
- ``PREFILL_CHUNK`` — one chunk of a chunked prefill ran (data:
  ``seconds``, ``chunk``, ``prefilled``, ``prompt``); the request's
  first token is emitted when the last chunk lands.
- ``DECODE_STEP``  — one decode iteration for the whole batch
  (data: ``batch``, ``kv``, ``seconds``, ``used_tokens``,
  ``token_budget``, ``live``).
- ``PREEMPT``      — a request was evicted mid-decode to reclaim KV
  budget and requeued for recompute (data includes ``requeued_at``,
  the epoch its next queue delay is measured from).
- ``FINISH``       — a request completed (data: ``arrival``,
  ``first_token``, ``generated``, plus ``ttft_deadline`` /
  ``tbot_target`` when set, with ``ttft_miss=1`` / ``tbot_miss=1``
  flagging violated SLOs inline in the rendered timeline).
- ``REJECT``       — a request could never fit and was dropped
  (data: ``need``, ``token_budget``; mid-decode drops also carry
  ``generated``, the tokens emitted before the drop).
- ``REROUTE``      — the ``compression`` routing policy's risk gate
  denied a compressed instance the scorer preferred and redirected the
  request to a lossless one at dispatch time (data: ``risk``,
  ``threshold``, ``denied`` — the index of the compressed instance the
  score alone would have picked; recorded on the instance that actually
  received the request).
- ``FALLBACK``     — a decode that completed on a compressed instance
  failed post-hoc verification and was re-enqueued on an FP16 instance
  (data: ``risk``, ``threshold``, ``generated`` — the compressed tokens
  being discarded — and ``refill``, the lossless response length of the
  re-decode; recorded on the fallback target under the *original*
  request id, at the original's finish time).
- ``KV_TRANSFER``  — a disaggregated fleet migrated a finished prefill's
  KV from a prefill-pool instance to a decode-pool instance (data:
  ``bytes``, ``seconds`` — priced by
  :func:`repro.hardware.interconnect.transfer_time` — plus ``tokens``
  and the ``link`` name; recorded on the *receiving* decode instance at
  the delivery instant).
- ``SCALE_UP`` / ``SCALE_DOWN`` — the fleet autoscaler activated a
  standby instance or started draining an active one (data: ``pool``,
  ``size`` — the pool's active size after the action; recorded on the
  affected instance at the control-loop tick).

Storage is **columnar** (struct-of-arrays): :class:`Trace` keeps NumPy
ring-buffer columns for ``time`` (float64), ``kind`` (uint8 code),
``request_id`` / ``instance`` (int32 indices into intern tables), plus
one ``(values, tags)`` float64/uint8 column pair per payload key.  Each
``EventType`` carries a bounded set of payload fields, so the payload
keys an event holds (and their dict order) are interned as a
*signature* — one int32 per event — which is what lets the columns
reconstruct every event's ``data`` dict byte-for-byte, optional keys
and insertion order included.  Value *types* round-trip exactly: a
per-entry tag distinguishes float / int / bool, and anything else
(strings, NumPy scalars) falls back to an object side-table, so the
rendered timeline and the JSONL export are bit-for-bit what the old
object-per-event collector produced (pinned by
``tests/test_columnar_equivalence.py``).

The buffer grows geometrically (capacity doubles when full); passing
``max_events`` bounds it ring-buffer-style instead — once full, the
*oldest* quarter of events is dropped in one bulk shift and
``dropped_events`` counts what fell off, so fleet-scale sweeps can cap
trace memory.  :meth:`Trace.memory_stats` reports
events/capacity/bytes/drops for the telemetry memory gauges.

The object API is preserved as thin lazy views: ``trace.events``
indexes and iterates like the old list (each row materializes one
:class:`TraceEvent` on demand, cached), and :meth:`Trace.of_kind` /
:meth:`Trace.for_request` return **cached, no-copy** lists — repeat
calls return the same list object until a new matching event is
recorded (treat them as immutable).  ``repro.serving.metrics`` folds
the columns directly with masked NumPy reductions instead of touching
events at all.

:class:`ObjectTrace` is the pre-refactor list-of-objects collector,
kept as the reference implementation: the equivalence suite shadows
every scenario against it, and the scale benchmark uses it as the
"before" measurement.

:func:`request_latencies` folds a trace back into per-request E2E
latencies; they match ``SimulationResult.e2e`` exactly, which is the
invariant the trace tests pin.  ``repro.serving.metrics.StepMetrics``
aggregates a trace into queue-delay / TBOT / occupancy / budget
summaries, and ``python -m repro.cli trace`` dumps a run's timeline.
Folding is tolerant of *partial* traces (a JSONL export truncated
mid-run, or events missing payload keys): events without the keys a
fold needs are skipped rather than raising ``KeyError``, and
``StepMetrics.partial_requests`` counts the requests left incomplete.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class EventType(str, enum.Enum):
    """Kinds of scheduling events the simulator emits."""

    ADMIT = "ADMIT"
    PREFIX_HIT = "PREFIX_HIT"
    PREFILL = "PREFILL"
    PREFILL_CHUNK = "PREFILL_CHUNK"
    DECODE_STEP = "DECODE_STEP"
    PREEMPT = "PREEMPT"
    FINISH = "FINISH"
    REJECT = "REJECT"
    # appended after the seed kinds: uint8 codes in KINDS are positional,
    # so new members must only ever be added at the end
    REROUTE = "REROUTE"
    FALLBACK = "FALLBACK"
    KV_TRANSFER = "KV_TRANSFER"
    SCALE_UP = "SCALE_UP"
    SCALE_DOWN = "SCALE_DOWN"


#: fixed kind <-> uint8 code mapping for the kind column
KINDS: Tuple[EventType, ...] = tuple(EventType)
_KIND_CODE: Dict[EventType, int] = {k: i for i, k in enumerate(KINDS)}

# payload value tags: how to reconstruct the exact Python value
_ABSENT = 0
_FLOAT = 1
_INT = 2
_BOOL = 3
_OBJ = 4  # non-scalar fallback (object side-table keeps the original)

#: ints beyond this are not exact in float64; they take the object path
_MAX_EXACT_INT = 2 ** 53


def _render_value(v) -> str:
    """Payload value formatting for the rendered timeline.

    Bools render as ``1``/``0`` (not ``True``), ints get thousands
    separators, floats four decimals; exporters rely on this exact
    format, pinned by a golden test.
    """
    if isinstance(v, bool):
        return "1" if v else "0"
    if isinstance(v, float):
        return f"{v:.4f}"
    if isinstance(v, int):
        return f"{v:,}"
    return str(v)


@dataclass
class TraceEvent:
    """One timestamped scheduling event."""

    time: float
    kind: EventType
    request_id: str = ""
    instance: str = ""
    data: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        """One timeline line (fixed-width prefix, key=value payload)."""
        payload = " ".join(
            f"{k}={_render_value(v)}" for k, v in self.data.items()
        )
        rid = self.request_id or "-"
        inst = f"[{self.instance}] " if self.instance else ""
        return f"{self.time:10.4f}s  {self.kind.value:13s} {inst}{rid:12s} {payload}"


class _Column:
    """One payload key's value/tag column pair."""

    __slots__ = ("values", "tags")

    def __init__(self, capacity: int) -> None:
        self.values = np.zeros(capacity, dtype=np.float64)
        self.tags = np.zeros(capacity, dtype=np.uint8)

    def grow(self, capacity: int) -> None:
        values = np.zeros(capacity, dtype=np.float64)
        tags = np.zeros(capacity, dtype=np.uint8)
        values[: self.values.size] = self.values
        tags[: self.tags.size] = self.tags
        self.values, self.tags = values, tags

    def shift(self, drop: int, n: int) -> None:
        self.values[: n - drop] = self.values[drop:n]
        self.tags[: n - drop] = self.tags[drop:n]
        self.tags[n - drop:n] = _ABSENT


class _EventsView(Sequence):
    """List-like lazy view over a columnar trace's events."""

    __slots__ = ("_trace",)

    def __init__(self, trace: "Trace") -> None:
        self._trace = trace

    def __len__(self) -> int:
        return self._trace._n

    def __getitem__(self, i):
        n = self._trace._n
        if isinstance(i, slice):
            return [self._trace._event(j) for j in range(*i.indices(n))]
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError("trace event index out of range")
        return self._trace._event(i)

    def __iter__(self):
        for i in range(self._trace._n):
            yield self._trace._event(i)

    def __eq__(self, other) -> bool:
        if isinstance(other, (_EventsView, list, tuple)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"<trace events x{len(self)}>"


class Trace:
    """Columnar append-only collector of scheduling events.

    See the module docstring for the layout.  The object API
    (``events``, :meth:`of_kind`, :meth:`for_request`) materializes
    :class:`TraceEvent` views lazily; the hot path appends scalars (or,
    via :meth:`record_decode_steps`, whole batches) straight into the
    columns.
    """

    def __init__(
        self, capacity: int = 1024, max_events: Optional[int] = None
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if max_events is not None and max_events < 4:
            raise ValueError("max_events must be >= 4 (or None)")
        if max_events is not None:
            capacity = min(capacity, max_events)
        self._cap = capacity
        self._n = 0
        self.max_events = max_events
        self.dropped_events = 0
        #: sidecar metadata (filled by ``load_jsonl`` from a trace
        #: export's header line: schema version, the recording's
        #: ``dropped_events`` / ``max_events``, and optionally the
        #: scenario config + workload the replay harness consumes)
        self.meta: Dict[str, object] = {}
        self._time = np.zeros(capacity, dtype=np.float64)
        self._kind = np.zeros(capacity, dtype=np.uint8)
        self._req = np.zeros(capacity, dtype=np.int32)
        self._inst = np.zeros(capacity, dtype=np.int32)
        self._sig = np.zeros(capacity, dtype=np.int32)
        # intern tables (index 0 is the empty id on both)
        self._req_names: List[str] = [""]
        self._req_ids: Dict[str, int] = {"": 0}
        self._inst_names: List[str] = [""]
        self._inst_ids: Dict[str, int] = {"": 0}
        # payload-key-order signatures (signature 0 = no payload)
        self._sigs: List[Tuple[str, ...]] = [()]
        self._sig_ids: Dict[Tuple[str, ...], int] = {(): 0}
        self._cols: Dict[str, _Column] = {}
        self._obj: Dict[Tuple[int, str], object] = {}
        # lazy caches, invalidated by version bumps
        self._version = 0
        self._mat: Dict[int, TraceEvent] = {}
        self._kind_cache: Dict[EventType, Tuple[int, List[TraceEvent]]] = {}
        self._req_cache: Dict[str, Tuple[int, List[TraceEvent]]] = {}
        self._rows_cache: Dict[EventType, Tuple[int, np.ndarray]] = {}
        # buffer residency, maintained on growth so the telemetry
        # gauges can read it every sample without an O(columns) walk
        self._buffer_bytes = 0
        self._recount_bytes()

    def _recount_bytes(self) -> None:
        self._buffer_bytes = (
            self._time.nbytes + self._kind.nbytes + self._req.nbytes
            + self._inst.nbytes + self._sig.nbytes
            + sum(
                col.values.nbytes + col.tags.nbytes
                for col in self._cols.values()
            )
        )

    # ------------------------------------------------------------------
    # ring-buffer growth
    # ------------------------------------------------------------------
    def _reserve(self, extra: int) -> int:
        """Make room for ``extra`` rows; returns the first row index."""
        need = self._n + extra
        if self.max_events is not None and need > self.max_events:
            # bounded ring: shed the oldest quarter (at least enough to
            # fit) in one bulk shift, so drops stay amortized O(1)
            drop = max(need - self.max_events, self.max_events // 4)
            drop = min(drop, self._n)
            if drop:
                n = self._n
                for arr in (self._time, self._kind, self._req,
                            self._inst, self._sig):
                    arr[: n - drop] = arr[drop:n]
                for col in self._cols.values():
                    col.shift(drop, n)
                self._obj = {
                    (i - drop, k): v
                    for (i, k), v in self._obj.items()
                    if i >= drop
                }
                self._n -= drop
                self.dropped_events += drop
                self._version += 1
                self._mat.clear()
            need = self._n + extra
        while need > self._cap:
            new_cap = max(self._cap * 2, need)
            if self.max_events is not None:
                new_cap = min(max(new_cap, need), max(self.max_events, need))
            self._cap = new_cap
            for name in ("_time", "_kind", "_req", "_inst", "_sig"):
                old = getattr(self, name)
                arr = np.zeros(new_cap, dtype=old.dtype)
                arr[: old.size] = old
                setattr(self, name, arr)
            for col in self._cols.values():
                col.grow(new_cap)
            self._recount_bytes()
        row = self._n
        self._n = row + extra
        self._version += 1
        return row

    def _intern(self, names: List[str], ids: Dict[str, int], name: str) -> int:
        idx = ids.get(name)
        if idx is None:
            idx = ids[name] = len(names)
            names.append(name)
        return idx

    def _signature(self, keys: Tuple[str, ...]) -> int:
        sig = self._sig_ids.get(keys)
        if sig is None:
            sig = self._sig_ids[keys] = len(self._sigs)
            self._sigs.append(keys)
        return sig

    def _column(self, key: str) -> _Column:
        col = self._cols.get(key)
        if col is None:
            col = self._cols[key] = _Column(self._cap)
            self._buffer_bytes += col.values.nbytes + col.tags.nbytes
        return col

    def _set_value(self, row: int, col: _Column, key: str, v) -> None:
        t = type(v)
        if t is float:
            col.values[row] = v
            col.tags[row] = _FLOAT
        elif t is bool:
            col.values[row] = 1.0 if v else 0.0
            col.tags[row] = _BOOL
        elif t is int and -_MAX_EXACT_INT < v < _MAX_EXACT_INT:
            col.values[row] = v
            col.tags[row] = _INT
        else:
            # exact-object fallback (strings, NumPy scalars, huge ints):
            # keep the original for reconstruction, plus a numeric shadow
            # so the folds still see a value when one exists
            self._obj[(row, key)] = v
            try:
                col.values[row] = float(v)
            except (TypeError, ValueError):
                col.values[row] = np.nan
            col.tags[row] = _OBJ

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(
        self,
        time: float,
        kind: EventType,
        request_id: str = "",
        instance: str = "",
        **data,
    ) -> None:
        """Append one event straight into the columns."""
        self.record_fields(time, kind, request_id, instance, data)

    def record_fields(
        self,
        time: float,
        kind: EventType,
        request_id: str,
        instance: str,
        data: Dict[str, float],
    ) -> None:
        """Append one event whose payload dict is already built."""
        row = self._reserve(1)
        self._time[row] = time
        self._kind[row] = _KIND_CODE[kind]
        self._req[row] = (
            self._req_ids.get(request_id)
            if request_id in self._req_ids
            else self._intern(self._req_names, self._req_ids, request_id)
        )
        self._inst[row] = (
            self._inst_ids.get(instance)
            if instance in self._inst_ids
            else self._intern(self._inst_names, self._inst_ids, instance)
        )
        if data:
            keys = tuple(data)
            self._sig[row] = self._signature(keys)
            for k, v in data.items():
                self._set_value(row, self._column(k), k, v)
        else:
            self._sig[row] = 0

    def append(self, event: TraceEvent) -> None:
        """Append an already-built event (decomposed into the columns)."""
        self.record_fields(
            event.time, event.kind, event.request_id, event.instance,
            event.data,
        )

    _DECODE_KEYS = (
        "batch", "kv", "seconds", "used_tokens", "token_budget", "live",
    )

    def record_decode_steps(
        self,
        instance: str,
        times: Sequence[float],
        batch: int,
        kvs: Sequence[int],
        seconds: Sequence[float],
        used_tokens,
        token_budget: int,
    ) -> None:
        """Append a burst of ``DECODE_STEP`` events in one columnar write.

        ``used_tokens`` may be a scalar (reserve admission: occupancy is
        constant across the burst) or a per-step sequence (dynamic
        admission).  ``live`` equals ``batch`` — continuous batching
        records steps only while membership is fixed.  This is the
        simulator's hot-path append: a whole decode block lands as a
        handful of slice assignments instead of per-event dicts.
        """
        k = len(times)
        if k == 0:
            return
        row = self._reserve(k)
        end = row + k
        self._time[row:end] = times
        self._kind[row:end] = _KIND_CODE[EventType.DECODE_STEP]
        self._req[row:end] = 0
        self._inst[row:end] = (
            self._inst_ids.get(instance)
            if instance in self._inst_ids
            else self._intern(self._inst_names, self._inst_ids, instance)
        )
        self._sig[row:end] = self._signature(self._DECODE_KEYS)
        for key, value in (
            ("batch", batch),
            ("kv", kvs),
            ("used_tokens", used_tokens),
            ("token_budget", token_budget),
            ("live", batch),
        ):
            col = self._column(key)
            col.values[row:end] = value
            col.tags[row:end] = _INT
        col = self._column("seconds")
        col.values[row:end] = seconds
        col.tags[row:end] = _FLOAT

    # ------------------------------------------------------------------
    # lazy object views
    # ------------------------------------------------------------------
    def _event(self, row: int) -> TraceEvent:
        ev = self._mat.get(row)
        if ev is None:
            data: Dict[str, float] = {}
            for key in self._sigs[self._sig[row]]:
                col = self._cols[key]
                tag = col.tags[row]
                if tag == _FLOAT:
                    data[key] = float(col.values[row])
                elif tag == _INT:
                    data[key] = int(col.values[row])
                elif tag == _BOOL:
                    data[key] = bool(col.values[row])
                elif tag == _OBJ:
                    data[key] = self._obj[(row, key)]
                # _ABSENT: key recorded for other events only; skip
            ev = TraceEvent(
                float(self._time[row]),
                KINDS[self._kind[row]],
                self._req_names[self._req[row]],
                self._inst_names[self._inst[row]],
                data,
            )
            self._mat[row] = ev
        return ev

    @property
    def events(self) -> _EventsView:
        """Lazy list-like view; each access materializes a
        :class:`TraceEvent` from the columns (cached per row)."""
        return _EventsView(self)

    def rows_of(self, kind: EventType) -> np.ndarray:
        """Row indices of one kind, in time order (cached)."""
        cached = self._rows_cache.get(kind)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        rows = np.nonzero(self._kind[: self._n] == _KIND_CODE[kind])[0]
        self._rows_cache[kind] = (self._version, rows)
        return rows

    def payload(self, key: str):
        """``(values, present)`` float64/bool column views for one
        payload key (``(None, None)`` if no event ever carried it)."""
        col = self._cols.get(key)
        if col is None:
            return None, None
        return col.values[: self._n], col.tags[: self._n] != _ABSENT

    def of_kind(self, kind: EventType) -> List[TraceEvent]:
        """All events of one kind, in time order.

        Returns a **cached view**: repeat calls return the same list
        object until another event of this kind is recorded (no copy —
        ``StepMetrics``-style folds may call this many times).  Treat
        the result as immutable.
        """
        cached = self._kind_cache.get(kind)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        events = [self._event(int(i)) for i in self.rows_of(kind)]
        self._kind_cache[kind] = (self._version, events)
        return events

    def for_request(self, request_id: str) -> List[TraceEvent]:
        """All events touching one request (cached, no-copy view)."""
        cached = self._req_cache.get(request_id)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        idx = self._req_ids.get(request_id)
        if idx is None:
            events: List[TraceEvent] = []
        else:
            rows = np.nonzero(self._req[: self._n] == idx)[0]
            events = [self._event(int(i)) for i in rows]
        self._req_cache[request_id] = (self._version, events)
        return events

    def request_ids(self) -> List[str]:
        """Distinct non-empty request ids, in first-appearance order."""
        return self._req_names[1:]

    def counts(self) -> Dict[str, int]:
        """Event-kind histogram (kinds with at least one event)."""
        hist = np.bincount(self._kind[: self._n], minlength=len(KINDS))
        return {
            kind.value: int(hist[code])
            for code, kind in enumerate(KINDS)
            if hist[code]
        }

    def render_timeline(self, limit: Optional[int] = None) -> str:
        """Human-readable timeline (optionally truncated to ``limit``).

        ``limit=None`` renders everything; any other value is clamped
        to ``[0, len(trace)]``, and a single ``... (N more events)``
        suffix reports exactly the rows cut off (no off-by-one, no
        stray blank lines — ``limit=0`` on an empty trace is ``""``).
        """
        n = self._n
        shown = n if limit is None else max(0, min(limit, n))
        lines = [self._event(i).render() for i in range(shown)]
        if shown < n:
            lines.append(f"... ({n - shown} more events)")
        return "\n".join(lines)

    def memory_stats(self) -> Dict[str, int]:
        """Ring-buffer residency for the telemetry memory gauges.

        O(1): ``buffer_bytes`` is maintained on growth, not summed here
        — the gauges sample this on every instance wake-up.
        """
        return {
            "events": self._n,
            "capacity": self._cap,
            "payload_columns": len(self._cols),
            "buffer_bytes": self._buffer_bytes,
            "dropped_events": self.dropped_events,
        }

    def __len__(self) -> int:
        return self._n


class ObjectTrace:
    """The pre-refactor list-of-objects collector.

    One Python :class:`TraceEvent` (dataclass + payload dict) per
    event, with per-kind and per-request indices maintained on record.
    Kept as the reference implementation: the columnar equivalence
    suite shadows every scenario against it, and
    ``benchmarks/test_serving_scale.py`` measures it as the "before"
    path.  The folds in ``repro.serving.metrics`` fall back to the
    per-event scan when handed one of these.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._by_kind: Dict[EventType, List[TraceEvent]] = {}
        self._by_request: Dict[str, List[TraceEvent]] = {}

    def append(self, event: TraceEvent) -> None:
        """Append an already-built event, keeping the indices current."""
        self.events.append(event)
        self._by_kind.setdefault(event.kind, []).append(event)
        self._by_request.setdefault(event.request_id, []).append(event)

    def record(
        self,
        time: float,
        kind: EventType,
        request_id: str = "",
        instance: str = "",
        **data,
    ) -> None:
        """Append one event."""
        self.append(TraceEvent(time, kind, request_id, instance, data))

    def record_fields(
        self,
        time: float,
        kind: EventType,
        request_id: str,
        instance: str,
        data: Dict[str, float],
    ) -> None:
        self.append(TraceEvent(time, kind, request_id, instance, data))

    def of_kind(self, kind: EventType) -> List[TraceEvent]:
        """All events of one kind, in time order."""
        return list(self._by_kind.get(kind, ()))

    def for_request(self, request_id: str) -> List[TraceEvent]:
        """All events touching one request."""
        return list(self._by_request.get(request_id, ()))

    def request_ids(self) -> List[str]:
        """Distinct non-empty request ids, in first-appearance order."""
        return [rid for rid in self._by_request if rid]

    def counts(self) -> Dict[str, int]:
        """Event-kind histogram."""
        return {
            kind.value: len(events)
            for kind, events in self._by_kind.items()
        }

    def render_timeline(self, limit: Optional[int] = None) -> str:
        """Human-readable timeline (same contract as :class:`Trace`)."""
        n = len(self.events)
        shown = n if limit is None else max(0, min(limit, n))
        lines = [e.render() for e in self.events[:shown]]
        if shown < n:
            lines.append(f"... ({n - shown} more events)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)


def request_latencies(trace) -> Dict[str, float]:
    """Per-request E2E latency reconstructed purely from trace events.

    ``FINISH.time - FINISH.data["arrival"]`` — exactly what the
    simulator stores on each request, so these match
    ``SimulationResult.e2e`` with no tolerance.  FINISH events missing
    ``arrival`` (hand-built or truncated partial traces) are skipped.
    The last FINISH per request wins, matching the object-path fold.
    """
    if isinstance(trace, Trace):
        out: Dict[str, float] = {}
        rows = trace.rows_of(EventType.FINISH)
        arr, present = trace.payload("arrival")
        if arr is None or not len(rows):
            return out
        names = trace._req_names
        times = trace._time
        req = trace._req
        for i in rows.tolist():
            if present[i]:
                out[names[req[i]]] = float(times[i] - arr[i])
        return out
    out = {}
    for e in trace.of_kind(EventType.FINISH):
        if "arrival" in e.data:
            out[e.request_id] = e.time - e.data["arrival"]
    return out


def queue_delays(trace) -> Dict[str, float]:
    """Per-request queue delay (admit time minus the (re)queue epoch).

    Each admission is measured from ``queued_at`` — the arrival for a
    fresh request, the preemption instant for a re-admission — so a
    preempted request's second wait is not double-counted from its
    original arrival.  The last ADMIT wins, matching
    ``ServingRequest.queue_delay`` exactly.  ADMIT events carrying
    neither epoch (partial traces) are skipped.
    """
    if isinstance(trace, Trace):
        out: Dict[str, float] = {}
        rows = trace.rows_of(EventType.ADMIT)
        if not len(rows):
            return out
        qa, qa_p = trace.payload("queued_at")
        ar, ar_p = trace.payload("arrival")
        names = trace._req_names
        times = trace._time
        req = trace._req
        for i in rows.tolist():
            if qa_p is not None and qa_p[i]:
                since = qa[i]
            elif ar_p is not None and ar_p[i]:
                since = ar[i]
            else:
                continue
            out[names[req[i]]] = float(times[i] - since)
        return out
    out = {}
    for e in trace.of_kind(EventType.ADMIT):
        since = e.data.get("queued_at", e.data.get("arrival"))
        if since is not None:
            out[e.request_id] = e.time - since
    return out
