"""Step-level trace of a serving simulation.

Every scheduling decision the event-driven simulator makes can be
recorded as a typed :class:`TraceEvent`:

- ``ADMIT``        — a request left the queue (data: ``arrival``,
  ``queued_at`` — the last (re)queue epoch, which is the arrival for a
  fresh request and the preemption instant for a requeued one — plus
  ``ttft_deadline`` / ``tbot_target`` when SLO targets are set).
- ``PREFIX_HIT``   — admission found part of the prompt's KV already
  resident in the instance's prefix index (data: ``cached``, ``prompt``,
  ``saved_seconds`` — the single-shot prefill time the reuse avoids).
- ``PREFILL``      — its prompt pass ran in one shot (data: ``seconds``;
  after a prefix hit also ``cached``, the reused tokens not re-priced).
- ``PREFILL_CHUNK`` — one chunk of a chunked prefill ran (data:
  ``seconds``, ``chunk``, ``prefilled``, ``prompt``); the request's
  first token is emitted when the last chunk lands.
- ``DECODE_STEP``  — one decode iteration for the whole batch
  (data: ``batch``, ``kv``, ``seconds``, ``used_tokens``,
  ``token_budget``, ``live``).
- ``PREEMPT``      — a request was evicted mid-decode to reclaim KV
  budget and requeued for recompute (data includes ``requeued_at``,
  the epoch its next queue delay is measured from).
- ``FINISH``       — a request completed (data: ``arrival``,
  ``first_token``, ``generated``, plus ``ttft_deadline`` /
  ``tbot_target`` when set, with ``ttft_miss=1`` / ``tbot_miss=1``
  flagging violated SLOs inline in the rendered timeline).
- ``REJECT``       — a request could never fit and was dropped
  (data: ``need``, ``token_budget``; mid-decode drops also carry
  ``generated``, the tokens emitted before the drop).

:func:`request_latencies` folds a trace back into per-request E2E
latencies; they match ``SimulationResult.e2e`` exactly, which is the
invariant the trace tests pin.  ``repro.serving.metrics.StepMetrics``
aggregates a trace into queue-delay / TBOT / occupancy / budget
summaries, and ``python -m repro.cli trace`` dumps a run's timeline.

The collector keeps per-kind and per-request indices updated on every
:meth:`Trace.record`, so :meth:`Trace.of_kind` / :meth:`Trace.for_request`
are O(matches) instead of O(N) scans — ``StepMetrics.from_trace`` calls
them many times per fold.  Folding is tolerant of *partial* traces (a
JSONL export truncated mid-run, or events missing payload keys): events
without the keys a fold needs are skipped rather than raising
``KeyError``, and ``StepMetrics.partial_requests`` counts the requests
left incomplete.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


class EventType(str, enum.Enum):
    """Kinds of scheduling events the simulator emits."""

    ADMIT = "ADMIT"
    PREFIX_HIT = "PREFIX_HIT"
    PREFILL = "PREFILL"
    PREFILL_CHUNK = "PREFILL_CHUNK"
    DECODE_STEP = "DECODE_STEP"
    PREEMPT = "PREEMPT"
    FINISH = "FINISH"
    REJECT = "REJECT"


def _render_value(v) -> str:
    """Payload value formatting for the rendered timeline.

    Bools render as ``1``/``0`` (not ``True``), ints get thousands
    separators, floats four decimals; exporters rely on this exact
    format, pinned by a golden test.
    """
    if isinstance(v, bool):
        return "1" if v else "0"
    if isinstance(v, float):
        return f"{v:.4f}"
    if isinstance(v, int):
        return f"{v:,}"
    return str(v)


@dataclass
class TraceEvent:
    """One timestamped scheduling event."""

    time: float
    kind: EventType
    request_id: str = ""
    instance: str = ""
    data: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        """One timeline line (fixed-width prefix, key=value payload)."""
        payload = " ".join(
            f"{k}={_render_value(v)}" for k, v in self.data.items()
        )
        rid = self.request_id or "-"
        inst = f"[{self.instance}] " if self.instance else ""
        return f"{self.time:10.4f}s  {self.kind.value:13s} {inst}{rid:12s} {payload}"


class Trace:
    """Append-only collector of :class:`TraceEvent` with per-kind and
    per-request indices maintained on record."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._by_kind: Dict[EventType, List[TraceEvent]] = {}
        self._by_request: Dict[str, List[TraceEvent]] = {}

    def append(self, event: TraceEvent) -> None:
        """Append an already-built event, keeping the indices current."""
        self.events.append(event)
        self._by_kind.setdefault(event.kind, []).append(event)
        self._by_request.setdefault(event.request_id, []).append(event)

    def record(
        self,
        time: float,
        kind: EventType,
        request_id: str = "",
        instance: str = "",
        **data: float,
    ) -> None:
        """Append one event."""
        self.append(TraceEvent(time, kind, request_id, instance, data))

    def of_kind(self, kind: EventType) -> List[TraceEvent]:
        """All events of one kind, in time order (indexed, O(matches))."""
        return list(self._by_kind.get(kind, ()))

    def for_request(self, request_id: str) -> List[TraceEvent]:
        """All events touching one request (indexed, O(matches))."""
        return list(self._by_request.get(request_id, ()))

    def request_ids(self) -> List[str]:
        """Distinct non-empty request ids, in first-appearance order."""
        return [rid for rid in self._by_request if rid]

    def counts(self) -> Dict[str, int]:
        """Event-kind histogram."""
        return {
            kind.value: len(events)
            for kind, events in self._by_kind.items()
        }

    def render_timeline(self, limit: Optional[int] = None) -> str:
        """Human-readable timeline (optionally truncated to ``limit``)."""
        events = self.events if limit is None else self.events[:limit]
        lines = [e.render() for e in events]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more events)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)


def request_latencies(trace: Trace) -> Dict[str, float]:
    """Per-request E2E latency reconstructed purely from trace events.

    ``FINISH.time - FINISH.data["arrival"]`` — exactly what the
    simulator stores on each request, so these match
    ``SimulationResult.e2e`` with no tolerance.  FINISH events missing
    ``arrival`` (hand-built or truncated partial traces) are skipped.
    """
    out: Dict[str, float] = {}
    for e in trace.of_kind(EventType.FINISH):
        if "arrival" in e.data:
            out[e.request_id] = e.time - e.data["arrival"]
    return out


def queue_delays(trace: Trace) -> Dict[str, float]:
    """Per-request queue delay (admit time minus the (re)queue epoch).

    Each admission is measured from ``queued_at`` — the arrival for a
    fresh request, the preemption instant for a re-admission — so a
    preempted request's second wait is not double-counted from its
    original arrival.  The last ADMIT wins, matching
    ``ServingRequest.queue_delay`` exactly.  ADMIT events carrying
    neither epoch (partial traces) are skipped.
    """
    out: Dict[str, float] = {}
    for e in trace.of_kind(EventType.ADMIT):
        since = e.data.get("queued_at", e.data.get("arrival"))
        if since is not None:
            out[e.request_id] = e.time - since
    return out
