"""Request router combining the paper's throughput and length predictors.

Reproduces the Section 5.4 experiment: four serving instances, one
running FP16 and three running a compression algorithm, with four
routing policies:

- ``load_balance`` — the baseline: route to the instance with the least
  outstanding KV tokens (the paper's "minimum memory usage").
- ``throughput``  — route to the instance whose *predicted* decode
  throughput for this request is highest.
- ``length``      — route to the instance with the smallest *predicted*
  response length.
- ``both``        — route to the instance with the smallest predicted
  end-to-end latency (prefill + predicted length / predicted decode
  throughput + queued work).

The router makes assignment decisions from predictor estimates and a
lightweight live load model, then each instance's assigned stream is
served by :class:`repro.serving.simulator.ServerInstance`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.request import ServingRequest
from repro.serving.simulator import ServerInstance, SimulationResult

#: (algo_name, batch, kv_len) -> predicted decode tokens/second
ThroughputFn = Callable[[str, int, int], float]
#: (request, algo_name) -> predicted response tokens
LengthFn = Callable[["RoutedRequest", str], float]


class RoutingPolicy(enum.Enum):
    """Routing policies evaluated in Table 8."""

    LOAD_BALANCE = "load_balance"
    THROUGHPUT = "throughput"
    LENGTH = "length"
    BOTH = "both"


@dataclass
class RoutedRequest:
    """A request plus its per-algorithm true response lengths."""

    request_id: str
    arrival: float
    prompt_len: int
    intended_len: int
    lengths_by_algo: Dict[str, int]


@dataclass
class RouterResult:
    """Merged outcome of a routed simulation."""

    results: List[SimulationResult]
    assignment: Dict[str, int]

    def mean_e2e(self) -> float:
        """Average end-to-end latency over all requests."""
        lats = np.concatenate([r.e2e for r in self.results if r.requests])
        return float(lats.mean())

    def all_e2e(self) -> np.ndarray:
        """All end-to-end latencies."""
        return np.concatenate([r.e2e for r in self.results if r.requests])


class Router:
    """Greedy predictor-guided router over heterogeneous instances."""

    def __init__(
        self,
        instances: Sequence[ServerInstance],
        algos: Sequence[str],
        policy: RoutingPolicy,
        throughput_fn: Optional[ThroughputFn] = None,
        length_fn: Optional[LengthFn] = None,
    ) -> None:
        if len(instances) != len(algos):
            raise ValueError("one algorithm label per instance required")
        needs_tp = policy in (RoutingPolicy.THROUGHPUT, RoutingPolicy.BOTH)
        needs_len = policy in (RoutingPolicy.LENGTH, RoutingPolicy.BOTH)
        if needs_tp and throughput_fn is None:
            raise ValueError(f"{policy} requires a throughput predictor")
        if needs_len and length_fn is None:
            raise ValueError(f"{policy} requires a length predictor")
        self.instances = list(instances)
        self.algos = list(algos)
        self.policy = policy
        self.throughput_fn = throughput_fn
        self.length_fn = length_fn

    # ------------------------------------------------------------------
    def _estimate(
        self,
        req: RoutedRequest,
        idx: int,
        load_tokens: np.ndarray,
        load_seconds: np.ndarray,
    ) -> Tuple[float, float, float]:
        """(pred_throughput, pred_length, pred_e2e) for instance ``idx``."""
        algo = self.algos[idx]
        inst = self.instances[idx]
        pred_len = (
            self.length_fn(req, algo)
            if self.length_fn
            else float(req.intended_len)
        )
        active = 1 + int(load_tokens[idx] / max(1, req.prompt_len + pred_len))
        active = min(active, inst.max_batch)
        kv = int(req.prompt_len + pred_len / 2)
        per_seq_rate = 1.0
        if self.throughput_fn:
            # per-sequence decode rate at the load this request would join
            per_seq_rate = self.throughput_fn(algo, active, kv) / active
        prefill = inst.cost_model.prefill(1, req.prompt_len, inst.comp).seconds
        decode = pred_len / max(per_seq_rate, 1e-6)
        e2e = load_seconds[idx] + prefill + decode
        return per_seq_rate, pred_len, e2e

    def _pick(self, req, load_tokens, load_seconds) -> int:
        n = len(self.instances)
        if self.policy == RoutingPolicy.LOAD_BALANCE:
            return int(np.argmin(load_tokens))
        est = [self._estimate(req, i, load_tokens, load_seconds) for i in range(n)]
        if self.policy == RoutingPolicy.THROUGHPUT:
            # highest *per-sequence* decode rate this request would see
            return int(np.argmax([e[0] for e in est]))
        if self.policy == RoutingPolicy.LENGTH:
            return int(np.argmin([e[1] for e in est]))
        return int(np.argmin([e[2] for e in est]))

    # ------------------------------------------------------------------
    def serve(self, requests: Sequence[RoutedRequest]) -> RouterResult:
        """Assign and simulate ``requests``; returns merged latencies."""
        n = len(self.instances)
        load_tokens = np.zeros(n)
        load_seconds = np.zeros(n)
        streams: List[List[ServingRequest]] = [[] for _ in range(n)]
        assignment: Dict[str, int] = {}
        # rough drain rate for the live-load decay (tokens/s per instance)
        drain = np.array(
            [
                inst.cost_model.decode_throughput(8, 1024, inst.comp) or 1.0
                for inst in self.instances
            ]
        )
        last_arrival = 0.0
        for req in sorted(requests, key=lambda r: r.arrival):
            dt = req.arrival - last_arrival
            last_arrival = req.arrival
            load_tokens = np.maximum(0.0, load_tokens - drain * dt)
            load_seconds = np.maximum(0.0, load_seconds - dt)
            idx = self._pick(req, load_tokens, load_seconds)
            algo = self.algos[idx]
            true_len = req.lengths_by_algo[algo]
            streams[idx].append(
                ServingRequest(
                    request_id=req.request_id,
                    arrival=req.arrival,
                    prompt_len=req.prompt_len,
                    response_len=max(1, true_len),
                )
            )
            assignment[req.request_id] = idx
            load_tokens[idx] += req.prompt_len + true_len
            inst = self.instances[idx]
            per_tok = 1.0 / max(drain[idx], 1e-6)
            load_seconds[idx] += true_len * per_tok * 4
        results = [
            inst.run(stream) if stream else SimulationResult(requests=[])
            for inst, stream in zip(self.instances, streams)
        ]
        return RouterResult(results=results, assignment=assignment)
