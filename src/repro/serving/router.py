"""Request router combining the paper's throughput and length predictors.

Reproduces the Section 5.4 experiment: four serving instances, one
running FP16 and three running a compression algorithm, with four
routing policies:

- ``load_balance`` — the baseline: route to the instance with the least
  outstanding KV tokens (the paper's "minimum memory usage").
- ``throughput``  — route to the instance whose *predicted* decode
  throughput for this request is highest.
- ``length``      — route to the instance with the smallest *predicted*
  response length.
- ``both``        — route to the instance with the smallest predicted
  end-to-end latency (prefill + predicted length / predicted decode
  throughput + queued work).
- ``slo``         — route a deadlined arrival to the instance most
  likely to meet its TTFT deadline: maximize predicted slack
  (``ttft_deadline − (backlog drain + own prefill)``), with the backlog
  estimated from live queue depth and KV-token occupancy in online mode
  (the decayed load model offline).  Deadline-free arrivals fall back to
  least-loaded, keeping lightly loaded instances available for urgent
  traffic.
- ``prefix``      — cache-affinity routing: send an arrival to the
  instance holding the longest cached prefix of its prompt
  (``ServerInstance.peek_prefix`` against each instance's live
  :class:`~repro.serving.prefix.PrefixIndex` in online mode; a sticky
  prompt-head -> instance map offline), falling back to least-loaded
  when nobody holds anything.  Keeps a conversation's turns — and all
  sharers of a system prompt — landing where their KV already lives.

Two routing modes share these policies:

- **offline** (:meth:`Router.serve`, the seed path and Table 8 parity
  option): assignments are made up front from predictor estimates and a
  decayed load model, then each per-instance stream is replayed.
- **online** (:meth:`Router.serve_online`): the whole fleet runs as a
  :class:`~repro.serving.cluster.Cluster` on one shared clock, and each
  request is dispatched at its arrival instant against *live* queue
  depth and KV-token occupancy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.cluster import Cluster, InstanceView
from repro.serving.metrics import LatencySummary
from repro.serving.request import ServingRequest
from repro.serving.simulator import ServerInstance, SimulationResult
from repro.serving.trace import Trace

#: (algo_name, batch, kv_len) -> predicted decode tokens/second
ThroughputFn = Callable[[str, int, int], float]
#: (request, algo_name) -> predicted response tokens
LengthFn = Callable[["RoutedRequest", str], float]


class RoutingPolicy(enum.Enum):
    """Routing policies evaluated in Table 8."""

    LOAD_BALANCE = "load_balance"
    THROUGHPUT = "throughput"
    LENGTH = "length"
    BOTH = "both"
    SLO = "slo"
    PREFIX = "prefix"


@dataclass
class RoutedRequest:
    """A request plus its per-algorithm true response lengths.

    ``ttft_deadline`` / ``tbot_target`` are optional per-request SLO
    targets, forwarded onto the concrete :class:`ServingRequest` and
    used by the ``slo`` routing policy.
    """

    request_id: str
    arrival: float
    prompt_len: int
    intended_len: int
    lengths_by_algo: Dict[str, int]
    ttft_deadline: Optional[float] = None
    tbot_target: Optional[float] = None
    token_ids: Optional[Tuple[int, ...]] = None  # for prefix affinity/caching


@dataclass
class RouterResult:
    """Merged outcome of a routed simulation."""

    results: List[SimulationResult]
    assignment: Dict[str, int]
    mode: str = "offline"

    def all_requests(self) -> List[ServingRequest]:
        """Every request record across the fleet."""
        return [r for res in self.results for r in res.requests]

    def mean_e2e(self) -> float:
        """Average end-to-end latency over all served requests."""
        return float(self.all_e2e().mean())

    def all_e2e(self) -> np.ndarray:
        """All end-to-end latencies."""
        return np.concatenate(
            [r.e2e for r in self.results if len(r.completed)]
        )

    def latency_summary(self) -> LatencySummary:
        """Fleet-wide summary including mean TBOT and queue delay."""
        return LatencySummary.from_requests(self.all_requests())


class Router:
    """Greedy predictor-guided router over heterogeneous instances."""

    def __init__(
        self,
        instances: Sequence[ServerInstance],
        algos: Sequence[str],
        policy: RoutingPolicy,
        throughput_fn: Optional[ThroughputFn] = None,
        length_fn: Optional[LengthFn] = None,
    ) -> None:
        if len(instances) != len(algos):
            raise ValueError("one algorithm label per instance required")
        needs_tp = policy in (RoutingPolicy.THROUGHPUT, RoutingPolicy.BOTH)
        needs_len = policy in (RoutingPolicy.LENGTH, RoutingPolicy.BOTH)
        if needs_tp and throughput_fn is None:
            raise ValueError(f"{policy} requires a throughput predictor")
        if needs_len and length_fn is None:
            raise ValueError(f"{policy} requires a length predictor")
        self.instances = list(instances)
        self.algos = list(algos)
        self.policy = policy
        self.throughput_fn = throughput_fn
        self.length_fn = length_fn
        # offline prefix affinity: prompt head -> instance that saw it
        # first (no live cache state exists before the replay runs)
        self._prefix_home: Dict[Tuple[int, ...], int] = {}
        self._home_key_len = 32

    # ------------------------------------------------------------------
    def _drain_rates(self) -> np.ndarray:
        """Rough decode drain rate per instance (tokens/s)."""
        return np.array(
            [
                inst.cost_model.decode_throughput(8, 1024, inst.comp) or 1.0
                for inst in self.instances
            ]
        )

    def _estimate(
        self,
        req: RoutedRequest,
        idx: int,
        load_tokens: np.ndarray,
        load_seconds: np.ndarray,
    ) -> Tuple[float, float, float]:
        """(pred_throughput, pred_length, pred_e2e) for instance ``idx``."""
        algo = self.algos[idx]
        inst = self.instances[idx]
        pred_len = (
            self.length_fn(req, algo)
            if self.length_fn
            else float(req.intended_len)
        )
        active = 1 + int(load_tokens[idx] / max(1, req.prompt_len + pred_len))
        active = min(active, inst.max_batch)
        kv = int(req.prompt_len + pred_len / 2)
        per_seq_rate = 1.0
        if self.throughput_fn:
            # per-sequence decode rate at the load this request would join
            per_seq_rate = self.throughput_fn(algo, active, kv) / active
        prefill = inst.cost_model.prefill(1, req.prompt_len, inst.comp).seconds
        decode = pred_len / max(per_seq_rate, 1e-6)
        e2e = load_seconds[idx] + prefill + decode
        return per_seq_rate, pred_len, e2e

    def _slo_slack(
        self, req: RoutedRequest, idx: int, load_seconds: np.ndarray
    ) -> float:
        """Predicted TTFT slack on instance ``idx``: deadline minus the
        backlog drain plus this request's own prefill."""
        inst = self.instances[idx]
        prefill = inst.cost_model.prefill(1, req.prompt_len, inst.comp).seconds
        return req.ttft_deadline - (load_seconds[idx] + prefill)

    def _pick(self, req, load_tokens, load_seconds) -> int:
        n = len(self.instances)
        if self.policy == RoutingPolicy.LOAD_BALANCE:
            return int(np.argmin(load_tokens))
        if self.policy == RoutingPolicy.PREFIX:
            # offline: no live cache to probe — sticky-route each prompt
            # head to the instance that first saw it, least-loaded else
            ids = getattr(req, "token_ids", None)
            if ids is None:
                return int(np.argmin(load_tokens))
            key = tuple(ids[: self._home_key_len])
            idx = self._prefix_home.get(key)
            if idx is None:
                idx = int(np.argmin(load_tokens))
                self._prefix_home[key] = idx
            return idx
        if self.policy == RoutingPolicy.SLO:
            if getattr(req, "ttft_deadline", None) is None:
                # deadline-free: spread by load, keeping fast instances
                # free for urgent traffic
                return int(np.argmin(load_tokens))
            return int(np.argmax(
                [self._slo_slack(req, i, load_seconds) for i in range(n)]
            ))
        est = [self._estimate(req, i, load_tokens, load_seconds) for i in range(n)]
        if self.policy == RoutingPolicy.THROUGHPUT:
            # highest *per-sequence* decode rate this request would see
            return int(np.argmax([e[0] for e in est]))
        if self.policy == RoutingPolicy.LENGTH:
            return int(np.argmin([e[1] for e in est]))
        return int(np.argmin([e[2] for e in est]))

    def _pick_online(
        self, req: RoutedRequest, views: Sequence[InstanceView], drain: np.ndarray
    ) -> int:
        """Choose an instance from *live* queue depth and occupancy."""
        load_tokens = np.array(
            [v.used_tokens + v.waiting_tokens for v in views], dtype=float
        )
        # live backlog converted to seconds via each instance's drain rate
        load_seconds = load_tokens / np.maximum(drain, 1e-6)
        if self.policy == RoutingPolicy.PREFIX:
            # cache affinity against the *live* prefix indices: longest
            # cached prefix wins, least-loaded when nobody holds any
            ids = getattr(req, "token_ids", None)
            if ids is not None:
                cached = [inst.peek_prefix(ids) for inst in self.instances]
                if max(cached) > 0:
                    return int(np.argmax(cached))
            return int(np.argmin(load_tokens))
        return self._pick(req, load_tokens, load_seconds)

    def _make_request(self, req: RoutedRequest, idx: int) -> ServingRequest:
        algo = self.algos[idx]
        true_len = req.lengths_by_algo[algo]
        pred_len = self.length_fn(req, algo) if self.length_fn else None
        return ServingRequest(
            request_id=req.request_id,
            arrival=req.arrival,
            prompt_len=req.prompt_len,
            response_len=max(1, true_len),
            predicted_len=pred_len,
            ttft_deadline=req.ttft_deadline,
            tbot_target=req.tbot_target,
            token_ids=req.token_ids,
        )

    # ------------------------------------------------------------------
    def serve(
        self,
        requests: Sequence[RoutedRequest],
        online: bool = False,
        trace: Optional[Trace] = None,
        telemetry=None,
    ) -> RouterResult:
        """Assign and simulate ``requests``; returns merged latencies.

        ``online=False`` (default) keeps the seed's offline assignment;
        ``online=True`` delegates to :meth:`serve_online`.  ``telemetry``
        (opt-in) is forwarded to the cluster so one sink aggregates the
        whole fleet.
        """
        if online:
            return self.serve_online(requests, trace=trace, telemetry=telemetry)
        n = len(self.instances)
        load_tokens = np.zeros(n)
        load_seconds = np.zeros(n)
        streams: List[List[ServingRequest]] = [[] for _ in range(n)]
        assignment: Dict[str, int] = {}
        # rough drain rate for the live-load decay (tokens/s per instance)
        drain = self._drain_rates()
        last_arrival = 0.0
        for req in sorted(requests, key=lambda r: r.arrival):
            dt = req.arrival - last_arrival
            last_arrival = req.arrival
            load_tokens = np.maximum(0.0, load_tokens - drain * dt)
            load_seconds = np.maximum(0.0, load_seconds - dt)
            idx = self._pick(req, load_tokens, load_seconds)
            algo = self.algos[idx]
            true_len = req.lengths_by_algo[algo]
            streams[idx].append(self._make_request(req, idx))
            assignment[req.request_id] = idx
            load_tokens[idx] += req.prompt_len + true_len
            per_tok = 1.0 / max(drain[idx], 1e-6)
            load_seconds[idx] += true_len * per_tok * 4
        cluster = Cluster(self.instances)
        results = cluster.run(streams, trace=trace, telemetry=telemetry)
        return RouterResult(results=results, assignment=assignment, mode="offline")

    def serve_online(
        self,
        requests: Sequence[RoutedRequest],
        trace: Optional[Trace] = None,
        telemetry=None,
    ) -> RouterResult:
        """Route each request at its arrival instant on a shared-clock
        cluster, using live queue depth and KV-token occupancy."""
        drain = self._drain_rates()
        cluster = Cluster(self.instances)
        results, assignment = cluster.run_online(
            requests,
            pick=lambda req, views, now: self._pick_online(req, views, drain),
            make=lambda req, idx, now: self._make_request(req, idx),
            trace=trace,
            telemetry=telemetry,
        )
        return RouterResult(results=results, assignment=assignment, mode="online")
