"""Request router combining the paper's throughput and length predictors.

Reproduces the Section 5.4 experiment: four serving instances, one
running FP16 and three running a compression algorithm, with four
routing policies:

- ``load_balance`` — the baseline: route to the instance with the least
  outstanding KV tokens (the paper's "minimum memory usage").
- ``throughput``  — route to the instance whose *predicted* decode
  throughput for this request is highest.
- ``length``      — route to the instance with the smallest *predicted*
  response length.
- ``both``        — route to the instance with the smallest predicted
  end-to-end latency (prefill + predicted length / predicted decode
  throughput + queued work).
- ``slo``         — route a deadlined arrival to the instance most
  likely to meet its TTFT deadline: maximize predicted slack
  (``ttft_deadline − (backlog drain + own prefill)``), with the backlog
  estimated from live queue depth and KV-token occupancy in online mode
  (the decayed load model offline).  Deadline-free arrivals fall back to
  least-loaded, keeping lightly loaded instances available for urgent
  traffic.
- ``prefix``      — cache-affinity routing: send an arrival to the
  instance holding the longest cached prefix of its prompt
  (``ServerInstance.peek_prefix`` against each instance's live
  :class:`~repro.serving.prefix.PrefixIndex` in online mode; a sticky
  prompt-head -> instance map offline), falling back to least-loaded
  when nobody holds anything.  Ties (a shared system prompt warm on
  several instances) break by least live load.  Keeps a conversation's
  turns — and all sharers of a system prompt — landing where their KV
  already lives.
- ``compression`` — compression-aware routing (the live-loop version of
  the paper's Section 5 tooling): score every instance by predicted
  end-to-end latency (length predictor x throughput predictor + live
  backlog), discounted by the instance's cached prefix of this prompt,
  then inflated by a soft risk penalty on compressed instances (the
  negative-sample risk score — a request likely to *degrade* under
  compression should prefer lossless serving), by KV-occupancy
  pressure, and by predicted TTFT-deadline overrun.  A configurable
  ``risk_threshold`` adds a hard quality gate: requests whose risk
  crosses it are kept off compressed instances entirely (a ``REROUTE``
  trace event records each denial).  With ``fallback=True`` the gate
  goes optimistic, VeriCache-style: risky requests may decode
  compressed for fast first tokens, but any compressed decode that
  fails post-hoc verification (``verify_fn``, defaulting to the same
  risk-threshold test) is re-enqueued on the least-loaded FP16 instance
  at its finish instant (``FALLBACK`` event) — lossy serving made
  lossless at a measurable goodput cost.
  :meth:`RouterResult.effective_summary` reports the client-visible
  latencies with each fallback re-decode folded into its original
  request (arrival and first token stay the original's).

Two routing modes share these policies:

- **offline** (:meth:`Router.serve`, the seed path and Table 8 parity
  option): assignments are made up front from predictor estimates and a
  decayed load model, then each per-instance stream is replayed.
- **online** (:meth:`Router.serve_online`): the whole fleet runs as a
  :class:`~repro.serving.cluster.Cluster` on one shared clock, and each
  request is dispatched at its arrival instant against *live* queue
  depth and KV-token occupancy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.cluster import Cluster, InstanceView
from repro.serving.metrics import LatencySummary
from repro.serving.request import ServingRequest
from repro.serving.simulator import ServerInstance, SimulationResult
from repro.serving.trace import EventType, Trace

#: (algo_name, batch, kv_len) -> predicted decode tokens/second
ThroughputFn = Callable[[str, int, int], float]
#: (request, algo_name) -> predicted response tokens
LengthFn = Callable[["RoutedRequest", str], float]
#: request -> negative-sample risk score in [0, 1]
RiskFn = Callable[["RoutedRequest"], float]
#: request -> True when a compressed decode fails verification
VerifyFn = Callable[["RoutedRequest"], bool]


class RoutingPolicy(enum.Enum):
    """Routing policies evaluated in Table 8."""

    LOAD_BALANCE = "load_balance"
    THROUGHPUT = "throughput"
    LENGTH = "length"
    BOTH = "both"
    SLO = "slo"
    PREFIX = "prefix"
    COMPRESSION = "compression"


@dataclass
class RoutedRequest:
    """A request plus its per-algorithm true response lengths.

    ``ttft_deadline`` / ``tbot_target`` are optional per-request SLO
    targets, forwarded onto the concrete :class:`ServingRequest` and
    used by the ``slo`` routing policy.
    """

    request_id: str
    arrival: float
    prompt_len: int
    intended_len: int
    lengths_by_algo: Dict[str, int]
    ttft_deadline: Optional[float] = None
    tbot_target: Optional[float] = None
    token_ids: Optional[Tuple[int, ...]] = None  # for prefix affinity/caching
    #: negative-sample risk score in [0, 1] — the ``compression`` policy
    #: reads it (unless the Router was given a ``risk_fn``); 0 / unset
    #: means "safe under any compression algorithm"
    risk: Optional[float] = None


@dataclass
class RouterResult:
    """Merged outcome of a routed simulation."""

    results: List[SimulationResult]
    assignment: Dict[str, int]
    mode: str = "offline"
    #: original request id -> fallback re-decode id (``<rid>#fb``) for
    #: every verify-and-fallback re-enqueue this run performed
    fallbacks: Dict[str, str] = field(default_factory=dict)
    #: risk-gate denials: requests redirected off a compressed instance
    reroutes: int = 0

    def all_requests(self) -> List[ServingRequest]:
        """Every request record across the fleet (fallback re-decodes
        included, as their own ``<rid>#fb`` records)."""
        return [r for res in self.results for r in res.requests]

    def mean_e2e(self) -> float:
        """Average end-to-end latency over all served requests (0.0 when
        nothing completed, matching ``LatencySummary``'s degenerate
        handling)."""
        lats = self.all_e2e()
        return float(lats.mean()) if lats.size else 0.0

    def all_e2e(self) -> np.ndarray:
        """All end-to-end latencies (empty when nothing completed)."""
        arrays = [r.e2e for r in self.results if len(r.completed)]
        if not arrays:
            return np.empty(0)
        return np.concatenate(arrays)

    def latency_summary(self) -> LatencySummary:
        """Fleet-wide summary including mean TBOT and queue delay."""
        return LatencySummary.from_requests(self.all_requests())

    def effective_requests(self) -> List[ServingRequest]:
        """One record per *logical* request, fallbacks folded in.

        A completed fallback re-decode replaces its original's finish
        time and token count — the client keeps the compressed stream's
        first token (``first_token`` and ``arrival`` stay the
        original's) but is only done once the verified lossless decode
        lands.  A fallback that was rejected or never finished leaves
        the original record untouched.
        """
        if not self.fallbacks:
            return self.all_requests()
        by_id = {r.request_id: r for r in self.all_requests()}
        fb_ids = set(self.fallbacks.values())
        merged: List[ServingRequest] = []
        for req in self.all_requests():
            if req.request_id in fb_ids:
                continue  # folded into its original below
            fb = by_id.get(self.fallbacks.get(req.request_id, ""))
            if fb is not None and not fb.rejected and fb.finish is not None:
                merged.append(
                    replace(req, finish=fb.finish, generated=fb.generated)
                )
            else:
                merged.append(req)
        return merged

    def effective_summary(self) -> LatencySummary:
        """Client-visible fleet summary over :meth:`effective_requests`."""
        return LatencySummary.from_requests(self.effective_requests())


class Router:
    """Greedy predictor-guided router over heterogeneous instances."""

    def __init__(
        self,
        instances: Sequence[ServerInstance],
        algos: Sequence[str],
        policy: RoutingPolicy,
        throughput_fn: Optional[ThroughputFn] = None,
        length_fn: Optional[LengthFn] = None,
        risk_fn: Optional[RiskFn] = None,
        risk_threshold: float = 0.5,
        fallback: bool = False,
        verify_fn: Optional[VerifyFn] = None,
    ) -> None:
        if len(instances) != len(algos):
            raise ValueError("one algorithm label per instance required")
        needs_tp = policy in (RoutingPolicy.THROUGHPUT, RoutingPolicy.BOTH)
        needs_len = policy in (RoutingPolicy.LENGTH, RoutingPolicy.BOTH)
        if needs_tp and throughput_fn is None:
            raise ValueError(f"{policy} requires a throughput predictor")
        if needs_len and length_fn is None:
            raise ValueError(f"{policy} requires a length predictor")
        if risk_threshold < 0.0:
            raise ValueError("risk_threshold must be >= 0")
        if fallback and policy is not RoutingPolicy.COMPRESSION:
            raise ValueError("verify-and-fallback requires the compression policy")
        self.instances = list(instances)
        self.algos = list(algos)
        self.policy = policy
        self.throughput_fn = throughput_fn
        self.length_fn = length_fn
        self.risk_fn = risk_fn
        self.risk_threshold = float(risk_threshold)
        self.fallback = bool(fallback)
        self.verify_fn = verify_fn
        # a compressed instance loses fidelity on negative samples; same
        # test the prefix-sharing gate uses (quantized or sparse KV)
        self._compressed = [
            inst.comp.kv_bytes_ratio < 1.0 or inst.comp.sparse_budget is not None
            for inst in self.instances
        ]
        # offline prefix affinity: prompt head -> instance that saw it
        # first (no live cache state exists before the replay runs)
        self._prefix_home: Dict[Tuple[int, ...], int] = {}
        self._home_key_len = 32
        # per-run verify-and-fallback state (reset by serve/serve_online)
        self._routed_by_rid: Dict[str, Tuple[RoutedRequest, float]] = {}
        self._fallbacks: Dict[str, str] = {}
        self._fb_assignment: Dict[str, int] = {}
        self._reroutes = 0

    # ------------------------------------------------------------------
    def _drain_rates(self) -> np.ndarray:
        """Rough decode drain rate per instance (tokens/s)."""
        return np.array(
            [
                inst.cost_model.decode_throughput(8, 1024, inst.comp) or 1.0
                for inst in self.instances
            ]
        )

    def _estimate(
        self,
        req: RoutedRequest,
        idx: int,
        load_tokens: np.ndarray,
        load_seconds: np.ndarray,
    ) -> Tuple[float, float, float]:
        """(pred_throughput, pred_length, pred_e2e) for instance ``idx``."""
        algo = self.algos[idx]
        inst = self.instances[idx]
        pred_len = (
            self.length_fn(req, algo)
            if self.length_fn
            else float(req.intended_len)
        )
        active = 1 + int(load_tokens[idx] / max(1, req.prompt_len + pred_len))
        active = min(active, inst.max_batch)
        kv = int(req.prompt_len + pred_len / 2)
        per_seq_rate = 1.0
        if self.throughput_fn:
            # per-sequence decode rate at the load this request would join
            per_seq_rate = self.throughput_fn(algo, active, kv) / active
        prefill = inst.cost_model.prefill(1, req.prompt_len, inst.comp).seconds
        decode = pred_len / max(per_seq_rate, 1e-6)
        e2e = load_seconds[idx] + prefill + decode
        return per_seq_rate, pred_len, e2e

    def _slo_slack(
        self, req: RoutedRequest, idx: int, load_seconds: np.ndarray
    ) -> float:
        """Predicted TTFT slack on instance ``idx``: deadline minus the
        backlog drain plus this request's own prefill."""
        inst = self.instances[idx]
        prefill = inst.cost_model.prefill(1, req.prompt_len, inst.comp).seconds
        return req.ttft_deadline - (load_seconds[idx] + prefill)

    # ------------------------------------------------------------------
    # compression-aware scoring
    # ------------------------------------------------------------------
    def _risk(self, req: RoutedRequest) -> float:
        """Negative-sample risk score for a request, floored at 0."""
        if self.risk_fn is not None:
            risk = self.risk_fn(req)
        else:
            risk = getattr(req, "risk", None) or 0.0
        return max(0.0, float(risk))

    def _instance_risks(self, req: RoutedRequest, risk: float) -> np.ndarray:
        """The scalar negative-sample risk localised per instance.

        With a length predictor, an instance whose algorithm is
        predicted to keep the full response carries no risk for this
        request — a sample fragile only under sparsification can still
        be served losslessly-in-effect by a quantised instance.  The
        scalar risk concentrates on the instances predicted to contract
        the response (normalised by the worst predicted contraction).
        Without a length signal every compressed instance carries the
        full scalar risk.  Lossless instances always carry zero.
        """
        n = len(self.instances)
        if risk <= 0.0:
            return np.zeros(n)
        if self.length_fn is not None:
            intended = max(float(req.intended_len), 1.0)
            contraction = np.array(
                [
                    max(
                        0.0,
                        1.0 - self.length_fn(req, self.algos[i]) / intended,
                    )
                    if self._compressed[i]
                    else 0.0
                    for i in range(n)
                ]
            )
            if contraction.max() > 0.0:
                return risk * contraction / contraction.max()
        # no length signal to localise the risk: spread it
        return np.where(self._compressed, risk, 0.0)

    def _compression_score(
        self,
        req: RoutedRequest,
        idx: int,
        load_tokens: np.ndarray,
        load_seconds: np.ndarray,
        occupancy: np.ndarray,
        queue_depth: np.ndarray,
        cached: int,
        risk: float,
    ) -> float:
        """Lower is better: backlog and marginal work priced in
        instance-seconds at the instance's true effective rate,
        prefix-discounted, inflated by quality risk, occupancy pressure
        and predicted SLO overrun."""
        inst = self.instances[idx]
        algo = self.algos[idx]
        prefill = inst.cost_model.prefill(1, req.prompt_len, inst.comp).seconds
        pred_len = (
            self.length_fn(req, algo)
            if self.length_fn
            else float(req.intended_len)
        )
        kv = int(req.prompt_len + pred_len / 2)
        batch = max(inst.max_batch, 1)
        tp = (
            self.throughput_fn(algo, batch, kv)
            if self.throughput_fn
            else inst.cost_model.decode_throughput(batch, kv, inst.comp)
        ) or 1.0
        # instance-seconds one request of this shape consumes: its
        # prefill is serial, its decode claims pred_len tokens out of
        # the full-batch aggregate rate — prefill is compute-bound and
        # near-identical across compression variants, so effective
        # rates differ far less than raw decode throughput suggests
        service = prefill + pred_len / max(tp, 1e-6)
        eff_rate = (req.prompt_len + pred_len) / max(service, 1e-9)
        # backlog priced at the instance's own effective rate: the
        # faster instance genuinely clears the same token backlog
        # sooner and should absorb proportionally more traffic
        wait = load_tokens[idx] / eff_rate
        score = wait + service
        if cached > 0:
            # live cached prefix: admission will only price the suffix
            saved = (
                prefill
                - inst.cost_model.prefill_chunk(
                    1, req.prompt_len - cached, cached, inst.comp
                ).seconds
            )
            score = max(score - saved, 1e-9)
        # soft risk penalty: requests prefer instances predicted not to
        # degrade them, even below the hard threshold (``risk`` here is
        # this instance's localised risk — zero on lossless instances)
        score *= 1.0 + risk
        # occupancy pressure: a near-full KV budget means queueing and
        # preemption risk the load model can't see yet
        score *= 1.0 + occupancy[idx] ** 2
        if req.ttft_deadline is not None:
            overrun = (wait + prefill) - req.ttft_deadline
            if overrun > 0:
                score *= 1.0 + overrun / max(req.ttft_deadline, 1e-6)
        return score

    def _compression_pick(
        self,
        req: RoutedRequest,
        load_tokens: np.ndarray,
        load_seconds: np.ndarray,
        occupancy: np.ndarray,
        queue_depth: np.ndarray,
        cached: Optional[Sequence[int]],
        risk: float,
    ) -> Tuple[int, Optional[int]]:
        """Best instance plus, when the risk gate fired, the compressed
        instance the score alone would have chosen."""
        n = len(self.instances)
        inst_risk = self._instance_risks(req, risk)
        scores = np.array(
            [
                self._compression_score(
                    req, i, load_tokens, load_seconds, occupancy,
                    queue_depth, cached[i] if cached is not None else 0,
                    float(inst_risk[i]),
                )
                for i in range(n)
            ]
        )
        best = int(np.argmin(scores))
        if self.fallback:
            return best, None  # optimistic: verify after the decode
        # hard gate, per instance: any instance whose localised risk
        # crosses the threshold is off-limits for this request
        blocked = inst_risk >= self.risk_threshold
        if not blocked[best]:
            return best, None
        allowed = ~blocked
        if not allowed.any():
            return best, None  # nowhere safe to send it
        gated = np.where(allowed, scores, np.inf)
        return int(np.argmin(gated)), best

    def _occupancy_offline(self, load_tokens: np.ndarray) -> np.ndarray:
        budgets = np.array(
            [inst.token_budget for inst in self.instances], dtype=float
        )
        return load_tokens / np.maximum(budgets, 1.0)

    def _pick(self, req, load_tokens, load_seconds) -> int:
        n = len(self.instances)
        if self.policy == RoutingPolicy.LOAD_BALANCE:
            return int(np.argmin(load_tokens))
        if self.policy == RoutingPolicy.PREFIX:
            # offline: no live cache to probe — sticky-route each prompt
            # head to the instance that first saw it, least-loaded else
            ids = getattr(req, "token_ids", None)
            if ids is None:
                return int(np.argmin(load_tokens))
            key = tuple(ids[: self._home_key_len])
            idx = self._prefix_home.get(key)
            if idx is None:
                idx = int(np.argmin(load_tokens))
                self._prefix_home[key] = idx
            return idx
        if self.policy == RoutingPolicy.SLO:
            if getattr(req, "ttft_deadline", None) is None:
                # deadline-free: spread by load, keeping fast instances
                # free for urgent traffic
                return int(np.argmin(load_tokens))
            return int(np.argmax(
                [self._slo_slack(req, i, load_seconds) for i in range(n)]
            ))
        if self.policy == RoutingPolicy.COMPRESSION:
            # offline has no live caches or queues to probe: no prefix
            # discount, no queue-depth term
            idx, denied = self._compression_pick(
                req, load_tokens, load_seconds,
                self._occupancy_offline(load_tokens),
                np.zeros(n), None, self._risk(req),
            )
            if denied is not None:
                self._reroutes += 1
            return idx
        est = [self._estimate(req, i, load_tokens, load_seconds) for i in range(n)]
        if self.policy == RoutingPolicy.THROUGHPUT:
            # highest *per-sequence* decode rate this request would see
            return int(np.argmax([e[0] for e in est]))
        if self.policy == RoutingPolicy.LENGTH:
            return int(np.argmin([e[1] for e in est]))
        return int(np.argmin([e[2] for e in est]))

    def _pick_online(
        self,
        req: RoutedRequest,
        views: Sequence[InstanceView],
        drain: np.ndarray,
        now: float = 0.0,
    ) -> int:
        """Choose an instance from *live* queue depth and occupancy."""
        load_tokens = np.array(
            [v.used_tokens + v.waiting_tokens for v in views], dtype=float
        )
        # live backlog converted to seconds via each instance's drain rate
        load_seconds = load_tokens / np.maximum(drain, 1e-6)
        if self.policy == RoutingPolicy.PREFIX:
            # cache affinity against the *live* prefix indices: longest
            # cached prefix wins, least-loaded when nobody holds any
            ids = getattr(req, "token_ids", None)
            if ids is not None:
                cached = np.array(
                    [inst.peek_prefix(ids) for inst in self.instances]
                )
                best = cached.max()
                if best > 0:
                    # several instances may hold equally long prefixes (a
                    # shared system prompt warm everywhere): break the tie
                    # by least live load, not instance order
                    tied = np.where(cached == best, load_tokens, np.inf)
                    return int(np.argmin(tied))
            return int(np.argmin(load_tokens))
        if self.policy == RoutingPolicy.COMPRESSION:
            ids = getattr(req, "token_ids", None)
            cached = (
                [inst.peek_prefix(ids) for inst in self.instances]
                if ids is not None
                else None
            )
            risk = self._risk(req)
            occupancy = np.array([v.occupancy for v in views])
            queue_depth = np.array(
                [v.queue_depth for v in views], dtype=float
            )
            # compression-aware load accounting: a sparse cache caps the
            # KV it holds per sequence, so a sparse instance's
            # used_tokens under-report its live work by ~kv/cap — taken
            # at face value the sparse instance looks near-idle and
            # attracts the whole fleet's overflow
            kv_typ = req.prompt_len + float(req.intended_len) / 2.0
            sparse_corr = np.array(
                [
                    max(1.0, kv_typ / inst.comp.sparse_budget)
                    if inst.comp.sparse_budget is not None
                    else 1.0
                    for inst in self.instances
                ]
            )
            used = np.array([v.used_tokens for v in views], dtype=float)
            waiting = np.array(
                [v.waiting_tokens for v in views], dtype=float
            )
            load_corr = used * sparse_corr + waiting
            # drain-neutral backlog pricing: admission wait is dominated
            # by prefill compute and the concurrency cap, both identical
            # across compression variants — pricing backlog with each
            # instance's *decode* rate would let the compressed
            # instances absorb deep queues before the lossless one ever
            # looks attractive.  Instance speed still enters through the
            # request's own prefill + decode terms in the score.
            mean_drain = float(np.mean(np.maximum(drain, 1e-6)))
            idx, denied = self._compression_pick(
                req, load_corr, load_corr / mean_drain, occupancy,
                queue_depth, cached, risk,
            )
            self._routed_by_rid[req.request_id] = (req, risk)
            if denied is not None:
                self._reroutes += 1
                self.instances[idx].record_event(
                    now, EventType.REROUTE, req.request_id,
                    risk=risk, threshold=self.risk_threshold, denied=denied,
                )
            return idx
        return self._pick(req, load_tokens, load_seconds)

    def _make_request(self, req: RoutedRequest, idx: int) -> ServingRequest:
        algo = self.algos[idx]
        true_len = req.lengths_by_algo[algo]
        pred_len = self.length_fn(req, algo) if self.length_fn else None
        return ServingRequest(
            request_id=req.request_id,
            arrival=req.arrival,
            prompt_len=req.prompt_len,
            response_len=max(1, true_len),
            predicted_len=pred_len,
            ttft_deadline=req.ttft_deadline,
            tbot_target=req.tbot_target,
            token_ids=req.token_ids,
        )

    # ------------------------------------------------------------------
    def serve(
        self,
        requests: Sequence[RoutedRequest],
        online: bool = False,
        trace: Optional[Trace] = None,
        telemetry=None,
    ) -> RouterResult:
        """Assign and simulate ``requests``; returns merged latencies.

        ``online=False`` (default) keeps the seed's offline assignment;
        ``online=True`` delegates to :meth:`serve_online`.  ``telemetry``
        (opt-in) is forwarded to the cluster so one sink aggregates the
        whole fleet.
        """
        if online:
            return self.serve_online(requests, trace=trace, telemetry=telemetry)
        if self.fallback:
            raise ValueError(
                "verify-and-fallback re-enqueues at finish instants; it "
                "requires online routing (serve_online)"
            )
        self._reset_run_state()
        n = len(self.instances)
        load_tokens = np.zeros(n)
        load_seconds = np.zeros(n)
        streams: List[List[ServingRequest]] = [[] for _ in range(n)]
        assignment: Dict[str, int] = {}
        # rough drain rate for the live-load decay (tokens/s per instance)
        drain = self._drain_rates()
        last_arrival = 0.0
        for req in sorted(requests, key=lambda r: r.arrival):
            dt = req.arrival - last_arrival
            last_arrival = req.arrival
            load_tokens = np.maximum(0.0, load_tokens - drain * dt)
            load_seconds = np.maximum(0.0, load_seconds - dt)
            idx = self._pick(req, load_tokens, load_seconds)
            algo = self.algos[idx]
            true_len = req.lengths_by_algo[algo]
            streams[idx].append(self._make_request(req, idx))
            assignment[req.request_id] = idx
            load_tokens[idx] += req.prompt_len + true_len
            per_tok = 1.0 / max(drain[idx], 1e-6)
            load_seconds[idx] += true_len * per_tok * 4
        cluster = Cluster(self.instances)
        results = cluster.run(streams, trace=trace, telemetry=telemetry)
        return RouterResult(
            results=results, assignment=assignment, mode="offline",
            reroutes=self._reroutes,
        )

    def serve_online(
        self,
        requests: Sequence[RoutedRequest],
        trace: Optional[Trace] = None,
        telemetry=None,
    ) -> RouterResult:
        """Route each request at its arrival instant on a shared-clock
        cluster, using live queue depth and KV-token occupancy."""
        self._reset_run_state()
        drain = self._drain_rates()
        cluster = Cluster(self.instances)
        self._install_fallback(cluster)
        results, assignment = cluster.run_online(
            requests,
            pick=lambda req, views, now: self._pick_online(req, views, drain, now),
            make=lambda req, idx, now: self._make_request(req, idx),
            trace=trace,
            telemetry=telemetry,
        )
        assignment.update(self._fb_assignment)
        return RouterResult(
            results=results, assignment=assignment, mode="online",
            fallbacks=dict(self._fallbacks), reroutes=self._reroutes,
        )

    # ------------------------------------------------------------------
    # verify-and-fallback
    # ------------------------------------------------------------------
    def _reset_run_state(self) -> None:
        """Per-serve state: a reused Router must not carry a previous
        run's affinity map, risk table or fallback bookkeeping."""
        self._prefix_home.clear()
        self._routed_by_rid.clear()
        self._fallbacks.clear()
        self._fb_assignment.clear()
        self._reroutes = 0

    def _needs_fallback(
        self, routed: RoutedRequest, risk: float, idx: int
    ) -> bool:
        """Post-hoc verification of a compressed decode on ``idx``.

        ``verify_fn`` models an output-quality check that only exists
        *after* the decode (VeriCache's verification pass); without one,
        the serving instance's localised risk against the threshold is
        all we have — the same criterion the hard gate applies a priori
        when the fallback path is off.
        """
        if self.verify_fn is not None:
            return bool(self.verify_fn(routed))
        inst_risk = self._instance_risks(routed, risk)
        return float(inst_risk[idx]) >= self.risk_threshold

    def _on_instance_finish(
        self, cluster: Cluster, idx: int, req: ServingRequest, at: float
    ) -> None:
        rid = req.request_id
        if not self._compressed[idx] or rid in self._fallbacks:
            return
        entry = self._routed_by_rid.get(rid)
        if entry is None:
            return  # a fallback re-decode, or not routed by this run
        routed, risk = entry
        if not self._needs_fallback(routed, risk, idx):
            return
        lossless = [i for i, c in enumerate(self._compressed) if not c]
        if not lossless:
            return
        views = cluster.views()
        loads = [
            views[i].used_tokens + views[i].waiting_tokens for i in lossless
        ]
        target = lossless[int(np.argmin(loads))]
        algo = self.algos[target]
        fb = ServingRequest(
            request_id=rid + "#fb",
            arrival=at,
            prompt_len=req.prompt_len,
            response_len=max(1, routed.lengths_by_algo[algo]),
            token_ids=req.token_ids,
        )
        self._fallbacks[rid] = fb.request_id
        self._fb_assignment[fb.request_id] = target
        self.instances[target].record_event(
            at, EventType.FALLBACK, rid,
            risk=risk, threshold=self.risk_threshold,
            generated=req.generated, refill=fb.response_len,
        )
        cluster.route_to(target, fb)

    def _install_fallback(self, cluster: Cluster) -> None:
        """Arm (or disarm) the per-instance completion hooks for this
        run; hooks survive ``attach()`` so they must be reset here."""
        armed = self.policy is RoutingPolicy.COMPRESSION and self.fallback
        for idx, inst in enumerate(self.instances):
            inst.on_finish = (
                partial(self._on_instance_finish, cluster, idx)
                if armed
                else None
            )
