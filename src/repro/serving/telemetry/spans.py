"""Per-request causal spans derived from the serving trace.

The flat :class:`~repro.serving.trace.Trace` stream is exact but
request-blind: understanding *one* request's life means grepping its
events out and reconstructing what overlapped what.  :func:`build_spans`
does that reconstruction once, turning each request's events into a
root span with children:

- ``queue_wait``     — from each (re)queue epoch to the admission.
- ``prefix_lookup``  — instant marker when admission reused cached KV
  (meta: ``cached`` tokens, ``saved_seconds``).
- ``prefill`` / ``prefill_chunk`` — the priced prompt passes.
- ``decode``         — first token (or last chunk landing) to finish,
  one per admission episode when preemption splits the request.
- ``preempted``      — instant marker at each eviction; the requeue
  wait shows up as the following ``queue_wait`` child.

Spans are derived purely from the ``TraceEvent`` stream — no simulator
state — so they work identically on a live trace and on one reloaded
from a JSONL export.  :func:`validate_spans` cross-checks the derived
tree against the trace's own folds (root duration == the E2E latency
``request_latencies`` reconstructs; children nested inside the root),
which is also what keeps the Chrome exporter's nesting honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.serving.trace import EventType, Trace, request_latencies

_EPS = 1e-9


@dataclass
class Span:
    """One named interval of a request's life (possibly instant)."""

    name: str
    start: float
    end: float
    request_id: str = ""
    instance: str = ""
    meta: Dict[str, float] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def walk(self):
        """This span, then every descendant (pre-order)."""
        yield self
        for c in self.children:
            yield from c.walk()

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "request_id": self.request_id,
            "instance": self.instance,
            "meta": dict(self.meta),
            "children": [c.as_dict() for c in self.children],
        }


def _request_spans(rid: str, events: List) -> Optional[Span]:
    if not events:
        return None
    instance = next((e.instance for e in events if e.instance), "")
    first = events[0]
    arrival = min(
        (
            e.data["arrival"]
            for e in events
            if e.kind in (EventType.ADMIT, EventType.FINISH)
            and "arrival" in e.data
        ),
        default=first.time,
    )
    finish = next(
        (e for e in events if e.kind is EventType.FINISH), None
    )
    reject = next(
        (e for e in events if e.kind is EventType.REJECT), None
    )
    status = "finished" if finish else ("rejected" if reject else "partial")
    end = max(arrival, events[-1].time)
    root = Span(
        name=f"request {rid}",
        start=arrival,
        end=end,
        request_id=rid,
        instance=instance,
        meta={"status": status},
    )
    children: List[Span] = []
    queued_since = arrival  # epoch the current wait is measured from
    prefill_end: Optional[float] = None
    episode = 0

    def child(name: str, start: float, stop: float, **meta) -> None:
        children.append(
            Span(
                name=name,
                start=max(root.start, start),
                end=min(root.end, max(start, stop)),
                request_id=rid,
                instance=instance,
                meta=meta,
            )
        )

    for e in events:
        d = e.data
        if e.kind is EventType.ADMIT:
            since = d.get("queued_at", d.get("arrival", queued_since))
            if e.time > since + _EPS:
                child("queue_wait", since, e.time, episode=episode)
            queued_since = e.time
        elif e.kind is EventType.PREFIX_HIT:
            child(
                "prefix_lookup", e.time, e.time,
                cached=d.get("cached", 0),
                saved_seconds=d.get("saved_seconds", 0.0),
            )
        elif e.kind is EventType.PREFILL:
            stop = e.time + d.get("seconds", 0.0)
            child("prefill", e.time, stop, seconds=d.get("seconds", 0.0))
            prefill_end = stop
        elif e.kind is EventType.PREFILL_CHUNK:
            stop = e.time + d.get("seconds", 0.0)
            child(
                "prefill_chunk", e.time, stop,
                chunk=d.get("chunk", 0), prefilled=d.get("prefilled", 0),
            )
            prefill_end = stop
        elif e.kind is EventType.PREEMPT:
            if prefill_end is not None and e.time > prefill_end + _EPS:
                child("decode", prefill_end, e.time, episode=episode)
            child("preempted", e.time, e.time, generated=d.get("generated", 0))
            queued_since = d.get("requeued_at", e.time)
            prefill_end = None
            episode += 1
        elif e.kind is EventType.FINISH:
            start = prefill_end
            if start is None:
                # static batching prices prefill at batch level (no
                # per-request PREFILL event): synthesize it from the
                # admission-to-first-token interval
                ft = d.get("first_token")
                if ft is not None and ft > queued_since + _EPS:
                    child("prefill", queued_since, ft, episode=episode)
                start = ft
            if start is not None and e.time > start + _EPS:
                child("decode", start, e.time, episode=episode)
    root.children = sorted(children, key=lambda s: (s.start, s.end))
    return root


def build_spans(trace: Trace) -> List[Span]:
    """One root span per request, in first-appearance order.

    Requests whose trace is incomplete (no FINISH/REJECT — e.g. a
    truncated export) still get a root span, flagged
    ``meta["status"] == "partial"`` and closed at their last event.
    """
    roots = []
    for rid in trace.request_ids():
        root = _request_spans(rid, trace.for_request(rid))
        if root is not None:
            roots.append(root)
    return roots


def validate_spans(trace: Trace, roots: List[Span]) -> None:
    """Cross-check derived spans against the trace's own folds.

    Raises ``AssertionError`` on: a finished request whose root span
    duration differs from the E2E latency ``request_latencies``
    reconstructs, a child escaping its parent's interval, or a span
    running backwards.
    """
    lats = request_latencies(trace)
    by_rid = {r.request_id: r for r in roots}
    for rid, e2e in lats.items():
        root = by_rid.get(rid)
        assert root is not None, f"no span tree for finished request {rid}"
        assert abs(root.duration - e2e) < 1e-6, (
            f"{rid}: root span {root.duration:.6f}s != e2e {e2e:.6f}s"
        )
    for root in roots:
        for span in root.walk():
            assert span.end >= span.start - _EPS, f"negative span {span.name}"
            assert span.start >= root.start - _EPS, (
                f"{span.name} starts before its root"
            )
            assert span.end <= root.end + _EPS, (
                f"{span.name} ends after its root"
            )
