"""Trace exporters: JSONL dump/load and Chrome ``trace_event`` JSON.

JSONL is the machine-readable archive format: one event per line,
loss-free (:func:`load_jsonl` rebuilds a :class:`Trace` whose
``StepMetrics.from_trace`` fold is *exactly* the in-memory one — floats
round-trip through ``json`` by value), and tolerant of truncation (a
half-written final line is skipped, and the partial-trace-aware folds
report the requests it cut off instead of crashing).  That makes traces
replayable artifacts: tests, offline analysis, and the
:mod:`repro.serving.replay` harness recompute every serving metric —
or re-run the whole workload — from a file.

Two refinements over the naive per-event loop:

- **Metadata header.**  A dump may open with one header line,
  ``{"__trace_meta__": {"schema": 1, ...}}``, carrying what the event
  stream itself cannot: the recording's ring-buffer truncation
  (``dropped_events`` / ``max_events`` — a bounded trace that shed its
  oldest quarter must not round-trip as a complete run), and optionally
  the ``scenario`` config and ``workload`` specs the replay harness
  uses to re-run the recording.  The header is *optional* and only
  written when there is something to say (truncation happened, a bound
  was set, or the caller passed context), so plain unbounded dumps stay
  byte-for-byte what they always were.  ``load_jsonl`` surfaces it as
  ``trace.meta`` and restores ``trace.dropped_events``, which the
  metrics folds and the anomaly miner report instead of silently
  treating a truncated trace as a full run.
- **Columnar streaming.**  Dumping a columnar :class:`Trace` walks the
  NumPy columns directly — signature-resolved payload keys, one reused
  dict per line — instead of materializing (and permanently caching)
  a :class:`TraceEvent` per row, which defeated the columnar memory
  win on export-heavy runs.  Output bytes are identical to the object
  path (pinned by the equivalence suite).

The Chrome exporter emits the ``trace_event`` JSON object format
(``{"traceEvents": [...]}``) so a *simulated* serving run opens in
``chrome://tracing`` / Perfetto like a real profile: one process per
serving instance, one thread lane per request, complete (``"X"``)
events for the span tree :func:`build_spans` derives (children nested
inside their request's root span by containment), instant (``"i"``)
markers for preemptions/rejections/prefix hits, and counter (``"C"``)
tracks for KV occupancy and batch size.  Timestamps are microseconds,
per the spec.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterator, List, Optional, Union

from repro.serving.telemetry.spans import Span, build_spans
from repro.serving.trace import (
    _BOOL,
    _FLOAT,
    _INT,
    _OBJ,
    KINDS,
    EventType,
    Trace,
    TraceEvent,
)

PathLike = Union[str, pathlib.Path]

_US = 1e6  # trace_event timestamps are microseconds

#: reserved top-level key marking the optional JSONL header line
META_KEY = "__trace_meta__"
#: header schema version (bump when header fields change shape)
META_SCHEMA = 1


def event_to_obj(e: TraceEvent) -> dict:
    """One event as a JSON-ready dict (the JSONL line schema)."""
    return {
        "time": e.time,
        "kind": e.kind.value,
        "request_id": e.request_id,
        "instance": e.instance,
        "data": e.data,
    }


def _header(trace, scenario, workload, meta) -> Optional[dict]:
    """The optional metadata header, or ``None`` when a plain dump
    (complete, unbounded, context-free) should stay header-less."""
    dropped = int(getattr(trace, "dropped_events", 0) or 0)
    max_events = getattr(trace, "max_events", None)
    if not (dropped or max_events is not None or scenario is not None
            or workload is not None or meta):
        return None
    head: Dict[str, object] = {
        "schema": META_SCHEMA,
        "events": len(trace),
        "dropped_events": dropped,
        "max_events": max_events,
    }
    if scenario is not None:
        head["scenario"] = scenario
    if workload is not None:
        head["workload"] = list(workload)
    if meta:
        head.update(meta)
    return {META_KEY: head}


def _iter_jsonl(trace: Trace) -> Iterator[str]:
    """One JSON line per event, streamed straight off the columns.

    Byte-for-byte what ``json.dumps(event_to_obj(e))`` produces, but
    without building (and caching) a :class:`TraceEvent` per row: the
    columns are unboxed to plain Python lists once, payload keys come
    from the interned signatures, and each line reuses one dict.
    """
    n = len(trace)
    kind_names = [k.value for k in KINDS]
    times = trace._time[:n].tolist()
    kinds = trace._kind[:n].tolist()
    reqs = trace._req[:n].tolist()
    insts = trace._inst[:n].tolist()
    sigs = trace._sig[:n].tolist()
    req_names = trace._req_names
    inst_names = trace._inst_names
    signatures = trace._sigs
    cols = {
        key: (col.values[:n].tolist(), col.tags[:n].tolist())
        for key, col in trace._cols.items()
    }
    objs = trace._obj
    for i in range(n):
        data: Dict[str, object] = {}
        for key in signatures[sigs[i]]:
            values, tags = cols[key]
            tag = tags[i]
            if tag == _FLOAT:
                data[key] = values[i]
            elif tag == _INT:
                data[key] = int(values[i])
            elif tag == _BOOL:
                data[key] = bool(values[i])
            elif tag == _OBJ:
                data[key] = objs[(i, key)]
            # _ABSENT: key recorded for other events only; skip
        yield json.dumps(
            {
                "time": times[i],
                "kind": kind_names[kinds[i]],
                "request_id": req_names[reqs[i]],
                "instance": inst_names[insts[i]],
                "data": data,
            }
        )


def dump_jsonl(
    trace,
    path: PathLike,
    scenario: Optional[dict] = None,
    workload: Optional[List[dict]] = None,
    meta: Optional[dict] = None,
) -> int:
    """Write ``trace`` as JSON-lines; returns the event count.

    ``scenario`` / ``workload`` / ``meta`` land in the optional header
    line (see the module docstring) together with the trace's
    ring-buffer truncation state; a complete unbounded trace dumped
    without context stays header-less, bytes identical to the legacy
    format.  Columnar traces stream straight from the columns; anything
    else (e.g. :class:`~repro.serving.trace.ObjectTrace`) takes the
    per-event path.
    """
    path = pathlib.Path(path)
    head = _header(trace, scenario, workload, meta)
    if isinstance(trace, Trace):
        lines: Iterator[str] = _iter_jsonl(trace)
    else:
        lines = (json.dumps(event_to_obj(e)) for e in trace.events)
    count = 0
    with path.open("w") as fp:
        if head is not None:
            fp.write(json.dumps(head) + "\n")
        batch: List[str] = []
        for line in lines:
            batch.append(line)
            count += 1
            if len(batch) >= 4096:
                fp.write("\n".join(batch) + "\n")
                batch.clear()
        if batch:
            fp.write("\n".join(batch) + "\n")
    return count


def load_jsonl(path: PathLike) -> Trace:
    """Rebuild a :class:`Trace` from a JSONL export.

    Corrupt lines (e.g. the half-written tail of a dump truncated
    mid-run) are skipped, not fatal — the partial-trace-tolerant folds
    downstream account for the requests they cut off.

    A metadata header line, when present, is surfaced as ``trace.meta``
    and its ``dropped_events`` restored onto the rebuilt trace, so a
    bounded recording that shed events no longer round-trips as if it
    were a complete run (``StepMetrics.from_trace`` reports it via
    ``dropped_events`` and the anomaly miner flags the trace partial).
    The rebuilt trace itself is unbounded — loading never re-sheds.
    """
    trace = Trace()
    path = pathlib.Path(path)
    with path.open() as fp:
        for line in fp:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError:
                continue  # truncated / corrupt line
            if isinstance(obj, dict) and META_KEY in obj:
                head = obj[META_KEY]
                if isinstance(head, dict) and not trace.meta:
                    trace.meta = dict(head)
                    try:
                        trace.dropped_events = int(
                            head.get("dropped_events", 0) or 0
                        )
                    except (TypeError, ValueError):
                        pass
                continue
            try:
                kind = EventType(obj["kind"])
                time = float(obj["time"])
            except (ValueError, KeyError, TypeError):
                continue  # truncated / corrupt line
            trace.append(
                TraceEvent(
                    time=time,
                    kind=kind,
                    request_id=str(obj.get("request_id", "")),
                    instance=str(obj.get("instance", "")),
                    data=dict(obj.get("data", {})),
                )
            )
    return trace


# ----------------------------------------------------------------------
# Chrome trace_event JSON
# ----------------------------------------------------------------------
def _span_events(
    span: Span, pid: int, tid: int, out: List[dict]
) -> None:
    ph = "X"
    evt = {
        "name": span.name,
        "cat": "serving",
        "ph": ph,
        "ts": span.start * _US,
        "dur": max(0.0, span.duration) * _US,
        "pid": pid,
        "tid": tid,
        "args": dict(span.meta),
    }
    out.append(evt)
    for child in span.children:
        _span_events(child, pid, tid, out)


def to_chrome_trace(
    trace: Trace, spans: Optional[List[Span]] = None
) -> dict:
    """Render ``trace`` as a Chrome/Perfetto ``trace_event`` object.

    One *process* per serving instance (unnamed instances fold into a
    ``serving`` process), one *thread* lane per request carrying its
    nested span tree, plus instant markers and KV/batch counter tracks.
    """
    if spans is None:
        spans = build_spans(trace)
    events: List[dict] = []
    pids: Dict[str, int] = {}

    def pid_for(instance: str) -> int:
        if instance not in pids:
            pids[instance] = len(pids) + 1
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pids[instance],
                    "tid": 0,
                    "args": {"name": instance or "serving"},
                }
            )
        return pids[instance]

    for tid, root in enumerate(spans, start=1):
        pid = pid_for(root.instance)
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": root.request_id or f"lane {tid}"},
            }
        )
        _span_events(root, pid, tid, events)

    tids = {root.request_id: tid for tid, root in enumerate(spans, start=1)}
    for e in trace.events:
        pid = pid_for(e.instance)
        if e.kind in (EventType.PREEMPT, EventType.REJECT):
            events.append(
                {
                    "name": e.kind.value,
                    "cat": "serving",
                    "ph": "i",
                    "s": "t",  # thread-scoped instant
                    "ts": e.time * _US,
                    "pid": pid,
                    "tid": tids.get(e.request_id, 0),
                    "args": dict(e.data),
                }
            )
        elif e.kind is EventType.DECODE_STEP:
            args = {}
            if "used_tokens" in e.data:
                args["kv_used_tokens"] = e.data["used_tokens"]
            if "batch" in e.data:
                args["batch"] = e.data["batch"]
            if args:
                events.append(
                    {
                        "name": "kv_and_batch",
                        "cat": "serving",
                        "ph": "C",
                        "ts": e.time * _US,
                        "pid": pid,
                        "tid": 0,
                        "args": args,
                    }
                )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace: Trace, path: PathLike) -> int:
    """Write the Chrome export; returns the ``traceEvents`` count."""
    doc = to_chrome_trace(trace)
    pathlib.Path(path).write_text(json.dumps(doc) + "\n")
    return len(doc["traceEvents"])
