"""Trace exporters: JSONL dump/load and Chrome ``trace_event`` JSON.

JSONL is the machine-readable archive format: one event per line,
loss-free (:func:`load_jsonl` rebuilds a :class:`Trace` whose
``StepMetrics.from_trace`` fold is *exactly* the in-memory one — floats
round-trip through ``json`` by value), and tolerant of truncation (a
half-written final line is skipped, and the partial-trace-aware folds
report the requests it cut off instead of crashing).  That makes traces
replayable artifacts: tests and offline analysis recompute every
serving metric from a file.

The Chrome exporter emits the ``trace_event`` JSON object format
(``{"traceEvents": [...]}``) so a *simulated* serving run opens in
``chrome://tracing`` / Perfetto like a real profile: one process per
serving instance, one thread lane per request, complete (``"X"``)
events for the span tree :func:`build_spans` derives (children nested
inside their request's root span by containment), instant (``"i"``)
markers for preemptions/rejections/prefix hits, and counter (``"C"``)
tracks for KV occupancy and batch size.  Timestamps are microseconds,
per the spec.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Union

from repro.serving.telemetry.spans import Span, build_spans
from repro.serving.trace import EventType, Trace, TraceEvent

PathLike = Union[str, pathlib.Path]

_US = 1e6  # trace_event timestamps are microseconds


def event_to_obj(e: TraceEvent) -> dict:
    """One event as a JSON-ready dict (the JSONL line schema)."""
    return {
        "time": e.time,
        "kind": e.kind.value,
        "request_id": e.request_id,
        "instance": e.instance,
        "data": e.data,
    }


def dump_jsonl(trace: Trace, path: PathLike) -> int:
    """Write ``trace`` as JSON-lines; returns the event count."""
    path = pathlib.Path(path)
    with path.open("w") as fp:
        for e in trace.events:
            fp.write(json.dumps(event_to_obj(e)) + "\n")
    return len(trace.events)


def load_jsonl(path: PathLike) -> Trace:
    """Rebuild a :class:`Trace` from a JSONL export.

    Corrupt lines (e.g. the half-written tail of a dump truncated
    mid-run) are skipped, not fatal — the partial-trace-tolerant folds
    downstream account for the requests they cut off.
    """
    trace = Trace()
    path = pathlib.Path(path)
    with path.open() as fp:
        for line in fp:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
                kind = EventType(obj["kind"])
                time = float(obj["time"])
            except (ValueError, KeyError, TypeError):
                continue  # truncated / corrupt line
            trace.append(
                TraceEvent(
                    time=time,
                    kind=kind,
                    request_id=str(obj.get("request_id", "")),
                    instance=str(obj.get("instance", "")),
                    data=dict(obj.get("data", {})),
                )
            )
    return trace


# ----------------------------------------------------------------------
# Chrome trace_event JSON
# ----------------------------------------------------------------------
def _span_events(
    span: Span, pid: int, tid: int, out: List[dict]
) -> None:
    ph = "X"
    evt = {
        "name": span.name,
        "cat": "serving",
        "ph": ph,
        "ts": span.start * _US,
        "dur": max(0.0, span.duration) * _US,
        "pid": pid,
        "tid": tid,
        "args": dict(span.meta),
    }
    out.append(evt)
    for child in span.children:
        _span_events(child, pid, tid, out)


def to_chrome_trace(
    trace: Trace, spans: Optional[List[Span]] = None
) -> dict:
    """Render ``trace`` as a Chrome/Perfetto ``trace_event`` object.

    One *process* per serving instance (unnamed instances fold into a
    ``serving`` process), one *thread* lane per request carrying its
    nested span tree, plus instant markers and KV/batch counter tracks.
    """
    if spans is None:
        spans = build_spans(trace)
    events: List[dict] = []
    pids: Dict[str, int] = {}

    def pid_for(instance: str) -> int:
        if instance not in pids:
            pids[instance] = len(pids) + 1
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pids[instance],
                    "tid": 0,
                    "args": {"name": instance or "serving"},
                }
            )
        return pids[instance]

    for tid, root in enumerate(spans, start=1):
        pid = pid_for(root.instance)
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": root.request_id or f"lane {tid}"},
            }
        )
        _span_events(root, pid, tid, events)

    tids = {root.request_id: tid for tid, root in enumerate(spans, start=1)}
    for e in trace.events:
        pid = pid_for(e.instance)
        if e.kind in (EventType.PREEMPT, EventType.REJECT):
            events.append(
                {
                    "name": e.kind.value,
                    "cat": "serving",
                    "ph": "i",
                    "s": "t",  # thread-scoped instant
                    "ts": e.time * _US,
                    "pid": pid,
                    "tid": tids.get(e.request_id, 0),
                    "args": dict(e.data),
                }
            )
        elif e.kind is EventType.DECODE_STEP:
            args = {}
            if "used_tokens" in e.data:
                args["kv_used_tokens"] = e.data["used_tokens"]
            if "batch" in e.data:
                args["batch"] = e.data["batch"]
            if args:
                events.append(
                    {
                        "name": "kv_and_batch",
                        "cat": "serving",
                        "ph": "C",
                        "ts": e.time * _US,
                        "pid": pid,
                        "tid": 0,
                        "args": args,
                    }
                )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace: Trace, path: PathLike) -> int:
    """Write the Chrome export; returns the ``traceEvents`` count."""
    doc = to_chrome_trace(trace)
    pathlib.Path(path).write_text(json.dumps(doc) + "\n")
    return len(doc["traceEvents"])
