"""First-class observability for the serving stack.

``repro.serving.telemetry`` packages four layers (see DESIGN.md
"Telemetry"):

- :mod:`registry` — Counter / Gauge / Histogram metric families with
  fixed log-spaced buckets, Prometheus text exposition + dict snapshot.
- :mod:`core` — the :class:`Telemetry` sink the serving components
  publish into (opt-in; ``None`` / :class:`NullTelemetry` = off, with
  the disabled path bit-for-bit identical to an uninstrumented run).
- :mod:`spans` — per-request causal span trees derived from the
  :class:`~repro.serving.trace.Trace` stream.
- :mod:`export` — JSONL dump/load (offline ``StepMetrics`` replay) and
  Chrome/Perfetto ``trace_event`` JSON.
- :mod:`dashboard` — ASCII sparkline dashboard (``cli dashboard``).
"""

from repro.serving.telemetry.core import NullTelemetry, Telemetry, active
from repro.serving.telemetry.dashboard import render_dashboard, sparkline
from repro.serving.telemetry.export import (
    dump_jsonl,
    load_jsonl,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.serving.telemetry.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)
from repro.serving.telemetry.spans import Span, build_spans, validate_spans

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "log_buckets",
    "Telemetry",
    "NullTelemetry",
    "active",
    "Span",
    "build_spans",
    "validate_spans",
    "dump_jsonl",
    "load_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "render_dashboard",
    "sparkline",
]
