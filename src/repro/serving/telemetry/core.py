"""The telemetry sink threaded through the serving stack.

A :class:`Telemetry` object owns one :class:`MetricsRegistry` plus a
set of sampled time series for the dashboard, and exposes the small
publishing surface the serving components call:

- ``on_event(event)``       — every :class:`TraceEvent` an instance
  records (fed from ``ServerInstance._record``); folds the event into
  counters and histograms (TTFT, TBOT, queue delay, prefill/step
  seconds, SLO misses, prefix reuse).
- ``sample_instance(now, inst)`` — per-wake-up gauges: queue depth,
  running batch, KV occupancy; also appended to the dashboard series.
- ``on_loop(now, pending, fired)`` — event-loop health gauges.
- ``on_route(instance)``    — router decision counter.
- ``on_prefix_lookup`` / ``sample_prefix`` — prefix-index hit/miss
  counters and residency gauges.
- ``sample_store(store)``   — :class:`~repro.kvcache.paged.PagedStore`
  occupancy/copy/eviction gauges.

Instrumentation is **opt-in**: every component takes ``telemetry=None``
and skips publishing entirely when unset, so a run without telemetry is
bit-for-bit identical to one on a build without this module.
:class:`NullTelemetry` is the explicit no-op sink — same surface, every
method a ``pass`` — for call sites that want an always-valid object;
:func:`active` normalizes either convention to "``None`` means off".
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

from repro.serving.trace import EventType, TraceEvent
from repro.serving.telemetry.registry import (
    MetricsRegistry,
    _HistSeries,
    log_buckets,
)

#: dashboard time-series key: (instance name, metric name)
SeriesKey = Tuple[str, str]


class _InstHot:
    """Per-instance pre-resolved write targets for the event fold.

    ``on_event`` runs once per recorded trace event, dominated by
    DECODE_STEP; resolving the metric series / value dicts once per
    instance lets that branch update them with plain dict/list ops
    instead of a chain of method calls.
    """

    __slots__ = (
        "ik", "buckets", "step", "batch_values", "gen_values",
        "kv_values", "kv_pts", "ev_decode", "qd_values", "run_values",
        "qd_pts", "run_pts",
    )

    def __init__(self, tel: "Telemetry", inst: str) -> None:
        self.ik = (inst,)
        self.ev_decode = (inst, EventType.DECODE_STEP.value)
        self.qd_values = tel.queue_depth._values
        self.run_values = tel.running._values
        self.qd_pts = tel.series.setdefault((inst, "queue_depth"), [])
        self.run_pts = tel.series.setdefault((inst, "running"), [])
        self.buckets = tel.step_seconds.buckets
        series = tel.step_seconds._series
        s = series.get(self.ik)
        if s is None:
            s = series[self.ik] = _HistSeries(len(self.buckets))
        self.step = s
        self.batch_values = tel.batch_size._values
        self.gen_values = tel.generated_tokens._values
        self.kv_values = tel.kv_occupancy._values
        self.kv_pts = tel.series.setdefault((inst, "kv_occupancy"), [])


class Telemetry:
    """Live metrics registry + sampled series for one serving run."""

    enabled = True

    def __init__(
        self,
        labels: Optional[Dict[str, str]] = None,
        series_limit: int = 2048,
    ) -> None:
        self.labels = dict(labels or {})
        self.series_limit = max(16, series_limit)
        self.registry = MetricsRegistry(const_labels=self.labels)
        r = self.registry
        lat_buckets = log_buckets(1e-4, 1e3, per_decade=3)
        self.events_total = r.counter(
            "serving_events_total", "trace events recorded",
            ("instance", "kind"),
        )
        self.queue_depth = r.gauge(
            "serving_queue_depth", "requests waiting for admission",
            ("instance",),
        )
        self.running = r.gauge(
            "serving_running_requests", "requests decoding or mid-prefill",
            ("instance",),
        )
        self.kv_occupancy = r.gauge(
            "serving_kv_occupancy",
            "fraction of the KV token budget currently held",
            ("instance",),
        )
        self.batch_size = r.gauge(
            "serving_batch_size", "batch size of the last decode step",
            ("instance",),
        )
        self.queue_delay = r.histogram(
            "serving_queue_delay_seconds",
            "seconds queued before each admission",
            ("instance",), buckets=lat_buckets,
        )
        self.ttft = r.histogram(
            "serving_ttft_seconds", "time to first token",
            ("instance",), buckets=lat_buckets,
        )
        self.tbot = r.histogram(
            "serving_tbot_seconds", "mean time between output tokens",
            ("instance",), buckets=lat_buckets,
        )
        self.prefill_seconds = r.histogram(
            "serving_prefill_seconds",
            "prefill pass / chunk durations",
            ("instance",), buckets=lat_buckets,
        )
        self.step_seconds = r.histogram(
            "serving_decode_step_seconds", "decode step durations",
            ("instance",), buckets=lat_buckets,
        )
        self.generated_tokens = r.counter(
            "serving_generated_tokens_total",
            "tokens emitted by decode steps", ("instance",),
        )
        self.slo_misses = r.counter(
            "serving_slo_miss_total", "finished requests violating an SLO",
            ("instance", "slo"),
        )
        self.prefix_cached_tokens = r.counter(
            "serving_prefix_cached_tokens_total",
            "prompt tokens reused from the prefix cache", ("instance",),
        )
        self.prefix_saved_seconds = r.counter(
            "serving_prefix_saved_seconds_total",
            "single-shot prefill seconds avoided by prefix reuse",
            ("instance",),
        )
        self.prefix_lookups = r.counter(
            "prefix_index_lookups_total",
            "prefix-index admission lookups", ("outcome",),
        )
        self.prefix_blocks = r.gauge(
            "prefix_index_resident_blocks",
            "block keys resident in the prefix index",
        )
        self.prefix_evictions = r.gauge(
            "prefix_index_evicted_blocks_total",
            "block keys dropped from the prefix index LRU",
        )
        self.routed = r.counter(
            "router_routed_total", "requests dispatched per instance",
            ("instance",),
        )
        self.rerouted = r.counter(
            "router_reroutes_total",
            "risk-gated requests redirected to a lossless instance",
            ("instance",),
        )
        self.fallbacks = r.counter(
            "router_fallbacks_total",
            "verify-and-fallback re-decodes enqueued on a lossless instance",
            ("instance",),
        )
        self.kv_transfers = r.counter(
            "fleet_kv_transfers_total",
            "prefill->decode KV migrations delivered",
            ("instance", "link"),
        )
        self.kv_transfer_bytes = r.counter(
            "fleet_kv_transfer_bytes_total",
            "KV bytes moved prefill->decode", ("instance", "link"),
        )
        self.kv_transfer_seconds = r.counter(
            "fleet_kv_transfer_seconds_total",
            "interconnect seconds spent moving KV", ("instance", "link"),
        )
        self.scale_events = r.counter(
            "fleet_scale_events_total",
            "autoscaler pool-size changes", ("pool", "direction"),
        )
        self.pool_size = r.gauge(
            "fleet_pool_size", "active instances per fleet pool",
            ("pool",),
        )
        self.trace_events = r.gauge(
            "serving_trace_events", "events held in the trace ring buffer",
            ("instance",),
        )
        self.trace_capacity = r.gauge(
            "serving_trace_capacity",
            "allocated event slots in the trace ring buffer",
            ("instance",),
        )
        self.trace_buffer_bytes = r.gauge(
            "serving_trace_buffer_bytes",
            "bytes held by the columnar trace buffers",
            ("instance",),
        )
        self.trace_dropped = r.gauge(
            "serving_trace_dropped_events_total",
            "oldest events dropped by a bounded trace",
            ("instance",),
        )
        self.loop_pending = r.gauge(
            "eventloop_pending_events", "events queued on the shared clock",
        )
        self.loop_fired = r.gauge(
            "eventloop_events_fired_total", "events executed so far",
        )
        self.loop_now = r.gauge(
            "eventloop_clock_seconds", "simulated clock",
        )
        self.kv_allocated_tokens = r.gauge(
            "kvstore_allocated_tokens", "tokens of allocated paged blocks",
        )
        self.kv_live_tokens = r.gauge(
            "kvstore_live_tokens", "live KV slots across referenced blocks",
        )
        self.kv_cached_tokens = r.gauge(
            "kvstore_cached_tokens",
            "tokens retained in unreferenced hashed blocks",
        )
        self.kv_copied_tokens = r.gauge(
            "kvstore_copied_tokens_total",
            "tokens copied for COW privatization / compaction",
        )
        self.kv_cached_evictions = r.gauge(
            "kvstore_cached_block_evictions_total",
            "retained blocks reclaimed on demand",
        )
        self.replay_drift = r.gauge(
            "replay_drift_fields",
            "StepMetrics fields differing between a recorded trace and "
            "its replay (0 = exact reproduction)",
        )
        self.mined_anomalies = r.counter(
            "mining_anomalies_total",
            "anomalies flagged by trace-mining detectors", ("detector",),
        )
        self.mined_incidents = r.counter(
            "mining_incidents_total",
            "clustered incidents reported by trace mining", ("detector",),
        )
        #: dashboard time series: (instance, metric) -> [(t, value), ...]
        self.series: Dict[SeriesKey, List[Tuple[float, float]]] = {}
        self._loop_tick = 0
        self._hot: Dict[str, _InstHot] = {}
        self._ev_values = self.events_total._values
        self._loop_values = (
            self.loop_now._values,
            self.loop_pending._values,
            self.loop_fired._values,
        )

    # ------------------------------------------------------------------
    def _sample_series(self, key: SeriesKey, t: float, v: float) -> None:
        pts = self.series.get(key)
        if pts is None:
            pts = self.series[key] = []
        pts.append((t, v))
        if len(pts) > 2 * self.series_limit:
            pts[:] = pts[::2]  # decimate: halve resolution, keep the span

    # ------------------------------------------------------------------
    # publishing surface (called by the serving components)
    # ------------------------------------------------------------------
    def on_event(self, e: TraceEvent) -> None:
        """Fold one trace event into the registry.

        This is the hottest publishing call (once per recorded event),
        so it uses the metrics' pre-built-key fast paths — label keys
        here are the label *values* in declared order.
        """
        inst = e.instance
        d = e.data
        k = e.kind
        if k is EventType.DECODE_STEP:
            hot = self._hot.get(inst)
            if hot is None:
                hot = self._hot[inst] = _InstHot(self, inst)
            ev = self._ev_values
            kk = hot.ev_decode
            ev[kk] = ev.get(kk, 0.0) + 1.0
            ik = hot.ik
            seconds = d.get("seconds")
            if seconds is not None:
                s = hot.step
                s.counts[bisect_left(hot.buckets, seconds)] += 1
                s.sum += seconds
                s.count += 1
            batch = d.get("batch")
            if batch is not None:
                hot.batch_values[ik] = float(batch)
            live = d.get("live")
            if live is not None:
                hot.gen_values[ik] = hot.gen_values.get(ik, 0.0) + live
            used = d.get("used_tokens")
            budget = d.get("token_budget")
            if used is not None and budget is not None:
                occ = used / max(1, budget)
                hot.kv_values[ik] = occ
                pts = hot.kv_pts
                pts.append((e.time, occ))
                if len(pts) > 2 * self.series_limit:
                    pts[:] = pts[::2]  # decimate in place, keep the span
            return
        ev = self._ev_values
        kk = (inst, k.value)
        ev[kk] = ev.get(kk, 0.0) + 1.0
        ik = (inst,)
        if k is EventType.ADMIT:
            since = d.get("queued_at", d.get("arrival"))
            if since is not None:
                self.queue_delay.observe_key(ik, e.time - since)
        elif k is EventType.PREFILL or k is EventType.PREFILL_CHUNK:
            seconds = d.get("seconds")
            if seconds is not None:
                self.prefill_seconds.observe_key(ik, seconds)
        elif k is EventType.FINISH:
            if "arrival" in d and "first_token" in d:
                self.ttft.observe_key(ik, d["first_token"] - d["arrival"])
            if "first_token" in d and d.get("generated", 0) > 1:
                self.tbot.observe_key(
                    ik, (e.time - d["first_token"]) / (d["generated"] - 1)
                )
            if d.get("ttft_miss"):
                self.slo_misses.inc_key((inst, "ttft"))
            if d.get("tbot_miss"):
                self.slo_misses.inc_key((inst, "tbot"))
        elif k is EventType.PREFIX_HIT:
            cached = d.get("cached")
            if cached is not None:
                self.prefix_cached_tokens.inc_key(ik, cached)
            saved = d.get("saved_seconds")
            if saved is not None:
                self.prefix_saved_seconds.inc_key(ik, saved)
        elif k is EventType.REROUTE:
            self.rerouted.inc_key(ik)
        elif k is EventType.FALLBACK:
            self.fallbacks.inc_key(ik)
        elif k is EventType.KV_TRANSFER:
            lk = (inst, str(d.get("link", "")))
            self.kv_transfers.inc_key(lk)
            nbytes = d.get("bytes")
            if nbytes is not None:
                self.kv_transfer_bytes.inc_key(lk, nbytes)
            seconds = d.get("seconds")
            if seconds is not None:
                self.kv_transfer_seconds.inc_key(lk, seconds)
        elif k is EventType.SCALE_UP or k is EventType.SCALE_DOWN:
            pool = str(d.get("pool", ""))
            direction = "up" if k is EventType.SCALE_UP else "down"
            self.scale_events.inc_key((pool, direction))
            size = d.get("size")
            if size is not None:
                self.pool_size.set_key((pool,), float(size))

    def on_decode_steps(
        self,
        instance: str,
        times,
        batch: int,
        kvs,
        seconds,
        used_tokens,
        token_budget: int,
    ) -> None:
        """Fold a burst of ``DECODE_STEP`` events in one call.

        The batched mirror of the per-event ``DECODE_STEP`` branch in
        :meth:`on_event`, fed by the simulator's burst decode path
        alongside ``Trace.record_decode_steps`` — the shared counters
        and histogram land in one update per burst instead of one per
        step.  ``used_tokens`` is a scalar or a per-step sequence, as
        in the trace call.
        """
        k = len(times)
        if k == 0:
            return
        hot = self._hot.get(instance)
        if hot is None:
            hot = self._hot[instance] = _InstHot(self, instance)
        ev = self._ev_values
        kk = hot.ev_decode
        ev[kk] = ev.get(kk, 0.0) + float(k)
        s = hot.step
        counts = s.counts
        buckets = hot.buckets
        for sec in seconds:
            counts[bisect_left(buckets, sec)] += 1
            s.sum += sec
        s.count += k
        ik = hot.ik
        hot.batch_values[ik] = float(batch)
        hot.gen_values[ik] = hot.gen_values.get(ik, 0.0) + float(batch) * k
        mb = max(1, token_budget)
        pts = hot.kv_pts
        lim = 2 * self.series_limit
        if isinstance(used_tokens, (list, tuple)):
            occ = 0.0
            for t, u in zip(times, used_tokens):
                occ = u / mb
                pts.append((t, occ))
                if len(pts) > lim:
                    pts[:] = pts[::2]
        else:
            occ = used_tokens / mb
            for t in times:
                pts.append((t, occ))
                if len(pts) > lim:
                    pts[:] = pts[::2]
        hot.kv_values[ik] = occ

    def sample_instance(self, now: float, inst) -> None:
        """Per-wake-up gauges from live ``ServerInstance`` state."""
        name = inst.name
        hot = self._hot.get(name)
        if hot is None:
            hot = self._hot[name] = _InstHot(self, name)
        ik = hot.ik
        depth = float(inst.queue_depth)
        running = float(inst.running_count)
        hot.qd_values[ik] = depth
        hot.run_values[ik] = running
        lim = 2 * self.series_limit
        pts = hot.qd_pts
        pts.append((now, depth))
        if len(pts) > lim:
            pts[:] = pts[::2]
        pts = hot.run_pts
        pts.append((now, running))
        if len(pts) > lim:
            pts[:] = pts[::2]
        trace = getattr(inst, "_trace", None)
        stats = getattr(trace, "memory_stats", None)
        if stats is not None:
            s = stats()
            self.trace_events._values[ik] = float(s["events"])
            self.trace_capacity._values[ik] = float(s["capacity"])
            self.trace_buffer_bytes._values[ik] = float(s["buffer_bytes"])
            self.trace_dropped._values[ik] = float(s["dropped_events"])

    def on_loop(self, now: float, pending: int, fired: int) -> None:
        """Event-loop health; series sampled every 16th event."""
        lv = self._loop_values
        lv[0][()] = now
        lv[1][()] = float(pending)
        lv[2][()] = float(fired)
        self._loop_tick += 1
        if self._loop_tick % 16 == 0:
            self._sample_series(("", "loop_pending"), now, pending)

    def on_route(self, instance: str) -> None:
        self.routed.inc(instance=instance)

    def on_prefix_lookup(self, matched_tokens: int) -> None:
        outcome = "hit" if matched_tokens else "miss"
        self.prefix_lookups.inc(outcome=outcome)

    def sample_prefix(self, index) -> None:
        """Residency gauges from a :class:`PrefixIndex`."""
        self.prefix_blocks.set(len(index))
        self.prefix_evictions.set(index.evicted_blocks)

    def sample_store(self, store) -> None:
        """Occupancy gauges from a :class:`PagedStore`'s running counters."""
        bs = store.block_size
        self.kv_allocated_tokens.set(len(store._blocks) * bs)
        self.kv_live_tokens.set(store._live)
        self.kv_cached_tokens.set(store.cached_blocks * bs)
        self.kv_copied_tokens.set(store._copied)
        self.kv_cached_evictions.set(store.cached_block_evictions)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """Registry snapshot (see :meth:`MetricsRegistry.snapshot`)."""
        return self.registry.snapshot()

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the whole registry."""
        return self.registry.render_prometheus()


class NullTelemetry(Telemetry):
    """Explicit no-op sink: the full surface, nothing recorded.

    ``active(NullTelemetry())`` is ``None``, so components wired with it
    skip publishing entirely — the disabled path stays bit-for-bit
    identical to running without telemetry at all.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def on_event(self, e: TraceEvent) -> None:  # pragma: no cover - no-op
        pass

    def on_decode_steps(
        self, instance, times, batch, kvs, seconds, used_tokens,
        token_budget,
    ) -> None:
        pass

    def sample_instance(self, now, inst) -> None:
        pass

    def on_loop(self, now, pending, fired) -> None:
        pass

    def on_route(self, instance) -> None:
        pass

    def on_prefix_lookup(self, matched_tokens) -> None:
        pass

    def sample_prefix(self, index) -> None:
        pass

    def sample_store(self, store) -> None:
        pass


def active(telemetry: Optional[Telemetry]) -> Optional[Telemetry]:
    """Normalize a telemetry argument: ``None`` or a disabled sink
    (e.g. :class:`NullTelemetry`) both mean "publish nothing"."""
    if telemetry is None or not getattr(telemetry, "enabled", True):
        return None
    return telemetry
