"""ASCII live view of a serving run's telemetry.

:func:`render_dashboard` turns a :class:`Telemetry` sink (and
optionally the step trace) into a fixed-width text dashboard:

- a top line of SLO attainment / goodput / prefix hit rate folded from
  the trace (the same numbers ``StepMetrics`` reports),
- event counters per kind,
- per-instance sampled time series (queue depth, running batch, KV
  occupancy) rendered as unicode sparklines,
- latency histograms (TTFT, TBOT, queue delay, prefill, decode step)
  as bucket sparklines with count / mean / p50 / p99.

``python -m repro.cli dashboard`` drives a simulated stream through an
instance and renders this view — either once at the end, or repeatedly
while the simulated clock advances (``--refresh``), which is the "live"
mode: each frame re-renders the dashboard from the registry as it
stands mid-run.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.serving.metrics import StepMetrics
from repro.serving.telemetry.core import Telemetry
from repro.serving.telemetry.registry import Histogram
from repro.serving.trace import Trace

BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 48) -> str:
    """Resample ``values`` to ``width`` columns of unicode blocks.

    Scaled min→max; a flat series renders as a run of the lowest block
    so "no variation" and "no data" stay distinguishable ("" if empty).
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if len(vals) > width:
        # mean-pool into `width` buckets so spikes are kept in scale
        bucketed = []
        for i in range(width):
            lo = i * len(vals) // width
            hi = max(lo + 1, (i + 1) * len(vals) // width)
            chunk = vals[lo:hi]
            bucketed.append(sum(chunk) / len(chunk))
        vals = bucketed
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0:
        return BLOCKS[0] * len(vals)
    return "".join(
        BLOCKS[min(len(BLOCKS) - 1, int((v - lo) / span * len(BLOCKS)))]
        for v in vals
    )


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000 or float(v).is_integer() and abs(v) < 1e6:
        return f"{v:,.0f}"
    if abs(v) >= 1:
        return f"{v:.2f}"
    return f"{v:.4f}"


def _hist_line(name: str, hist: Histogram, width: int) -> Optional[str]:
    counts, total, n = hist.aggregate()
    if n == 0:
        return None
    spark = sparkline([float(c) for c in counts], width=24)
    mean = total / n
    return (
        f"  {name:12s} {spark:24s} n={n:<6d} mean={mean:8.4f}s "
        f"p50={hist.quantile(0.5):.4f}s p99={hist.quantile(0.99):.4f}s"
    )


def render_dashboard(
    telemetry: Telemetry,
    trace: Optional[Trace] = None,
    width: int = 78,
) -> str:
    """Render the dashboard; pure function of the sink (and trace)."""
    bar = "─" * width
    lines: List[str] = []
    labels = " ".join(f"{k}={v}" for k, v in telemetry.labels.items())
    clock = telemetry.loop_now.value()
    fired = telemetry.loop_fired.value()
    title = "serving telemetry"
    lines.append(f"┌{bar}┐"[: width + 2])
    head = f"│ {title}  {labels}".ljust(width + 1) + "│"
    lines.append(head[: width + 2])
    lines.append(
        (f"│ clock={clock:.3f}s events_fired={fired:,.0f}".ljust(width + 1) + "│")[
            : width + 2
        ]
    )
    lines.append(f"└{bar}┘"[: width + 2])

    # top line: trace-folded SLO attainment and throughput
    if trace is not None and len(trace):
        m = StepMetrics.from_trace(trace)
        lines.append("SLO / throughput")
        lines.append(
            f"  ttft_attainment={m.ttft_attainment:.2f} "
            f"tbot_attainment={m.tbot_attainment:.2f} "
            f"goodput={m.goodput:.1f} tok/s "
            f"prefix_hit_rate={m.prefix_hit_rate:.2f}"
        )
        lines.append(
            f"  admits={m.admits} finishes={m.finishes} "
            f"preempts={m.preempts} rejects={m.rejects} "
            f"partial={m.partial_requests} "
            f"mean_tbot={m.mean_tbot * 1e3:.1f}ms "
            f"p99_tbot={m.p99_tbot * 1e3:.1f}ms"
        )

    # event counters per kind
    kinds = {}
    for labelset, v in telemetry.events_total.series():
        kind = labelset.get("kind", "?")
        kinds[kind] = kinds.get(kind, 0.0) + v
    if kinds:
        lines.append("events")
        lines.append(
            "  " + " ".join(f"{k}={int(v)}" for k, v in sorted(kinds.items()))
        )

    # per-instance sampled gauge series → sparklines
    by_metric = {}
    for (inst, metric), pts in sorted(telemetry.series.items()):
        by_metric.setdefault(metric, []).append((inst, pts))
    for metric in ("queue_depth", "running", "kv_occupancy", "loop_pending"):
        rows = by_metric.get(metric)
        if not rows:
            continue
        lines.append(metric)
        for inst, pts in rows:
            vals = [v for _, v in pts]
            name = inst or "-"
            spark = sparkline(vals, width=min(48, width - 28))
            lines.append(
                f"  {name:8s} {spark} last={_fmt(vals[-1])} "
                f"max={_fmt(max(vals))}"
            )

    # latency histograms
    hists = [
        ("ttft", telemetry.ttft),
        ("tbot", telemetry.tbot),
        ("queue_delay", telemetry.queue_delay),
        ("prefill", telemetry.prefill_seconds),
        ("decode_step", telemetry.step_seconds),
    ]
    hist_lines = [
        line
        for name, h in hists
        for line in [_hist_line(name, h, width)]
        if line is not None
    ]
    if hist_lines:
        lines.append("latency histograms (log-spaced buckets)")
        lines.extend(hist_lines)
    return "\n".join(lines)
