"""Prometheus-style metrics primitives for the serving stack.

Three metric families — :class:`Counter`, :class:`Gauge`, and
:class:`Histogram` with **fixed log-spaced buckets** — live in a
:class:`MetricsRegistry`.  Every family carries declared label names
(e.g. ``instance``, ``kind``) plus the registry's constant labels
(e.g. ``policy``, ``comp``), so one fleet-wide registry can be sliced
per instance / scheduler policy / compression method.

Two read-out forms:

- :meth:`MetricsRegistry.render_prometheus` — text exposition in the
  Prometheus format (``# TYPE`` headers, ``_bucket{le=...}`` cumulative
  histogram series), so a run's metrics paste straight into any
  Prometheus-compatible tool.
- :meth:`MetricsRegistry.snapshot` — a plain nested dict for tests,
  JSON dumps, and the ASCII dashboard.

Everything is pure Python with O(1) updates; the serving hot path
(one ``observe``/``inc``/``set`` per trace event) stays cheap enough
that `benchmarks/test_telemetry_overhead.py` bounds the enabled-path
cost on the serving-core scenario.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence, Tuple


def log_buckets(
    lo: float = 1e-4, hi: float = 1e3, per_decade: int = 3
) -> Tuple[float, ...]:
    """Fixed log-spaced bucket upper bounds from ``lo`` to ``hi``.

    ``per_decade`` bounds per factor of ten; the implicit ``+Inf``
    overflow bucket is not included.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    n = int(round(math.log10(hi / lo) * per_decade))
    return tuple(lo * 10 ** (i / per_decade) for i in range(n + 1))


DEFAULT_BUCKETS = log_buckets()  # 1e-4 .. 1e3 s, 3 per decade


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _fmt_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


class Metric:
    """Base of one metric family: a name plus labeled series."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        names = self.label_names
        try:
            key = tuple(str(labels[n]) for n in names)
        except KeyError:
            key = None
        if key is None or len(labels) != len(names):
            raise ValueError(
                f"{self.name} expects labels {names}, got {tuple(labels)}"
            )
        return key

    def _label_dict(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.label_names, key))


class Counter(Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name, help="", label_names=()):
        super().__init__(name, help, label_names)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def inc_key(self, key: Tuple[str, ...], amount: float = 1.0) -> None:
        """Hot-path increment: ``key`` is the label *values* in declared
        order, pre-built by the caller (no kwargs, no validation)."""
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(self._key(labels), 0.0)

    def total(self) -> float:
        """Sum over every labeled series."""
        return sum(self._values.values())

    def series(self) -> List[Tuple[Dict[str, str], float]]:
        return [
            (self._label_dict(k), v) for k, v in sorted(self._values.items())
        ]


class Gauge(Metric):
    """Point-in-time value (set, not accumulated)."""

    kind = "gauge"

    def __init__(self, name, help="", label_names=()):
        super().__init__(name, help, label_names)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._values[self._key(labels)] = float(value)

    def set_key(self, key: Tuple[str, ...], value: float) -> None:
        """Hot-path set: pre-built label-value key, no validation."""
        self._values[key] = float(value)

    def value(self, **labels: str) -> float:
        return self._values.get(self._key(labels), 0.0)

    def series(self) -> List[Tuple[Dict[str, str], float]]:
        return [
            (self._label_dict(k), v) for k, v in sorted(self._values.items())
        ]


class _HistSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # +1: the +Inf overflow bucket
        self.sum = 0.0
        self.count = 0


class Histogram(Metric):
    """Distribution over fixed log-spaced buckets.

    Buckets are upper bounds (plus an implicit ``+Inf``); exposition is
    cumulative, Prometheus-style.  :meth:`quantile` interpolates within
    the landing bucket, which is what the dashboard sparklines report.
    """

    kind = "histogram"

    def __init__(self, name, help="", label_names=(), buckets=None):
        super().__init__(name, help, label_names)
        self.buckets = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("bucket bounds must be sorted")
        self._series: Dict[Tuple[str, ...], _HistSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        self.observe_key(self._key(labels), value)

    def observe_key(self, key: Tuple[str, ...], value: float) -> None:
        """Hot-path observe: pre-built label-value key, no validation."""
        s = self._series.get(key)
        if s is None:
            s = self._series[key] = _HistSeries(len(self.buckets))
        s.counts[bisect.bisect_left(self.buckets, value)] += 1
        s.sum += value
        s.count += 1

    def series(self) -> List[Tuple[Dict[str, str], _HistSeries]]:
        return [
            (self._label_dict(k), s) for k, s in sorted(self._series.items())
        ]

    def aggregate(self) -> Tuple[List[int], float, int]:
        """(per-bucket counts, sum, count) merged across every series."""
        counts = [0] * (len(self.buckets) + 1)
        total, n = 0.0, 0
        for s in self._series.values():
            for i, c in enumerate(s.counts):
                counts[i] += c
            total += s.sum
            n += s.count
        return counts, total, n

    def mean(self) -> float:
        _, total, n = self.aggregate()
        return total / n if n else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from the aggregated buckets (linear
        interpolation inside the landing bucket; 0.0 when empty)."""
        counts, _, n = self.aggregate()
        if n == 0:
            return 0.0
        target = q * n
        cum = 0
        for i, c in enumerate(counts):
            if c == 0:
                continue
            if cum + c >= target:
                hi = (
                    self.buckets[i]
                    if i < len(self.buckets)
                    else self.buckets[-1]
                )
                lo = self.buckets[i - 1] if i > 0 else 0.0
                frac = (target - cum) / c
                return lo + (hi - lo) * min(1.0, max(0.0, frac))
            cum += c
        return float(self.buckets[-1])


class MetricsRegistry:
    """Named collection of metric families with constant labels."""

    def __init__(self, const_labels: Optional[Dict[str, str]] = None) -> None:
        self.const_labels = dict(const_labels or {})
        self._metrics: "Dict[str, Metric]" = {}

    def _register(self, cls, name, help, label_names, **kw) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls) or existing.label_names != tuple(
                label_names
            ):
                raise ValueError(
                    f"metric {name!r} already registered with a different "
                    "type or label set"
                )
            return existing
        metric = cls(name, help, label_names, **kw)
        self._metrics[name] = metric
        return metric

    def counter(self, name, help="", labels=()) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(self, name, help="", labels=()) -> Gauge:
        return self._register(Gauge, name, help, labels)

    def histogram(self, name, help="", labels=(), buckets=None) -> Histogram:
        return self._register(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __iter__(self):
        return iter(self._metrics.values())

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """Plain-dict view of every family (tests, JSON, dashboard)."""
        out: Dict[str, dict] = {}
        for m in self._metrics.values():
            entry: Dict[str, object] = {"type": m.kind, "help": m.help}
            if isinstance(m, Histogram):
                entry["buckets"] = list(m.buckets)
                entry["series"] = [
                    {
                        "labels": labels,
                        "counts": list(s.counts),
                        "sum": s.sum,
                        "count": s.count,
                    }
                    for labels, s in m.series()
                ]
            else:
                entry["series"] = [
                    {"labels": labels, "value": v} for labels, v in m.series()
                ]
            out[m.name] = entry
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every family."""
        lines: List[str] = []
        for m in self._metrics.values():
            if m.help:
                lines.append(f"# HELP {m.name} {m.help}")
            lines.append(f"# TYPE {m.name} {m.kind}")
            if isinstance(m, Histogram):
                for labels, s in m.series():
                    base = {**self.const_labels, **labels}
                    cum = 0
                    for bound, c in zip(m.buckets, s.counts):
                        cum += c
                        lab = _fmt_labels({**base, "le": f"{bound:g}"})
                        lines.append(f"{m.name}_bucket{lab} {cum}")
                    lab = _fmt_labels({**base, "le": "+Inf"})
                    lines.append(f"{m.name}_bucket{lab} {s.count}")
                    lab = _fmt_labels(base)
                    lines.append(f"{m.name}_sum{lab} {s.sum:g}")
                    lines.append(f"{m.name}_count{lab} {s.count}")
            else:
                series = m.series() or [({}, None)]
                for labels, v in series:
                    if v is None:
                        continue
                    lab = _fmt_labels({**self.const_labels, **labels})
                    lines.append(f"{m.name}{lab} {v:g}")
        return "\n".join(lines) + "\n"
