"""A fleet of serving instances on one shared clock.

``Cluster`` attaches N :class:`~repro.serving.simulator.ServerInstance`
objects to a single :class:`~repro.serving.events.EventLoop`, so their
timelines interleave exactly as they would on real hardware.  Two entry
points:

- :meth:`run` — offline assignment: per-instance request streams are
  decided up front (the seed path; Table 8 parity).
- :meth:`run_online` — online routing: each request is dispatched at
  its arrival instant by a caller-supplied ``pick`` function that sees
  **live** instance state (:class:`InstanceView`: queue depth, token
  occupancy, running batch) instead of a decayed offline load model.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.serving.events import EventLoop
from repro.serving.request import ServingRequest
from repro.serving.telemetry.core import active as _active_telemetry
from repro.serving.simulator import ServerInstance, SimulationResult
from repro.serving.trace import Trace


@dataclass(frozen=True)
class InstanceView:
    """Live snapshot of one instance, as seen by an online router."""

    index: int
    name: str
    queue_depth: int
    running: int
    used_tokens: int
    waiting_tokens: int
    token_budget: int

    @property
    def occupancy(self) -> float:
        """Fraction of the KV-token budget currently (or soon) held."""
        return (self.used_tokens + self.waiting_tokens) / max(1, self.token_budget)


#: (request, live views, now) -> chosen instance index
PickFn = Callable[[object, Sequence[InstanceView], float], int]
#: (request, chosen index, now) -> concrete ServingRequest for that instance
MakeFn = Callable[[object, int, float], ServingRequest]


class Cluster:
    """N serving instances sharing one discrete-event clock."""

    def __init__(
        self,
        instances: Sequence[ServerInstance],
        names: Optional[Sequence[str]] = None,
    ) -> None:
        if not instances:
            raise ValueError("a cluster needs at least one instance")
        self.instances = list(instances)
        names = list(names) if names else [f"inst{i}" for i in range(len(instances))]
        if len(names) != len(self.instances):
            raise ValueError("one name per instance required")
        for inst, name in zip(self.instances, names):
            inst.name = name
        self.names = names
        self._telemetry = None  # active sink of the run in progress

    def _attach_all(
        self, trace: Optional[Trace], telemetry=None
    ) -> EventLoop:
        loop = EventLoop(telemetry=telemetry)
        for inst in self.instances:
            inst.attach(loop, trace, telemetry)
        return loop

    def view(self, index: int) -> InstanceView:
        """Live snapshot of instance ``index``."""
        inst = self.instances[index]
        return InstanceView(
            index=index,
            name=inst.name,
            queue_depth=inst.queue_depth,
            running=inst.running_count,
            used_tokens=inst.used_tokens,
            waiting_tokens=inst.waiting_tokens,
            token_budget=inst.token_budget,
        )

    def views(self) -> List[InstanceView]:
        """Live snapshots of every instance."""
        return [self.view(i) for i in range(len(self.instances))]

    def route_to(self, index: int, req: ServingRequest) -> None:
        """Dispatch ``req`` to instance ``index`` mid-run.

        Used by re-routing paths that originate *inside* the simulation
        (the router's verify-and-fallback re-decodes): the arrival is
        registered and consumed in one step, exactly as the normal
        ``expect``/``receive`` pair does for front-door arrivals.
        """
        inst = self.instances[index]
        inst.expect(req.arrival)
        if self._telemetry is not None:
            self._telemetry.on_route(inst.name)
        inst.receive(req)

    # ------------------------------------------------------------------
    def run(
        self,
        streams: Sequence[Sequence[ServingRequest]],
        trace: Optional[Trace] = None,
        telemetry=None,
    ) -> List[SimulationResult]:
        """Serve pre-assigned per-instance streams on the shared clock.

        ``telemetry`` (opt-in) is shared by every instance and the
        loop, so one registry aggregates the whole fleet, labeled per
        instance."""
        if len(streams) != len(self.instances):
            raise ValueError("one request stream per instance required")
        telemetry = _active_telemetry(telemetry)
        # this run's sink, whatever the previous run used: a mid-run
        # route_to() (fallback re-decode) must publish here, not to a
        # stale sink left over from an earlier run_online()
        self._telemetry = telemetry
        loop = self._attach_all(trace, telemetry)
        for inst, stream in zip(self.instances, streams):
            for req in sorted(stream, key=lambda r: r.arrival):
                inst.submit(req)
        try:
            loop.run()
        finally:
            self._telemetry = None  # the run is over; drop the sink
        return [inst.result() for inst in self.instances]

    def run_online(
        self,
        requests: Sequence[object],
        pick: PickFn,
        make: MakeFn,
        trace: Optional[Trace] = None,
        telemetry=None,
    ) -> Tuple[List[SimulationResult], Dict[str, int]]:
        """Dispatch ``requests`` at their arrival instants.

        ``requests`` only need an ``arrival`` and ``request_id``
        attribute (e.g. :class:`~repro.serving.router.RoutedRequest`);
        ``pick`` chooses an instance from live views and ``make`` builds
        the concrete :class:`ServingRequest` for the chosen instance.
        Returns per-instance results plus the request -> instance map.

        Every arrival time is pre-registered with *every* instance
        (:meth:`ServerInstance.expect`): the routing decision only lands
        at the arrival instant, but an instance mid-decode-block must
        already know a request may arrive so it can break the block and
        consider admission — exactly as the ``submit()`` path does.
        """
        telemetry = _active_telemetry(telemetry)
        self._telemetry = telemetry
        loop = self._attach_all(trace, telemetry)
        assignment: Dict[str, int] = {}

        def dispatch(req) -> None:
            idx = pick(req, self.views(), loop.now)
            assignment[req.request_id] = idx
            if telemetry is not None:
                telemetry.on_route(self.instances[idx].name)
            self.instances[idx].receive(make(req, idx, loop.now))

        for req in sorted(requests, key=lambda r: r.arrival):
            for inst in self.instances:
                inst.expect(req.arrival)
            loop.schedule(req.arrival, partial(dispatch, req))
        try:
            loop.run()
        finally:
            # clear once the loop drains: a later run (or a stray
            # route_to outside any run) must not publish to this sink
            self._telemetry = None
        return [inst.result() for inst in self.instances], assignment
