"""Request lifecycle records for the serving simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass
class ServingRequest:
    """One request as seen by the serving simulator.

    ``response_len`` is the number of tokens the model will generate for
    this request *under the serving instance's compression algorithm* —
    supplied by the caller (functional-model generation or a length
    model), since compression changes response lengths (Section 4.3).

    ``priority`` and ``predicted_len`` feed the scheduler policies
    (:mod:`repro.serving.scheduler`); ``preemptions`` and ``rejected``
    are filled in by the simulator alongside the timestamps.
    ``first_token`` records the *earliest* first-token time and survives
    recompute preemption — the client already received those tokens, so
    TTFT/TBOT are measured from the original emission, not the re-admission.

    ``ttft_deadline`` and ``tbot_target`` are optional per-request SLO
    targets: the first token must land within ``ttft_deadline`` seconds
    of arrival, and each subsequent token within ``tbot_target`` seconds
    of the previous one.  ``SlackPolicy`` schedules against them and the
    metrics layer reports attainment; both default to ``None``
    (deadline-free, scheduled FCFS).

    ``queued_at`` is the time the request last entered the waiting
    queue — its arrival for a fresh request, the preemption instant for
    a requeued one — so ``queue_delay`` measures the *last* wait, not
    time since the original arrival.

    ``kv_ready`` marks a request whose prompt KV already exists on the
    instance when it arrives — the decode-stage half of a disaggregated
    prefill/decode handoff, delivered together with the migrated KV.
    Admission ingests it at zero prefill cost (the prefill was priced on
    the prefill pool and the move by the interconnect model); a
    recompute preemption clears the flag, since the migrated KV is
    dropped with everyone else's.

    ``token_ids`` optionally carries the prompt's token ids (length
    ``prompt_len``): prefix caching is content-addressed, so an
    instance with a :class:`~repro.serving.prefix.PrefixIndex` can only
    reuse cached KV when it knows *which* tokens the prompt holds.
    ``cached_prefix`` is filled by the simulator with the tokens the
    last admission found already resident.
    """

    request_id: str
    arrival: float
    prompt_len: int
    response_len: int
    priority: int = 0
    predicted_len: Optional[float] = None
    ttft_deadline: Optional[float] = None
    tbot_target: Optional[float] = None
    token_ids: Optional[Tuple[int, ...]] = None
    kv_ready: bool = False  # prompt KV migrated in (disaggregated decode)

    # filled in by the simulator
    prefill_start: Optional[float] = None
    first_token: Optional[float] = None
    finish: Optional[float] = None
    generated: int = 0
    prefilled: int = 0  # prompt tokens whose KV is cached (chunked prefill)
    cached_prefix: int = 0  # prompt tokens reused from the prefix cache
    preemptions: int = 0
    rejected: bool = False
    queued_at: Optional[float] = None  # last time the request was (re)queued
    # (sparse_budget, peak KV tokens) memoized by the simulator — the
    # peak footprint is static per compression config but probed on
    # every admission/rejection/overflow check
    peak_cache: Optional[Tuple[Optional[int], int]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def ttft(self) -> float:
        """Time to first token (seconds)."""
        if self.first_token is None:
            raise RuntimeError(f"request {self.request_id} not yet served")
        return self.first_token - self.arrival

    @property
    def e2e_latency(self) -> float:
        """End-to-end latency (seconds)."""
        if self.finish is None:
            raise RuntimeError(f"request {self.request_id} not yet served")
        return self.finish - self.arrival

    @property
    def queue_delay(self) -> float:
        """Seconds spent queued before the last admission, measured from
        the last (re)queue epoch — arrival for a fresh request, the
        preemption instant for a requeued one."""
        if self.prefill_start is None:
            raise RuntimeError(f"request {self.request_id} not yet served")
        since = self.queued_at if self.queued_at is not None else self.arrival
        return self.prefill_start - since

    @property
    def tbot(self) -> float:
        """Time between output tokens, from the served timestamps."""
        if self.finish is None or self.first_token is None:
            raise RuntimeError(f"request {self.request_id} not yet served")
        if self.generated <= 1:
            return 0.0
        return (self.finish - self.first_token) / (self.generated - 1)

    @property
    def ttft_met(self) -> Optional[bool]:
        """Whether the TTFT SLO was met (``None`` if no deadline set)."""
        if self.ttft_deadline is None:
            return None
        return self.ttft <= self.ttft_deadline

    @property
    def tbot_met(self) -> Optional[bool]:
        """Whether the TBOT SLO was met (``None`` if no target set)."""
        if self.tbot_target is None:
            return None
        return self.tbot <= self.tbot_target

    @property
    def slo_met(self) -> bool:
        """Whether every SLO target that was set is met (vacuously true
        for deadline-free requests)."""
        return self.ttft_met is not False and self.tbot_met is not False

    @property
    def done(self) -> bool:
        """Whether generation finished."""
        return self.generated >= self.response_len

    @property
    def total_tokens(self) -> int:
        """Prompt plus full response tokens."""
        return self.prompt_len + self.response_len
