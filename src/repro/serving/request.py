"""Request lifecycle records for the serving simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class ServingRequest:
    """One request as seen by the serving simulator.

    ``response_len`` is the number of tokens the model will generate for
    this request *under the serving instance's compression algorithm* —
    supplied by the caller (functional-model generation or a length
    model), since compression changes response lengths (Section 4.3).
    """

    request_id: str
    arrival: float
    prompt_len: int
    response_len: int

    # filled in by the simulator
    prefill_start: Optional[float] = None
    first_token: Optional[float] = None
    finish: Optional[float] = None
    generated: int = 0

    @property
    def ttft(self) -> float:
        """Time to first token (seconds)."""
        if self.first_token is None:
            raise RuntimeError(f"request {self.request_id} not yet served")
        return self.first_token - self.arrival

    @property
    def e2e_latency(self) -> float:
        """End-to-end latency (seconds)."""
        if self.finish is None:
            raise RuntimeError(f"request {self.request_id} not yet served")
        return self.finish - self.arrival

    @property
    def done(self) -> bool:
        """Whether generation finished."""
        return self.generated >= self.response_len

    @property
    def total_tokens(self) -> int:
        """Prompt plus full response tokens."""
        return self.prompt_len + self.response_len
