"""Latency aggregation helpers (TTFT, TBOT, E2E, CDFs)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a latency sample."""

    mean: float
    p50: float
    p90: float
    p99: float
    max: float

    @staticmethod
    def from_samples(samples: Sequence[float]) -> "LatencySummary":
        """Build from raw per-request latencies."""
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            raise ValueError("empty latency sample")
        return LatencySummary(
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p90=float(np.percentile(arr, 90)),
            p99=float(np.percentile(arr, 99)),
            max=float(arr.max()),
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view."""
        return {
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.max,
        }


def cdf(samples: Sequence[float], n_points: int = 200) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF evaluated on an even grid (for Fig. 5/16 plots).

    Returns (x, F(x)) arrays of length ``n_points``.
    """
    arr = np.sort(np.asarray(samples, dtype=float))
    if arr.size == 0:
        raise ValueError("empty sample")
    xs = np.linspace(arr[0], arr[-1], n_points)
    ys = np.searchsorted(arr, xs, side="right") / arr.size
    return xs, ys


def tbot(e2e: float, ttft: float, response_len: int) -> float:
    """Time between output tokens, from an end-to-end measurement."""
    if response_len <= 1:
        return 0.0
    return (e2e - ttft) / (response_len - 1)
