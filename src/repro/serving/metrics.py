"""Latency aggregation helpers (TTFT, TBOT, queue delay, E2E, CDFs)
plus step-level aggregates over a serving :class:`~repro.serving.trace.Trace`.

Both folds are **columnar**: :meth:`StepMetrics.from_trace` on a
columnar :class:`Trace` never materializes an event — every statistic
is a masked NumPy reduction over the kind/time/payload columns — and
:meth:`LatencySummary.from_requests` gathers request attributes into
arrays once and reduces.  Handed an
:class:`~repro.serving.trace.ObjectTrace` (or any duck-typed trace),
``from_trace`` falls back to the original per-event scan; the
equivalence suite pins both paths to bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.serving.trace import EventType, Trace


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a latency sample.

    ``tbot`` (mean time between output tokens) and ``queue_delay``
    (mean seconds queued before admission) are filled in when the
    summary is built from served requests (:meth:`from_requests`);
    plain samples (:meth:`from_samples`) leave them ``None``.

    ``ttft_attainment`` / ``tbot_attainment`` are the fractions of
    served requests meeting their TTFT / TBOT SLO targets (``None``
    when no request carries that target), and ``goodput`` is attained
    tokens per second — tokens from requests that met every SLO target
    they set, divided by the stream's makespan (plain throughput when
    the stream is deadline-free).

    ``prefix_hit_rate`` (fraction of served requests whose admission
    reused cached prefix KV) and ``cached_prefix_tokens`` (total tokens
    reused) appear only when some request actually hit the prefix
    cache, so summaries of prefix-free runs are unchanged.
    """

    mean: float
    p50: float
    p90: float
    p99: float
    max: float
    tbot: Optional[float] = None
    queue_delay: Optional[float] = None
    ttft_attainment: Optional[float] = None
    tbot_attainment: Optional[float] = None
    goodput: Optional[float] = None
    prefix_hit_rate: Optional[float] = None
    cached_prefix_tokens: Optional[int] = None

    @staticmethod
    def from_samples(samples: Sequence[float]) -> "LatencySummary":
        """Build from raw per-request latencies."""
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            raise ValueError("empty latency sample")
        return LatencySummary(
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p90=float(np.percentile(arr, 90)),
            p99=float(np.percentile(arr, 99)),
            max=float(arr.max()),
        )

    @staticmethod
    def degenerate() -> "LatencySummary":
        """All-zero summary for streams where nothing was served
        (e.g. every request rejected under a tight token budget)."""
        return LatencySummary(
            mean=0.0, p50=0.0, p90=0.0, p99=0.0, max=0.0,
            tbot=0.0, queue_delay=0.0, goodput=0.0,
        )

    @staticmethod
    def from_requests(requests: Sequence) -> "LatencySummary":
        """Build from served :class:`~repro.serving.request.ServingRequest`
        records, including mean TBOT and queue delay.

        Request attributes are gathered into NumPy arrays in one pass
        and every statistic is an array reduction; the results are
        bit-identical to the old per-request Python fold (integer sums
        stay exact in float64, and the sample orders feeding means and
        percentiles are unchanged).

        A stream where every request was rejected yields the
        :meth:`degenerate` all-zero summary instead of raising, so
        experiments under tight token budgets report cleanly.
        """
        served = [r for r in requests if not getattr(r, "rejected", False)]
        if not served:
            return LatencySummary.degenerate()
        n = len(served)
        e2e = np.fromiter((r.e2e_latency for r in served), float, count=n)
        base = LatencySummary.from_samples(e2e)
        gen = np.fromiter((r.generated for r in served), np.int64, count=n)
        tbots = np.fromiter(
            (r.tbot for r in served if r.generated > 1), float
        )
        has_ttft = np.fromiter(
            (getattr(r, "ttft_deadline", None) is not None for r in served),
            bool, count=n,
        )
        has_tbot = np.fromiter(
            (getattr(r, "tbot_target", None) is not None for r in served),
            bool, count=n,
        )
        n_ttft = int(has_ttft.sum())
        n_tbot = int(has_tbot.sum())
        ttft_met = (
            sum(r.ttft_met for r, h in zip(served, has_ttft) if h)
            if n_ttft else 0
        )
        tbot_met = (
            sum(r.tbot_met for r, h in zip(served, has_tbot) if h)
            if n_tbot else 0
        )
        finish = np.fromiter((r.finish for r in served), float, count=n)
        arrival = np.fromiter((r.arrival for r in served), float, count=n)
        span = float(finish.max() - arrival.min())
        slo_ok = np.fromiter(
            (getattr(r, "slo_met", True) for r in served), bool, count=n
        )
        attained = int(gen[slo_ok].sum())
        cached = np.fromiter(
            (getattr(r, "cached_prefix", 0) for r in served),
            np.int64, count=n,
        )
        hits = cached > 0
        any_hit = bool(hits.any())
        qd = np.fromiter((r.queue_delay for r in served), float, count=n)
        return LatencySummary(
            mean=base.mean,
            p50=base.p50,
            p90=base.p90,
            p99=base.p99,
            max=base.max,
            tbot=float(np.mean(tbots)) if tbots.size else 0.0,
            queue_delay=float(np.mean(qd)),
            ttft_attainment=ttft_met / n_ttft if n_ttft else None,
            tbot_attainment=tbot_met / n_tbot if n_tbot else None,
            goodput=attained / span if span > 0 else 0.0,
            prefix_hit_rate=int(hits.sum()) / n if any_hit else None,
            cached_prefix_tokens=int(cached.sum()) if any_hit else None,
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (request-level fields only when present)."""
        out = {
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.max,
        }
        if self.tbot is not None:
            out["tbot"] = self.tbot
        if self.queue_delay is not None:
            out["queue_delay"] = self.queue_delay
        if self.ttft_attainment is not None:
            out["ttft_attainment"] = self.ttft_attainment
        if self.tbot_attainment is not None:
            out["tbot_attainment"] = self.tbot_attainment
        if self.goodput is not None:
            out["goodput"] = self.goodput
        if self.prefix_hit_rate is not None:
            out["prefix_hit_rate"] = self.prefix_hit_rate
        if self.cached_prefix_tokens is not None:
            out["cached_prefix_tokens"] = self.cached_prefix_tokens
        return out


@dataclass(frozen=True)
class StepMetrics:
    """Aggregates of a step-level serving trace.

    Occupancy and budget utilization are weighted by step duration, so
    long steps count for what they actually held the GPU for.
    """

    decode_steps: int
    admits: int
    preempts: int
    rejects: int
    finishes: int
    prefill_chunks: int
    partial_requests: int
    #: events the recording itself shed (a bounded ring-buffer trace
    #: dropping its oldest quarter, surfaced by the JSONL metadata
    #: header on round-trip) — nonzero means every count above is a
    #: floor over an incomplete window, not a full-run total
    dropped_events: int
    #: router decisions recorded into the trace by the ``compression``
    #: policy: risk-gate denials and verify-and-fallback re-enqueues
    reroutes: int
    fallbacks: int
    #: disaggregated-fleet events: prefill->decode KV migrations (count,
    #: payload bytes, and priced link seconds) and autoscaler actions
    kv_transfers: int
    kv_transfer_bytes: int
    kv_transfer_seconds: float
    scale_ups: int
    scale_downs: int
    decode_seconds: float
    mean_batch_occupancy: float
    peak_batch_occupancy: int
    mean_budget_utilization: float
    peak_budget_utilization: float
    mean_queue_delay: float
    mean_tbot: float
    p99_tbot: float
    max_decode_gap: float
    ttft_attainment: float
    tbot_attainment: float
    goodput: float
    prefix_hits: int
    prefix_cached_tokens: int
    prefix_saved_seconds: float
    prefix_hit_rate: float

    @staticmethod
    def from_trace(trace) -> "StepMetrics":
        """Fold a trace into scheduler-level summaries.

        ``max_decode_gap`` is the largest interval between consecutive
        ``DECODE_STEP`` completions *while some client was mid-stream*
        — the decode-stall metric: a long single-shot prefill freezes
        every running decode for its whole duration, while chunked
        prefill bounds the gap near one chunk.  A gap counts only if a
        served request's token stream spans it (``first_token`` at or
        before the gap opens, ``finish`` at or after it closes);
        between-burst idle time, when nobody is waiting for a next
        token, is not a stall.

        ``mean_queue_delay`` averages each served request's *last*
        admission, measured from its ``queued_at`` epoch — so it equals
        the mean of ``ServingRequest.queue_delay`` even on traces with
        preemptions, where the old admit-minus-arrival accounting
        double-counted the wait before the first admission.

        ``ttft_attainment`` / ``tbot_attainment`` are fractions of
        finished requests meeting their SLO targets (1.0 when the trace
        carries none), and ``goodput`` is attained tokens per second
        over the stream's makespan.

        ``prefix_hits`` / ``prefix_cached_tokens`` /
        ``prefix_saved_seconds`` fold the PREFIX_HIT events (reused-KV
        admissions and the single-shot prefill time they avoided);
        ``prefix_hit_rate`` is hits over admissions.

        The fold tolerates *partial* traces (a truncated JSONL export,
        or requests still in flight when the trace stopped): events
        missing the payload keys a statistic needs are skipped instead
        of raising ``KeyError``, and ``partial_requests`` counts the
        request ids that appear in the trace without a complete FINISH
        or a REJECT.  On a complete trace it is zero and every number
        matches the strict fold exactly.

        Columnar traces fold as masked reductions over the columns
        (:meth:`_from_columns`); anything else takes the per-event scan
        (:meth:`_from_events`).  Both return bit-identical results.
        """
        if isinstance(trace, Trace):
            return StepMetrics._from_columns(trace)
        return StepMetrics._from_events(trace)

    @staticmethod
    def _from_columns(trace: Trace) -> "StepMetrics":
        """Vectorized fold over a columnar trace.

        Exactness notes (these keep the fold bit-for-bit equal to
        :meth:`_from_events`): integer payloads are exact in float64,
        so int/int Python divisions equal the float64 divisions here;
        array orders feeding ``np.mean``/``np.percentile`` match the
        event orders of the scan; and ``prefix_saved_seconds`` keeps
        the scan's *sequential* left-to-right float summation, which
        NumPy's pairwise ``sum`` would not reproduce.
        """
        n = len(trace)
        time = trace._time[:n]
        req = trace._req[:n]

        def present(rows: np.ndarray, *keys: str) -> np.ndarray:
            mask = np.ones(len(rows), dtype=bool)
            for key in keys:
                _, p = trace.payload(key)
                if p is None:
                    return np.zeros(len(rows), dtype=bool)
                mask &= p[rows]
            return mask

        step_rows = trace.rows_of(EventType.DECODE_STEP)
        step_rows = step_rows[
            present(
                step_rows, "seconds", "batch", "used_tokens", "token_budget"
            )
        ]
        if len(step_rows):
            secs = trace.payload("seconds")[0][step_rows]
            batches = trace.payload("batch")[0][step_rows]
            utils = trace.payload("used_tokens")[0][step_rows] / np.maximum(
                trace.payload("token_budget")[0][step_rows], 1.0
            )
            times = time[step_rows]
        else:
            secs = batches = utils = times = np.empty(0)
        wall = float(secs.sum())
        w = secs / wall if wall > 0 else None

        fin_rows = trace.rows_of(EventType.FINISH)
        n_finishes_all = len(fin_rows)
        frows = fin_rows[present(fin_rows, "arrival", "first_token", "generated")]
        if len(frows):
            f_time = time[frows]
            f_arr = trace.payload("arrival")[0][frows]
            f_ft = trace.payload("first_token")[0][frows]
            f_gen = trace.payload("generated")[0][frows]
        else:
            f_time = f_arr = f_ft = f_gen = np.empty(0)

        # token streams in flight: a gap only stalls a client whose
        # stream covers it entirely.  Sort streams by first_token and
        # keep a running max of finish times; then "some stream covers
        # (t1, t2)" is one searchsorted lookup per gap instead of the
        # scan's O(steps x finishes) inner loop.
        gap = 0.0
        if len(times) > 1 and len(frows):
            t1, t2 = times[:-1], times[1:]
            order = np.argsort(f_ft, kind="stable")
            starts = f_ft[order]
            end_max = np.maximum.accumulate(f_time[order])
            idx = np.searchsorted(starts, t1, side="right") - 1
            covered = np.zeros(len(t1), dtype=bool)
            ok = idx >= 0
            covered[ok] = end_max[idx[ok]] >= t2[ok]
            if covered.any():
                gap = float((t2 - t1)[covered].max())

        multi = f_gen > 1
        tbots = (f_time[multi] - f_ft[multi]) / (f_gen[multi] - 1.0)

        admit_rows = trace.rows_of(EventType.ADMIT)
        reject_rows = trace.rows_of(EventType.REJECT)
        dropped = set(req[reject_rows].tolist())
        # last admission per request, measured from its (re)queue epoch;
        # requests that were admitted but later dropped mid-decode are
        # excluded (they were never served)
        qa, qa_p = trace.payload("queued_at")
        ar, ar_p = trace.payload("arrival")
        last_admit: Dict[int, float] = {}
        for i in admit_rows.tolist():
            if qa_p is not None and qa_p[i]:
                since = qa[i]
            elif ar_p is not None and ar_p[i]:
                since = ar[i]
            else:
                continue
            last_admit[int(req[i])] = float(time[i] - since)
        delays = [d for rid, d in last_admit.items() if rid not in dropped]

        def miss_truthy(key: str) -> np.ndarray:
            v, p = trace.payload(key)
            if p is None or not len(frows):
                return np.zeros(len(frows), dtype=bool)
            return p[frows] & (v[frows] != 0)

        n_ttft = int(present(frows, "ttft_deadline").sum())
        n_ttft_miss = int(present(frows, "ttft_deadline", "ttft_miss").sum())
        n_tbot = int(present(frows, "tbot_target").sum())
        n_tbot_miss = int(present(frows, "tbot_target", "tbot_miss").sum())
        att = ~miss_truthy("ttft_miss") & ~miss_truthy("tbot_miss")
        attained = int(f_gen[att].sum()) if len(frows) else 0
        span = float(f_time.max() - f_arr.min()) if len(frows) else 0.0

        complete = set(req[frows].tolist())
        partial = sum(
            1
            for rid in range(1, len(trace._req_names))
            if rid not in complete and rid not in dropped
        )

        hit_rows = trace.rows_of(EventType.PREFIX_HIT)
        cached_total = 0
        saved = 0.0
        if len(hit_rows):
            cv, cp = trace.payload("cached")
            if cp is not None:
                cached_total = int(cv[hit_rows][cp[hit_rows]].sum())
            sv, sp = trace.payload("saved_seconds")
            if sp is not None:
                # sequential sum, matching the event scan bit-for-bit
                for i in hit_rows.tolist():
                    if sp[i]:
                        saved += float(sv[i])
        n_admits = len(admit_rows)

        xfer_rows = trace.rows_of(EventType.KV_TRANSFER)
        xfer_bytes = 0
        xfer_seconds = 0.0
        if len(xfer_rows):
            bv, bp = trace.payload("bytes")
            if bp is not None:
                xfer_bytes = int(bv[xfer_rows][bp[xfer_rows]].sum())
            sv, sp = trace.payload("seconds")
            if sp is not None:
                # sequential sum, matching the event scan bit-for-bit
                for i in xfer_rows.tolist():
                    if sp[i]:
                        xfer_seconds += float(sv[i])

        return StepMetrics(
            decode_steps=len(step_rows),
            admits=n_admits,
            preempts=len(trace.rows_of(EventType.PREEMPT)),
            rejects=len(reject_rows),
            finishes=n_finishes_all,
            prefill_chunks=len(trace.rows_of(EventType.PREFILL_CHUNK)),
            partial_requests=partial,
            dropped_events=int(getattr(trace, "dropped_events", 0) or 0),
            reroutes=len(trace.rows_of(EventType.REROUTE)),
            fallbacks=len(trace.rows_of(EventType.FALLBACK)),
            kv_transfers=len(xfer_rows),
            kv_transfer_bytes=xfer_bytes,
            kv_transfer_seconds=xfer_seconds,
            scale_ups=len(trace.rows_of(EventType.SCALE_UP)),
            scale_downs=len(trace.rows_of(EventType.SCALE_DOWN)),
            decode_seconds=wall,
            mean_batch_occupancy=(
                float((batches * w).sum()) if w is not None else 0.0
            ),
            peak_batch_occupancy=int(batches.max()) if len(step_rows) else 0,
            mean_budget_utilization=(
                float((utils * w).sum()) if w is not None else 0.0
            ),
            peak_budget_utilization=(
                float(utils.max()) if len(step_rows) else 0.0
            ),
            mean_queue_delay=float(np.mean(delays)) if delays else 0.0,
            mean_tbot=float(np.mean(tbots)) if tbots.size else 0.0,
            p99_tbot=float(np.percentile(tbots, 99)) if tbots.size else 0.0,
            max_decode_gap=gap,
            ttft_attainment=(
                1.0 - n_ttft_miss / n_ttft if n_ttft else 1.0
            ),
            tbot_attainment=(
                1.0 - n_tbot_miss / n_tbot if n_tbot else 1.0
            ),
            goodput=attained / span if span > 0 else 0.0,
            prefix_hits=len(hit_rows),
            prefix_cached_tokens=cached_total,
            prefix_saved_seconds=float(saved),
            prefix_hit_rate=len(hit_rows) / n_admits if n_admits else 0.0,
        )

    @staticmethod
    def _from_events(trace) -> "StepMetrics":
        """Per-event reference fold (ObjectTrace / duck-typed traces)."""
        steps = [
            e
            for e in trace.of_kind(EventType.DECODE_STEP)
            if {"seconds", "batch", "used_tokens", "token_budget"}
            <= e.data.keys()
        ]
        secs = np.array([e.data["seconds"] for e in steps], dtype=float)
        batches = np.array([e.data["batch"] for e in steps], dtype=float)
        utils = np.array(
            [
                e.data["used_tokens"] / max(1, e.data["token_budget"])
                for e in steps
            ],
            dtype=float,
        )
        wall = float(secs.sum())
        w = secs / wall if wall > 0 else None
        times = np.array([e.time for e in steps], dtype=float)
        all_finishes = trace.of_kind(EventType.FINISH)
        finishes = [
            e
            for e in all_finishes
            if {"arrival", "first_token", "generated"} <= e.data.keys()
        ]
        # token streams in flight: a gap only stalls a client whose
        # stream covers it entirely
        spans = [(e.data["first_token"], e.time) for e in finishes]
        gap = 0.0
        for t1, t2 in zip(times[:-1], times[1:]):
            if any(start <= t1 and end >= t2 for start, end in spans):
                gap = max(gap, float(t2 - t1))
        tbots = [
            (e.time - e.data["first_token"]) / (e.data["generated"] - 1)
            for e in finishes
            if e.data["generated"] > 1
        ]
        admits = trace.of_kind(EventType.ADMIT)
        # last admission per request, measured from its (re)queue epoch;
        # requests that were admitted but later dropped mid-decode are
        # excluded (they were never served)
        dropped = {e.request_id for e in trace.of_kind(EventType.REJECT)}
        last_admit: Dict[str, float] = {}
        for e in admits:
            since = e.data.get("queued_at", e.data.get("arrival"))
            if since is not None:
                last_admit[e.request_id] = e.time - since
        delays = [d for rid, d in last_admit.items() if rid not in dropped]
        with_ttft = [e for e in finishes if "ttft_deadline" in e.data]
        with_tbot = [e for e in finishes if "tbot_target" in e.data]
        attained = sum(
            e.data["generated"]
            for e in finishes
            if not e.data.get("ttft_miss") and not e.data.get("tbot_miss")
        )
        span = (
            max(e.time for e in finishes)
            - min(e.data["arrival"] for e in finishes)
            if finishes else 0.0
        )
        complete = {e.request_id for e in finishes}
        partial = [
            rid
            for rid in trace.request_ids()
            if rid not in complete and rid not in dropped
        ]
        hits = trace.of_kind(EventType.PREFIX_HIT)
        xfers = trace.of_kind(EventType.KV_TRANSFER)
        return StepMetrics(
            decode_steps=len(steps),
            admits=len(admits),
            preempts=len(trace.of_kind(EventType.PREEMPT)),
            rejects=len(trace.of_kind(EventType.REJECT)),
            finishes=len(all_finishes),
            prefill_chunks=len(trace.of_kind(EventType.PREFILL_CHUNK)),
            partial_requests=len(partial),
            dropped_events=int(getattr(trace, "dropped_events", 0) or 0),
            reroutes=len(trace.of_kind(EventType.REROUTE)),
            fallbacks=len(trace.of_kind(EventType.FALLBACK)),
            kv_transfers=len(xfers),
            kv_transfer_bytes=int(
                sum(e.data.get("bytes", 0) for e in xfers)
            ),
            kv_transfer_seconds=float(
                sum(e.data.get("seconds", 0.0) for e in xfers)
            ),
            scale_ups=len(trace.of_kind(EventType.SCALE_UP)),
            scale_downs=len(trace.of_kind(EventType.SCALE_DOWN)),
            decode_seconds=wall,
            mean_batch_occupancy=float((batches * w).sum()) if w is not None else 0.0,
            peak_batch_occupancy=int(batches.max()) if len(steps) else 0,
            mean_budget_utilization=float((utils * w).sum()) if w is not None else 0.0,
            peak_budget_utilization=float(utils.max()) if len(steps) else 0.0,
            mean_queue_delay=float(np.mean(delays)) if delays else 0.0,
            mean_tbot=float(np.mean(tbots)) if tbots else 0.0,
            p99_tbot=float(np.percentile(tbots, 99)) if tbots else 0.0,
            max_decode_gap=gap,
            ttft_attainment=(
                1.0 - sum("ttft_miss" in e.data for e in with_ttft)
                / len(with_ttft)
                if with_ttft else 1.0
            ),
            tbot_attainment=(
                1.0 - sum("tbot_miss" in e.data for e in with_tbot)
                / len(with_tbot)
                if with_tbot else 1.0
            ),
            goodput=attained / span if span > 0 else 0.0,
            prefix_hits=len(hits),
            prefix_cached_tokens=int(
                sum(e.data.get("cached", 0) for e in hits)
            ),
            prefix_saved_seconds=float(
                sum(e.data.get("saved_seconds", 0.0) for e in hits)
            ),
            prefix_hit_rate=len(hits) / len(admits) if admits else 0.0,
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view."""
        return {
            "decode_steps": self.decode_steps,
            "admits": self.admits,
            "preempts": self.preempts,
            "rejects": self.rejects,
            "finishes": self.finishes,
            "prefill_chunks": self.prefill_chunks,
            "partial_requests": self.partial_requests,
            "dropped_events": self.dropped_events,
            "reroutes": self.reroutes,
            "fallbacks": self.fallbacks,
            "kv_transfers": self.kv_transfers,
            "kv_transfer_bytes": self.kv_transfer_bytes,
            "kv_transfer_seconds": self.kv_transfer_seconds,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "decode_seconds": self.decode_seconds,
            "mean_batch_occupancy": self.mean_batch_occupancy,
            "peak_batch_occupancy": self.peak_batch_occupancy,
            "mean_budget_utilization": self.mean_budget_utilization,
            "peak_budget_utilization": self.peak_budget_utilization,
            "mean_queue_delay": self.mean_queue_delay,
            "mean_tbot": self.mean_tbot,
            "p99_tbot": self.p99_tbot,
            "max_decode_gap": self.max_decode_gap,
            "ttft_attainment": self.ttft_attainment,
            "tbot_attainment": self.tbot_attainment,
            "goodput": self.goodput,
            "prefix_hits": self.prefix_hits,
            "prefix_cached_tokens": self.prefix_cached_tokens,
            "prefix_saved_seconds": self.prefix_saved_seconds,
            "prefix_hit_rate": self.prefix_hit_rate,
        }

    def render(self) -> str:
        """Multi-line human-readable summary."""
        return "\n".join(
            f"{k:24s} {v:.4f}" if isinstance(v, float) else f"{k:24s} {v}"
            for k, v in self.as_dict().items()
        )


def cdf(samples: Sequence[float], n_points: int = 200) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF evaluated on an even grid (for Fig. 5/16 plots).

    Returns (x, F(x)) arrays of length ``n_points``.
    """
    arr = np.sort(np.asarray(samples, dtype=float))
    if arr.size == 0:
        raise ValueError("empty sample")
    xs = np.linspace(arr[0], arr[-1], n_points)
    ys = np.searchsorted(arr, xs, side="right") / arr.size
    return xs, ys


def tbot(e2e: float, ttft: float, response_len: int) -> float:
    """Time between output tokens, from an end-to-end measurement."""
    if response_len <= 1:
        return 0.0
    return (e2e - ttft) / (response_len - 1)
