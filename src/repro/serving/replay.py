"""Trace replay: re-run a recorded serving workload and verify the fold.

The telemetry exporter round-trips traces exactly (every payload value
by json value), which makes a recorded run a *benchmark artifact*: the
workload that produced it — arrival instants, prompt/response shapes,
SLO targets, and the routing decisions actually taken — is either
embedded in the export's metadata header (``dump_jsonl(scenario=...,
workload=...)``) or reconstructable from the events themselves
(:func:`extract_workload`).  :func:`replay_trace` rebuilds the serving
scenario from its config, re-runs the workload through
:class:`~repro.serving.fleet.DisaggFleet` (a monolithic cluster is the
empty-prefill-pool special case, which delegates to
:meth:`~repro.serving.cluster.Cluster.run_online`), folds both traces
with :class:`~repro.serving.metrics.StepMetrics`, and reports the
drift field by field.

On an unchanged build, a complete recording replays **exactly**: the
simulator is deterministic, the exporter is loss-free, and pinned
routing (:func:`pinned_pick`) re-issues every recorded placement — so
``ReplayReport.exact`` is the regression signal CI asserts on.  When
code has changed, the drift list *is* the diff: which scheduler-level
statistics moved, recorded vs replayed.

Scenario configs are plain JSON dicts (see :func:`fleet_scenario` /
:func:`instance_config`) so they embed in trace headers and in the
auto-emitted regression tests under ``tests/mined/``:

``{"kind": "fleet", "interconnect": "nvlink-a6000",``
``  "prefill": [<instance>...], "decode": [<instance>...],``
``  "prefill_active": N|null, "decode_active": N|null,``
``  "autoscaler": {<Autoscaler kwargs>}|null}``

with each instance ``{"algo", "arch", "gpu", "engine", "tp",
"max_batch", "decode_block", "policy", "admission", "chunk_size",
"prefix_caching"}``.  Workload specs are one dict per logical request
(``request_id`` / ``arrival`` / ``prompt_len`` / ``response_len`` /
``priority`` / ``predicted_len`` / ``ttft_deadline`` / ``tbot_target``
/ ``token_ids``).

Router-synthesized stages are recognised, not replayed: ``#pf``
prefill stages are folded into their logical request, and ``#fb``
fallback re-decodes (plus ``REROUTE``/``FALLBACK`` policy decisions)
originate *inside* the router, so a router trace replays best-effort
through the plain fleet with the policy-layer drift reported instead
of silently absorbed.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hardware.interconnect import (
    NVLINK_A6000,
    NVLINK_H800,
    PCIE_GEN4,
    InterconnectSpec,
)
from repro.serving.fleet import (
    PREFILL_SUFFIX,
    Autoscaler,
    DisaggFleet,
    least_loaded,
)
from repro.serving.metrics import StepMetrics
from repro.serving.request import ServingRequest
from repro.serving.trace import EventType, Trace

#: router verify-and-fallback re-decodes run under this suffix
FALLBACK_SUFFIX = "#fb"

_INTERCONNECTS: Dict[str, InterconnectSpec] = {
    spec.name: spec for spec in (NVLINK_A6000, NVLINK_H800, PCIE_GEN4)
}

#: instance-config defaults (omitted keys mean exactly these)
_INSTANCE_DEFAULTS: Dict[str, object] = {
    "algo": "fp16",
    "arch": "llama-7b",
    "gpu": "a6000",
    "engine": "lmdeploy",
    "tp": 1,
    "max_batch": 64,
    "decode_block": 8,
    "policy": "fcfs",
    "admission": "reserve",
    "chunk_size": None,
    "prefix_caching": False,
}

_SPEC_KEYS = (
    "request_id", "arrival", "prompt_len", "response_len", "priority",
    "predicted_len", "ttft_deadline", "tbot_target", "token_ids",
)


# ----------------------------------------------------------------------
# scenario configs -> live fleets
# ----------------------------------------------------------------------
def instance_config(**overrides) -> Dict[str, object]:
    """A normalized (all keys present) JSON-able instance config."""
    unknown = set(overrides) - set(_INSTANCE_DEFAULTS)
    if unknown:
        raise ValueError(f"unknown instance config keys: {sorted(unknown)}")
    cfg = dict(_INSTANCE_DEFAULTS)
    cfg.update(overrides)
    return cfg


def fleet_scenario(
    decode: Sequence[Dict[str, object]],
    prefill: Sequence[Dict[str, object]] = (),
    interconnect: str = "nvlink-a6000",
    prefill_active: Optional[int] = None,
    decode_active: Optional[int] = None,
    autoscaler: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """A JSON-able fleet scenario (monolithic when ``prefill`` is empty)."""
    return {
        "kind": "fleet",
        "interconnect": interconnect,
        "prefill": [instance_config(**dict(c)) for c in prefill],
        "decode": [instance_config(**dict(c)) for c in decode],
        "prefill_active": prefill_active,
        "decode_active": decode_active,
        "autoscaler": dict(autoscaler) if autoscaler else None,
    }


def build_instance(cfg: Dict[str, object]):
    """Construct a :class:`ServerInstance` from one instance config."""
    # imported lazily: repro.compression / engines / model pull in the
    # numeric stack, and replay is importable from repro.serving.*
    from repro.compression import NoCompression, create
    from repro.engines import ServingCostModel
    from repro.engines.presets import get_engine
    from repro.hardware.specs import get_gpu
    from repro.model.arch import get_arch
    from repro.serving.prefix import PrefixIndex
    from repro.serving.scheduler import make_policy
    from repro.serving.simulator import ServerInstance

    cfg = instance_config(**dict(cfg))
    algo = str(cfg["algo"])
    comp = (
        NoCompression() if algo == "fp16" else create(algo)
    ).cost_spec()
    interconnect = None
    tp = int(cfg["tp"])
    if tp > 1:
        interconnect = (
            NVLINK_H800 if str(cfg["gpu"]).lower() == "h800" else NVLINK_A6000
        )
    model = ServingCostModel(
        get_arch(str(cfg["arch"])),
        get_gpu(str(cfg["gpu"])),
        get_engine(str(cfg["engine"])),
        tp=tp,
        interconnect=interconnect,
    )
    return ServerInstance(
        model,
        comp,
        max_batch=int(cfg["max_batch"]),
        decode_block=int(cfg["decode_block"]),
        scheduler=make_policy(str(cfg["policy"])),
        admission=str(cfg["admission"]),
        chunk_size=(
            None if cfg["chunk_size"] is None else int(cfg["chunk_size"])
        ),
        prefix_cache=PrefixIndex() if cfg["prefix_caching"] else None,
    )


def build_scenario(scenario: Dict[str, object]) -> DisaggFleet:
    """Construct a fresh fleet from a scenario config dict."""
    kind = scenario.get("kind", "fleet")
    if kind != "fleet":
        raise ValueError(f"unknown scenario kind {kind!r}")
    link = str(scenario.get("interconnect") or "nvlink-a6000")
    if link not in _INTERCONNECTS:
        raise ValueError(
            f"unknown interconnect {link!r}; known: {sorted(_INTERCONNECTS)}"
        )
    auto_cfg = scenario.get("autoscaler")
    return DisaggFleet(
        [build_instance(c) for c in scenario.get("prefill", ())],
        [build_instance(c) for c in scenario["decode"]],
        interconnect=_INTERCONNECTS[link],
        prefill_active=scenario.get("prefill_active"),
        decode_active=scenario.get("decode_active"),
        autoscaler=Autoscaler(**auto_cfg) if auto_cfg else None,
    )


# ----------------------------------------------------------------------
# workload specs <-> requests
# ----------------------------------------------------------------------
def workload_specs(requests: Sequence[ServingRequest]) -> List[Dict[str, object]]:
    """JSON-able workload specs for a request stream (pre-run shape
    only — the simulator-filled lifecycle fields are not part of the
    workload)."""
    return [
        {
            "request_id": r.request_id,
            "arrival": r.arrival,
            "prompt_len": r.prompt_len,
            "response_len": r.response_len,
            "priority": r.priority,
            "predicted_len": r.predicted_len,
            "ttft_deadline": r.ttft_deadline,
            "tbot_target": r.tbot_target,
            "token_ids": list(r.token_ids) if r.token_ids else None,
        }
        for r in requests
    ]


def make_requests(specs: Sequence[Dict[str, object]]) -> List[ServingRequest]:
    """Fresh request objects from workload specs (the simulator mutates
    requests in place, so every replay needs its own)."""
    out: List[ServingRequest] = []
    for spec in specs:
        unknown = set(spec) - set(_SPEC_KEYS)
        if unknown:
            raise ValueError(f"unknown workload spec keys: {sorted(unknown)}")
        token_ids = spec.get("token_ids")
        out.append(
            ServingRequest(
                request_id=str(spec["request_id"]),
                arrival=float(spec["arrival"]),
                prompt_len=int(spec["prompt_len"]),
                response_len=int(spec["response_len"]),
                priority=int(spec.get("priority", 0) or 0),
                predicted_len=(
                    None if spec.get("predicted_len") is None
                    else float(spec["predicted_len"])
                ),
                ttft_deadline=(
                    None if spec.get("ttft_deadline") is None
                    else float(spec["ttft_deadline"])
                ),
                tbot_target=(
                    None if spec.get("tbot_target") is None
                    else float(spec["tbot_target"])
                ),
                token_ids=tuple(token_ids) if token_ids else None,
            )
        )
    return out


# ----------------------------------------------------------------------
# workload extraction from a recorded trace
# ----------------------------------------------------------------------
def logical_id(request_id: str) -> str:
    """The logical request id behind a (possibly staged) trace id."""
    for suffix in (PREFILL_SUFFIX, FALLBACK_SUFFIX):
        if request_id.endswith(suffix):
            return request_id[: -len(suffix)]
    return request_id


@dataclass
class ReplayWorkload:
    """A recorded workload reconstructed from trace events.

    ``assignment`` maps ``(logical id, pool)`` to the instance name the
    recording actually placed that stage on (pool is ``"prefill"`` for
    ``pf*`` instances, ``"decode"`` otherwise — monolithic instances
    count as decode).  ``synthetic`` counts the router/fleet-internal
    stage ids recognised (``#pf`` prefill stages, ``#fb`` fallback
    re-decodes); ``unreplayable`` lists logical ids whose workload
    shape could not be recovered (e.g. rejected before any admission),
    with the reason.  ``partial`` flags a recording whose ring buffer
    shed events — replay can run, but exactness is off the table.
    """

    specs: List[Dict[str, object]] = field(default_factory=list)
    assignment: Dict[Tuple[str, str], str] = field(default_factory=dict)
    synthetic: Dict[str, int] = field(default_factory=dict)
    unreplayable: List[Tuple[str, str]] = field(default_factory=list)
    partial: bool = False


def extract_assignment(trace) -> Dict[Tuple[str, str], str]:
    """Recorded ``(logical id, pool) -> instance name`` placements.

    One entry per stage admission (the last ADMIT wins; preemption
    re-admissions requeue on the same instance, so this is stable).
    """
    assignment: Dict[Tuple[str, str], str] = {}
    for e in trace.of_kind(EventType.ADMIT):
        if not e.request_id or not e.instance:
            continue
        pool = "prefill" if e.instance.startswith("pf") else "decode"
        assignment[(logical_id(e.request_id), pool)] = e.instance
    return assignment


def extract_workload(trace) -> ReplayWorkload:
    """Reconstruct the workload a trace recorded, from events alone.

    Prefers nothing: callers should use the export header's embedded
    ``workload`` when present (:func:`replay_trace` does) — the events
    cannot describe requests that were rejected before any admission,
    prompt token ids, or scheduler inputs like ``priority`` that never
    land in a payload.  For everything the events *do* carry, the
    reconstruction is exact: arrivals and SLO targets from ``ADMIT``,
    prompt shapes from ``PREFILL``/``PREFILL_CHUNK``/``PREFIX_HIT``
    (falling back to ``KV_TRANSFER`` token counts), response lengths
    from the logical ``FINISH``.
    """
    wl = ReplayWorkload(
        assignment=extract_assignment(trace),
        partial=bool(getattr(trace, "dropped_events", 0)),
    )
    logical: List[str] = []
    seen = set()
    for rid in trace.request_ids():
        if rid.endswith(PREFILL_SUFFIX):
            wl.synthetic["#pf"] = wl.synthetic.get("#pf", 0) + 1
        elif rid.endswith(FALLBACK_SUFFIX):
            wl.synthetic["#fb"] = wl.synthetic.get("#fb", 0) + 1
        lrid = logical_id(rid)
        if lrid and lrid not in seen:
            seen.add(lrid)
            logical.append(lrid)

    for lrid in logical:
        events = list(trace.for_request(lrid)) + list(
            trace.for_request(lrid + PREFILL_SUFFIX)
        )
        events.sort(key=lambda e: e.time)
        arrival = ttft_deadline = tbot_target = None
        prompt = response = None
        kv_tokens = None
        for e in events:
            d = e.data
            if e.kind is EventType.ADMIT:
                if arrival is None and "arrival" in d:
                    arrival = float(d["arrival"])
                if "ttft_deadline" in d:
                    ttft_deadline = float(d["ttft_deadline"])
                if "tbot_target" in d:
                    tbot_target = float(d["tbot_target"])
            elif e.kind in (
                EventType.PREFILL,
                EventType.PREFILL_CHUNK,
                EventType.PREFIX_HIT,
            ):
                if "prompt" in d:
                    prompt = int(d["prompt"])
            elif e.kind is EventType.KV_TRANSFER:
                if "tokens" in d:
                    kv_tokens = int(d["tokens"])
            elif e.kind is EventType.FINISH and e.request_id == lrid:
                if arrival is None and "arrival" in d:
                    arrival = float(d["arrival"])
                if "generated" in d:
                    response = int(d["generated"])
        if prompt is None:
            # a transfer's token count is the prompt unless the prefill
            # instance shipped a sparsity-capped cache — best effort
            prompt = kv_tokens
        if arrival is None:
            wl.unreplayable.append((lrid, "no admission recorded"))
            continue
        if prompt is None:
            wl.unreplayable.append((lrid, "no prompt shape recorded"))
            continue
        if response is None:
            wl.unreplayable.append((lrid, "no completed response recorded"))
            continue
        wl.specs.append(
            {
                "request_id": lrid,
                "arrival": arrival,
                "prompt_len": prompt,
                "response_len": response,
                "priority": 0,
                "predicted_len": None,
                "ttft_deadline": ttft_deadline,
                "tbot_target": tbot_target,
                "token_ids": None,
            }
        )
    wl.specs.sort(key=lambda s: (s["arrival"], s["request_id"]))
    return wl


def pinned_pick(assignment: Dict[Tuple[str, str], str]):
    """A fleet/cluster pick function re-issuing recorded placements.

    The pool is inferred from the live views (``pf*`` names are the
    prefill pool; ``dec*`` / ``inst*`` / unnamed are decode), matching
    :func:`extract_assignment`.  Requests the recording never placed —
    or whose recorded target is not currently active (an autoscaler
    divergence, only possible once code has changed) — fall back to
    :func:`~repro.serving.fleet.least_loaded`.
    """

    def pick(req, views, now) -> int:
        pool = (
            "prefill"
            if views and views[0].name.startswith("pf")
            else "decode"
        )
        target = assignment.get((logical_id(req.request_id), pool))
        if target is not None:
            for j, view in enumerate(views):
                if view.name == target:
                    return j
        return least_loaded(req, views, now)

    return pick


# ----------------------------------------------------------------------
# the replay harness
# ----------------------------------------------------------------------
@dataclass
class ReplayReport:
    """Outcome of replaying a recorded trace against the current build."""

    recorded: StepMetrics
    replayed: StepMetrics
    #: ``(field, recorded value, replayed value)`` per differing field
    drift: List[Tuple[str, object, object]]
    routing: str
    n_requests: int
    events_recorded: int
    events_replayed: int
    wall_seconds: float
    #: recording shed ring-buffer events; exactness is unattainable
    partial: bool = False
    #: logical ids the workload reconstruction had to skip
    unreplayable: List[Tuple[str, str]] = field(default_factory=list)
    trace: Optional[Trace] = None

    @property
    def exact(self) -> bool:
        """Whether the replayed fold matches the recording field-for-field."""
        return not self.drift

    @property
    def events_per_second(self) -> float:
        """Replay throughput (replayed trace events per wall second)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_replayed / self.wall_seconds

    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"replayed {self.n_requests} requests "
            f"({self.routing} routing): "
            f"{self.events_replayed:,} events vs {self.events_recorded:,} "
            f"recorded in {self.wall_seconds:.3f}s "
            f"({self.events_per_second:,.0f} events/s)",
        ]
        if self.partial:
            lines.append(
                "recording is PARTIAL (ring buffer shed events); "
                "exact replay is unattainable"
            )
        for rid, why in self.unreplayable:
            lines.append(f"skipped {rid}: {why}")
        if self.exact:
            lines.append("fold: EXACT (every StepMetrics field matches)")
        else:
            lines.append(f"fold: DRIFT in {len(self.drift)} field(s)")
            for name, rec, rep in self.drift:
                lines.append(f"  {name:24s} recorded={rec!r} replayed={rep!r}")
        return "\n".join(lines)


def fold_drift(
    recorded: StepMetrics, replayed: StepMetrics
) -> List[Tuple[str, object, object]]:
    """Field-by-field diff of two folds (empty means exact)."""
    rec, rep = recorded.as_dict(), replayed.as_dict()
    return [(k, rec[k], rep[k]) for k in rec if rec[k] != rep[k]]


def replay_trace(
    trace,
    scenario: Optional[Dict[str, object]] = None,
    routing: str = "recorded",
    telemetry=None,
) -> ReplayReport:
    """Re-run a recorded trace's workload and diff the metric folds.

    ``scenario`` defaults to the config embedded in the trace's
    metadata header (``trace.meta["scenario"]``); likewise the workload
    specs come from ``trace.meta["workload"]`` when the export carried
    them and are reconstructed from events otherwise.  ``routing``:
    ``"recorded"`` pins every placement to the recorded instance
    (required for exactness); ``"live"`` lets the scenario's default
    policy re-route, which measures how much of the recorded outcome
    was routing rather than workload.  ``telemetry``, when given,
    receives the replay run's instrumentation plus the
    ``replay_drift_fields`` gauge.
    """
    if routing not in ("recorded", "live"):
        raise ValueError("routing must be 'recorded' or 'live'")
    meta = getattr(trace, "meta", None) or {}
    if scenario is None:
        scenario = meta.get("scenario")
    if scenario is None:
        raise ValueError(
            "no scenario config: the trace export carries none and the "
            "caller supplied none (pass scenario=... or re-export with "
            "dump_jsonl(..., scenario=...))"
        )
    unreplayable: List[Tuple[str, str]] = []
    specs = meta.get("workload")
    if specs is None:
        wl = extract_workload(trace)
        specs = wl.specs
        unreplayable = wl.unreplayable
    fleet = build_scenario(scenario)
    if routing == "recorded":
        fleet.pick = pinned_pick(extract_assignment(trace))
    requests = make_requests(specs)
    replay_collector = Trace()
    t0 = _time.perf_counter()
    fleet.serve(requests, trace=replay_collector, telemetry=telemetry)
    wall = _time.perf_counter() - t0
    recorded = StepMetrics.from_trace(trace)
    replayed = StepMetrics.from_trace(replay_collector)
    drift = fold_drift(recorded, replayed)
    if telemetry is not None and hasattr(telemetry, "replay_drift"):
        telemetry.replay_drift.set(float(len(drift)))
    return ReplayReport(
        recorded=recorded,
        replayed=replayed,
        drift=drift,
        routing=routing,
        n_requests=len(requests),
        events_recorded=len(trace),
        events_replayed=len(replay_collector),
        wall_seconds=wall,
        partial=bool(getattr(trace, "dropped_events", 0)),
        unreplayable=unreplayable,
        trace=replay_collector,
    )
