"""Pluggable scheduling policies for the event-driven serving core.

A :class:`SchedulerPolicy` answers two questions for a
:class:`~repro.serving.simulator.ServerInstance`:

- ``select(waiting, clock)`` — which arrived request to consider
  admitting next (head-of-line: if the chosen request does not fit the
  KV-token budget, admission stalls until capacity frees, preserving
  the policy's ordering guarantees).
- ``victim(running)`` — which running request to preempt when the
  dynamic admission mode exhausts the KV-token budget mid-decode.
  Preempted requests are requeued and recomputed (vLLM-style
  recompute preemption), so the victim choice trades wasted work
  against the policy's notion of priority.

Policies are deliberately tiny and stateless so routers, clusters and
experiments can share instances freely.  ``make_policy`` resolves the
string names used by the CLI and ``CompressedGenerationPipeline``.
"""

from __future__ import annotations

import abc
from typing import List

import numpy as np

from repro.serving.request import ServingRequest

#: below this queue length the scalar ``min()`` path is cheaper than
#: building NumPy arrays; both paths make identical decisions
_VECTOR_MIN = 8


def _argmin2(primary: np.ndarray, secondary: np.ndarray) -> int:
    """Index minimizing ``(primary, secondary, index)`` — the array
    equivalent of ``min(range(n), key=...)`` tuple ordering."""
    cand = np.nonzero(primary == primary.min())[0]
    if len(cand) > 1:
        sec = secondary[cand]
        cand = cand[sec == sec.min()]
    return int(cand[0])


def _argmax_last(values: np.ndarray) -> int:
    """Index maximizing ``(value, index)`` (ties -> latest index)."""
    return int(np.nonzero(values == values.max())[0][-1])


class SchedulerPolicy(abc.ABC):
    """Order of admission and choice of preemption victim."""

    name: str = "base"
    #: True when ``select`` on an arrival-sorted queue always picks
    #: index 0 (pure FCFS) — lets callers skip the scan
    head_of_sorted: bool = False

    @abc.abstractmethod
    def select(self, waiting: List[ServingRequest], clock: float) -> int:
        """Index (into ``waiting``) of the next request to admit."""

    def victim(self, running: List[ServingRequest], clock: float = 0.0) -> int:
        """Index (into ``running``) of the request to preempt.

        ``clock`` is the simulation time of the eviction (deadline-aware
        policies compute live slack from it; the others ignore it).

        Default: the most recently admitted request — the oldest keeps
        running, which guarantees forward progress.
        """
        return len(running) - 1


class FCFSPolicy(SchedulerPolicy):
    """First-come-first-served: strict arrival order (seed behaviour)."""

    name = "fcfs"
    #: on an arrival-sorted queue the head IS the pick — callers that
    #: track sortedness (ServerInstance does, O(1) per enqueue) can skip
    #: the scan entirely; identical decision (ties keep queue order)
    head_of_sorted = True

    def select(self, waiting: List[ServingRequest], clock: float) -> int:
        if len(waiting) < _VECTOR_MIN:
            return min(
                range(len(waiting)), key=lambda i: (waiting[i].arrival, i)
            )
        arrivals = np.fromiter(
            (r.arrival for r in waiting), float, count=len(waiting)
        )
        return int(np.argmin(arrivals))  # argmin ties -> first index


class ShortestFirstPolicy(SchedulerPolicy):
    """Shortest-predicted-first: admit the request expected to finish
    soonest (uses ``predicted_len`` when a length predictor supplied
    one, else the true ``response_len``); preempt the longest-remaining
    request first."""

    name = "shortest"

    @staticmethod
    def _expected(req: ServingRequest) -> float:
        if req.predicted_len is not None:
            return float(req.predicted_len)
        return float(req.response_len)

    def select(self, waiting: List[ServingRequest], clock: float) -> int:
        if len(waiting) < _VECTOR_MIN:
            return min(
                range(len(waiting)),
                key=lambda i: (
                    self._expected(waiting[i]), waiting[i].arrival, i,
                ),
            )
        n = len(waiting)
        expected = np.fromiter(
            (self._expected(r) for r in waiting), float, count=n
        )
        arrivals = np.fromiter((r.arrival for r in waiting), float, count=n)
        return _argmin2(expected, arrivals)

    def victim(self, running: List[ServingRequest], clock: float = 0.0) -> int:
        def remaining(r: ServingRequest) -> float:
            return self._expected(r) - r.generated

        if len(running) < _VECTOR_MIN:
            return max(
                range(len(running)), key=lambda i: (remaining(running[i]), i)
            )
        rem = np.fromiter(
            (remaining(r) for r in running), float, count=len(running)
        )
        return _argmax_last(rem)


class PriorityPolicy(SchedulerPolicy):
    """Highest ``ServingRequest.priority`` first (FCFS within a tier);
    preempt the lowest-priority, most recently admitted request."""

    name = "priority"

    def select(self, waiting: List[ServingRequest], clock: float) -> int:
        if len(waiting) < _VECTOR_MIN:
            return min(
                range(len(waiting)),
                key=lambda i: (-waiting[i].priority, waiting[i].arrival, i),
            )
        n = len(waiting)
        neg_prio = np.fromiter(
            (-r.priority for r in waiting), float, count=n
        )
        arrivals = np.fromiter((r.arrival for r in waiting), float, count=n)
        return _argmin2(neg_prio, arrivals)

    def victim(self, running: List[ServingRequest], clock: float = 0.0) -> int:
        if len(running) < _VECTOR_MIN:
            return min(
                range(len(running)), key=lambda i: (running[i].priority, -i)
            )
        # min (priority, -index): lowest tier, latest admission wins ties
        prio = np.fromiter(
            (r.priority for r in running), float, count=len(running)
        )
        return int(np.nonzero(prio == prio.min())[0][-1])


class SlackPolicy(SchedulerPolicy):
    """SLO-aware earliest-deadline-first by *live slack*.

    A request's slack is ``deadline − clock − predicted remaining
    work``: how many seconds of schedule margin remain before its next
    SLO milestone.  Before the first token the milestone is the TTFT
    deadline (``arrival + ttft_deadline``) and the remaining work is the
    unfilled prompt; once decoding, it is the finish time implied by the
    TBOT target (``first_token + tbot_target * (response_len − 1)``)
    with the remaining response as work.  Work is priced at
    ``seconds_per_token`` (default 0.0, i.e. pure EDF — orderings only
    shift when a calibrated per-token rate is supplied).

    Admission picks the *smallest* slack (most urgent); preemption picks
    the *largest* (least urgent).  Deadline-free requests have infinite
    slack, so they are admitted FCFS after every deadlined request and
    preempted first.  With no deadlines anywhere the policy reproduces
    FCFS bit-for-bit: admission falls back to arrival order and the
    victim to the most recent admission.
    """

    name = "slo"

    def __init__(self, seconds_per_token: float = 0.0) -> None:
        self.seconds_per_token = seconds_per_token

    def slack(self, req: ServingRequest, clock: float) -> float:
        """Seconds of margin before ``req``'s next SLO milestone."""
        if req.first_token is None:
            if req.ttft_deadline is None:
                return float("inf")
            deadline = req.arrival + req.ttft_deadline
            work = self.seconds_per_token * (req.prompt_len - req.prefilled)
        else:
            if req.tbot_target is None:
                return float("inf")
            deadline = req.first_token + req.tbot_target * max(
                req.response_len - 1, 0
            )
            work = self.seconds_per_token * (req.response_len - req.generated)
        return deadline - clock - work

    def slack_array(
        self, reqs: List[ServingRequest], clock: float
    ) -> np.ndarray:
        """Live slack for a whole queue/batch in one array pass.

        Element-for-element the same float operations as
        :meth:`slack`, so the values (and therefore every ordering
        decision built on them) are bit-identical to the scalar path.
        """
        n = len(reqs)
        spt = self.seconds_per_token
        arrival = np.fromiter((r.arrival for r in reqs), float, count=n)
        pre = np.fromiter(
            (r.first_token is None for r in reqs), bool, count=n
        )
        ttft = np.fromiter(
            (
                r.ttft_deadline if r.ttft_deadline is not None else np.nan
                for r in reqs
            ),
            float, count=n,
        )
        tbot = np.fromiter(
            (
                r.tbot_target if r.tbot_target is not None else np.nan
                for r in reqs
            ),
            float, count=n,
        )
        first = np.fromiter(
            (r.first_token if r.first_token is not None else 0.0
             for r in reqs),
            float, count=n,
        )
        prompt_left = np.fromiter(
            (r.prompt_len - r.prefilled for r in reqs), float, count=n
        )
        resp_left = np.fromiter(
            (r.response_len - r.generated for r in reqs), float, count=n
        )
        resp_m1 = np.fromiter(
            (max(r.response_len - 1, 0) for r in reqs), float, count=n
        )
        slack = (arrival + ttft) - clock - spt * prompt_left
        decoding = (first + tbot * resp_m1) - clock - spt * resp_left
        slack[~pre] = decoding[~pre]
        slack[np.isnan(slack)] = np.inf  # no target -> infinite slack
        return slack

    def select(self, waiting: List[ServingRequest], clock: float) -> int:
        if len(waiting) < _VECTOR_MIN:
            return min(
                range(len(waiting)),
                key=lambda i: (
                    self.slack(waiting[i], clock), waiting[i].arrival, i,
                ),
            )
        slack = self.slack_array(waiting, clock)
        arrivals = np.fromiter(
            (r.arrival for r in waiting), float, count=len(waiting)
        )
        return _argmin2(slack, arrivals)

    def victim(self, running: List[ServingRequest], clock: float = 0.0) -> int:
        if len(running) < _VECTOR_MIN:
            return max(
                range(len(running)),
                key=lambda i: (self.slack(running[i], clock), i),
            )
        return _argmax_last(self.slack_array(running, clock))


_POLICIES = {
    cls.name: cls
    for cls in (FCFSPolicy, ShortestFirstPolicy, PriorityPolicy, SlackPolicy)
}


def make_policy(name: str) -> SchedulerPolicy:
    """Instantiate a scheduler policy by name (``fcfs``, ``shortest``,
    ``priority``, ``slo``)."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown scheduler policy {name!r}; known: {sorted(_POLICIES)}"
        ) from None
