"""Pluggable scheduling policies for the event-driven serving core.

A :class:`SchedulerPolicy` answers two questions for a
:class:`~repro.serving.simulator.ServerInstance`:

- ``select(waiting, clock)`` — which arrived request to consider
  admitting next (head-of-line: if the chosen request does not fit the
  KV-token budget, admission stalls until capacity frees, preserving
  the policy's ordering guarantees).
- ``victim(running)`` — which running request to preempt when the
  dynamic admission mode exhausts the KV-token budget mid-decode.
  Preempted requests are requeued and recomputed (vLLM-style
  recompute preemption), so the victim choice trades wasted work
  against the policy's notion of priority.

Policies are deliberately tiny and stateless so routers, clusters and
experiments can share instances freely.  ``make_policy`` resolves the
string names used by the CLI and ``CompressedGenerationPipeline``.
"""

from __future__ import annotations

import abc
from typing import List

from repro.serving.request import ServingRequest


class SchedulerPolicy(abc.ABC):
    """Order of admission and choice of preemption victim."""

    name: str = "base"

    @abc.abstractmethod
    def select(self, waiting: List[ServingRequest], clock: float) -> int:
        """Index (into ``waiting``) of the next request to admit."""

    def victim(self, running: List[ServingRequest]) -> int:
        """Index (into ``running``) of the request to preempt.

        Default: the most recently admitted request — the oldest keeps
        running, which guarantees forward progress.
        """
        return len(running) - 1


class FCFSPolicy(SchedulerPolicy):
    """First-come-first-served: strict arrival order (seed behaviour)."""

    name = "fcfs"

    def select(self, waiting: List[ServingRequest], clock: float) -> int:
        return min(range(len(waiting)), key=lambda i: (waiting[i].arrival, i))


class ShortestFirstPolicy(SchedulerPolicy):
    """Shortest-predicted-first: admit the request expected to finish
    soonest (uses ``predicted_len`` when a length predictor supplied
    one, else the true ``response_len``); preempt the longest-remaining
    request first."""

    name = "shortest"

    @staticmethod
    def _expected(req: ServingRequest) -> float:
        if req.predicted_len is not None:
            return float(req.predicted_len)
        return float(req.response_len)

    def select(self, waiting: List[ServingRequest], clock: float) -> int:
        return min(
            range(len(waiting)),
            key=lambda i: (self._expected(waiting[i]), waiting[i].arrival, i),
        )

    def victim(self, running: List[ServingRequest]) -> int:
        def remaining(r: ServingRequest) -> float:
            return self._expected(r) - r.generated

        return max(range(len(running)), key=lambda i: (remaining(running[i]), i))


class PriorityPolicy(SchedulerPolicy):
    """Highest ``ServingRequest.priority`` first (FCFS within a tier);
    preempt the lowest-priority, most recently admitted request."""

    name = "priority"

    def select(self, waiting: List[ServingRequest], clock: float) -> int:
        return min(
            range(len(waiting)),
            key=lambda i: (-waiting[i].priority, waiting[i].arrival, i),
        )

    def victim(self, running: List[ServingRequest]) -> int:
        return min(range(len(running)), key=lambda i: (running[i].priority, -i))


_POLICIES = {
    cls.name: cls for cls in (FCFSPolicy, ShortestFirstPolicy, PriorityPolicy)
}


def make_policy(name: str) -> SchedulerPolicy:
    """Instantiate a scheduler policy by name (``fcfs``, ``shortest``,
    ``priority``)."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown scheduler policy {name!r}; known: {sorted(_POLICIES)}"
        ) from None
