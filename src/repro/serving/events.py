"""Discrete-event loop shared by every serving component.

``EventLoop`` is a minimal simulation kernel: a monotonically advancing
clock plus a time-ordered queue of callbacks.  One loop can drive a
single :class:`~repro.serving.simulator.ServerInstance` or a whole
:class:`~repro.serving.cluster.Cluster` — all instances then share the
same clock, which is what lets a router make *online* decisions against
live instance state instead of replaying per-instance streams offline.

Events scheduled for the same timestamp fire in FIFO order (a sequence
counter breaks ties), so arrival handling stays deterministic.

An optional telemetry sink (duck-typed; see
:class:`repro.serving.telemetry.Telemetry`) receives the loop's clock,
pending-event depth, and fired count after every callback.  With
``telemetry=None`` (the default) the loop is exactly the
uninstrumented seed loop.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class EventLoop:
    """Shared simulation clock with a time-ordered callback queue."""

    def __init__(self, telemetry=None) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._events_fired = 0
        self._telemetry = telemetry

    def schedule(self, at: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` when the clock reaches ``at`` (clamped to now)."""
        heapq.heappush(self._heap, (max(at, self.now), next(self._seq), fn))

    def schedule_in(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` after ``delay`` seconds of simulated time."""
        self.schedule(self.now + delay, fn)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None`` if empty."""
        return self._heap[0][0] if self._heap else None

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    @property
    def events_fired(self) -> int:
        """Number of events executed so far."""
        return self._events_fired

    def run(self, until: Optional[float] = None) -> float:
        """Drain the queue (optionally stopping at ``until``); returns now.

        Callbacks may schedule further events; the loop keeps going until
        the queue is empty or every remaining event lies beyond ``until``.
        """
        tel = self._telemetry
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            t, _, fn = heapq.heappop(self._heap)
            self.now = t
            self._events_fired += 1
            fn()
            if tel is not None:
                tel.on_loop(self.now, len(self._heap), self._events_fired)
        return self.now
