"""Anomaly mining over recorded serving traces.

A recorded trace is a haystack of scheduling pathologies the headline
metrics average away: a 2-second SLO-miss pileup disappears into a
0.97 attainment, a preemption storm into a mean queue delay.  This
module scans traces with pluggable **detectors**, clusters their hits
into scored **incidents**, and (via :func:`emit_regression_tests`)
distills each incident into a minimal self-contained scenario written
as a pytest case under ``tests/mined/`` — recorded pathologies become
executable regression tests.

Detector contract
-----------------
A detector is any object with a ``name`` (stable registry key), a
``config`` dict (JSON-able constructor kwargs — embedded verbatim in
emitted tests so the mined case re-runs the *same* detector), and a
``scan(trace) -> List[Anomaly]`` method.  Detectors are pure readers:
they may use the columnar fast paths (``rows_of`` / ``payload``) or
the object views, must tolerate partial traces (missing payload keys
are skipped, never ``KeyError``), and must not mutate the trace.
Register new ones in :data:`DETECTORS`.

Built-in detectors (five distinct anomaly classes):

- ``slo_miss_cluster`` — bursts of FINISH events flagging
  ``ttft_miss``/``tbot_miss``, clustered by inter-miss gap.
- ``preemption_storm`` — bursts of PREEMPTs: KV pressure forcing
  recompute-evictions faster than the pool drains.
- ``prefix_thrash`` — a request whose admission hit the prefix cache
  and was then preempted: the reused KV is evicted with everyone
  else's and the "saved" prefill is paid again on re-admission.
- ``kv_transfer_stall`` — disaggregated handoffs whose delivery->
  decode-admission wait is an outlier (decode pool backed up behind
  the interconnect), or whose link seconds dwarf the median.
- ``autoscaler_flap`` — a pool scaling opposite directions within a
  short window: the control loop oscillating instead of settling.

:func:`mine` runs a detector set, merges each detector's anomalies
into incidents (gap-clustered, scored by summed severity), flags
partial recordings via ``dropped_events``, and optionally publishes
``mining_anomalies_total`` / ``mining_incidents_total`` counters to a
telemetry registry.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import pprint
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.serving.trace import EventType

__all__ = [
    "Anomaly",
    "Incident",
    "MiningReport",
    "DETECTORS",
    "default_detectors",
    "make_detector",
    "mine",
    "run_mined_scenario",
    "minimize_specs",
    "emit_regression_tests",
    "SloMissCluster",
    "PreemptionStorm",
    "PrefixThrash",
    "KvTransferStall",
    "AutoscalerFlap",
]


@dataclass(frozen=True)
class Anomaly:
    """One detector hit: a time span of suspicious behaviour."""

    detector: str
    start: float
    end: float
    severity: float
    request_ids: Tuple[str, ...] = ()
    instance: str = ""
    evidence: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class Incident:
    """Gap-clustered anomalies of one detector, scored for triage."""

    detector: str
    start: float
    end: float
    score: float
    anomalies: Tuple[Anomaly, ...]

    @property
    def request_ids(self) -> Tuple[str, ...]:
        """Distinct requests implicated, in first-appearance order."""
        seen: Dict[str, None] = {}
        for a in self.anomalies:
            for rid in a.request_ids:
                seen.setdefault(rid, None)
        return tuple(seen)

    def summary(self) -> str:
        return (
            f"{self.detector}: {len(self.anomalies)} hit(s) over "
            f"[{self.start:.2f}s, {self.end:.2f}s], "
            f"{len(self.request_ids)} request(s), score {self.score:.2f}"
        )


def _cluster(events: List[Tuple[float, object]], gap: float) -> List[List[object]]:
    """Group (time, item) pairs whose consecutive gap is <= ``gap``."""
    clusters: List[List[object]] = []
    last = None
    for t, item in sorted(events, key=lambda p: p[0]):
        if last is None or t - last > gap:
            clusters.append([])
        clusters[-1].append(item)
        last = t
    return clusters


# ----------------------------------------------------------------------
# detectors
# ----------------------------------------------------------------------
class SloMissCluster:
    """Bursts of SLO-missing FINISHes (>= ``min_misses`` within gaps of
    ``window`` seconds)."""

    name = "slo_miss_cluster"

    def __init__(self, window: float = 5.0, min_misses: int = 3) -> None:
        self.config = {"window": float(window), "min_misses": int(min_misses)}

    def scan(self, trace) -> List[Anomaly]:
        window = self.config["window"]
        min_misses = self.config["min_misses"]
        misses = [
            (e.time, e)
            for e in trace.of_kind(EventType.FINISH)
            if e.data.get("ttft_miss") or e.data.get("tbot_miss")
        ]
        out: List[Anomaly] = []
        for cluster in _cluster(misses, window):
            if len(cluster) < min_misses:
                continue
            slos = sorted(
                {
                    slo
                    for e in cluster
                    for slo in ("ttft", "tbot")
                    if e.data.get(f"{slo}_miss")
                }
            )
            out.append(
                Anomaly(
                    detector=self.name,
                    start=cluster[0].time,
                    end=cluster[-1].time,
                    severity=len(cluster) / min_misses,
                    request_ids=tuple(
                        dict.fromkeys(e.request_id for e in cluster)
                    ),
                    evidence={"misses": len(cluster), "slos": slos},
                )
            )
        return out


class PreemptionStorm:
    """Bursts of recompute-preemptions (>= ``min_preempts`` within gaps
    of ``window`` seconds)."""

    name = "preemption_storm"

    def __init__(self, window: float = 2.0, min_preempts: int = 3) -> None:
        self.config = {
            "window": float(window), "min_preempts": int(min_preempts),
        }

    def scan(self, trace) -> List[Anomaly]:
        window = self.config["window"]
        min_preempts = self.config["min_preempts"]
        hits = [(e.time, e) for e in trace.of_kind(EventType.PREEMPT)]
        out: List[Anomaly] = []
        for cluster in _cluster(hits, window):
            if len(cluster) < min_preempts:
                continue
            insts = sorted({e.instance for e in cluster if e.instance})
            out.append(
                Anomaly(
                    detector=self.name,
                    start=cluster[0].time,
                    end=cluster[-1].time,
                    severity=len(cluster) / min_preempts,
                    request_ids=tuple(
                        dict.fromkeys(e.request_id for e in cluster)
                    ),
                    instance=insts[0] if len(insts) == 1 else "",
                    evidence={"preempts": len(cluster), "instances": insts},
                )
            )
        return out


class PrefixThrash:
    """Prefix-cache reuse destroyed by preemption.

    An admission logged PREFIX_HIT (cached KV reused, prefill time
    "saved"), then the request was preempted: recompute drops the
    reused blocks with everything else, so the saving is paid back —
    and then some — on re-admission.  Fires per victim request when at
    least ``min_cached`` reused tokens were thrown away.
    """

    name = "prefix_thrash"

    def __init__(self, min_cached: int = 16) -> None:
        self.config = {"min_cached": int(min_cached)}

    def scan(self, trace) -> List[Anomaly]:
        min_cached = self.config["min_cached"]
        out: List[Anomaly] = []
        hit_rids: Dict[str, None] = dict.fromkeys(
            e.request_id for e in trace.of_kind(EventType.PREFIX_HIT)
        )
        for rid in hit_rids:
            events = trace.for_request(rid)
            last_hit = None
            for e in events:
                if e.kind is EventType.PREFIX_HIT:
                    last_hit = e
                elif e.kind is EventType.PREEMPT and last_hit is not None:
                    cached = int(last_hit.data.get("cached", 0))
                    if cached < min_cached:
                        continue
                    out.append(
                        Anomaly(
                            detector=self.name,
                            start=last_hit.time,
                            end=e.time,
                            severity=1.0 + cached / 256.0,
                            request_ids=(rid,),
                            instance=e.instance,
                            evidence={
                                "cached_tokens_lost": cached,
                                "saved_seconds_voided": float(
                                    last_hit.data.get("saved_seconds", 0.0)
                                ),
                            },
                        )
                    )
                    last_hit = None
        return out


class KvTransferStall:
    """Disaggregated KV handoffs stalling at the decode pool.

    For each KV_TRANSFER, the *stall* is the wait between the KV's
    delivery and the decode-stage admission of the same request: the
    migrated cache sits resident (holding budget) while the request
    queues.  Fires when the wait exceeds
    ``max(min_wait, min(stall_seconds, factor * median wait))`` — the
    relative bound catches outliers in a healthy run, and the absolute
    ``stall_seconds`` cap still fires when the *median itself* is
    pathological (a backlogged decode pool stalls every handoff, so no
    wait is an outlier relative to the rest).  Also flags transfers
    whose link seconds exceed ``factor`` times the median (an
    outlier-sized payload on a slow link).
    """

    name = "kv_transfer_stall"

    def __init__(
        self,
        factor: float = 4.0,
        min_wait: float = 0.25,
        stall_seconds: float = 2.0,
    ) -> None:
        self.config = {
            "factor": float(factor),
            "min_wait": float(min_wait),
            "stall_seconds": float(stall_seconds),
        }

    @staticmethod
    def _median(values: List[float]) -> float:
        if not values:
            return 0.0
        values = sorted(values)
        mid = len(values) // 2
        if len(values) % 2:
            return values[mid]
        return 0.5 * (values[mid - 1] + values[mid])

    def scan(self, trace) -> List[Anomaly]:
        factor = self.config["factor"]
        min_wait = self.config["min_wait"]
        xfers = trace.of_kind(EventType.KV_TRANSFER)
        if not xfers:
            return []
        waits: List[Tuple[object, Optional[float]]] = []
        for x in xfers:
            admit = next(
                (
                    e
                    for e in trace.for_request(x.request_id)
                    if e.kind is EventType.ADMIT and e.time >= x.time
                    and not e.instance.startswith("pf")
                ),
                None,
            )
            waits.append((x, admit.time - x.time if admit else None))
        med_wait = self._median([w for _, w in waits if w is not None])
        med_secs = self._median(
            [float(x.data["seconds"]) for x in xfers if "seconds" in x.data]
        )
        threshold = max(
            min_wait, min(self.config["stall_seconds"], factor * med_wait)
        )
        out: List[Anomaly] = []
        for x, wait in waits:
            secs = float(x.data.get("seconds", 0.0))
            stalled = wait is not None and wait > threshold
            slow = med_secs > 0 and secs > factor * med_secs
            if not (stalled or slow):
                continue
            out.append(
                Anomaly(
                    detector=self.name,
                    start=x.time,
                    end=x.time + (wait or 0.0),
                    severity=(
                        (wait / threshold) if stalled and threshold > 0
                        else secs / med_secs if med_secs > 0 else 1.0
                    ),
                    request_ids=(x.request_id,),
                    instance=x.instance,
                    evidence={
                        "wait_seconds": wait,
                        "transfer_seconds": secs,
                        "median_wait": med_wait,
                        "stalled": stalled,
                        "slow_link": slow,
                    },
                )
            )
        return out


class AutoscalerFlap:
    """A pool reversing scaling direction within ``window`` seconds.

    SCALE_UP followed by SCALE_DOWN on the same pool (or the reverse)
    inside the window means the control loop paid an activation/drain
    it immediately undid — oscillation, not tracking.
    """

    name = "autoscaler_flap"

    def __init__(self, window: float = 3.0) -> None:
        self.config = {"window": float(window)}

    def scan(self, trace) -> List[Anomaly]:
        window = self.config["window"]
        actions: Dict[str, List[Tuple[float, str, str]]] = {}
        for kind, direction in (
            (EventType.SCALE_UP, "up"),
            (EventType.SCALE_DOWN, "down"),
        ):
            for e in trace.of_kind(kind):
                pool = str(e.data.get("pool", ""))
                actions.setdefault(pool, []).append(
                    (e.time, direction, e.instance)
                )
        out: List[Anomaly] = []
        for pool, acts in actions.items():
            acts.sort(key=lambda a: a[0])
            for (t0, d0, _), (t1, d1, inst) in zip(acts, acts[1:]):
                if d0 != d1 and t1 - t0 <= window:
                    out.append(
                        Anomaly(
                            detector=self.name,
                            start=t0,
                            end=t1,
                            severity=1.0 + (window - (t1 - t0)) / window,
                            instance=inst,
                            evidence={
                                "pool": pool,
                                "reversal": f"{d0}->{d1}",
                                "gap_seconds": t1 - t0,
                            },
                        )
                    )
        return out


DETECTORS: Dict[str, Callable] = {
    cls.name: cls
    for cls in (
        SloMissCluster,
        PreemptionStorm,
        PrefixThrash,
        KvTransferStall,
        AutoscalerFlap,
    )
}


def make_detector(name: str, **config):
    """Instantiate a registered detector by name."""
    try:
        cls = DETECTORS[name]
    except KeyError:
        raise KeyError(
            f"unknown detector {name!r}; known: {sorted(DETECTORS)}"
        ) from None
    return cls(**config)


def default_detectors() -> List[object]:
    """One instance of every registered detector, default thresholds."""
    return [cls() for cls in DETECTORS.values()]


# ----------------------------------------------------------------------
# mining
# ----------------------------------------------------------------------
@dataclass
class MiningReport:
    """Everything one :func:`mine` pass found."""

    incidents: List[Incident]
    anomalies: List[Anomaly]
    detectors: List[str]
    #: the recording shed ring-buffer events: detector counts are
    #: floors over the surviving window, not full-run totals
    partial: bool = False
    dropped_events: int = 0

    @property
    def anomaly_classes(self) -> List[str]:
        """Distinct detectors that fired, most severe incident first."""
        return list(dict.fromkeys(i.detector for i in self.incidents))

    def render(self, limit: Optional[int] = None) -> str:
        lines = [
            f"mined {len(self.anomalies)} anomalies -> "
            f"{len(self.incidents)} incidents across "
            f"{len(self.anomaly_classes)} class(es) "
            f"(detectors run: {', '.join(self.detectors)})"
        ]
        if self.partial:
            lines.append(
                f"recording is PARTIAL ({self.dropped_events} events "
                "shed by the ring buffer); counts are floors"
            )
        shown = self.incidents if limit is None else self.incidents[:limit]
        for inc in shown:
            lines.append(f"  {inc.summary()}")
            worst = max(inc.anomalies, key=lambda a: a.severity)
            if worst.evidence:
                ev = ", ".join(
                    f"{k}={v}" for k, v in sorted(worst.evidence.items())
                )
                lines.append(f"    worst hit: {ev}")
        if limit is not None and len(self.incidents) > limit:
            lines.append(f"  ... ({len(self.incidents) - limit} more)")
        return "\n".join(lines)


def mine(
    trace,
    detectors: Optional[Sequence[object]] = None,
    cluster_gap: float = 2.0,
    telemetry=None,
) -> MiningReport:
    """Scan ``trace`` with ``detectors`` and cluster hits into incidents.

    Each detector's anomalies are merged when their spans sit within
    ``cluster_gap`` seconds of each other; an incident's score is the
    summed severity of its hits.  Incidents come back sorted by score,
    descending.  ``telemetry``, when given, receives per-detector
    ``mining_anomalies_total`` / ``mining_incidents_total`` counters.
    """
    if detectors is None:
        detectors = default_detectors()
    anomalies: List[Anomaly] = []
    incidents: List[Incident] = []
    for det in detectors:
        hits = sorted(det.scan(trace), key=lambda a: (a.start, a.end))
        anomalies.extend(hits)
        if telemetry is not None and hasattr(telemetry, "mined_anomalies"):
            for _ in hits:
                telemetry.mined_anomalies.inc(detector=det.name)
        for group in _cluster([(a.start, a) for a in hits], cluster_gap):
            incidents.append(
                Incident(
                    detector=det.name,
                    start=min(a.start for a in group),
                    end=max(a.end for a in group),
                    score=sum(a.severity for a in group),
                    anomalies=tuple(group),
                )
            )
            if telemetry is not None and hasattr(
                telemetry, "mined_incidents"
            ):
                telemetry.mined_incidents.inc(detector=det.name)
    incidents.sort(key=lambda i: (-i.score, i.start))
    dropped = int(getattr(trace, "dropped_events", 0) or 0)
    return MiningReport(
        incidents=incidents,
        anomalies=anomalies,
        detectors=[det.name for det in detectors],
        partial=bool(dropped),
        dropped_events=dropped,
    )


# ----------------------------------------------------------------------
# regression emission
# ----------------------------------------------------------------------
def run_mined_scenario(
    scenario: Dict[str, object],
    specs: Sequence[Dict[str, object]],
    detector: str,
    config: Optional[Dict[str, object]] = None,
) -> List[Anomaly]:
    """Re-run a mined scenario and re-scan it with one detector.

    This is the stable API every auto-emitted ``tests/mined/`` case
    calls: build the fleet from the embedded scenario config, serve the
    embedded workload specs, and return the detector's hits (a passing
    regression test asserts they are non-empty).
    """
    from repro.serving.replay import build_scenario, make_requests
    from repro.serving.trace import Trace

    fleet = build_scenario(scenario)
    trace = Trace()
    fleet.serve(make_requests(specs), trace=trace)
    return make_detector(detector, **dict(config or {})).scan(trace)


def minimize_specs(
    scenario: Dict[str, object],
    specs: Sequence[Dict[str, object]],
    detector: str,
    config: Optional[Dict[str, object]] = None,
    max_evals: int = 48,
) -> Optional[List[Dict[str, object]]]:
    """Smallest request subset that still triggers ``detector``.

    ddmin-lite: repeatedly try dropping the earliest/latest halves of
    the (arrival-sorted) spec list, then greedy single-request drops,
    re-running the scenario and re-scanning after every candidate cut —
    bounded by ``max_evals`` simulation runs.  Returns ``None`` when
    the detector does not fire even on the full workload (nothing to
    minimize: the incident was an artifact of state the scenario does
    not capture, e.g. a truncated recording).
    """
    specs = sorted(specs, key=lambda s: (s["arrival"], s["request_id"]))
    evals = 0

    def fires(subset: List[Dict[str, object]]) -> bool:
        nonlocal evals
        if not subset:
            return False
        evals += 1
        return bool(run_mined_scenario(scenario, subset, detector, config))

    if not fires(list(specs)):
        return None
    current = list(specs)
    # halve from either end while the detector still fires
    progress = True
    while progress and evals < max_evals:
        progress = False
        for cut in (len(current) // 2, len(current) // 4):
            if cut == 0 or evals >= max_evals:
                continue
            for candidate in (current[cut:], current[:-cut]):
                if len(candidate) < len(current) and fires(candidate):
                    current = candidate
                    progress = True
                    break
            if progress:
                break
    # greedy single drops, newest-first (late arrivals are usually
    # bystanders; early ones built the congestion)
    i = len(current) - 1
    while i >= 0 and evals < max_evals and len(current) > 1:
        candidate = current[:i] + current[i + 1:]
        if fires(candidate):
            current = candidate
        i -= 1
    return current


_TEST_TEMPLATE = '''\
"""Auto-mined regression test — generated by ``repro.serving.mining``.

{summary}

Do not edit by hand: re-run ``python -m repro.cli analyze --emit-tests``
on a newer trace to refresh.  The scenario and workload below are the
minimal subset of the recorded run that still triggers the detector;
if this test fails, the scheduling pathology it pins has changed shape
(or been fixed) — inspect with ``repro.serving.mining.run_mined_scenario``.
"""

from repro.serving.mining import run_mined_scenario

DETECTOR = {detector!r}
DETECTOR_CONFIG = {config}

SCENARIO = {scenario}

SPECS = {specs}


def test_{slug}():
    anomalies = run_mined_scenario(SCENARIO, SPECS, DETECTOR, DETECTOR_CONFIG)
    assert anomalies, (
        f"{{DETECTOR}} no longer fires on its mined scenario "
        f"({{len(SPECS)}} requests)"
    )
'''


def _digest(payload: object) -> str:
    blob = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()[:8]


def emit_regression_tests(
    report: MiningReport,
    scenario: Dict[str, object],
    specs: Sequence[Dict[str, object]],
    out_dir,
    detectors: Optional[Sequence[object]] = None,
    min_score: float = 0.0,
    max_tests: int = 5,
    max_evals: int = 48,
) -> List[pathlib.Path]:
    """Distill incidents into pytest cases under ``out_dir``.

    Takes the highest-scoring incident per anomaly class (one test per
    detector keeps ``tests/mined/`` from accreting near-duplicates),
    minimizes its workload via :func:`minimize_specs`, and writes a
    self-contained test module named by detector and a content digest —
    re-emitting the same incident is idempotent, and distinct incidents
    never collide.  Incidents whose detector no longer fires on the
    re-built scenario (state the config cannot capture) are skipped.
    """
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    configs = {
        det.name: dict(det.config) for det in (detectors or [])
    }
    written: List[pathlib.Path] = []
    done_detectors = set()
    for incident in report.incidents:
        if len(written) >= max_tests:
            break
        if incident.score < min_score or incident.detector in done_detectors:
            continue
        done_detectors.add(incident.detector)
        config = configs.get(incident.detector, {})
        minimal = minimize_specs(
            scenario, specs, incident.detector, config, max_evals=max_evals
        )
        if minimal is None:
            continue
        digest = _digest(
            [incident.detector, config, scenario, minimal]
        )
        slug = f"mined_{incident.detector}_{digest}"
        path = out_dir / f"test_{slug}.py"
        path.write_text(
            _TEST_TEMPLATE.format(
                summary=(
                    f"Detector ``{incident.detector}``, mined incident "
                    f"{incident.summary()}; minimized to {len(minimal)} "
                    f"of {len(specs)} recorded requests."
                ),
                detector=incident.detector,
                config=pprint.pformat(config, width=72),
                scenario=pprint.pformat(scenario, width=72),
                specs=pprint.pformat(list(minimal), width=72),
                slug=slug,
            )
        )
        written.append(path)
    return written
