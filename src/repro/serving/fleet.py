"""Disaggregated prefill/decode fleet with priced KV handoff.

DistServe-style pool split (Section 5 of the paper's serving analysis):
a *prefill pool* runs prompt passes only, then ships the finished KV to
a *decode pool* over an interconnect link priced by
:func:`repro.hardware.interconnect.transfer_time`.  The handoff lands as
a ``KV_TRANSFER`` trace event (bytes / seconds / tokens / link) on the
receiving decode instance, and the decode-stage request arrives with
``kv_ready=True`` so admission ingests it at zero prefill cost — the
prompt pass was already paid on the prefill pool and the move by the
link model.

Stage bookkeeping reuses the router's suffix convention: the prefill
stage of logical request ``r42`` runs as ``r42#pf`` (one response token,
deadline-free, so SLO accounting is not double-counted), and the decode
stage runs under the original id with ``first_token`` carried over from
the prefill pool — TTFT measures the prefill path, end-to-end latency
additionally pays the transfer and any decode queueing.

A fleet-level :class:`Autoscaler` closes the loop on live telemetry: on
a fixed control tick it reads queue depth and KV occupancy gauges plus
the per-tick delta of TTFT SLO misses from the metrics registry, and
activates standby instances (``SCALE_UP``) or drains active ones
(``SCALE_DOWN``) per pool.  Scale events are traced with the pool name
and the new pool size, and counted in ``fleet_scale_events_total``.

With the prefill pool empty the fleet degenerates to a monolithic
cluster: :meth:`DisaggFleet.serve` delegates straight to
:meth:`~repro.serving.cluster.Cluster.run_online`, so traces are
bit-for-bit what a plain :class:`~repro.serving.cluster.Cluster` with
the same pick function produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.hardware.interconnect import (
    NVLINK_A6000,
    InterconnectSpec,
    transfer_time,
)
from repro.serving.cluster import Cluster, InstanceView
from repro.serving.events import EventLoop
from repro.serving.request import ServingRequest
from repro.serving.simulator import ServerInstance, SimulationResult
from repro.serving.telemetry.core import Telemetry
from repro.serving.telemetry.core import active as _active_telemetry
from repro.serving.trace import EventType, Trace

PREFILL_SUFFIX = "#pf"

POOLS = ("prefill", "decode")


def least_loaded(req, views: Sequence[InstanceView], now: float) -> int:
    """Default pick: fewest committed tokens, then shortest queue."""
    return min(
        range(len(views)),
        key=lambda i: (
            views[i].used_tokens + views[i].waiting_tokens,
            views[i].queue_depth,
            i,
        ),
    )


class Autoscaler:
    """Telemetry-driven control loop over the fleet's pools.

    Every ``tick`` seconds (while work is outstanding) it reads, per
    pool, the mean ``serving_queue_depth`` and ``serving_kv_occupancy``
    gauges over the pool's *active* instances, plus the fleet-wide TTFT
    attainment over the last tick (delta of ``FINISH`` events vs
    ``ttft`` SLO misses in the registry).  A pool scales up — one
    standby activated — when its queue or occupancy crosses the high
    watermark, or when attainment drops below ``ttft_target`` while the
    pool is visibly queued.  It drains one instance when both signals
    sit below the low watermarks and attainment holds, never below
    ``min_active``.  ``cooldown_ticks`` quiet ticks follow every action
    so the loop reacts to the *new* pool, not the old backlog.
    """

    def __init__(
        self,
        tick: float = 0.5,
        ttft_target: float = 0.95,
        queue_high: float = 4.0,
        queue_low: float = 0.5,
        occ_high: float = 0.85,
        occ_low: float = 0.25,
        cooldown_ticks: int = 2,
        min_active: int = 1,
    ) -> None:
        if tick <= 0:
            raise ValueError("tick must be positive")
        if min_active < 1:
            raise ValueError("min_active must be at least 1")
        self.tick = tick
        self.ttft_target = ttft_target
        self.queue_high = queue_high
        self.queue_low = queue_low
        self.occ_high = occ_high
        self.occ_low = occ_low
        self.cooldown_ticks = cooldown_ticks
        self.min_active = min_active
        self._fleet: Optional["DisaggFleet"] = None
        self._telemetry: Optional[Telemetry] = None
        self._last_finish = 0.0
        self._last_miss = 0.0
        self._cooldown = {pool: 0 for pool in POOLS}

    def bind(self, fleet: "DisaggFleet", telemetry: Telemetry) -> None:
        """Reset controller state for a fresh run over ``fleet``."""
        self._fleet = fleet
        self._telemetry = telemetry
        self._last_finish = 0.0
        self._last_miss = 0.0
        self._cooldown = {pool: 0 for pool in POOLS}

    # -- registry reads ------------------------------------------------
    def _slo_counts(self) -> Tuple[float, float]:
        tel, fleet = self._telemetry, self._fleet
        finishes = 0.0
        misses = 0.0
        for name in fleet.instance_names():
            finishes += tel.events_total.value(instance=name, kind="FINISH")
            misses += tel.slo_misses.value(instance=name, slo="ttft")
        return finishes, misses

    def _pool_stats(self, pool: str) -> Tuple[float, float]:
        tel = self._telemetry
        names = self._fleet.active_names(pool)
        if not names:
            return 0.0, 0.0
        depth = sum(tel.queue_depth.value(instance=n) for n in names)
        occ = sum(tel.kv_occupancy.value(instance=n) for n in names)
        return depth / len(names), occ / len(names)

    # -- control law ---------------------------------------------------
    def step(self, now: float) -> None:
        """One control tick: read the registry, maybe resize pools."""
        finishes, misses = self._slo_counts()
        d_fin = finishes - self._last_finish
        d_miss = misses - self._last_miss
        self._last_finish, self._last_miss = finishes, misses
        attainment = 1.0 - d_miss / d_fin if d_fin > 0 else None
        for pool in POOLS:
            self._step_pool(pool, now, attainment)

    def _step_pool(
        self, pool: str, now: float, attainment: Optional[float]
    ) -> None:
        if self._cooldown[pool] > 0:
            self._cooldown[pool] -= 1
            return
        depth, occ = self._pool_stats(pool)
        hot = depth > self.queue_high or occ > self.occ_high
        if (
            not hot
            and attainment is not None
            and attainment < self.ttft_target
            and depth > 0
        ):
            hot = True  # SLO pressure lands on whichever pool is queued
        if hot:
            if self._fleet.scale_up(pool, now):
                self._cooldown[pool] = self.cooldown_ticks
            return
        calm = (
            depth <= self.queue_low
            and occ <= self.occ_low
            and (attainment is None or attainment >= self.ttft_target)
        )
        if calm and self._fleet.scale_down(pool, now):
            self._cooldown[pool] = self.cooldown_ticks


@dataclass
class FleetResult:
    """Outcome of one :meth:`DisaggFleet.serve` run.

    ``logical`` holds one record per *logical* request — the decode
    stage for handed-off requests (with ``first_token`` from the
    prefill pool), the request itself when it was served whole, or the
    original marked ``rejected`` when its prefill stage was dropped.
    """

    logical: SimulationResult
    prefill_results: List[SimulationResult]
    decode_results: List[SimulationResult]
    #: request id -> (prefill instance index or None, decode index or None)
    assignment: Dict[str, Tuple[Optional[int], Optional[int]]]
    trace: Optional[Trace] = None
    telemetry: Optional[Telemetry] = None
    kv_transfers: int = 0
    kv_transfer_bytes: int = 0
    kv_transfer_seconds: float = 0.0
    scale_ups: int = 0
    scale_downs: int = 0

    @property
    def requests(self) -> List[ServingRequest]:
        return self.logical.requests

    @property
    def completed(self) -> List[ServingRequest]:
        return self.logical.completed

    @property
    def rejected(self) -> List[ServingRequest]:
        return self.logical.rejected

    def ttft_attainment(self) -> Optional[float]:
        """Fraction of deadline-carrying requests whose first token met
        its deadline; a rejected request with a deadline counts as a
        miss (dropping work must not flatter the SLO)."""
        met = judged = 0
        for r in self.requests:
            if r.ttft_deadline is None:
                continue
            if r.rejected:
                judged += 1
            elif r.finish is not None:
                judged += 1
                met += 1 if r.ttft_met else 0
        return met / judged if judged else None


class DisaggFleet:
    """Prefill pool + decode pool on one shared discrete-event clock.

    ``prefill_active`` / ``decode_active`` bound the initially active
    prefix of each pool; the remainder are standby instances an
    :class:`Autoscaler` may activate mid-run.  With ``prefill`` empty
    the fleet runs monolithic — every instance does both phases — by
    delegating to :meth:`Cluster.run_online`, which keeps traces
    bit-for-bit identical to an undisaggregated cluster.
    """

    def __init__(
        self,
        prefill: Sequence[ServerInstance],
        decode: Sequence[ServerInstance],
        interconnect: InterconnectSpec = NVLINK_A6000,
        prefill_active: Optional[int] = None,
        decode_active: Optional[int] = None,
        autoscaler: Optional[Autoscaler] = None,
        pick=least_loaded,
    ) -> None:
        if not decode:
            raise ValueError("the decode pool needs at least one instance")
        self.prefill = list(prefill)
        self.decode = list(decode)
        self.interconnect = interconnect
        self.autoscaler = autoscaler
        self.pick = pick
        n_pf = len(self.prefill) if prefill_active is None else prefill_active
        n_dec = len(self.decode) if decode_active is None else decode_active
        if self.prefill and not 1 <= n_pf <= len(self.prefill):
            raise ValueError("prefill_active out of range")
        if not 1 <= n_dec <= len(self.decode):
            raise ValueError("decode_active out of range")
        self._pf0, self._dec0 = (n_pf if self.prefill else 0), n_dec
        if self.prefill:
            # pool-qualified names; monolithic mode keeps the Cluster
            # default ("inst{i}") so traces match the plain cluster
            for i, inst in enumerate(self.prefill):
                inst.name = f"pf{i}"
            for i, inst in enumerate(self.decode):
                inst.name = f"dec{i}"
        self._pf_active: List[int] = []
        self._dec_active: List[int] = []
        self.scale_ups = 0
        self.scale_downs = 0

    @property
    def disaggregated(self) -> bool:
        return bool(self.prefill)

    # -- pool introspection (used by the autoscaler) -------------------
    def _pool(self, pool: str) -> Tuple[List[ServerInstance], List[int]]:
        if pool == "prefill":
            return self.prefill, self._pf_active
        if pool == "decode":
            return self.decode, self._dec_active
        raise ValueError(f"unknown pool {pool!r}")

    def active_names(self, pool: str) -> List[str]:
        insts, active = self._pool(pool)
        return [insts[i].name for i in active]

    def instance_names(self) -> List[str]:
        return [inst.name for inst in self.prefill + self.decode]

    def scale_up(self, pool: str, now: float) -> bool:
        """Activate one standby instance of ``pool``; False if none left."""
        insts, active = self._pool(pool)
        standby = [i for i in range(len(insts)) if i not in active]
        if not standby:
            return False
        idx = standby[0]
        active.append(idx)
        self.scale_ups += 1
        insts[idx].record_event(
            now, EventType.SCALE_UP, "", pool=pool, size=len(active)
        )
        return True

    def scale_down(self, pool: str, now: float) -> bool:
        """Drain the least-loaded active instance of ``pool``.

        The instance stops receiving new routes; whatever it already
        holds finishes normally.  Refuses to go below the autoscaler's
        ``min_active`` (or 1).
        """
        insts, active = self._pool(pool)
        floor = self.autoscaler.min_active if self.autoscaler else 1
        if len(active) <= floor:
            return False
        idx = min(
            active,
            key=lambda i: (
                insts[i].queue_depth + insts[i].running_count,
                insts[i].used_tokens,
                -i,  # ties: drain the latest-activated instance
            ),
        )
        active.remove(idx)
        self.scale_downs += 1
        insts[idx].record_event(
            now, EventType.SCALE_DOWN, "", pool=pool, size=len(active)
        )
        return True

    # -- serving -------------------------------------------------------
    def serve(
        self,
        requests: Sequence[ServingRequest],
        trace: Optional[Trace] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> FleetResult:
        """Serve ``requests``, splitting phases across the pools."""
        requests = sorted(requests, key=lambda r: r.arrival)
        telemetry = _active_telemetry(telemetry)
        if telemetry is None and self.autoscaler is not None:
            # the controller steers off the live registry; give it one
            # even when the caller didn't ask for instrumentation
            telemetry = Telemetry()
        if not self.disaggregated:
            return self._serve_monolithic(requests, trace, telemetry)
        return self._serve_disagg(requests, trace, telemetry)

    def _serve_monolithic(
        self,
        requests: List[ServingRequest],
        trace: Optional[Trace],
        telemetry: Optional[Telemetry],
    ) -> FleetResult:
        cluster = Cluster(self.decode)
        results, assignment = cluster.run_online(
            requests,
            self.pick,
            lambda r, idx, now: r,
            trace=trace,
            telemetry=telemetry,
        )
        logical = sorted(
            (r for res in results for r in res.requests),
            key=lambda r: r.arrival,
        )
        return FleetResult(
            logical=SimulationResult(requests=logical, trace=trace),
            prefill_results=[],
            decode_results=results,
            assignment={rid: (None, idx) for rid, idx in assignment.items()},
            trace=trace,
            telemetry=telemetry,
        )

    def _serve_disagg(
        self,
        requests: List[ServingRequest],
        trace: Optional[Trace],
        telemetry: Optional[Telemetry],
    ) -> FleetResult:
        loop = EventLoop(telemetry=telemetry)
        self._loop = loop
        self._trace = trace
        self._telemetry = telemetry
        for inst in self.prefill + self.decode:
            inst.attach(loop, trace, telemetry)
        self._pf_active = list(range(self._pf0))
        self._dec_active = list(range(self._dec0))
        if telemetry is not None:
            telemetry.pool_size.set(float(len(self._pf_active)), pool="prefill")
            telemetry.pool_size.set(float(len(self._dec_active)), pool="decode")
        self.scale_ups = 0
        self.scale_downs = 0
        self._xfers = 0
        self._xfer_bytes = 0
        self._xfer_seconds = 0.0
        self._pending: Dict[str, ServingRequest] = {}  # awaiting handoff
        self._live: Dict[str, ServingRequest] = {}  # current-stage object
        self._transit: Set[str] = set()  # between prefill finish and delivery
        self._assignment: Dict[str, List[Optional[int]]] = {}

        for inst in self.prefill:
            inst.on_finish = partial(self._prefill_done, inst)
        try:
            for req in requests:
                if req.response_len <= 1:
                    # nothing to decode beyond the prefill's own token:
                    # serve it whole on the prefill pool, no handoff
                    self._live[req.request_id] = req
                    loop.schedule(
                        req.arrival, partial(self._dispatch_prefill, req, req)
                    )
                else:
                    stage = ServingRequest(
                        request_id=req.request_id + PREFILL_SUFFIX,
                        arrival=req.arrival,
                        prompt_len=req.prompt_len,
                        response_len=1,
                        priority=req.priority,
                        predicted_len=1.0,
                        token_ids=req.token_ids,
                    )
                    self._pending[req.request_id] = req
                    self._live[req.request_id] = stage
                    loop.schedule(
                        req.arrival,
                        partial(self._dispatch_prefill, req, stage),
                    )
            if self.autoscaler is not None and requests:
                self.autoscaler.bind(self, telemetry)
                loop.schedule(
                    requests[0].arrival + self.autoscaler.tick, self._tick
                )
            loop.run()
        finally:
            for inst in self.prefill:
                inst.on_finish = None

        logical: List[ServingRequest] = []
        for rid, req in self._live.items():
            if rid in self._pending:
                # the prefill stage was rejected: the logical request
                # never reached a decode instance
                orig = self._pending[rid]
                orig.rejected = True
                logical.append(orig)
            else:
                logical.append(req)
        logical.sort(key=lambda r: r.arrival)
        return FleetResult(
            logical=SimulationResult(requests=logical, trace=trace),
            prefill_results=[inst.result() for inst in self.prefill],
            decode_results=[inst.result() for inst in self.decode],
            assignment={
                rid: tuple(pair) for rid, pair in self._assignment.items()
            },
            trace=trace,
            telemetry=telemetry,
            kv_transfers=self._xfers,
            kv_transfer_bytes=self._xfer_bytes,
            kv_transfer_seconds=self._xfer_seconds,
            scale_ups=self.scale_ups,
            scale_downs=self.scale_downs,
        )

    # -- stage plumbing ------------------------------------------------
    def _pick_active(
        self, pool: List[ServerInstance], active: List[int], req
    ) -> int:
        views = [
            InstanceView(
                index=i,
                name=pool[i].name,
                queue_depth=pool[i].queue_depth,
                running=pool[i].running_count,
                used_tokens=pool[i].used_tokens,
                waiting_tokens=pool[i].waiting_tokens,
                token_budget=pool[i].token_budget,
            )
            for i in active
        ]
        return active[self.pick(req, views, self._loop.now)]

    def _dispatch_prefill(
        self, orig: ServingRequest, stage: ServingRequest
    ) -> None:
        idx = self._pick_active(self.prefill, self._pf_active, orig)
        self._assignment.setdefault(orig.request_id, [None, None])[0] = idx
        inst = self.prefill[idx]
        inst.expect(stage.arrival)
        if self._telemetry is not None:
            self._telemetry.on_route(inst.name)
        inst.receive(stage)

    def _kv_bytes(
        self, inst: ServerInstance, orig: ServingRequest
    ) -> Tuple[int, int]:
        """(tokens, bytes) of KV the prefill instance must ship."""
        tokens = orig.prompt_len
        if inst.comp.sparse_budget is not None:
            tokens = min(tokens, inst.comp.sparse_budget)
        nbytes = int(
            round(
                tokens
                * inst.cost_model.arch.kv_bytes_per_token()
                * inst.comp.kv_bytes_ratio
            )
        )
        return tokens, nbytes

    def _prefill_done(
        self, inst: ServerInstance, stage: ServingRequest, at: float
    ) -> None:
        rid = stage.request_id
        if not rid.endswith(PREFILL_SUFFIX):
            return  # a short request served whole on the prefill pool
        lrid = rid[: -len(PREFILL_SUFFIX)]
        orig = self._pending.pop(lrid)
        del self._live[lrid]
        self._transit.add(lrid)
        tokens, nbytes = self._kv_bytes(inst, orig)
        seconds = transfer_time(self.interconnect, nbytes)
        deliver = at + seconds
        # the KV is on the wire: every active decode instance must know
        # an arrival may land, so a mid-decode-block instance breaks
        # the block at the delivery instant (same contract as submit())
        for i in self._dec_active:
            self.decode[i].expect(deliver)
        self._loop.schedule(
            deliver,
            partial(self._deliver, orig, stage, tokens, nbytes, seconds),
        )

    def _deliver(
        self,
        orig: ServingRequest,
        stage: ServingRequest,
        tokens: int,
        nbytes: int,
        seconds: float,
    ) -> None:
        now = self._loop.now
        lrid = orig.request_id
        self._transit.discard(lrid)
        idx = self._pick_active(self.decode, self._dec_active, orig)
        self._assignment[lrid][1] = idx
        inst = self.decode[idx]
        dreq = ServingRequest(
            request_id=lrid,
            arrival=orig.arrival,
            prompt_len=orig.prompt_len,
            response_len=orig.response_len,
            priority=orig.priority,
            predicted_len=orig.predicted_len,
            ttft_deadline=orig.ttft_deadline,
            tbot_target=orig.tbot_target,
            kv_ready=True,
        )
        dreq.first_token = stage.first_token  # emitted by the prefill pool
        dreq.queued_at = now
        self._xfers += 1
        self._xfer_bytes += nbytes
        self._xfer_seconds += seconds
        inst.record_event(
            now,
            EventType.KV_TRANSFER,
            lrid,
            bytes=nbytes,
            seconds=seconds,
            tokens=tokens,
            link=self.interconnect.name,
        )
        self._live[lrid] = dreq
        if self._telemetry is not None:
            self._telemetry.on_route(inst.name)
        inst.receive(dreq)

    # -- autoscaler plumbing -------------------------------------------
    def _outstanding(self) -> int:
        n = len(self._transit)
        for req in self._live.values():
            if req.finish is None and not req.rejected:
                n += 1
        return n

    def _tick(self) -> None:
        if self._outstanding() == 0:
            return  # drained: stop ticking so the loop can finish
        now = self._loop.now
        self.autoscaler.step(now)
        self._loop.schedule(now + self.autoscaler.tick, self._tick)
