"""Event-driven serving simulation: batching, scheduling, routing, tracing."""

from repro.serving.cluster import Cluster, InstanceView
from repro.serving.events import EventLoop
from repro.serving.fleet import Autoscaler, DisaggFleet, FleetResult, least_loaded
from repro.serving.metrics import LatencySummary, StepMetrics, cdf, tbot
from repro.serving.prefix import PrefixIndex
from repro.serving.request import ServingRequest
from repro.serving.router import (
    RoutedRequest,
    Router,
    RouterResult,
    RoutingPolicy,
)
from repro.serving.scheduler import (
    FCFSPolicy,
    PriorityPolicy,
    SchedulerPolicy,
    ShortestFirstPolicy,
    SlackPolicy,
    make_policy,
)
from repro.serving.simulator import ServerInstance, SimulationResult
from repro.serving.telemetry import (
    MetricsRegistry,
    NullTelemetry,
    Span,
    Telemetry,
    build_spans,
    dump_jsonl,
    load_jsonl,
    render_dashboard,
    to_chrome_trace,
    validate_spans,
    write_chrome_trace,
)
from repro.serving.trace import (
    EventType,
    ObjectTrace,
    Trace,
    TraceEvent,
    queue_delays,
    request_latencies,
)

__all__ = [
    "Cluster",
    "InstanceView",
    "EventLoop",
    "Autoscaler",
    "DisaggFleet",
    "FleetResult",
    "least_loaded",
    "LatencySummary",
    "StepMetrics",
    "cdf",
    "tbot",
    "PrefixIndex",
    "ServingRequest",
    "RoutedRequest",
    "Router",
    "RouterResult",
    "RoutingPolicy",
    "FCFSPolicy",
    "PriorityPolicy",
    "SchedulerPolicy",
    "ShortestFirstPolicy",
    "SlackPolicy",
    "make_policy",
    "ServerInstance",
    "SimulationResult",
    "MetricsRegistry",
    "Telemetry",
    "NullTelemetry",
    "Span",
    "build_spans",
    "validate_spans",
    "dump_jsonl",
    "load_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "render_dashboard",
    "EventType",
    "ObjectTrace",
    "Trace",
    "TraceEvent",
    "queue_delays",
    "request_latencies",
]
