"""Discrete-event serving simulation: batching, scheduling, routing."""

from repro.serving.metrics import LatencySummary, cdf, tbot
from repro.serving.request import ServingRequest
from repro.serving.router import (
    RoutedRequest,
    Router,
    RouterResult,
    RoutingPolicy,
)
from repro.serving.simulator import ServerInstance, SimulationResult

__all__ = [
    "LatencySummary",
    "cdf",
    "tbot",
    "ServingRequest",
    "RoutedRequest",
    "Router",
    "RouterResult",
    "RoutingPolicy",
    "ServerInstance",
    "SimulationResult",
]
