"""Event-driven serving simulation: batching, scheduling, routing, tracing."""

from repro.serving.cluster import Cluster, InstanceView
from repro.serving.events import EventLoop
from repro.serving.metrics import LatencySummary, StepMetrics, cdf, tbot
from repro.serving.prefix import PrefixIndex
from repro.serving.request import ServingRequest
from repro.serving.router import (
    RoutedRequest,
    Router,
    RouterResult,
    RoutingPolicy,
)
from repro.serving.scheduler import (
    FCFSPolicy,
    PriorityPolicy,
    SchedulerPolicy,
    ShortestFirstPolicy,
    SlackPolicy,
    make_policy,
)
from repro.serving.simulator import ServerInstance, SimulationResult
from repro.serving.trace import (
    EventType,
    Trace,
    TraceEvent,
    queue_delays,
    request_latencies,
)

__all__ = [
    "Cluster",
    "InstanceView",
    "EventLoop",
    "LatencySummary",
    "StepMetrics",
    "cdf",
    "tbot",
    "PrefixIndex",
    "ServingRequest",
    "RoutedRequest",
    "Router",
    "RouterResult",
    "RoutingPolicy",
    "FCFSPolicy",
    "PriorityPolicy",
    "SchedulerPolicy",
    "ShortestFirstPolicy",
    "SlackPolicy",
    "make_policy",
    "ServerInstance",
    "SimulationResult",
    "EventType",
    "Trace",
    "TraceEvent",
    "queue_delays",
    "request_latencies",
]
