"""Experiment scaling knobs.

Experiments default to a *small* scale that completes in CI-friendly
time; set the environment variable ``REPRO_SCALE=full`` to run at a
scale closer to the paper's (1,000 ShareGPT requests, larger LongBench
suites, denser throughput grids).
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentScale:
    """Sizes of the data-driven experiments."""

    name: str
    sharegpt_requests: int
    longbench_per_task: int
    router_requests: int
    max_new_tokens: int
    batch_size: int

    @property
    def is_full(self) -> bool:
        """Whether this is the paper-scale configuration."""
        return self.name == "full"


SMALL = ExperimentScale(
    name="small",
    sharegpt_requests=96,
    longbench_per_task=16,
    router_requests=160,
    max_new_tokens=64,
    batch_size=16,
)

FULL = ExperimentScale(
    name="full",
    sharegpt_requests=1000,
    longbench_per_task=60,
    router_requests=1000,
    max_new_tokens=160,
    batch_size=24,
)


def current_scale() -> ExperimentScale:
    """Scale selected by the ``REPRO_SCALE`` environment variable."""
    return FULL if os.environ.get("REPRO_SCALE", "small") == "full" else SMALL
