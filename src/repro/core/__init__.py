"""Public API of the reproduction library."""

from repro.core.config import FULL, SMALL, ExperimentScale, current_scale
from repro.core.pipeline import CompressedGenerationPipeline, ServingEstimate

__all__ = [
    "FULL",
    "SMALL",
    "ExperimentScale",
    "current_scale",
    "CompressedGenerationPipeline",
    "ServingEstimate",
]
