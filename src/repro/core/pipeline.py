"""High-level public API: compressed generation + serving estimation.

``CompressedGenerationPipeline`` is the one-stop entry point downstream
users interact with: pick a model flavour and a compression algorithm by
name, generate, and ask systems questions (throughput, memory, OOM
boundaries) about deploying that same algorithm on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.compression.base import Compressor, NoCompression
from repro.compression.registry import create
from repro.engines.base import ServingCostModel, StageCost
from repro.engines.presets import get_engine
from repro.hardware.interconnect import NVLINK_A6000, InterconnectSpec
from repro.hardware.memory import MemoryBreakdown
from repro.hardware.specs import GPUSpec, get_gpu
from repro.model.arch import ArchSpec, get_arch
from repro.model.config import (
    FunctionalModelConfig,
    llama_sim_config,
    mistral_sim_config,
)
from repro.model.generate import GenerationOutput, generate
from repro.model.sampling import Sampler
from repro.model.transformer import FunctionalTransformer
from repro.serving.request import ServingRequest
from repro.serving.scheduler import make_policy
from repro.serving.simulator import ServerInstance, SimulationResult
from repro.serving.trace import Trace

_MODEL_FLAVOURS = {
    "llama-sim": llama_sim_config,
    "mistral-sim": mistral_sim_config,
}


@dataclass
class ServingEstimate:
    """Systems-level answers for one deployment configuration."""

    prefill: StageCost
    decode: StageCost
    memory: MemoryBreakdown

    @property
    def decode_throughput(self) -> float:
        """Decode tokens/second (0.0 on OOM)."""
        return 0.0 if self.decode.oom else 1.0 / self.decode.seconds


class CompressedGenerationPipeline:
    """Generate with a KV-compression algorithm and price its serving.

    Parameters
    ----------
    algorithm:
        Registry name: ``"fp16"``, ``"kivi-4"``, ``"gear-4"``,
        ``"h2o-512"``, ``"stream-512"``, ``"snapkv-512"``, or bit/budget
        variants (``"kivi-2"``, ``"stream-1024"``).
    model:
        Functional model flavour (``"llama-sim"`` or ``"mistral-sim"``)
        or an explicit :class:`FunctionalModelConfig`.
    arch / gpu / engine / tp:
        Deployment the serving estimates are priced for.
    """

    def __init__(
        self,
        algorithm: str = "fp16",
        model: str = "llama-sim",
        arch: str = "llama-7b",
        gpu: str = "a6000",
        engine: str = "lmdeploy",
        tp: int = 1,
        interconnect: Optional[InterconnectSpec] = None,
        model_config: Optional[FunctionalModelConfig] = None,
    ) -> None:
        if model_config is not None:
            cfg = model_config
        else:
            if model not in _MODEL_FLAVOURS:
                raise KeyError(
                    f"unknown model {model!r}; known: {sorted(_MODEL_FLAVOURS)}"
                )
            cfg = _MODEL_FLAVOURS[model]()
        self.config = cfg
        self.model = FunctionalTransformer(cfg)
        self.algorithm = algorithm
        self.compressor: Compressor = (
            NoCompression() if algorithm == "fp16" else create(algorithm)
        )
        self.arch: ArchSpec = get_arch(arch)
        self.gpu: GPUSpec = get_gpu(gpu)
        self.cost_model = ServingCostModel(
            self.arch,
            self.gpu,
            get_engine(engine),
            tp=tp,
            interconnect=interconnect or (NVLINK_A6000 if tp > 1 else None),
        )

    @property
    def tokenizer(self):
        """The synthetic tokenizer of the functional model."""
        return self.model.tokenizer

    # ------------------------------------------------------------------
    def generate(
        self,
        prompts: Sequence[Sequence[int]],
        sampler: Optional[Sampler] = None,
        max_new_tokens: int = 256,
    ) -> GenerationOutput:
        """Generate under this pipeline's compression algorithm."""
        comp = None if self.algorithm == "fp16" else self.compressor
        return generate(
            self.model,
            prompts,
            compressor=comp,
            sampler=sampler,
            max_new_tokens=max_new_tokens,
        )

    # ------------------------------------------------------------------
    def estimate_serving(
        self, batch: int, prompt_len: int, kv_len: Optional[int] = None
    ) -> ServingEstimate:
        """Price prefill + one decode step + memory for a configuration."""
        kv = prompt_len if kv_len is None else kv_len
        spec = self.compressor.cost_spec()
        mem = self.cost_model.memory.breakdown(
            self.compressor.memory_spec(self.arch), batch, kv, prompt_len
        )
        return ServingEstimate(
            prefill=self.cost_model.prefill(batch, prompt_len, spec),
            decode=self.cost_model.decode_step(batch, kv, spec),
            memory=mem,
        )

    def decode_throughput(self, batch: int, kv_len: int) -> float:
        """Decode tokens/second for this algorithm at a configuration."""
        return self.cost_model.decode_throughput(
            batch, kv_len, self.compressor.cost_spec()
        )

    def prefill_throughput(self, batch: int, prompt_len: int) -> float:
        """Prefill tokens/second for this algorithm at a configuration."""
        return self.cost_model.prefill_throughput(
            batch, prompt_len, self.compressor.cost_spec()
        )

    def max_batch(self, kv_len: int) -> int:
        """Largest batch fitting in GPU memory at ``kv_len``."""
        return self.cost_model.memory.max_batch(
            self.compressor.memory_spec(self.arch), kv_len
        )

    # ------------------------------------------------------------------
    def serving_instance(
        self,
        max_batch: int = 64,
        scheduler: str = "fcfs",
        admission: str = "reserve",
        chunk_size: Optional[int] = None,
    ) -> ServerInstance:
        """Build an event-driven serving instance for this deployment."""
        return ServerInstance(
            self.cost_model,
            self.compressor.cost_spec(),
            max_batch=max_batch,
            scheduler=make_policy(scheduler),
            admission=admission,
            chunk_size=chunk_size,
        )

    def simulate_serving(
        self,
        requests: Sequence[ServingRequest],
        max_batch: int = 64,
        scheduler: str = "fcfs",
        admission: str = "reserve",
        chunk_size: Optional[int] = None,
        with_trace: bool = False,
        ttft_slo: Optional[float] = None,
        tbot_slo: Optional[float] = None,
    ) -> SimulationResult:
        """Serve a request stream under this algorithm's cost profile.

        ``scheduler`` is one of ``fcfs`` / ``shortest`` / ``priority`` /
        ``slo`` (earliest-deadline-first by live slack);
        ``admission`` is ``reserve`` (peak footprint reserved up front)
        or ``dynamic`` (live footprint with recompute preemption);
        ``chunk_size`` enables Sarathi/vLLM-style chunked prefill on
        continuous-batching engines (``None`` = single-shot prefill).
        ``ttft_slo`` / ``tbot_slo`` stamp a fleet-wide TTFT deadline /
        TBOT target (seconds) onto every request that does not already
        carry its own; attainment then shows up in
        :class:`~repro.serving.metrics.LatencySummary` and
        :class:`~repro.serving.metrics.StepMetrics`.
        With ``with_trace=True`` the result carries a step-level
        :class:`~repro.serving.trace.Trace` for timeline inspection.
        """
        for r in requests:
            if ttft_slo is not None and r.ttft_deadline is None:
                r.ttft_deadline = ttft_slo
            if tbot_slo is not None and r.tbot_target is None:
                r.tbot_target = tbot_slo
        inst = self.serving_instance(max_batch, scheduler, admission, chunk_size)
        return inst.run(requests, trace=Trace() if with_trace else None)
