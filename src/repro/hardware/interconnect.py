"""Multi-GPU interconnect model for tensor parallelism.

Tensor parallelism shards attention heads and MLP columns across GPUs and
inserts two all-reduces per decoder layer (after attention output
projection and after the MLP down projection).  The all-reduce time model
is the standard ring formulation: ``2 (g-1)/g * bytes / link_bw`` plus a
fixed per-collective latency.  Table 3 of the paper shows that TP shrinks
the relative speedup of KV-cache compression; in this model that emerges
because per-GPU KV traffic falls with TP while fixed overheads do not.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class InterconnectSpec:
    """Point-to-point link description for one GPU group.

    Attributes
    ----------
    name: label, e.g. ``"nvlink-a6000"``.
    link_bandwidth: per-direction bandwidth per GPU pair, bytes/s.
    latency: fixed per-collective latency in seconds (launch + sync).
    """

    name: str
    link_bandwidth: float
    latency: float = 12e-6


NVLINK_A6000 = InterconnectSpec(name="nvlink-a6000", link_bandwidth=56.25e9)
NVLINK_H800 = InterconnectSpec(name="nvlink-h800", link_bandwidth=200e9, latency=9e-6)
PCIE_GEN4 = InterconnectSpec(name="pcie-gen4", link_bandwidth=24e9, latency=25e-6)


def _check_bandwidth(spec: InterconnectSpec) -> None:
    if spec.link_bandwidth <= 0:
        raise ValueError(
            f"link_bandwidth must be positive, got {spec.link_bandwidth!r} "
            f"on {spec.name!r}"
        )


def allreduce_time(
    spec: InterconnectSpec, bytes_per_gpu: float, group_size: int
) -> float:
    """Ring all-reduce time for ``bytes_per_gpu`` across ``group_size`` GPUs.

    Returns 0 for a group of one (no communication).  A group of zero or
    a negative group is a caller bug, not "no communication", and a
    non-positive bandwidth would silently price every collective at
    ``inf`` (or a negative time) — both raise instead.
    """
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    if group_size == 1:
        return 0.0
    if bytes_per_gpu < 0:
        raise ValueError("bytes_per_gpu must be non-negative")
    _check_bandwidth(spec)
    volume = 2.0 * (group_size - 1) / group_size * bytes_per_gpu
    return spec.latency + volume / spec.link_bandwidth


def transfer_time(spec: InterconnectSpec, nbytes: float) -> float:
    """Point-to-point transfer time for ``nbytes`` over one link.

    Prices the disaggregated prefill->decode KV handoff: one fixed
    launch/sync latency plus the payload at the link's per-direction
    bandwidth (no ring factor — a migration is a single sender/receiver
    pair, unlike the all-reduce above).  Zero bytes still pay the
    latency: the handoff is a real message.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    _check_bandwidth(spec)
    return spec.latency + nbytes / spec.link_bandwidth
