"""Hardware substrate: GPU specifications, roofline timing, memory accounting.

The paper's measurements run on NVIDIA A6000 (Figures 1, 3-7, Tables 3-8)
and H800 (Figure 2) GPUs.  This package models those devices analytically:
a roofline timing model (bandwidth-bound vs compute-bound operator times
plus kernel-launch overheads) and a memory model that reproduces the
out-of-memory boundaries reported in the paper (e.g. quantized KV caches
going OOM before FP16 at KV length 8192, Fig. 1(l)).
"""

from repro.hardware.specs import (
    GPUSpec,
    A6000,
    H800,
    A100_80G,
    get_gpu,
    list_gpus,
)
from repro.hardware.roofline import (
    AccessPattern,
    OpCost,
    Roofline,
)
from repro.hardware.memory import (
    MemoryModel,
    MemoryBreakdown,
    OutOfMemoryError,
)
from repro.hardware.interconnect import (
    InterconnectSpec,
    NVLINK_A6000,
    NVLINK_H800,
    PCIE_GEN4,
    allreduce_time,
    transfer_time,
)

__all__ = [
    "GPUSpec",
    "A6000",
    "H800",
    "A100_80G",
    "get_gpu",
    "list_gpus",
    "AccessPattern",
    "OpCost",
    "Roofline",
    "MemoryModel",
    "MemoryBreakdown",
    "OutOfMemoryError",
    "InterconnectSpec",
    "NVLINK_A6000",
    "NVLINK_H800",
    "PCIE_GEN4",
    "allreduce_time",
    "transfer_time",
]
