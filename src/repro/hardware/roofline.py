"""Roofline operator timing.

Every operator executed by an engine model is reduced to a tuple of
(FLOPs, bytes moved, kernel launches, access pattern).  Its execution
time is::

    t = max(flops / (peak_flops * eff_compute),
            bytes / (bandwidth * eff_pattern)) + launches * launch_overhead

Access-pattern efficiency captures how much of peak DRAM bandwidth an
access shape can realize: contiguous streaming reads reach ~80-90%,
paged-block gathers slightly less, group-quantized layouts with
interleaved scale/zero metadata less again, and irregular sparse gathers
(e.g. GEAR outlier reads, H2O post-eviction holes) the least.  These
factors are the mechanism behind the paper's Observation 2: fine-grained
compression designs forfeit GPU efficiency even when they move fewer
bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.hardware.specs import GPUSpec


class AccessPattern(enum.Enum):
    """DRAM access shape of an operator, mapped to bandwidth efficiency."""

    STREAM = "stream"            # long contiguous reads/writes (GEMM weights)
    CONTIGUOUS_KV = "contig_kv"  # per-sequence contiguous KV cache
    PAGED_KV = "paged_kv"        # block-table indirection (PagedAttention)
    GROUP_QUANT = "group_quant"  # quantized payload + interleaved scales
    SPARSE_GATHER = "sparse"     # irregular gathers (outliers, evicted holes)


#: Fraction of peak DRAM bandwidth achievable for each access pattern.
BANDWIDTH_EFFICIENCY: Dict[AccessPattern, float] = {
    AccessPattern.STREAM: 0.85,
    AccessPattern.CONTIGUOUS_KV: 0.80,
    AccessPattern.PAGED_KV: 0.76,
    AccessPattern.GROUP_QUANT: 0.62,
    AccessPattern.SPARSE_GATHER: 0.45,
}

#: Fraction of peak compute achievable, by unit.
COMPUTE_EFFICIENCY = {
    "tensor": 0.58,   # large GEMMs (prefill projections / MLP)
    "tensor_small": 0.30,  # skinny decode GEMMs before becoming BW-bound
    "vector": 0.50,   # softmax, quant/dequant, top-k, elementwise
}


@dataclass
class OpCost:
    """Cost description of a single logical operator.

    ``flops``/``bytes`` are totals for the operator; ``launches`` counts
    kernel launches it needs (fused implementations need fewer).
    """

    name: str
    flops: float = 0.0
    bytes: float = 0.0
    launches: int = 1
    pattern: AccessPattern = AccessPattern.STREAM
    compute_unit: str = "tensor"

    def scaled(self, factor: float) -> "OpCost":
        """Return a copy with flops/bytes scaled (launches unchanged)."""
        return OpCost(
            name=self.name,
            flops=self.flops * factor,
            bytes=self.bytes * factor,
            launches=self.launches,
            pattern=self.pattern,
            compute_unit=self.compute_unit,
        )


@dataclass
class OpTiming:
    """Resolved execution time of one operator on a device."""

    name: str
    seconds: float
    compute_seconds: float
    memory_seconds: float
    overhead_seconds: float

    @property
    def bound(self) -> str:
        """Whether the op is compute-, memory-, or overhead-bound."""
        parts = {
            "compute": self.compute_seconds,
            "memory": self.memory_seconds,
            "overhead": self.overhead_seconds,
        }
        return max(parts, key=parts.get)


class Roofline:
    """Maps :class:`OpCost` descriptions to times on a :class:`GPUSpec`."""

    def __init__(
        self,
        gpu: GPUSpec,
        bandwidth_efficiency: Optional[Dict[AccessPattern, float]] = None,
        compute_efficiency: Optional[Dict[str, float]] = None,
    ) -> None:
        self.gpu = gpu
        self.bw_eff = dict(BANDWIDTH_EFFICIENCY)
        if bandwidth_efficiency:
            self.bw_eff.update(bandwidth_efficiency)
        self.comp_eff = dict(COMPUTE_EFFICIENCY)
        if compute_efficiency:
            self.comp_eff.update(compute_efficiency)

    def _peak_flops(self, unit: str) -> float:
        if unit in ("tensor", "tensor_small"):
            return self.gpu.tensor_flops * self.comp_eff[unit]
        return self.gpu.vector_flops * self.comp_eff["vector"]

    def time_op(self, op: OpCost) -> OpTiming:
        """Time one operator."""
        compute_s = op.flops / self._peak_flops(op.compute_unit) if op.flops else 0.0
        bw = self.gpu.mem_bandwidth * self.bw_eff[op.pattern]
        memory_s = op.bytes / bw if op.bytes else 0.0
        overhead_s = op.launches * self.gpu.kernel_launch_overhead
        total = max(compute_s, memory_s) + overhead_s
        return OpTiming(
            name=op.name,
            seconds=total,
            compute_seconds=compute_s,
            memory_seconds=memory_s,
            overhead_seconds=overhead_s,
        )

    def time_ops(self, ops: Iterable[OpCost]) -> List[OpTiming]:
        """Time a sequence of operators."""
        return [self.time_op(op) for op in ops]

    def total_seconds(self, ops: Iterable[OpCost]) -> float:
        """Sum of operator times (sequential execution model)."""
        return sum(t.seconds for t in self.time_ops(ops))

    def breakdown(self, ops: Iterable[OpCost]) -> Dict[str, float]:
        """Per-operator-name total seconds, for Fig. 3-style analysis."""
        out: Dict[str, float] = {}
        for op in ops:
            t = self.time_op(op)
            out[op.name] = out.get(op.name, 0.0) + t.seconds
        return out
