"""GPU memory accounting and out-of-memory detection.

The paper observes (Fig. 1(l)) that quantization-based methods can go OOM
*before* the FP16 baseline at long KV lengths.  The mechanism is an
implementation artifact modelled here explicitly: quantize-after-prefill
implementations (KIVI/GEAR reference code) transiently hold both the FP16
KV produced by the prefill and the quantized copy, so their peak memory
exceeds the baseline even though their steady-state memory is smaller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hardware.specs import GPUSpec
from repro.model.arch import ArchSpec


class OutOfMemoryError(RuntimeError):
    """Raised when a configuration does not fit on the device."""

    def __init__(self, breakdown: "MemoryBreakdown") -> None:
        super().__init__(
            f"needs {breakdown.peak_bytes / 2**30:.1f} GiB, device has "
            f"{breakdown.capacity_bytes / 2**30:.1f} GiB"
        )
        self.breakdown = breakdown


@dataclass(frozen=True)
class KVMemorySpec:
    """How a compression algorithm stores the KV cache.

    Attributes
    ----------
    bytes_per_token_per_layer:
        Steady-state bytes for one token's K+V in one layer, including
        quantization scale/zero metadata and any low-rank factors
        amortized per token.
    residual_fp16_tokens:
        Recent-window tokens kept in full precision per sequence
        (KIVI ``R``, GEAR's buffered chunk).
    max_tokens:
        Cap on retained tokens per sequence (sparse budgets); ``None``
        means the cache grows with the sequence.
    transient_fp16_copy:
        Whether prefill transiently materializes the full FP16 KV next to
        the compressed copy (quantize-after-prefill implementations).
    extra_state_bytes_per_seq_per_layer:
        Algorithm bookkeeping per sequence per layer (H2O accumulated
        scores, GEAR low-rank factors, SnapKV pooling buffers).
    """

    bytes_per_token_per_layer: float
    residual_fp16_tokens: int = 0
    max_tokens: Optional[int] = None
    transient_fp16_copy: bool = False
    extra_state_bytes_per_seq_per_layer: float = 0.0

    @staticmethod
    def fp16(arch: ArchSpec) -> "KVMemorySpec":
        """Uncompressed FP16 baseline spec for ``arch``."""
        return KVMemorySpec(
            bytes_per_token_per_layer=arch.kv_bytes_per_token_per_layer()
        )


@dataclass
class MemoryBreakdown:
    """Peak-memory decomposition for one serving configuration."""

    capacity_bytes: float
    weights: float
    kv_quantized: float
    kv_residual_fp16: float
    kv_transient_fp16: float
    algorithm_state: float
    activations: float
    allocator_reserve: float

    @property
    def steady_bytes(self) -> float:
        """Steady-state usage (after any transient prefill copies die)."""
        return (
            self.weights
            + self.kv_quantized
            + self.kv_residual_fp16
            + self.algorithm_state
            + self.activations
            + self.allocator_reserve
        )

    @property
    def peak_bytes(self) -> float:
        """Peak usage including transient prefill copies."""
        return self.steady_bytes + self.kv_transient_fp16

    @property
    def fits(self) -> bool:
        """Whether the peak fits on the device."""
        return self.peak_bytes <= self.capacity_bytes

    def as_dict(self) -> Dict[str, float]:
        """Breakdown as a plain dict (GiB)."""
        gib = 2**30
        return {
            "weights_gib": self.weights / gib,
            "kv_quantized_gib": self.kv_quantized / gib,
            "kv_residual_fp16_gib": self.kv_residual_fp16 / gib,
            "kv_transient_fp16_gib": self.kv_transient_fp16 / gib,
            "algorithm_state_gib": self.algorithm_state / gib,
            "activations_gib": self.activations / gib,
            "allocator_reserve_gib": self.allocator_reserve / gib,
            "peak_gib": self.peak_bytes / gib,
            "capacity_gib": self.capacity_bytes / gib,
        }


class MemoryModel:
    """Computes peak GPU memory for (arch, gpu, tp, kv spec, batch, lens)."""

    #: fraction of device memory the allocator/runtime reserves (CUDA
    #: context, cublas workspaces, fragmentation slack).
    RESERVE_FRACTION = 0.04

    def __init__(self, arch: ArchSpec, gpu: GPUSpec, tp: int = 1) -> None:
        if tp < 1:
            raise ValueError(f"tensor parallel degree must be >= 1, got {tp}")
        if arch.n_kv_heads % tp and tp % arch.n_kv_heads:
            raise ValueError(
                f"tp={tp} incompatible with {arch.n_kv_heads} KV heads"
            )
        self.arch = arch
        self.gpu = gpu
        self.tp = tp

    def _activation_bytes(self, batch: int, max_len: int) -> float:
        """Workspace for activations of the widest single forward pass."""
        a = self.arch
        # prefill holds a few (b, l, d) buffers plus one (b, l, d_ff/tp)
        hidden = batch * max_len * a.d_model * a.dtype_bytes
        mlp = batch * max_len * (a.d_ff // self.tp) * a.dtype_bytes
        logits = batch * a.vocab_size * 4
        return 3 * hidden + mlp + logits

    def breakdown(
        self,
        kv_spec: KVMemorySpec,
        batch: int,
        kv_len: int,
        prefill_len: Optional[int] = None,
    ) -> MemoryBreakdown:
        """Peak memory for ``batch`` sequences at KV length ``kv_len``.

        ``prefill_len`` (defaults to ``kv_len``) sizes the transient FP16
        copy for quantize-after-prefill implementations.
        """
        if batch < 1 or kv_len < 0:
            raise ValueError("batch must be >=1 and kv_len >= 0")
        a = self.arch
        prefill_len = kv_len if prefill_len is None else prefill_len
        weights = a.weight_bytes() / self.tp

        fp16_tok = a.kv_bytes_per_token_per_layer()
        resid_tokens = min(kv_len, kv_spec.residual_fp16_tokens)
        stored = kv_len
        if kv_spec.max_tokens is not None:
            stored = min(stored, kv_spec.max_tokens)
        quant_tokens = max(0, stored - resid_tokens)

        per_layer_q = quant_tokens * kv_spec.bytes_per_token_per_layer
        per_layer_r = resid_tokens * fp16_tok
        kv_quant = batch * a.n_layers * per_layer_q / self.tp
        kv_resid = batch * a.n_layers * per_layer_r / self.tp

        transient = 0.0
        if kv_spec.transient_fp16_copy:
            transient = batch * a.n_layers * prefill_len * fp16_tok / self.tp

        state = (
            batch
            * a.n_layers
            * kv_spec.extra_state_bytes_per_seq_per_layer
            / self.tp
        )
        acts = self._activation_bytes(batch, max(prefill_len, 1)) / self.tp
        reserve = self.RESERVE_FRACTION * self.gpu.memory_bytes

        return MemoryBreakdown(
            capacity_bytes=self.gpu.memory_bytes,
            weights=weights,
            kv_quantized=kv_quant,
            kv_residual_fp16=kv_resid,
            kv_transient_fp16=transient,
            algorithm_state=state,
            activations=acts,
            allocator_reserve=reserve,
        )

    def check(
        self,
        kv_spec: KVMemorySpec,
        batch: int,
        kv_len: int,
        prefill_len: Optional[int] = None,
    ) -> MemoryBreakdown:
        """Like :meth:`breakdown` but raises :class:`OutOfMemoryError`."""
        bd = self.breakdown(kv_spec, batch, kv_len, prefill_len)
        if not bd.fits:
            raise OutOfMemoryError(bd)
        return bd

    def max_batch(
        self, kv_spec: KVMemorySpec, kv_len: int, limit: int = 4096
    ) -> int:
        """Largest batch that fits at ``kv_len`` (0 if none fits)."""
        lo, hi = 0, limit
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.breakdown(kv_spec, mid, kv_len).fits:
                lo = mid
            else:
                hi = mid - 1
        return lo
