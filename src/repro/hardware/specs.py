"""GPU device specifications used by the roofline cost model.

Numbers are taken from vendor datasheets.  ``tensor_flops`` is the dense
FP16 tensor-core peak; ``vector_flops`` is the FP32/FP16 CUDA-core peak
used for non-GEMM elementwise work (softmax, quant/dequant, top-k).
Efficiency factors (fraction of peak achievable by well-tuned kernels)
live in :mod:`repro.hardware.roofline`, not here.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU device.

    Attributes
    ----------
    name:
        Human-readable device name (``"A6000"``).
    memory_bytes:
        HBM/GDDR capacity in bytes.
    mem_bandwidth:
        Peak DRAM bandwidth in bytes/second.
    tensor_flops:
        Peak dense FP16 tensor-core throughput in FLOP/s.
    vector_flops:
        Peak CUDA-core throughput (FLOP/s) for elementwise/softmax work.
    sram_bytes:
        Total usable on-chip SRAM (shared memory + L1) in bytes.  Used by
        the FlashAttention tiling model.
    kernel_launch_overhead:
        Fixed host-side cost of launching one kernel, in seconds.
    nvlink_bandwidth:
        Per-direction NVLink bandwidth in bytes/second (0 if absent).
    """

    name: str
    memory_bytes: float
    mem_bandwidth: float
    tensor_flops: float
    vector_flops: float
    sram_bytes: float = 20 * 2**20
    kernel_launch_overhead: float = 5e-6
    nvlink_bandwidth: float = 0.0

    @property
    def memory_gb(self) -> float:
        """Device memory in GiB."""
        return self.memory_bytes / 2**30

    def ridge_intensity(self) -> float:
        """Arithmetic intensity (FLOP/byte) at the roofline ridge point."""
        return self.tensor_flops / self.mem_bandwidth


A6000 = GPUSpec(
    name="A6000",
    memory_bytes=48 * 2**30,
    mem_bandwidth=768e9,
    tensor_flops=154.8e12,
    vector_flops=38.7e12,
    sram_bytes=10.5 * 2**20,
    kernel_launch_overhead=6e-6,
    nvlink_bandwidth=56.25e9,  # NVLink bridge, per direction
)

H800 = GPUSpec(
    name="H800",
    memory_bytes=80 * 2**30,
    mem_bandwidth=3.35e12,
    tensor_flops=989e12,
    vector_flops=67e12,
    sram_bytes=33 * 2**20,
    kernel_launch_overhead=4e-6,
    nvlink_bandwidth=200e9,  # H800 has export-reduced NVLink
)

A100_80G = GPUSpec(
    name="A100-80G",
    memory_bytes=80 * 2**30,
    mem_bandwidth=2.039e12,
    tensor_flops=312e12,
    vector_flops=78e12,
    sram_bytes=27 * 2**20,
    kernel_launch_overhead=5e-6,
    nvlink_bandwidth=300e9,
)

_REGISTRY = {g.name.lower(): g for g in (A6000, H800, A100_80G)}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU spec by (case-insensitive) name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown GPU {name!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[key]


def list_gpus() -> list:
    """Names of all registered GPUs."""
    return sorted(_REGISTRY)
