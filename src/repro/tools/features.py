"""Prompt featurization for the length predictor.

A BERT-class encoder fine-tuned on (prompt, response-length) pairs
learns surface cues: how long the prompt is, how question-like it is,
how long the answer spans it references are, whether the context
contains conflicting information.  This module extracts those cues as
an explicit feature vector so a linear classifier can stand in for the
paper's BERT/Longformer predictor (Appendix F) without torch.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.model.tokenizer import SyntheticTokenizer

N_FEATURES = 14


def _record_spans(prompt: Sequence[int], tok: SyntheticTokenizer) -> List[tuple]:
    """(key, start, value_len) of each ``[Q key ... SEP]`` record."""
    sp = tok.special
    spans = []
    i = 0
    n = len(prompt)
    while i < n - 1:
        if prompt[i] == sp.q and i + 1 < n:
            key = prompt[i + 1]
            j = i + 2
            while j < n and prompt[j] != sp.sep:
                j += 1
            if j < n:
                spans.append((key, i, j - i - 2))
                i = j
            else:
                break
        i += 1
    return spans


def prompt_features(
    prompt: Sequence[int],
    tok: SyntheticTokenizer,
    token_stats: "np.ndarray | None" = None,
) -> np.ndarray:
    """Feature vector of length :data:`N_FEATURES` for one prompt.

    ``token_stats`` is an optional per-token-id scalar statistic (e.g.
    embedding magnitude).  A trained encoder absorbs such statistics
    from data; passing them explicitly keeps the linear classifier
    honest while matching what a BERT-class predictor would learn.
    """
    sp = tok.special
    arr = np.asarray(prompt)
    n = max(1, len(prompt))
    spans = _record_spans(prompt, tok)
    final_key = prompt[-1] if prompt else -1

    matching = [(k, s, vl) for (k, s, vl) in spans if k == final_key]
    answer_span = matching[-1][2] if matching else 0.0
    n_conflicts = max(0, len(matching) - 1)
    if matching:
        depth = (n - matching[-1][1]) / n  # how deep the answer sits
    else:
        depth = 1.0

    counts = {
        t: float(np.sum(arr == t))
        for t in (sp.q, sp.sep, sp.nl, sp.fn)
    }
    record_alpha_start = tok.content_start + tok.n_content // 2
    frac_record = float(np.mean(arr >= record_alpha_start))

    if token_stats is not None:
        key_stat = float(token_stats[final_key]) if 0 <= final_key < len(token_stats) else 1.0
        if matching:
            k_, s_, vl_ = matching[-1]
            span_ids = prompt[s_ + 2 : s_ + 2 + vl_]
            span_stat = float(np.min(token_stats[list(span_ids)])) if span_ids else 1.0
        else:
            span_stat = 1.0
    else:
        key_stat = 1.0
        span_stat = 1.0

    feats = np.array(
        [
            1.0,  # bias
            np.log1p(n),
            counts[sp.q] / n * 100,
            counts[sp.sep] / n * 100,
            counts[sp.nl] / n * 100,
            counts[sp.fn] / n * 100,
            np.log1p(answer_span),
            float(n_conflicts),
            depth,
            frac_record,
            key_stat,
            span_stat,
            float(len(spans)),
            np.log1p(np.mean([vl for _, _, vl in spans]) if spans else 0.0),
        ]
    )
    if feats.shape[0] != N_FEATURES:
        raise AssertionError("feature size drifted from N_FEATURES")
    return feats


def batch_features(
    prompts: Sequence[Sequence[int]],
    tok: SyntheticTokenizer,
    token_stats: "np.ndarray | None" = None,
) -> np.ndarray:
    """Stacked features, shape (n_prompts, N_FEATURES)."""
    return np.stack([prompt_features(p, tok, token_stats) for p in prompts])
