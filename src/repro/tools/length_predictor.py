"""Response-length predictor (the paper's Section 5.2 tool).

One multinomial-logistic classifier per compression algorithm maps
prompt features to a log-spaced response-length bucket; the predicted
length is the bucket's geometric midpoint.  Matches the structure of the
paper's BERT-based classifier (predict a length bucket, then inform the
router), with accuracy defined exactly as in Appendix F:
``(1 - |L_pred - L_gt| / L_gt)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.model.layers import softmax
from repro.model.tokenizer import SyntheticTokenizer
from repro.tools.features import N_FEATURES, batch_features


def make_buckets(max_len: int = 512, n_buckets: int = 12) -> np.ndarray:
    """Log-spaced bucket edges over [1, max_len]."""
    return np.unique(
        np.round(np.geomspace(1, max_len, n_buckets + 1)).astype(int)
    )


def quantile_buckets(lengths: Sequence[int], n_buckets: int = 10) -> np.ndarray:
    """Bucket edges at the empirical quantiles of observed lengths.

    Quantile edges keep per-bucket relative error roughly uniform, which
    the paper's ``1 - |L_pred - L_gt| / L_gt`` accuracy rewards.
    """
    arr = np.asarray(lengths, dtype=float)
    qs = np.quantile(arr, np.linspace(0, 1, n_buckets + 1))
    edges = np.unique(np.round(qs).astype(int))
    edges[0] = min(edges[0], 1)
    edges[-1] = edges[-1] + 1
    return edges


@dataclass
class LengthPredictor:
    """Bucketed length classifier for one compression algorithm."""

    buckets: np.ndarray = field(default_factory=make_buckets)
    l2: float = 1e-4
    lr: float = 0.5
    epochs: int = 2000
    seed: int = 0
    _weights: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def n_classes(self) -> int:
        """Number of length buckets."""
        return len(self.buckets) - 1

    def _bucketize(self, lengths: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(self.buckets, lengths, side="right") - 1
        return np.clip(idx, 0, self.n_classes - 1)

    def _midpoints(self) -> np.ndarray:
        if getattr(self, "_representatives", None) is not None:
            return self._representatives
        lo = self.buckets[:-1].astype(float)
        hi = self.buckets[1:].astype(float)
        return np.sqrt(lo * np.maximum(hi, 1.0))

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, lengths: Sequence[int]) -> "LengthPredictor":
        """Train on (features, observed response lengths)."""
        x = np.asarray(features, dtype=float)
        arr = np.asarray(lengths)
        y = self._bucketize(arr)
        n, d = x.shape
        if d != N_FEATURES:
            raise ValueError(f"expected {N_FEATURES} features, got {d}")
        # bucket representative = geometric mean of its training lengths
        reps = self._midpoints().copy()
        for c in range(self.n_classes):
            members = arr[y == c]
            if members.size:
                reps[c] = float(np.exp(np.mean(np.log(np.maximum(members, 1)))))
        self._representatives = reps
        self._center = x.mean(axis=0)
        self._center[0] = 0.0  # keep the bias feature
        self._scale = np.maximum(x.std(axis=0), 1e-6)
        self._scale[0] = 1.0
        xs = (x - self._center) / self._scale
        rng = np.random.default_rng(self.seed)
        w = rng.normal(0, 0.01, size=(d, self.n_classes))
        onehot = np.eye(self.n_classes)[y]
        for _ in range(self.epochs):
            p = softmax(xs @ w, axis=-1)
            grad = xs.T @ (p - onehot) / n + self.l2 * w
            w -= self.lr * grad
        self._weights = w
        return self

    def predict_bucket(self, features: np.ndarray) -> np.ndarray:
        """Most likely bucket index per row."""
        if self._weights is None:
            raise RuntimeError("predictor not fitted")
        xs = (np.asarray(features, dtype=float) - self._center) / self._scale
        return np.argmax(xs @ self._weights, axis=-1)

    def predict_length(self, features: np.ndarray) -> np.ndarray:
        """Predicted response length per row (bucket midpoint)."""
        return self._midpoints()[self.predict_bucket(features)]

    def accuracy(self, features: np.ndarray, lengths: Sequence[int]) -> float:
        """Paper's accuracy: mean of ``1 - |pred - gt| / gt``, floored at 0."""
        pred = self.predict_length(features)
        gt = np.maximum(np.asarray(lengths, dtype=float), 1.0)
        return float(np.mean(np.maximum(0.0, 1.0 - np.abs(pred - gt) / gt)))


def train_per_algorithm(
    prompts: Sequence[Sequence[int]],
    lengths_by_algo: Dict[str, Sequence[int]],
    tokenizer: Optional[SyntheticTokenizer] = None,
    holdout: float = 0.25,
    seed: int = 0,
    token_stats=None,
    **predictor_kwargs,
) -> Dict[str, Dict[str, object]]:
    """Train one predictor per algorithm; returns predictors + accuracies.

    Returns ``{algo: {"predictor": LengthPredictor, "accuracy": float}}``
    where accuracy is measured on a held-out split.
    """
    tok = tokenizer or SyntheticTokenizer()
    feats = batch_features(prompts, tok, token_stats)
    n = feats.shape[0]
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_test = max(1, int(holdout * n))
    test_idx, train_idx = order[:n_test], order[n_test:]
    out: Dict[str, Dict[str, object]] = {}
    for algo, lengths in lengths_by_algo.items():
        arr = np.asarray(lengths)
        if "buckets" not in predictor_kwargs:
            kwargs = dict(
                predictor_kwargs,
                buckets=quantile_buckets(arr[train_idx]),
            )
        else:
            kwargs = predictor_kwargs
        pred = LengthPredictor(seed=seed, **kwargs)
        pred.fit(feats[train_idx], arr[train_idx])
        out[algo] = {
            "predictor": pred,
            "accuracy": pred.accuracy(feats[test_idx], arr[test_idx]),
        }
    return out
