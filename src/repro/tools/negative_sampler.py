"""Negative-sample collection (Algorithm 1) and benchmark construction.

A *negative sample* is a benign sample — one the uncompressed model
handles at least averagely well — on which **every** algorithm in the
evaluated set suffers a relative accuracy loss exceeding a threshold
``theta``.  Evaluating a set of one algorithm gives that algorithm's own
negatives; evaluating {KIVI, GEAR} gives the paper's "Quant (C)" curve,
{H2O, StreamingLLM} gives "Sparse (C)" (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Set

import numpy as np


@dataclass(frozen=True)
class ScoredSample:
    """Per-sample accuracy under one algorithm."""

    sample_id: str
    task: str
    score: float


class NegativeSampleAnalysis:
    """Implements Algorithm 1 over per-sample scores.

    Parameters
    ----------
    baseline:
        ``sample_id -> ScoredSample`` for the uncompressed model.
    by_algo:
        ``algo -> {sample_id -> ScoredSample}`` for each compression
        algorithm, over the same sample ids.
    """

    def __init__(
        self,
        baseline: Mapping[str, ScoredSample],
        by_algo: Mapping[str, Mapping[str, ScoredSample]],
    ) -> None:
        if not baseline:
            raise ValueError("baseline scores must be non-empty")
        for algo, scores in by_algo.items():
            missing = set(baseline) - set(scores)
            if missing:
                raise ValueError(
                    f"algorithm {algo!r} missing {len(missing)} sample scores"
                )
        self.baseline = dict(baseline)
        self.by_algo = {a: dict(s) for a, s in by_algo.items()}
        self._benign = self._benign_ids()

    def _benign_ids(self) -> Set[str]:
        """Benign = baseline score >= its task's mean baseline score."""
        by_task: Dict[str, List[float]] = {}
        for s in self.baseline.values():
            by_task.setdefault(s.task, []).append(s.score)
        means = {t: float(np.mean(v)) for t, v in by_task.items()}
        return {
            sid
            for sid, s in self.baseline.items()
            if s.score >= means[s.task]
        }

    @property
    def benign_ids(self) -> Set[str]:
        """Sample ids considered benign under the baseline."""
        return set(self._benign)

    # ------------------------------------------------------------------
    def negatives(self, algos: Sequence[str], theta: float) -> Set[str]:
        """Algorithm 1: benign samples failing under *all* of ``algos``."""
        if not 0 <= theta <= 1:
            raise ValueError("theta must be in [0, 1]")
        for a in algos:
            if a not in self.by_algo:
                raise KeyError(f"unknown algorithm {a!r}")
        out: Set[str] = set()
        for sid in self._benign:
            p_base = self.baseline[sid].score
            negative = True
            for a in algos:
                if self.by_algo[a][sid].score >= (1.0 - theta) * p_base:
                    negative = False
                    break
            if negative:
                out.add(sid)
        return out

    def risk_scores(
        self, algos: Sequence[str], theta: float
    ) -> Dict[str, float]:
        """Graded per-sample compression risk for online routing.

        For each benign sample, the fraction of ``algos`` under which
        its score drops below ``(1 - theta) x baseline`` — 1.0 means the
        sample fails under every evaluated algorithm (an Algorithm 1
        negative), 0.0 that it is safe everywhere.  Non-benign samples
        score 0.0: the baseline already handles them poorly, so
        compression has nothing left to lose.  The ``compression``
        routing policy consumes these as per-request risk scores.
        """
        if not 0 <= theta <= 1:
            raise ValueError("theta must be in [0, 1]")
        for a in algos:
            if a not in self.by_algo:
                raise KeyError(f"unknown algorithm {a!r}")
        out: Dict[str, float] = {}
        for sid in self.baseline:
            if sid not in self._benign or not algos:
                out[sid] = 0.0
                continue
            p_base = self.baseline[sid].score
            fails = sum(
                1
                for a in algos
                if self.by_algo[a][sid].score < (1.0 - theta) * p_base
            )
            out[sid] = fails / len(algos)
        return out

    def counts_by_threshold(
        self, algos_sets: Mapping[str, Sequence[str]], thetas: Sequence[float]
    ) -> Dict[str, List[int]]:
        """Fig. 6 data: negative counts per threshold per algorithm set."""
        return {
            label: [len(self.negatives(algos, t)) for t in thetas]
            for label, algos in algos_sets.items()
        }

    def counts_by_task(
        self, algos: Sequence[str], theta: float
    ) -> Dict[str, int]:
        """Fig. 7 data: negatives broken down by task type."""
        out: Dict[str, int] = {}
        for sid in self.negatives(algos, theta):
            task = self.baseline[sid].task
            out[task] = out.get(task, 0) + 1
        return out

    # ------------------------------------------------------------------
    def benchmark_ids(
        self, algos: Iterable[str], theta: float = 0.10
    ) -> List[str]:
        """Section 5.3: the union of per-algorithm negatives at ``theta``."""
        ids: Set[str] = set()
        for a in algos:
            ids |= self.negatives([a], theta)
        return sorted(ids)

    def scores_on(
        self, sample_ids: Sequence[str], group_of: Mapping[str, str]
    ) -> Dict[str, Dict[str, float]]:
        """Table 7 data: mean scores on a benchmark subset.

        ``group_of`` maps task -> report group (e.g. "Summarization").
        Returns ``{group: {"baseline": x, algo: y, ...}}`` with scores
        scaled to 0-100.
        """
        groups: Dict[str, List[str]] = {}
        for sid in sample_ids:
            task = self.baseline[sid].task
            g = group_of.get(task, task)
            groups.setdefault(g, []).append(sid)
        out: Dict[str, Dict[str, float]] = {}
        for g, sids in groups.items():
            row = {
                "baseline": 100 * float(
                    np.mean([self.baseline[s].score for s in sids])
                )
            }
            for a, scores in self.by_algo.items():
                row[a] = 100 * float(np.mean([scores[s].score for s in sids]))
            out[g] = row
        return out
