"""The paper's Section 5 tool suite.

- :class:`~repro.tools.throughput_predictor.ThroughputPredictor` —
  operator-profile + interpolation runtime predictor (Vidur-style).
- :class:`~repro.tools.length_predictor.LengthPredictor` — bucketed
  response-length classifier per compression algorithm.
- :class:`~repro.tools.negative_sampler.NegativeSampleAnalysis` —
  Algorithm 1 negative-sample collection and benchmark construction.
"""

from repro.tools.features import N_FEATURES, batch_features, prompt_features
from repro.tools.length_predictor import (
    LengthPredictor,
    make_buckets,
    train_per_algorithm,
)
from repro.tools.negative_sampler import (
    NegativeSampleAnalysis,
    ScoredSample,
)
from repro.tools.throughput_predictor import ThroughputPredictor

__all__ = [
    "N_FEATURES",
    "batch_features",
    "prompt_features",
    "LengthPredictor",
    "make_buckets",
    "train_per_algorithm",
    "NegativeSampleAnalysis",
    "ScoredSample",
    "ThroughputPredictor",
]
