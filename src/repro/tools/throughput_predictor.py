"""Throughput predictor (the paper's Section 5.1 tool, Vidur-style).

Following Vidur's decomposition, only the attention operator depends on
the compression algorithm; all other operators (projections, MLP,
dispatch) are profiled once and shared.  Profiles are taken on a grid of
(batch, length) points per stage — with multiplicative measurement
noise, as real profiling has — and queried by bilinear interpolation in
(log batch, log length, log time) space.  Accuracy is the paper's
``(1 - |T_pred - T_gt| / T_gt)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.interpolate import RegularGridInterpolator

from repro.compression.base import CompressionCostSpec
from repro.engines.base import ServingCostModel

STAGES = ("prefill", "decode")


def _stage_seconds(
    model: ServingCostModel,
    comp: CompressionCostSpec,
    stage: str,
    batch: int,
    length: int,
) -> Tuple[float, float]:
    """(attention seconds, other seconds) for one stage point."""
    cost = (
        model.prefill(batch, length, comp)
        if stage == "prefill"
        else model.decode_step(batch, length, comp)
    )
    if cost.oom:
        return float("nan"), float("nan")
    attn = cost.attention_seconds
    return attn, cost.seconds - attn


@dataclass
class ThroughputPredictor:
    """Profile-and-interpolate runtime predictor."""

    model: ServingCostModel
    comp_specs: Dict[str, CompressionCostSpec]
    batches: Sequence[int] = (1, 2, 4, 8, 16, 32)
    lengths: Sequence[int] = (128, 256, 512, 1024, 2048, 4096)
    profile_noise: float = 0.04
    seed: int = 0
    _attn: Dict[Tuple[str, str], RegularGridInterpolator] = field(
        default_factory=dict, repr=False
    )
    _other: Dict[str, RegularGridInterpolator] = field(
        default_factory=dict, repr=False
    )

    def profile(self) -> "ThroughputPredictor":
        """Measure the profile grids (call once before predicting)."""
        rng = np.random.default_rng(self.seed)
        b_ax = np.log2(np.asarray(self.batches, dtype=float))
        l_ax = np.log2(np.asarray(self.lengths, dtype=float))
        base = next(iter(self.comp_specs.values()))
        for stage in STAGES:
            other = np.zeros((len(self.batches), len(self.lengths)))
            for i, b in enumerate(self.batches):
                for j, L in enumerate(self.lengths):
                    _, o = _stage_seconds(self.model, base, stage, b, L)
                    noise = 1.0 + self.profile_noise * rng.standard_normal()
                    other[i, j] = o * max(noise, 0.5)
            self._other[stage] = RegularGridInterpolator(
                (b_ax, l_ax), np.log(np.maximum(other, 1e-9)),
                bounds_error=False, fill_value=None,
            )
            for name, comp in self.comp_specs.items():
                attn = np.zeros_like(other)
                for i, b in enumerate(self.batches):
                    for j, L in enumerate(self.lengths):
                        a, _ = _stage_seconds(self.model, comp, stage, b, L)
                        noise = 1.0 + self.profile_noise * rng.standard_normal()
                        attn[i, j] = a * max(noise, 0.5)
                self._attn[(name, stage)] = RegularGridInterpolator(
                    (b_ax, l_ax), np.log(np.maximum(attn, 1e-9)),
                    bounds_error=False, fill_value=None,
                )
        return self

    # ------------------------------------------------------------------
    def _query(self, interp, batch: int, length: int) -> float:
        pt = np.array([[np.log2(batch), np.log2(length)]])
        return float(np.exp(interp(pt)[0]))

    def predict_seconds(
        self, algo: str, stage: str, batch: int, length: int
    ) -> float:
        """Predicted stage seconds for one configuration."""
        if stage not in STAGES:
            raise ValueError(f"stage must be one of {STAGES}")
        if (algo, stage) not in self._attn:
            raise KeyError(f"algorithm {algo!r} was not profiled")
        attn = self._query(self._attn[(algo, stage)], batch, length)
        other = self._query(self._other[stage], batch, length)
        return attn + other

    def predict_decode_throughput(self, algo: str, batch: int, kv_len: int) -> float:
        """Predicted decode tokens/second."""
        return batch / self.predict_seconds(algo, "decode", batch, kv_len)

    def predict_prefill_throughput(self, algo: str, batch: int, length: int) -> float:
        """Predicted prefill tokens/second."""
        return batch * length / self.predict_seconds(algo, "prefill", batch, length)

    # ------------------------------------------------------------------
    def accuracy(
        self,
        eval_points: Sequence[Tuple[str, int, int]],
    ) -> Dict[str, float]:
        """Paper-style per-algorithm accuracy on off-grid points.

        ``eval_points`` is a list of (stage, batch, length) tuples.
        """
        out: Dict[str, float] = {}
        for algo, comp in self.comp_specs.items():
            accs: List[float] = []
            for stage, b, L in eval_points:
                attn_gt, other_gt = _stage_seconds(self.model, comp, stage, b, L)
                gt = attn_gt + other_gt
                if not np.isfinite(gt) or gt <= 0:
                    continue
                pred = self.predict_seconds(algo, stage, b, L)
                accs.append(max(0.0, 1.0 - abs(pred - gt) / gt))
            out[algo] = float(np.mean(accs)) if accs else float("nan")
        return out
