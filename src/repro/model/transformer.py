"""The functional decoder transformer (pure NumPy, cache-aware).

``FunctionalTransformer`` runs prefill and decode exactly like a serving
engine would: prefill projects the whole prompt, appends K/V to the
session cache and computes causal attention; decode appends one token at
a time.  A *compressor* (duck-typed, see :mod:`repro.compression.base`)
can observe attention probabilities and mutate the cache (quantize
entries in place, evict positions) after every phase — mirroring where
real KV-compression implementations hook into the serving stack.

Attention probabilities are only materialized when the compressor's
``needs_probs`` flag demands it; with the flash-style implementation the
model refuses to serve probability-hungry compressors, reproducing the
FlashAttention incompatibility discussed in the paper (Section 3.1.2).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.model.attention import flash_attention, naive_attention
from repro.model.builder import build_weights, head_biases
from repro.model.cache import SessionCache
from repro.model.config import FunctionalModelConfig
from repro.model.layers import ModelWeights
from repro.model.tokenizer import SyntheticTokenizer

#: soft cap on score-matrix elements per attention chunk
_CHUNK_ELEMENTS = 8_000_000

#: FP16 prefill processes prompts in blocks of this many positions,
#: aligned to absolute position.  Alignment makes every block's K/V a
#: fixed-shape function of its prefix tokens, so a warm prefill that
#: resumes at a block boundary replays bit-identical computations —
#: BLAS matmul rounding depends on operand shapes, so unaligned resume
#: points would drift by ULPs.  This is also the reuse granularity of
#: prefix caching (real engines reuse whole KV blocks the same way).
PREFILL_BLOCK = 64


class FlashIncompatibilityError(RuntimeError):
    """Raised when a probs-requiring compressor meets flash attention."""


class FunctionalTransformer:
    """Decoder-only transformer with pluggable KV compression."""

    def __init__(
        self,
        config: FunctionalModelConfig,
        weights: Optional[ModelWeights] = None,
        attention_impl: str = "naive",
        prefill_block: int = PREFILL_BLOCK,
    ) -> None:
        if attention_impl not in ("naive", "flash"):
            raise ValueError("attention_impl must be 'naive' or 'flash'")
        if prefill_block < 1:
            raise ValueError("prefill_block must be positive")
        self.config = config
        self.weights = weights if weights is not None else build_weights(config)
        self.biases = head_biases(config)
        self.tokenizer = SyntheticTokenizer(config.vocab_size)
        self.attention_impl = attention_impl
        self.prefill_block = prefill_block

    # ------------------------------------------------------------------
    def new_cache(self, batch: int, seq_start: np.ndarray) -> SessionCache:
        """Fresh session cache for ``batch`` left-padded sequences."""
        c = self.config
        return SessionCache(
            c.n_layers, batch, c.n_kv_heads, c.head_dim, seq_start
        )

    def embed(self, tokens: np.ndarray) -> np.ndarray:
        """Token embedding lookup, (b, s) -> (b, s, d_model)."""
        return self.weights.embedding[tokens]

    def logits(self, hidden: np.ndarray) -> np.ndarray:
        """Unembedding, (..., d_model) -> (..., vocab)."""
        return hidden @ self.weights.unembedding + self.weights.logit_bias

    # ------------------------------------------------------------------
    def _wants_probs(self, compressor) -> bool:
        wants = compressor is not None and getattr(compressor, "needs_probs", False)
        if wants and self.attention_impl == "flash":
            raise FlashIncompatibilityError(
                f"compressor {type(compressor).__name__} requires attention "
                "probabilities, which the one-pass flash implementation does "
                "not materialize (see paper Section 3.1.2)"
            )
        return wants

    def _attend(
        self,
        li: int,
        q: np.ndarray,
        cache: SessionCache,
        q_pos: np.ndarray,
        compressor,
    ) -> np.ndarray:
        """Attention for layer ``li`` over the session cache, chunked."""
        lc = cache[li]
        c = self.config
        wants_probs = self._wants_probs(compressor)
        b, h, sq, _ = q.shape
        n = lc.length
        chunk = max(1, _CHUNK_ELEMENTS // max(1, b * h * n))
        outs = []
        k_pos = lc.positions
        k_full = lc.k
        v_full = lc.v
        keep_full = lc.keep
        for start in range(0, sq, chunk):
            stop = min(start + chunk, sq)
            qc = q[:, :, start:stop]
            # causality: keys beyond the last query position never attend
            kmax = min(n, int(q_pos[stop - 1]) + 1)
            kk, vv = k_full[:, :, :kmax], v_full[:, :, :kmax]
            keep = keep_full[:, :, :kmax]
            kp = k_pos[:kmax]
            if self.attention_impl == "flash" and not wants_probs:
                out_c = flash_attention(
                    qc, kk, vv, q_pos[start:stop], kp,
                    self.biases[li], keep=keep, gqa_group=c.gqa_group,
                )
            else:
                out_c, probs = naive_attention(
                    qc, kk, vv, q_pos[start:stop], kp,
                    self.biases[li], keep=keep, gqa_group=c.gqa_group,
                )
                if wants_probs:
                    compressor.observe(li, probs, q_pos[start:stop], kp, lc)
            outs.append(out_c)
        return outs[0] if len(outs) == 1 else np.concatenate(outs, axis=2)

    def _layer_forward(
        self,
        li: int,
        x: np.ndarray,
        cache: SessionCache,
        q_pos: np.ndarray,
        compressor,
        phase: str,
    ) -> np.ndarray:
        c = self.config
        w = self.weights.layers[li]
        q, k, v = w.attn.project_qkv(x, c.n_heads, c.n_kv_heads, c.head_dim)
        cache[li].append(k, v)
        attn = self._attend(li, q, cache, q_pos, compressor)
        x = x + w.attn.project_out(attn)
        x = x + w.mlp.forward(x)
        if compressor is not None:
            compressor.compress(li, cache[li], phase)
        return x

    # ------------------------------------------------------------------
    def _prefill_span(
        self,
        tokens: np.ndarray,
        cache: SessionCache,
        compressor,
    ) -> np.ndarray:
        """One contiguous prefill span starting at ``cache.length``."""
        b, L = tokens.shape
        x = self.embed(tokens)
        q_pos = np.arange(cache.length, cache.length + L)
        for li in range(self.config.n_layers):
            x = self._layer_forward(li, x, cache, q_pos, compressor, "prefill")
        return self.logits(x[:, -1])

    def prefill(
        self,
        tokens: np.ndarray,
        cache: SessionCache,
        compressor=None,
    ) -> np.ndarray:
        """Run the prompt through the model; returns last-position logits.

        ``tokens`` is (batch, prompt_len), already left-padded.  When the
        cache has been pre-seeded with a reused prefix (prefix caching),
        ``tokens`` holds only the uncached suffix and query positions
        continue from ``cache.length``.

        The FP16 path (no compressor) computes in position-aligned
        blocks of ``prefill_block`` tokens so each block's K/V is a
        fixed-shape, bit-reproducible function of its prefix — the
        property that makes warm prefill from a block-aligned reused
        prefix logit-exact versus a cold recompute.  Compressed prefill
        stays single-shot: compressors hook once per layer per prefill,
        and compressed K/V is never shared anyway.
        """
        if compressor is not None:
            return self._prefill_span(tokens, cache, compressor)
        start = cache.length
        total = tokens.shape[1]
        bs = self.prefill_block
        logits = None
        pos = start
        while pos < start + total:
            end = min((pos // bs + 1) * bs, start + total)
            logits = self._prefill_span(
                tokens[:, pos - start:end - start], cache, None
            )
            pos = end
        return logits

    def decode_step(
        self,
        token_ids: np.ndarray,
        cache: SessionCache,
        compressor=None,
    ) -> np.ndarray:
        """One decode step; ``token_ids`` is (batch,).  Returns logits."""
        x = self.embed(token_ids[:, None])
        q_pos = np.array([cache.length])
        for li in range(self.config.n_layers):
            x = self._layer_forward(li, x, cache, q_pos, compressor, "decode")
        return self.logits(x[:, -1])
