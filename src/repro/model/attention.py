"""Attention kernels of the functional model.

Two numerically equivalent implementations are provided:

- :func:`naive_attention` materializes the full score and probability
  matrices (the "multi-pass" pattern of the eager transformers library).
  It returns the attention probabilities, which score-based eviction
  policies (H2O, SnapKV) consume.
- :func:`flash_attention` computes the same output with streaming/online
  softmax over key tiles and never materializes probabilities.  This is
  the one-pass FlashAttention pattern; its inability to return
  probabilities is exactly the incompatibility the paper highlights
  between sparsity-based compression and FlashAttention (Section 3.1.2).

Positional behaviour is expressed as additive score biases per head
(:class:`HeadBias`), covering the hand-built circuit's previous-token and
sink heads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.model.config import HeadRole
from repro.model.layers import softmax_inplace

NEG_INF = np.float32(-1e9)


@dataclass(frozen=True)
class HeadBias:
    """Additive attention-score bias for one head.

    ``kind`` is one of ``"none"``, ``"prev_token"`` (sharply peaked at
    key position ``i-1``), ``"sink"`` (bonus at key position 0) or
    ``"recency"`` (mild linear preference for nearby keys — the tie
    breaker that makes the induction head prefer the *latest* matching
    record, so distractor records lose by only a small margin).
    """

    kind: str = "none"
    strength: float = 0.0

    @staticmethod
    def for_role(
        role: HeadRole,
        prev_bias: float,
        sink_bias: float,
        recency_bias: float = 0.0,
    ) -> "HeadBias":
        """Bias appropriate for a circuit head role."""
        if role == HeadRole.PREV_TOKEN:
            return HeadBias("prev_token", prev_bias)
        if role == HeadRole.SINK:
            return HeadBias("sink", sink_bias)
        if role == HeadRole.INDUCTION and recency_bias:
            return HeadBias("recency", recency_bias)
        return HeadBias("none", 0.0)

    def matrix(self, q_pos: np.ndarray, k_pos: np.ndarray) -> np.ndarray:
        """Bias matrix of shape (len(q_pos), len(k_pos))."""
        if self.kind == "none" or self.strength == 0.0:
            return np.zeros((q_pos.size, k_pos.size), dtype=np.float32)
        if self.kind == "prev_token":
            dist = np.abs((q_pos[:, None] - 1) - k_pos[None, :])
            return (-self.strength * dist).astype(np.float32)
        if self.kind == "sink":
            bias = np.zeros((q_pos.size, k_pos.size), dtype=np.float32)
            bias[:, k_pos == 0] = self.strength
            return bias
        if self.kind == "recency":
            dist = np.maximum(q_pos[:, None] - k_pos[None, :], 0)
            return (-self.strength * dist).astype(np.float32)
        raise ValueError(f"unknown bias kind {self.kind!r}")


def expand_kv(x: np.ndarray, gqa_group: int) -> np.ndarray:
    """Repeat KV heads to match query heads (GQA)."""
    if gqa_group == 1:
        return x
    return np.repeat(x, gqa_group, axis=1)


def build_score_mask(
    q_pos: np.ndarray, k_pos: np.ndarray, keep: Optional[np.ndarray]
) -> np.ndarray:
    """Additive mask combining causality and eviction.

    ``keep`` is (batch, kv_heads, n_keys) boolean (True = retained) or
    None.  Returns (batch|1, kv_heads|1, n_q, n_keys) additive mask.
    """
    causal = k_pos[None, :] <= q_pos[:, None]
    mask = np.where(causal, np.float32(0.0), NEG_INF)[None, None]
    if keep is not None:
        evict = np.where(keep[:, :, None, :], np.float32(0.0), NEG_INF)
        mask = mask + evict
    return mask


def naive_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    q_pos: np.ndarray,
    k_pos: np.ndarray,
    biases: List[HeadBias],
    keep: Optional[np.ndarray] = None,
    gqa_group: int = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Multi-pass attention returning (output, probabilities).

    Shapes: q (b, h, sq, dh); k, v (b, kvh, n, dh); output (b, h, sq, dh);
    probabilities (b, h, sq, n).
    """
    b, h, sq, dh = q.shape
    kx = expand_kv(k, gqa_group)
    vx = expand_kv(v, gqa_group)
    scores = q @ np.transpose(kx, (0, 1, 3, 2))
    scores *= 1.0 / float(np.sqrt(dh))  # python float: no f64 promotion
    for hi, bias in enumerate(biases):
        bm = bias.matrix(q_pos, k_pos)
        if bm.any():
            scores[:, hi] += bm
    mask = build_score_mask(q_pos, k_pos, keep)
    if mask.shape[1] not in (1, h):
        mask = np.repeat(mask, gqa_group, axis=1)
    scores += mask
    probs = softmax_inplace(scores, axis=-1)
    out = probs @ vx
    return out, probs


def flash_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    q_pos: np.ndarray,
    k_pos: np.ndarray,
    biases: List[HeadBias],
    keep: Optional[np.ndarray] = None,
    gqa_group: int = 1,
    tile: int = 128,
) -> np.ndarray:
    """One-pass streaming-softmax attention (no probabilities returned).

    Numerically equivalent to :func:`naive_attention` output; processes
    keys in tiles of ``tile`` with the online softmax recurrence.
    """
    b, h, sq, dh = q.shape
    kx = expand_kv(k, gqa_group)
    vx = expand_kv(v, gqa_group)
    n = kx.shape[2]

    m = np.full((b, h, sq, 1), -np.inf)
    l = np.zeros((b, h, sq, 1))
    acc = np.zeros((b, h, sq, dh))

    full_mask = build_score_mask(q_pos, k_pos, keep)
    if full_mask.shape[1] not in (1, h):
        full_mask = np.repeat(full_mask, gqa_group, axis=1)

    for start in range(0, n, tile):
        stop = min(start + tile, n)
        kt = kx[:, :, start:stop]
        vt = vx[:, :, start:stop]
        s = q @ np.transpose(kt, (0, 1, 3, 2))
        s *= 1.0 / float(np.sqrt(dh))
        for hi, bias in enumerate(biases):
            bm = bias.matrix(q_pos, k_pos[start:stop])
            if bm.any():
                s[:, hi] += bm
        s = s + full_mask[:, :, :, start:stop]

        m_new = np.maximum(m, np.max(s, axis=-1, keepdims=True))
        # guard: a fully masked tile contributes nothing
        m_safe = np.where(np.isfinite(m_new), m_new, 0.0)
        p = np.exp(s - m_safe)
        p = np.where(np.isfinite(s), p, 0.0)
        scale = np.where(np.isfinite(m), np.exp(m - m_safe), 0.0)
        l = l * scale + np.sum(p, axis=-1, keepdims=True)
        acc = acc * scale + p @ vt
        m = m_new

    l = np.where(l == 0.0, 1.0, l)
    return acc / l
