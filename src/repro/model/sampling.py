"""Token sampling for the functional model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.model.layers import softmax


@dataclass
class Sampler:
    """Sampling policy: greedy, temperature and nucleus (top-p).

    ``temperature`` scales logits before softmax (the paper compares
    length distributions at T of 0.9 / 1.0 / 1.1, Table 5); ``top_p``
    truncates to the smallest nucleus whose mass exceeds it; ``greedy``
    short-circuits to argmax (used for accuracy measurements).
    """

    temperature: float = 1.0
    top_p: float = 1.0
    greedy: bool = False
    seed: Optional[int] = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.temperature <= 0:
            raise ValueError("temperature must be positive; use greedy=True")
        if not 0 < self.top_p <= 1.0:
            raise ValueError("top_p must be in (0, 1]")
        self._rng = np.random.default_rng(self.seed)

    def reseed(self, seed: int) -> None:
        """Reset the RNG (for reproducible per-batch sampling)."""
        self._rng = np.random.default_rng(seed)

    def sample(self, logits: np.ndarray) -> np.ndarray:
        """Draw one token id per row of ``logits`` (batch, vocab)."""
        if self.greedy:
            return np.argmax(logits, axis=-1)
        probs = softmax(logits / self.temperature, axis=-1)
        if self.top_p < 1.0:
            probs = self._nucleus(probs)
        # inverse-CDF sampling, vectorized over the batch
        cdf = np.cumsum(probs, axis=-1)
        cdf /= cdf[:, -1:]
        u = self._rng.random((probs.shape[0], 1))
        return np.argmax(cdf >= u, axis=-1)

    def _nucleus(self, probs: np.ndarray) -> np.ndarray:
        order = np.argsort(-probs, axis=-1)
        sorted_p = np.take_along_axis(probs, order, axis=-1)
        csum = np.cumsum(sorted_p, axis=-1)
        # keep tokens until cumulative mass first exceeds top_p
        cutoff = csum - sorted_p >= self.top_p
        sorted_p = np.where(cutoff, 0.0, sorted_p)
        out = np.zeros_like(probs)
        np.put_along_axis(out, order, sorted_p, axis=-1)
        total = out.sum(axis=-1, keepdims=True)
        return out / np.where(total == 0, 1.0, total)
