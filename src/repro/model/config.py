"""Configuration of the functional (NumPy) transformer.

The functional model is a small decoder-only transformer whose attention
heads are constructed analytically (see :mod:`repro.model.builder`) so
that it *performs* retrieval tasks rather than emitting noise.  Its
residual stream is partitioned into four subspaces:

- ``cur``  — one-hot identity of the current token (written by embedding),
- ``prev`` — one-hot identity of the previous token (written by the
  previous-token head in layer 0),
- ``out``  — prediction accumulator read by the unembedding,
- ``scratch`` — headroom for noise heads and the MLP.

Head roles per layer are declared via :class:`HeadRole` so the builder,
tests and documentation share one vocabulary for the circuit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple


class HeadRole(enum.Enum):
    """Functional role of one attention head in the hand-built circuit."""

    PREV_TOKEN = "prev_token"   # positional head attending to i-1
    INDUCTION = "induction"     # content head matching cur_i against prev_j
    SINK = "sink"               # attends to position 0 (attention sink)
    SALIENCE = "salience"       # near-uniform attention (frequency prior)
    NOISE = "noise"             # small random head (model imperfection)


@dataclass(frozen=True)
class FunctionalModelConfig:
    """Shape + circuit parameters of the functional model.

    The defaults build a 2-layer, 4-head model over a 64-token vocabulary
    whose behaviour is a faithful miniature of the retrieval circuits in
    LLaMA-class models; ``gqa_group > 1`` yields the Mistral-style
    grouped-query variant.
    """

    vocab_size: int = 64
    n_layers: int = 2
    n_heads: int = 4
    head_dim: int = 64
    gqa_group: int = 1
    max_seq_len: int = 4096

    # circuit strengths
    induction_scale: float = 160.0  # beta: QK match logit ~ beta/sqrt(dh)
    induction_out: float = 10.0     # gamma: logit of retrieved token
    salience_out: float = 0.6       # delta: frequency-prior logit weight
    prev_bias: float = 40.0         # ALiBi-style strength of prev-token head
    sink_bias: float = 5.0          # additive score bonus at position 0
    induction_recency: float = 0.004  # slope of the induction recency bias
    noise_scale: float = 0.02       # sigma of random-head / MLP weights
    eos_bias: float = 0.0           # additive bias on the EOS logit
    mlp_ratio: int = 2              # d_ff = mlp_ratio * d_model
    embed_noise: float = 0.015      # dense noise on embedding rows
    magnitude_sigma: float = 0.2    # lognormal sigma of per-token magnitudes
    magnitude_clip: Tuple[float, float] = (0.7, 1.5)
    seed: int = 0

    @property
    def d_model(self) -> int:
        """Residual stream width: four vocab-sized subspaces."""
        return 4 * self.vocab_size

    @property
    def n_kv_heads(self) -> int:
        """Number of KV heads (``n_heads / gqa_group``)."""
        if self.n_heads % self.gqa_group:
            raise ValueError("n_heads must be divisible by gqa_group")
        return self.n_heads // self.gqa_group

    @property
    def d_ff(self) -> int:
        """MLP intermediate width."""
        return self.mlp_ratio * self.d_model

    def subspace(self, name: str) -> Tuple[int, int]:
        """(start, stop) slice bounds of a residual-stream subspace."""
        v = self.vocab_size
        spans = {
            "cur": (0, v),
            "prev": (v, 2 * v),
            "out": (2 * v, 3 * v),
            "scratch": (3 * v, 4 * v),
        }
        if name not in spans:
            raise KeyError(f"unknown subspace {name!r}")
        return spans[name]

    def head_roles(self) -> List[List[HeadRole]]:
        """Role of each head, ``[layer][head]``.

        Layer 0 hosts the previous-token head; layer 1 hosts the
        induction, salience and sink heads.  Any additional layers or
        heads are noise.  For ``n_layers > 2`` the circuit layers are the
        first and last layers with pass-through noise layers between,
        mimicking deeper models.
        """
        roles = [
            [HeadRole.NOISE] * self.n_heads for _ in range(self.n_layers)
        ]
        if self.n_layers < 2 or self.n_heads < 1:
            raise ValueError("circuit needs >= 2 layers and >= 1 head")
        roles[0][0] = HeadRole.PREV_TOKEN
        last = self.n_layers - 1
        roles[last][0] = HeadRole.SALIENCE
        if self.n_heads >= 2:
            roles[last][1] = HeadRole.INDUCTION
        if self.n_heads >= 3:
            roles[last][2] = HeadRole.SINK
        return roles


def llama_sim_config(**overrides) -> FunctionalModelConfig:
    """LLaMA-style functional model (MHA)."""
    return FunctionalModelConfig(**overrides)


def mistral_sim_config(**overrides) -> FunctionalModelConfig:
    """Mistral-style functional model (grouped-query attention)."""
    overrides.setdefault("gqa_group", 2)
    overrides.setdefault("n_heads", 4)
    return FunctionalModelConfig(**overrides)
