"""Batched autoregressive generation with pluggable KV compression."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.model.cache import PrefixCache, SessionCache
from repro.model.sampling import Sampler
from repro.model.transformer import FunctionalTransformer


@dataclass
class GenerationOutput:
    """Result of one batched generation call.

    ``sequences`` holds generated token ids per prompt (EOS excluded);
    ``prompt_lengths`` / ``response_lengths`` are per-sequence counts;
    ``hit_max`` flags sequences truncated by ``max_new_tokens``.
    """

    sequences: List[List[int]]
    prompt_lengths: np.ndarray
    response_lengths: np.ndarray
    hit_max: np.ndarray
    retained_kv_tokens: float
    reused_prefix_tokens: int = 0

    def __len__(self) -> int:
        return len(self.sequences)


def left_pad(
    prompts: Sequence[Sequence[int]], pad_id: int
) -> "tuple[np.ndarray, np.ndarray]":
    """Left-pad prompts to a rectangle; returns (tokens, seq_start)."""
    if not prompts:
        raise ValueError("prompts must be non-empty")
    lengths = np.array([len(p) for p in prompts], dtype=np.int64)
    if (lengths == 0).any():
        raise ValueError("empty prompt")
    max_len = int(lengths.max())
    tokens = np.full((len(prompts), max_len), pad_id, dtype=np.int64)
    for i, p in enumerate(prompts):
        tokens[i, max_len - len(p):] = p
    seq_start = max_len - lengths
    return tokens, seq_start


def generate(
    model: FunctionalTransformer,
    prompts: Sequence[Sequence[int]],
    compressor=None,
    sampler: Optional[Sampler] = None,
    max_new_tokens: int = 256,
    prefix_cache: Optional[PrefixCache] = None,
) -> GenerationOutput:
    """Generate continuations for ``prompts`` under ``compressor``.

    The compressor (or ``None`` for the FP16 baseline) observes and
    mutates the KV cache during both prefill and decode, exactly as the
    paper's evaluated algorithms hook into serving engines.

    With a ``prefix_cache``, a single uncompressed prompt whose prefix
    was prefilled before reuses the stored K/V and only computes the
    uncached suffix (warm prefill).  Compressed runs never reuse or
    populate the cache — mutated K/V is unshareable (paper §3.1.2) —
    and batched runs skip it because left padding misaligns positions.
    """
    tok = model.tokenizer
    tokens, seq_start = left_pad(prompts, tok.special.pad)
    batch = tokens.shape[0]
    cache = model.new_cache(batch, seq_start)
    if compressor is not None:
        compressor.begin(batch, model.config, seq_start)
    if sampler is None:
        sampler = Sampler(greedy=True)

    reused = 0
    use_prefix = prefix_cache is not None and compressor is None and batch == 1
    if use_prefix:
        match = prefix_cache.longest_match(
            prompts[0], align=model.prefill_block
        )
        if match is not None:
            reused, layer_kv = match
            for li, (k, v) in enumerate(layer_kv):
                cache[li].append(k[None], v[None])
    logits = model.prefill(tokens[:, reused:], cache, compressor)
    if use_prefix:
        # store only whole prefill blocks: a trailing partial block's
        # K/V is not bit-reproducible in a longer prompt's computation
        full = len(prompts[0]) // model.prefill_block * model.prefill_block
        if full:
            prefix_cache.put(
                prompts[0][:full],
                [(lc.k[0, :, :full], lc.v[0, :, :full]) for lc in cache.layers],
            )
    sequences: List[List[int]] = [[] for _ in range(batch)]
    done = np.zeros(batch, dtype=bool)
    hit_max = np.zeros(batch, dtype=bool)
    eos = tok.special.eos

    for step in range(max_new_tokens):
        next_ids = sampler.sample(logits)
        next_ids = np.where(done, tok.special.pad, next_ids)
        newly_done = (next_ids == eos) & ~done
        for i in np.nonzero(~done & ~newly_done)[0]:
            sequences[i].append(int(next_ids[i]))
        done |= newly_done
        if done.all():
            break
        if step == max_new_tokens - 1:
            hit_max = ~done
            break
        logits = model.decode_step(next_ids, cache, compressor)

    prompt_lengths = np.array([len(p) for p in prompts], dtype=np.int64)
    response_lengths = np.array([len(s) for s in sequences], dtype=np.int64)
    return GenerationOutput(
        sequences=sequences,
        prompt_lengths=prompt_lengths,
        response_lengths=response_lengths,
        hit_max=hit_max,
        retained_kv_tokens=cache.retained_tokens(),
        reused_prefix_tokens=reused,
    )
