"""Primitive layers of the functional transformer (pure NumPy)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Root-mean-square LayerNorm (LLaMA-style, no mean subtraction)."""
    rms = np.sqrt(np.mean(np.square(x), axis=-1, keepdims=True) + eps)
    return x / rms * weight


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU activation ``x * sigmoid(x)``."""
    return x / (1.0 + np.exp(-x))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    m = np.max(x, axis=axis, keepdims=True)
    e = np.exp(x - m)
    return e / np.sum(e, axis=axis, keepdims=True)


def softmax_inplace(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Softmax that reuses ``x``'s buffer (hot path; destroys input)."""
    m = np.max(x, axis=axis, keepdims=True)
    x -= m
    np.exp(x, out=x)
    x /= np.sum(x, axis=axis, keepdims=True)
    return x


@dataclass
class MLPWeights:
    """SwiGLU MLP weights: ``down(silu(gate(x)) * up(x))``."""

    w_gate: np.ndarray  # (d_model, d_ff)
    w_up: np.ndarray    # (d_model, d_ff)
    w_down: np.ndarray  # (d_ff, d_model)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the MLP to ``x`` of shape (..., d_model)."""
        return (silu(x @ self.w_gate) * (x @ self.w_up)) @ self.w_down


@dataclass
class AttentionWeights:
    """Projection weights of one attention layer.

    Shapes follow the GQA convention: ``w_q`` produces ``n_heads``
    head-slices while ``w_k``/``w_v`` produce ``n_kv_heads`` slices.
    """

    w_q: np.ndarray  # (d_model, n_heads * head_dim)
    w_k: np.ndarray  # (d_model, n_kv_heads * head_dim)
    w_v: np.ndarray  # (d_model, n_kv_heads * head_dim)
    w_o: np.ndarray  # (n_heads * head_dim, d_model)

    def project_qkv(
        self, x: np.ndarray, n_heads: int, n_kv_heads: int, head_dim: int
    ):
        """Project hidden states to per-head Q, K, V.

        ``x`` is (batch, seq, d_model); returns Q (b, h, s, dh) and
        K, V (b, kvh, s, dh).
        """
        b, s, _ = x.shape
        q = (x @ self.w_q).reshape(b, s, n_heads, head_dim)
        k = (x @ self.w_k).reshape(b, s, n_kv_heads, head_dim)
        v = (x @ self.w_v).reshape(b, s, n_kv_heads, head_dim)
        return (
            np.transpose(q, (0, 2, 1, 3)),
            np.transpose(k, (0, 2, 1, 3)),
            np.transpose(v, (0, 2, 1, 3)),
        )

    def project_out(self, per_head: np.ndarray) -> np.ndarray:
        """Merge per-head outputs (b, h, s, dh) back to (b, s, d_model)."""
        b, h, s, dh = per_head.shape
        merged = np.transpose(per_head, (0, 2, 1, 3)).reshape(b, s, h * dh)
        return merged @ self.w_o


@dataclass
class LayerWeights:
    """All weights of one decoder layer."""

    attn: AttentionWeights
    mlp: MLPWeights
    norm_attn: Optional[np.ndarray] = None  # None => norm-free circuit model
    norm_mlp: Optional[np.ndarray] = None


@dataclass
class ModelWeights:
    """All weights of the functional model."""

    embedding: np.ndarray   # (vocab, d_model)
    layers: list            # List[LayerWeights]
    unembedding: np.ndarray  # (d_model, vocab)
    logit_bias: np.ndarray   # (vocab,)
