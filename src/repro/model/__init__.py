"""Functional NumPy transformer with constructed retrieval circuits.

This package provides the model substrate the accuracy/length studies
run on: a decoder-only transformer whose heads are built analytically
(previous-token + induction circuit) so KV-cache compression genuinely
changes its outputs, plus architecture shape presets of the real models
(LLaMA/Mistral families) consumed by the analytical cost model.
"""

from repro.model.arch import (
    ArchSpec,
    LLAMA_7B,
    LLAMA_13B,
    LLAMA_70B,
    LLAMA31_8B,
    MISTRAL_7B,
    get_arch,
    list_archs,
)
from repro.model.config import (
    FunctionalModelConfig,
    HeadRole,
    llama_sim_config,
    mistral_sim_config,
)
from repro.model.tokenizer import SyntheticTokenizer, SpecialTokens
from repro.model.builder import build_weights, head_biases
from repro.model.cache import LayerCache, SessionCache
from repro.model.transformer import (
    FunctionalTransformer,
    FlashIncompatibilityError,
)
from repro.model.sampling import Sampler
from repro.model.generate import GenerationOutput, generate, left_pad

__all__ = [
    "ArchSpec",
    "LLAMA_7B",
    "LLAMA_13B",
    "LLAMA_70B",
    "LLAMA31_8B",
    "MISTRAL_7B",
    "get_arch",
    "list_archs",
    "FunctionalModelConfig",
    "HeadRole",
    "llama_sim_config",
    "mistral_sim_config",
    "SyntheticTokenizer",
    "SpecialTokens",
    "build_weights",
    "head_biases",
    "LayerCache",
    "SessionCache",
    "FunctionalTransformer",
    "FlashIncompatibilityError",
    "Sampler",
    "GenerationOutput",
    "generate",
    "left_pad",
]
