"""Synthetic vocabulary and tokenizer for the functional model.

The functional transformer (see :mod:`repro.model.builder`) operates on a
small closed vocabulary.  Special tokens mirror the roles they play in
real chat LLMs: ``BOS``/``EOS`` delimit sequences, ``SEP`` terminates an
answer span (the unembedding maps a retrieved ``SEP`` onto ``EOS``, which
is how generation stops), ``Q``/``A`` mark question/answer structure, and
the remaining ids are content tokens from which datasets build documents,
key/value records and code-like lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence


@dataclass(frozen=True)
class SpecialTokens:
    """Ids of the special tokens in the synthetic vocabulary."""

    pad: int = 0
    bos: int = 1
    eos: int = 2
    sep: int = 3
    q: int = 4
    a: int = 5
    nl: int = 6
    fn: int = 7


class SyntheticTokenizer:
    """Closed-vocabulary tokenizer for the functional model.

    Parameters
    ----------
    vocab_size:
        Total vocabulary size; ids ``>= content_start`` are content tokens.
    """

    def __init__(self, vocab_size: int = 64) -> None:
        if vocab_size < 16:
            raise ValueError("vocab_size must be at least 16")
        self.vocab_size = vocab_size
        self.special = SpecialTokens()
        self.content_start = 8
        self._names: Dict[int, str] = {
            self.special.pad: "<pad>",
            self.special.bos: "<bos>",
            self.special.eos: "<eos>",
            self.special.sep: "<sep>",
            self.special.q: "<q>",
            self.special.a: "<a>",
            self.special.nl: "<nl>",
            self.special.fn: "<fn>",
        }
        for i in range(self.content_start, vocab_size):
            self._names[i] = f"w{i}"
        self._ids = {v: k for k, v in self._names.items()}

    @property
    def content_ids(self) -> List[int]:
        """All content-token ids."""
        return list(range(self.content_start, self.vocab_size))

    @property
    def n_content(self) -> int:
        """Number of content tokens."""
        return self.vocab_size - self.content_start

    def name(self, token_id: int) -> str:
        """Symbolic name of ``token_id``."""
        return self._names[int(token_id)]

    def id(self, name: str) -> int:
        """Token id of symbolic ``name``."""
        return self._ids[name]

    def decode(self, ids: Iterable[int]) -> str:
        """Space-joined symbolic rendering of an id sequence."""
        return " ".join(self.name(i) for i in ids)

    def encode(self, text: str) -> List[int]:
        """Inverse of :meth:`decode` for symbolic text."""
        out = []
        for tok in text.split():
            if tok not in self._ids:
                raise KeyError(f"unknown token {tok!r}")
            out.append(self._ids[tok])
        return out

    def validate(self, ids: Sequence[int]) -> None:
        """Raise if any id is outside the vocabulary."""
        for i in ids:
            if not 0 <= int(i) < self.vocab_size:
                raise ValueError(f"token id {i} outside vocab of {self.vocab_size}")
