"""Runtime KV cache of the functional model.

The cache stores K/V per layer with a per-(sequence, kv-head) boolean
``keep`` mask so sparsity-based compressors can evict entries, plus a
``quantized_until`` watermark so quantization-based compressors can age
tokens out of the full-precision residual window exactly once.

Batched generation uses *left padding*: all sequences are right-aligned,
so one global position axis serves the whole batch and window/recency
cutoffs are uniform.  ``seq_start[b]`` records where sequence ``b``'s
real tokens begin (everything before it is permanently masked padding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np


class LayerCache:
    """K/V storage for one decoder layer.

    Arrays are (batch, n_kv_heads, capacity, head_dim); ``length`` is the
    number of valid positions (shared across the batch thanks to left
    padding).
    """

    def __init__(
        self,
        batch: int,
        n_kv_heads: int,
        head_dim: int,
        seq_start: np.ndarray,
        capacity: int = 64,
    ) -> None:
        self.batch = batch
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.seq_start = seq_start.astype(np.int64)
        self.length = 0
        self.quantized_until = 0
        self._k = np.zeros((batch, n_kv_heads, capacity, head_dim), dtype=np.float32)
        self._v = np.zeros((batch, n_kv_heads, capacity, head_dim), dtype=np.float32)
        self._keep = np.zeros((batch, n_kv_heads, capacity), dtype=bool)

    @property
    def capacity(self) -> int:
        """Allocated positions."""
        return self._k.shape[2]

    def _grow(self, needed: int) -> None:
        cap = self.capacity
        if needed <= cap:
            return
        new_cap = max(needed, 2 * cap)
        for name in ("_k", "_v"):
            old = getattr(self, name)
            new = np.zeros(
                (self.batch, self.n_kv_heads, new_cap, self.head_dim),
                dtype=np.float32,
            )
            new[:, :, :cap] = old
            setattr(self, name, new)
        keep = np.zeros((self.batch, self.n_kv_heads, new_cap), dtype=bool)
        keep[:, :, :cap] = self._keep
        self._keep = keep

    def append(self, k_new: np.ndarray, v_new: np.ndarray) -> None:
        """Append (batch, kv_heads, s, head_dim) keys/values."""
        s = k_new.shape[2]
        self._grow(self.length + s)
        sl = slice(self.length, self.length + s)
        self._k[:, :, sl] = k_new
        self._v[:, :, sl] = v_new
        pos = np.arange(self.length, self.length + s)
        real = pos[None, :] >= self.seq_start[:, None]
        self._keep[:, :, sl] = real[:, None, :]
        self.length += s

    @property
    def k(self) -> np.ndarray:
        """Valid keys (batch, kv_heads, length, head_dim) — a view."""
        return self._k[:, :, : self.length]

    @property
    def v(self) -> np.ndarray:
        """Valid values — a view."""
        return self._v[:, :, : self.length]

    @property
    def keep(self) -> np.ndarray:
        """Valid keep mask (batch, kv_heads, length) — a view."""
        return self._keep[:, :, : self.length]

    @property
    def positions(self) -> np.ndarray:
        """Global positions 0..length-1."""
        return np.arange(self.length)

    def retained_counts(self) -> np.ndarray:
        """Number of retained entries per (batch, kv_head)."""
        return self.keep.sum(axis=2)

    def evict(self, batch_idx, head_idx, pos_idx) -> None:
        """Mark entries as evicted (advanced-indexing triples)."""
        self._keep[batch_idx, head_idx, pos_idx] = False

    def overwrite(
        self, positions: slice, k: np.ndarray, v: np.ndarray
    ) -> None:
        """Replace stored K/V in a position range (quantization write-back)."""
        self._k[:, :, positions] = k
        self._v[:, :, positions] = v


class SessionCache:
    """Per-layer caches for one generation session."""

    def __init__(
        self,
        n_layers: int,
        batch: int,
        n_kv_heads: int,
        head_dim: int,
        seq_start: np.ndarray,
    ) -> None:
        self.layers: List[LayerCache] = [
            LayerCache(batch, n_kv_heads, head_dim, seq_start)
            for _ in range(n_layers)
        ]
        self.seq_start = seq_start

    def __getitem__(self, idx: int) -> LayerCache:
        return self.layers[idx]

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def length(self) -> int:
        """Current sequence length (uniform across layers)."""
        return self.layers[0].length

    def retained_tokens(self) -> float:
        """Mean retained entries per (sequence, kv head) across layers."""
        return float(
            np.mean([lc.retained_counts().mean() for lc in self.layers])
        )
