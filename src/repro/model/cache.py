"""Runtime KV cache of the functional model.

The cache stores K/V per layer with a per-(sequence, kv-head) boolean
``keep`` mask so sparsity-based compressors can evict entries, plus a
``quantized_until`` watermark so quantization-based compressors can age
tokens out of the full-precision residual window exactly once.

Batched generation uses *left padding*: all sequences are right-aligned,
so one global position axis serves the whole batch and window/recency
cutoffs are uniform.  ``seq_start[b]`` records where sequence ``b``'s
real tokens begin (everything before it is permanently masked padding).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


class LayerCache:
    """K/V storage for one decoder layer.

    Arrays are (batch, n_kv_heads, capacity, head_dim); ``length`` is the
    number of valid positions (shared across the batch thanks to left
    padding).
    """

    def __init__(
        self,
        batch: int,
        n_kv_heads: int,
        head_dim: int,
        seq_start: np.ndarray,
        capacity: int = 64,
    ) -> None:
        self.batch = batch
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.seq_start = seq_start.astype(np.int64)
        self.length = 0
        self.quantized_until = 0
        self._k = np.zeros((batch, n_kv_heads, capacity, head_dim), dtype=np.float32)
        self._v = np.zeros((batch, n_kv_heads, capacity, head_dim), dtype=np.float32)
        self._keep = np.zeros((batch, n_kv_heads, capacity), dtype=bool)

    @property
    def capacity(self) -> int:
        """Allocated positions."""
        return self._k.shape[2]

    def _grow(self, needed: int) -> None:
        cap = self.capacity
        if needed <= cap:
            return
        new_cap = max(needed, 2 * cap)
        for name in ("_k", "_v"):
            old = getattr(self, name)
            new = np.zeros(
                (self.batch, self.n_kv_heads, new_cap, self.head_dim),
                dtype=np.float32,
            )
            new[:, :, :cap] = old
            setattr(self, name, new)
        keep = np.zeros((self.batch, self.n_kv_heads, new_cap), dtype=bool)
        keep[:, :, :cap] = self._keep
        self._keep = keep

    def append(self, k_new: np.ndarray, v_new: np.ndarray) -> None:
        """Append (batch, kv_heads, s, head_dim) keys/values."""
        s = k_new.shape[2]
        self._grow(self.length + s)
        sl = slice(self.length, self.length + s)
        self._k[:, :, sl] = k_new
        self._v[:, :, sl] = v_new
        pos = np.arange(self.length, self.length + s)
        real = pos[None, :] >= self.seq_start[:, None]
        self._keep[:, :, sl] = real[:, None, :]
        self.length += s

    @property
    def k(self) -> np.ndarray:
        """Valid keys (batch, kv_heads, length, head_dim) — a view."""
        return self._k[:, :, : self.length]

    @property
    def v(self) -> np.ndarray:
        """Valid values — a view."""
        return self._v[:, :, : self.length]

    @property
    def keep(self) -> np.ndarray:
        """Valid keep mask (batch, kv_heads, length) — a view."""
        return self._keep[:, :, : self.length]

    @property
    def positions(self) -> np.ndarray:
        """Global positions 0..length-1."""
        return np.arange(self.length)

    def retained_counts(self) -> np.ndarray:
        """Number of retained entries per (batch, kv_head)."""
        return self.keep.sum(axis=2)

    def evict(self, batch_idx, head_idx, pos_idx) -> None:
        """Mark entries as evicted (advanced-indexing triples)."""
        self._keep[batch_idx, head_idx, pos_idx] = False

    def overwrite(
        self, positions: slice, k: np.ndarray, v: np.ndarray
    ) -> None:
        """Replace stored K/V in a position range (quantization write-back)."""
        self._k[:, :, positions] = k
        self._v[:, :, positions] = v


class SessionCache:
    """Per-layer caches for one generation session."""

    def __init__(
        self,
        n_layers: int,
        batch: int,
        n_kv_heads: int,
        head_dim: int,
        seq_start: np.ndarray,
    ) -> None:
        self.layers: List[LayerCache] = [
            LayerCache(batch, n_kv_heads, head_dim, seq_start)
            for _ in range(n_layers)
        ]
        self.seq_start = seq_start

    def __getitem__(self, idx: int) -> LayerCache:
        return self.layers[idx]

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def length(self) -> int:
        """Current sequence length (uniform across layers)."""
        return self.layers[0].length

    def retained_tokens(self) -> float:
        """Mean retained entries per (sequence, kv head) across layers."""
        return float(
            np.mean([lc.retained_counts().mean() for lc in self.layers])
        )


class PrefixCache:
    """Cross-request store of prompt K/V for warm-prefill reuse.

    Entries are keyed by the exact prompt token tuple and hold per-layer
    ``(k, v)`` snapshots of shape ``(n_kv_heads, len, head_dim)``.  A new
    prompt can adopt the longest stored entry that is a prefix of it, so
    a warm FP16 prefill only computes the uncached suffix.  Reuse is
    capped at ``len(prompt) - 1``: at least one token is always computed
    so prefill has logits to return.

    Only uncompressed (FP16, no-eviction) caches may be stored — a
    compressed cache's K/V no longer equals what a cold prefill would
    produce, the same shareability friction :class:`~repro.kvcache.paged.
    PagedStore` models at the block level.  Eviction is LRU over
    ``max_entries``.
    """

    def __init__(self, max_entries: int = 32) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple[int, ...], List[Tuple[np.ndarray, np.ndarray]]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.reused_tokens = 0

    def __len__(self) -> int:
        return len(self._entries)

    def put(
        self,
        prompt: Sequence[int],
        layers: List[Tuple[np.ndarray, np.ndarray]],
    ) -> None:
        """Store per-layer ``(k, v)`` snapshots for ``prompt``.

        Arrays are copied: callers typically pass views into a live
        :class:`SessionCache` whose buffers keep mutating during decode.
        """
        key = tuple(int(t) for t in prompt)
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        self._entries[key] = [(np.array(k), np.array(v)) for k, v in layers]
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def longest_match(
        self, prompt: Sequence[int], align: int = 1
    ) -> Optional[Tuple[int, List[Tuple[np.ndarray, np.ndarray]]]]:
        """Longest usable cached prefix of ``prompt``.

        Returns ``(matched_len, per_layer_kv)`` with arrays trimmed to
        ``matched_len`` positions, or ``None`` on a miss.  ``align``
        rounds the match down to a multiple (the model's prefill block:
        bit-exact resume requires a block-aligned boundary).  Counts
        hit / miss / reused-token statistics and refreshes LRU order.
        """
        ids = tuple(int(t) for t in prompt)
        best_key: Optional[Tuple[int, ...]] = None
        best_len = 0
        for key in self._entries:
            usable = min(len(key), len(ids) - 1) // align * align
            if usable > best_len and key[:usable] == ids[:usable]:
                best_key, best_len = key, usable
        if best_key is None:
            self.misses += 1
            return None
        self._entries.move_to_end(best_key)
        self.hits += 1
        self.reused_tokens += best_len
        layers = [
            (k[:, :best_len], v[:, :best_len])
            for k, v in self._entries[best_key]
        ]
        return best_len, layers
