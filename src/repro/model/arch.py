"""Architecture descriptions of the LLMs the paper benchmarks.

:class:`ArchSpec` is a pure shape description shared by the analytical
cost model (:mod:`repro.engines`) and the memory model
(:mod:`repro.hardware.memory`).  The presets match the published
configurations of the model families used in the paper's evaluation
(LLaMA-2 7B/13B/70B, LLaMA-3.1-8B, Mistral-7B).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ArchSpec:
    """Transformer decoder shape parameters.

    Attributes
    ----------
    name: model family/size label.
    n_layers: number of decoder layers.
    d_model: hidden size.
    n_heads: query heads.
    n_kv_heads: key/value heads (``< n_heads`` for GQA models).
    head_dim: per-head dimension.
    d_ff: MLP intermediate size (SwiGLU: three ``d_model x d_ff`` mats).
    vocab_size: vocabulary size.
    dtype_bytes: bytes per weight/activation element (2 for FP16).
    """

    name: str
    n_layers: int
    d_model: int
    n_heads: int
    n_kv_heads: int
    head_dim: int
    d_ff: int
    vocab_size: int
    dtype_bytes: int = 2

    @property
    def kv_dim(self) -> int:
        """Width of the concatenated K (or V) projection output."""
        return self.n_kv_heads * self.head_dim

    @property
    def q_dim(self) -> int:
        """Width of the Q projection output."""
        return self.n_heads * self.head_dim

    @property
    def gqa_group(self) -> int:
        """Query heads per KV head."""
        return self.n_heads // self.n_kv_heads

    def param_count(self) -> int:
        """Approximate parameter count (attention + MLP + embeddings)."""
        attn = self.d_model * (self.q_dim + 2 * self.kv_dim) + self.q_dim * self.d_model
        mlp = 3 * self.d_model * self.d_ff
        norms = 2 * self.d_model
        per_layer = attn + mlp + norms
        embed = self.vocab_size * self.d_model
        return self.n_layers * per_layer + 2 * embed

    def weight_bytes(self) -> int:
        """Total weight storage in bytes."""
        return self.param_count() * self.dtype_bytes

    def kv_bytes_per_token(self) -> int:
        """FP16 KV-cache bytes per token across all layers (K and V)."""
        return 2 * self.n_layers * self.kv_dim * self.dtype_bytes

    def kv_bytes_per_token_per_layer(self) -> int:
        """FP16 KV-cache bytes per token for one layer (K and V)."""
        return 2 * self.kv_dim * self.dtype_bytes


LLAMA_7B = ArchSpec(
    name="llama-7b", n_layers=32, d_model=4096, n_heads=32, n_kv_heads=32,
    head_dim=128, d_ff=11008, vocab_size=32000,
)

LLAMA_13B = ArchSpec(
    name="llama-13b", n_layers=40, d_model=5120, n_heads=40, n_kv_heads=40,
    head_dim=128, d_ff=13824, vocab_size=32000,
)

LLAMA_70B = ArchSpec(
    name="llama-70b", n_layers=80, d_model=8192, n_heads=64, n_kv_heads=8,
    head_dim=128, d_ff=28672, vocab_size=32000,
)

LLAMA31_8B = ArchSpec(
    name="llama3.1-8b", n_layers=32, d_model=4096, n_heads=32, n_kv_heads=8,
    head_dim=128, d_ff=14336, vocab_size=128256,
)

MISTRAL_7B = ArchSpec(
    name="mistral-7b", n_layers=32, d_model=4096, n_heads=32, n_kv_heads=8,
    head_dim=128, d_ff=14336, vocab_size=32000,
)

_ARCHS = {a.name: a for a in (LLAMA_7B, LLAMA_13B, LLAMA_70B, LLAMA31_8B, MISTRAL_7B)}


def get_arch(name: str) -> ArchSpec:
    """Look up an architecture preset by name."""
    if name not in _ARCHS:
        raise KeyError(f"unknown arch {name!r}; known: {sorted(_ARCHS)}")
    return _ARCHS[name]


def list_archs() -> list:
    """Names of all registered architecture presets."""
    return sorted(_ARCHS)
