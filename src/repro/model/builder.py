"""Analytic construction of the functional model's weights.

The functional model is a miniature of the retrieval circuitry found in
real LLMs (previous-token head + induction head, cf. the transformer
circuits literature).  Because the circuit is constructed rather than
trained, its behaviour is interpretable and deterministic, yet it is
implemented with the *same* tensors a real model would cache — so KV
quantization perturbs genuine attention logits and KV eviction removes
genuinely needed keys.

Circuit summary (default 2-layer config):

- layer 0, head 0 (``PREV_TOKEN``): attends to position ``i-1`` via a
  sharp ALiBi-style bias and copies the previous token's one-hot identity
  into the ``prev`` subspace of the residual stream.
- layer 1, head 1 (``INDUCTION``): queries with the current token's
  identity against the ``prev`` subspace, thereby attending to tokens
  *following earlier occurrences* of the current token, and copies the
  attended token's identity into the ``out`` subspace with gain ``gamma``.
- layer 1, head 0 (``SALIENCE``): near-uniform attention that adds a
  frequency prior over the context to ``out`` with small gain ``delta``.
- layer 1, head 2 (``SINK``): attends to position 0, reproducing the
  attention-sink phenomenon StreamingLLM exploits.
- remaining heads and the SwiGLU MLPs carry small random weights
  (``noise_scale``) standing in for everything a real model does besides
  this circuit.

The unembedding reads ``out`` and additionally routes a retrieved ``SEP``
onto ``EOS``; generation therefore stops exactly when the circuit
retrieves the end of an answer span — and *fails to stop* when
compression degrades that retrieval, which is the mechanism behind the
paper's length-inflation observation (Section 4.3).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.model.attention import HeadBias
from repro.model.config import FunctionalModelConfig, HeadRole
from repro.model.layers import (
    AttentionWeights,
    LayerWeights,
    MLPWeights,
    ModelWeights,
)
from repro.model.tokenizer import SyntheticTokenizer

def token_magnitudes(config: FunctionalModelConfig) -> np.ndarray:
    """Per-token embedding magnitudes.

    Content tokens carry log-normally distributed magnitudes (clipped to
    ``magnitude_clip``); special tokens stay at exactly 1.  The spread
    creates the weak-key / outlier structure that makes group
    quantization genuinely lossy: a group's quantization step is set by
    its largest-magnitude token, so weak keys — whose retrieval margin
    is already marginal against the softmax noise floor of a long
    context — suffer the largest *relative* perturbation.  This is the
    mechanism by which per-sample accuracy collapses under quantization
    (the paper's negative samples) while average accuracy stays high.
    """
    rng = np.random.default_rng(config.seed + 1)
    tok = SyntheticTokenizer(config.vocab_size)
    m = np.exp(rng.normal(0.0, config.magnitude_sigma, size=config.vocab_size))
    lo, hi = config.magnitude_clip
    m = np.clip(m, lo, hi)
    m[: tok.content_start] = 1.0
    return m


def code_matrix(config: FunctionalModelConfig) -> np.ndarray:
    """Dense orthonormal token codes (vocab, vocab).

    Token identities are represented by rows of a random rotation rather
    than one-hot vectors.  Orthonormality preserves the circuit's exact
    matching semantics, while density makes the cached K/V tensors look
    like real activations: no entry coincides with a quantization-group
    extremum, so round-to-nearest quantization perturbs *every*
    retrieval — the property the negative-sample study depends on.
    """
    rng = np.random.default_rng(config.seed + 2)
    v = config.vocab_size
    q, r = np.linalg.qr(rng.normal(size=(v, v)))
    return q * np.sign(np.diag(r))


def _reader(config: FunctionalModelConfig, subspace: str) -> np.ndarray:
    """(d_model, head_dim) matrix extracting a vocab-sized subspace."""
    d, v, dh = config.d_model, config.vocab_size, config.head_dim
    if dh != v:
        raise ValueError("circuit construction requires head_dim == vocab_size")
    start, stop = config.subspace(subspace)
    m = np.zeros((d, dh))
    m[start:stop, :] = np.eye(v)
    return m


def _writer(config: FunctionalModelConfig, subspace: str) -> np.ndarray:
    """(head_dim, d_model) matrix injecting into a vocab-sized subspace."""
    d, v, dh = config.d_model, config.vocab_size, config.head_dim
    start, stop = config.subspace(subspace)
    m = np.zeros((dh, d))
    m[:, start:stop] = np.eye(v)
    return m


def _noise(rng: np.random.Generator, shape, scale: float) -> np.ndarray:
    return rng.normal(0.0, scale, size=shape)


def _kv_group_roles(
    roles: List[HeadRole], gqa_group: int
) -> List[List[HeadRole]]:
    """Roles of the query heads served by each KV head."""
    return [
        roles[g * gqa_group : (g + 1) * gqa_group]
        for g in range(len(roles) // gqa_group)
    ]


def build_weights(config: FunctionalModelConfig) -> ModelWeights:
    """Construct all weights for ``config``."""
    rng = np.random.default_rng(config.seed)
    d, v, dh = config.d_model, config.vocab_size, config.head_dim
    h, kvh, g = config.n_heads, config.n_kv_heads, config.gqa_group
    roles = config.head_roles()
    ns = config.noise_scale

    cur_start, _ = config.subspace("cur")
    magnitudes = token_magnitudes(config)
    codes = code_matrix(config)
    embedding = _noise(rng, (v, d), config.embed_noise)
    embedding[:, cur_start : cur_start + v] += magnitudes[:, None] * codes

    layers = []
    for li in range(config.n_layers):
        w_q = np.zeros((d, h * dh))
        w_k = np.zeros((d, kvh * dh))
        w_v = np.zeros((d, kvh * dh))
        w_o = np.zeros((h * dh, d))

        for kv_idx, group_roles in enumerate(_kv_group_roles(roles[li], g)):
            ks = slice(kv_idx * dh, (kv_idx + 1) * dh)
            if HeadRole.INDUCTION in group_roles:
                w_k[:, ks] = _reader(config, "prev")
            else:
                w_k[:, ks] = _noise(rng, (d, dh), ns)
            wants_cur_v = any(
                r in (HeadRole.INDUCTION, HeadRole.SALIENCE, HeadRole.PREV_TOKEN)
                for r in group_roles
            )
            if wants_cur_v:
                w_v[:, ks] = _reader(config, "cur")
            else:
                w_v[:, ks] = _noise(rng, (d, dh), ns)

        for hi, role in enumerate(roles[li]):
            qs = slice(hi * dh, (hi + 1) * dh)
            if role == HeadRole.INDUCTION:
                w_q[:, qs] = config.induction_scale * _reader(config, "cur")
                w_o[qs, :] = config.induction_out * _writer(config, "out")
            elif role == HeadRole.PREV_TOKEN:
                w_q[:, qs] = 0.0
                w_o[qs, :] = _writer(config, "prev")
            elif role == HeadRole.SALIENCE:
                w_q[:, qs] = 0.0
                w_o[qs, :] = config.salience_out * _writer(config, "out")
            else:  # SINK and NOISE heads perturb, not compute
                w_q[:, qs] = _noise(rng, (d, dh), ns)
                w_o[qs, :] = _noise(rng, (dh, d), ns * 0.5)

        mlp = MLPWeights(
            w_gate=_noise(rng, (d, config.d_ff), ns / np.sqrt(d)),
            w_up=_noise(rng, (d, config.d_ff), ns / np.sqrt(d)),
            w_down=_noise(rng, (config.d_ff, d), ns / np.sqrt(config.d_ff)),
        )
        layers.append(
            LayerWeights(
                attn=AttentionWeights(w_q=w_q, w_k=w_k, w_v=w_v, w_o=w_o),
                mlp=mlp,
            )
        )

    tok = SyntheticTokenizer(v)
    out_start, _ = config.subspace("out")
    unembedding = np.zeros((d, v))
    # decode the dense code basis, normalized by token magnitude so the
    # output confidence reflects attention quality alone:
    # logit_t = <code_t, out> / m_t
    unembedding[out_start : out_start + v, :] = (codes / magnitudes[:, None]).T
    # retrieved SEP terminates generation: route it onto EOS
    sep, eos = tok.special.sep, tok.special.eos
    unembedding[:, eos] += unembedding[:, sep]
    unembedding[:, sep] = 0.0
    # never emit padding/bos/structure tokens directly
    logit_bias = _noise(rng, (v,), 0.05)
    logit_bias[tok.special.eos] += config.eos_bias
    for tid in (tok.special.pad, tok.special.bos):
        logit_bias[tid] = -1e9

    # float32 throughout: halves memory traffic in the NumPy hot path
    for lw in layers:
        for obj, names in ((lw.attn, ("w_q", "w_k", "w_v", "w_o")),
                           (lw.mlp, ("w_gate", "w_up", "w_down"))):
            for nm in names:
                setattr(obj, nm, getattr(obj, nm).astype(np.float32))
    return ModelWeights(
        embedding=embedding.astype(np.float32),
        layers=layers,
        unembedding=unembedding.astype(np.float32),
        logit_bias=logit_bias.astype(np.float32),
    )


def head_biases(config: FunctionalModelConfig) -> List[List[HeadBias]]:
    """Per-layer, per-head additive attention biases for the circuit."""
    return [
        [
            HeadBias.for_role(
                role,
                config.prev_bias,
                config.sink_bias,
                config.induction_recency,
            )
            for role in layer_roles
        ]
        for layer_roles in config.head_roles()
    ]
