"""Q-Hitter-style hybrid: quantization + heavy-hitter sparsity.

Q-Hitter (Zhang et al., 2024e, Table 1 of the paper) keeps tokens that
are *both* important (heavy hitters) and quantization-friendly, storing
the retained set in low precision.  This implementation composes the
repository's own primitives: an H2O-style accumulated-attention
eviction policy over a KIVI-style quantized store — the paper's "Q + S"
row.  It demonstrates that the :class:`Compressor` interface composes.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressionCostSpec, Compressor
from repro.compression.quant.kivi import KIVICompressor
from repro.compression.sparse.h2o import H2OCompressor
from repro.hardware.roofline import AccessPattern
from repro.model.cache import LayerCache


class QHitterCompressor(Compressor):
    """Quantized heavy-hitter cache (sparse eviction + low-bit storage)."""

    needs_probs = True  # the sparse half needs attention scores

    def __init__(
        self,
        bits: int = 4,
        hh_size: int = 64,
        recent_size: int = 448,
        group_size: int = 32,
        residual: int = 128,
    ) -> None:
        self._quant = KIVICompressor(
            bits=bits, group_size=group_size, residual=residual
        )
        self._sparse = H2OCompressor(
            hh_size=hh_size, recent_size=recent_size
        )
        self.bits = bits

    @property
    def name(self) -> str:
        return f"qhitter-{self.bits}-{self._sparse.budget}"

    @property
    def budget(self) -> int:
        """Retained tokens per sequence."""
        return self._sparse.budget

    def begin(self, batch, config, seq_start) -> None:
        super().begin(batch, config, seq_start)
        self._quant.begin(batch, config, seq_start)
        self._sparse.begin(batch, config, seq_start)

    def observe(self, layer, probs, q_pos, k_pos, cache) -> None:
        self._sparse.observe(layer, probs, q_pos, k_pos, cache)

    def compress(self, layer: int, cache: LayerCache, phase: str) -> None:
        self._sparse.compress(layer, cache, phase)
        self._quant.compress(layer, cache, phase)

    def cost_spec(self) -> CompressionCostSpec:
        q = self._quant.cost_spec()
        s = self._sparse.cost_spec()
        return CompressionCostSpec(
            name=self.name,
            kv_bytes_ratio=q.kv_bytes_ratio,
            residual_fp16_tokens=q.residual_fp16_tokens,
            sparse_budget=s.sparse_budget,
            kv_access=AccessPattern.SPARSE_GATHER,
            extra_kv_segments=q.extra_kv_segments,
            dequant_flops_per_element=q.dequant_flops_per_element,
            prefill_score_passes=s.prefill_score_passes,
            decode_score_pass=s.decode_score_pass,
            prefill_quant_flops_per_element=q.prefill_quant_flops_per_element,
            evict_overhead_launches=s.evict_overhead_launches + 1,
        )
