"""Name-based construction of compression algorithms.

The experiment harness refers to algorithms by the labels the paper uses
("kivi-4", "gear-4", "h2o-512", "stream-512", "snapkv-512", "fp16");
this registry turns those labels into configured compressor objects.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.compression.base import Compressor, NoCompression
from repro.compression.quant.gear import GEARCompressor
from repro.compression.quant.kivi import KIVICompressor
from repro.compression.hybrid import QHitterCompressor
from repro.compression.quant.kvquant import KVQuantCompressor
from repro.compression.sparse.h2o import H2OCompressor
from repro.compression.sparse.pyramidkv import PyramidKVCompressor
from repro.compression.sparse.snapkv import SnapKVCompressor
from repro.compression.sparse.streaming import StreamingLLMCompressor
from repro.compression.sparse.tova import TOVACompressor

_FACTORIES: Dict[str, Callable[..., Compressor]] = {}


def register(prefix: str, factory: Callable[..., Compressor]) -> None:
    """Register a factory for names of the form ``prefix`` or ``prefix-N``."""
    _FACTORIES[prefix] = factory


def _split(name: str):
    parts = name.lower().split("-")
    prefix = parts[0]
    arg = int(parts[1]) if len(parts) > 1 else None
    return prefix, arg


def create(name: str) -> Compressor:
    """Instantiate an algorithm from its paper-style label.

    Numeric suffixes mean *bits* for quantizers (``kivi-2``) and *total
    cache budget* for sparse methods (``stream-1024`` keeps 64 sink +
    960 recent; ``h2o-1024`` keeps 64 heavy hitters + 960 recent).
    """
    prefix, arg = _split(name)
    if prefix not in _FACTORIES:
        raise KeyError(f"unknown algorithm {name!r}; known: {available()}")
    return _FACTORIES[prefix](arg)


def available() -> List[str]:
    """Registered algorithm prefixes."""
    return sorted(_FACTORIES)


def _make_fp16(arg) -> Compressor:
    return NoCompression()


def _make_kivi(arg) -> Compressor:
    return KIVICompressor(bits=arg if arg else 4)


def _make_gear(arg) -> Compressor:
    return GEARCompressor(bits=arg if arg else 4)


def _make_h2o(arg) -> Compressor:
    budget = arg if arg else 512
    return H2OCompressor(hh_size=64, recent_size=budget - 64)


def _make_stream(arg) -> Compressor:
    budget = arg if arg else 512
    return StreamingLLMCompressor(sink_size=64, recent_size=budget - 64)


def _make_snapkv(arg) -> Compressor:
    return SnapKVCompressor(budget=arg if arg else 512)


def _make_tova(arg) -> Compressor:
    return TOVACompressor(budget=arg if arg else 512)


def _make_pyramidkv(arg) -> Compressor:
    return PyramidKVCompressor(mean_budget=arg if arg else 512)


def _make_kvquant(arg) -> Compressor:
    return KVQuantCompressor(bits=arg if arg else 4)


def _make_qhitter(arg) -> Compressor:
    return QHitterCompressor(bits=arg if arg else 4)


register("fp16", _make_fp16)
register("kivi", _make_kivi)
register("gear", _make_gear)
register("h2o", _make_h2o)
register("stream", _make_stream)
register("snapkv", _make_snapkv)
register("tova", _make_tova)
register("pyramidkv", _make_pyramidkv)
register("kvquant", _make_kvquant)
register("qhitter", _make_qhitter)

#: survey-extension algorithms beyond the paper's evaluated four
EXTENSION_ALGORITHMS = (
    "snapkv-512", "tova-512", "pyramidkv-512", "kvquant-4", "qhitter-4"
)

#: the four algorithms the paper's main evaluation focuses on
PAPER_ALGORITHMS = ("kivi-4", "gear-4", "h2o-512", "stream-512")
