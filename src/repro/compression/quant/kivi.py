"""KIVI: asymmetric per-channel/per-token KV quantization.

Reimplementation of Liu et al., 2024e with the paper's evaluated
hyper-parameters (group size ``G=32``, residual window ``R=128``): keys
are quantized per-channel in groups of G tokens, values per-token in
groups of G channels, and the most recent R tokens stay in full
precision.  Tokens are quantized exactly once, when a full group ages
out of the residual window — mirroring the streaming behaviour of the
official implementation.
"""

from __future__ import annotations

from repro.compression.base import CompressionCostSpec, Compressor
from repro.compression.quant.codec import (
    payload_bytes_ratio,
    quant_dequant_per_channel,
    quant_dequant_per_token,
)
from repro.hardware.roofline import AccessPattern
from repro.model.cache import LayerCache


class KIVICompressor(Compressor):
    """KIVI quantizer (``bits`` ∈ {2, 4, 8} in the paper's sweeps)."""

    needs_probs = False

    def __init__(
        self, bits: int = 4, group_size: int = 32, residual: int = 128
    ) -> None:
        if bits < 1 or bits > 8:
            raise ValueError("bits must be in [1, 8]")
        if group_size < 1 or residual < 0:
            raise ValueError("group_size >= 1 and residual >= 0 required")
        self.bits = bits
        self.group_size = group_size
        self.residual = residual

    @property
    def name(self) -> str:
        return f"kivi-{self.bits}"

    def _quantize_aged(self, cache: LayerCache) -> None:
        """Round-trip all full groups that left the residual window."""
        g = self.group_size
        boundary = cache.length - self.residual
        target = (boundary // g) * g if boundary > 0 else 0
        start = cache.quantized_until
        if target <= start:
            return
        sl = slice(start, target)
        k = cache.k[:, :, sl]
        v = cache.v[:, :, sl]
        # chunk the region into aligned G-token groups for key scales
        b, kvh, t, dh = k.shape
        k_grouped = k.reshape(b, kvh, t // g, g, dh)
        k_hat = quant_dequant_per_channel(k_grouped, self.bits)
        k_hat = k_hat.reshape(b, kvh, t, dh)
        v_hat = quant_dequant_per_token(v, self.bits, min(g, dh))
        cache.overwrite(sl, k_hat, v_hat)
        cache.quantized_until = target

    def compress(self, layer: int, cache: LayerCache, phase: str) -> None:
        self._quantize_aged(cache)

    def cost_spec(self) -> CompressionCostSpec:
        return CompressionCostSpec(
            name=self.name,
            kv_bytes_ratio=payload_bytes_ratio(self.bits, 128, self.group_size),
            residual_fp16_tokens=self.residual,
            kv_access=AccessPattern.GROUP_QUANT,
            extra_kv_segments=1,  # quantized body + fp16 residual window
            dequant_flops_per_element=2.0,  # fused scale + shift
            prefill_quant_flops_per_element=3.0,
        )
