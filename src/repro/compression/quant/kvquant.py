"""KVQuant-style quantization (Hooper et al., 2024).

Per-channel key quantization like KIVI, plus *outlier isolation*: the
largest-magnitude fraction of each token group is stored in full
precision (a sparse outlier set), which protects the channel outliers
real keys exhibit.  No full-precision residual window — new tokens are
quantized in small groups almost immediately, which is what lets
KVQuant push toward very long contexts.  Listed in the paper's survey
(Table 1, "per-channel key quantization").
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressionCostSpec, Compressor
from repro.compression.quant.codec import (
    payload_bytes_ratio,
    quant_dequant_per_channel,
    quant_dequant_per_token,
)
from repro.hardware.roofline import AccessPattern
from repro.model.cache import LayerCache


def isolate_outliers(x: np.ndarray, fraction: float):
    """(bulk, outliers) split by per-(batch, head) magnitude threshold."""
    if fraction <= 0:
        return x, np.zeros_like(x)
    flat = np.abs(x).reshape(x.shape[0], x.shape[1], -1)
    k = max(1, int(round(fraction * flat.shape[-1])))
    thresh = np.partition(flat, -k, axis=-1)[..., -k][..., None, None]
    mask = np.abs(x) >= thresh
    return np.where(mask, 0.0, x), np.where(mask, x, 0.0)


class KVQuantCompressor(Compressor):
    """Per-channel key quant with full-precision outlier isolation."""

    needs_probs = False

    def __init__(
        self,
        bits: int = 4,
        group_size: int = 32,
        outlier_fraction: float = 0.01,
    ) -> None:
        if bits < 1 or bits > 8:
            raise ValueError("bits must be in [1, 8]")
        if not 0 <= outlier_fraction < 1:
            raise ValueError("outlier_fraction must be in [0, 1)")
        self.bits = bits
        self.group_size = group_size
        self.outlier_fraction = outlier_fraction

    @property
    def name(self) -> str:
        return f"kvquant-{self.bits}"

    def _roundtrip(self, x: np.ndarray, per_channel: bool) -> np.ndarray:
        bulk, outliers = isolate_outliers(x, self.outlier_fraction)
        b, kvh, t, dh = bulk.shape
        g = self.group_size
        if per_channel:
            tt = (t // g) * g
            out = bulk.copy()
            if tt:
                grouped = bulk[:, :, :tt].reshape(b, kvh, tt // g, g, dh)
                out[:, :, :tt] = quant_dequant_per_channel(
                    grouped, self.bits
                ).reshape(b, kvh, tt, dh)
            if tt < t:
                out[:, :, tt:] = quant_dequant_per_channel(
                    bulk[:, :, tt:], self.bits
                )
        else:
            out = quant_dequant_per_token(bulk, self.bits, min(g, dh))
        # outlier slots are stored sparsely at full precision: they
        # *replace* the dense value rather than correcting it
        mask = outliers != 0
        return np.where(mask, x, out)

    def compress(self, layer: int, cache: LayerCache, phase: str) -> None:
        g = self.group_size
        # no residual window: quantize every full group immediately
        target = (cache.length // g) * g
        start = cache.quantized_until
        if target <= start:
            return
        sl = slice(start, target)
        k_hat = self._roundtrip(cache.k[:, :, sl], per_channel=True)
        v_hat = self._roundtrip(cache.v[:, :, sl], per_channel=False)
        cache.overwrite(sl, k_hat, v_hat)
        cache.quantized_until = target

    def cost_spec(self) -> CompressionCostSpec:
        base = payload_bytes_ratio(self.bits, 128, self.group_size)
        return CompressionCostSpec(
            name=self.name,
            kv_bytes_ratio=base + 2.0 * self.outlier_fraction,
            residual_fp16_tokens=self.group_size,  # only the open group
            kv_access=AccessPattern.GROUP_QUANT,
            extra_kv_segments=1,
            dequant_flops_per_element=2.0,
            prefill_quant_flops_per_element=4.0,
            outlier_ratio=self.outlier_fraction,
        )
