"""GEAR: quantization with low-rank + sparse-outlier error correction.

Reimplementation of Kang et al., 2024 with the paper's configuration
(outlier ratio ``s=2%``, low-rank ratio ``r=2%``).  On top of the KIVI
codec schedule, each aged token group's quantization error ``E = X - X̂``
is approximated by a rank-``r`` SVD plus exact storage of the largest-
magnitude ``s`` fraction of entries; the stored cache entry becomes
``X̂ + lowrank(E) + outliers(E)``.  Fidelity is therefore strictly better
than plain quantization — at the cost of the extra prefill/decode work
the paper's throughput analysis charges it for (Fig. 1 e-h, Fig. 3).
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressionCostSpec, Compressor
from repro.compression.quant.codec import (
    payload_bytes_ratio,
    quant_dequant_per_channel,
    quant_dequant_per_token,
)
from repro.hardware.roofline import AccessPattern
from repro.model.cache import LayerCache


def lowrank_approx(err: np.ndarray, rank: int) -> np.ndarray:
    """Batched rank-``rank`` SVD approximation of (..., t, dh) errors."""
    if rank <= 0:
        return np.zeros_like(err)
    u, s, vt = np.linalg.svd(err, full_matrices=False)
    r = min(rank, s.shape[-1])
    return (u[..., :r] * s[..., None, :r]) @ vt[..., :r, :]


def outlier_correction(err: np.ndarray, ratio: float) -> np.ndarray:
    """Exact correction for the largest-magnitude ``ratio`` of entries."""
    if ratio <= 0:
        return np.zeros_like(err)
    flat = np.abs(err).reshape(err.shape[0], err.shape[1], -1)
    k = max(1, int(round(ratio * flat.shape[-1])))
    threshold = np.partition(flat, -k, axis=-1)[..., -k][..., None, None]
    return np.where(np.abs(err) >= threshold, err, 0.0)


class GEARCompressor(Compressor):
    """GEAR quantizer with error correction."""

    needs_probs = False

    def __init__(
        self,
        bits: int = 4,
        group_size: int = 32,
        residual: int = 128,
        rank_ratio: float = 0.02,
        outlier_ratio: float = 0.02,
    ) -> None:
        if not 0 <= rank_ratio <= 1 or not 0 <= outlier_ratio <= 1:
            raise ValueError("rank_ratio and outlier_ratio must be in [0, 1]")
        self.bits = bits
        self.group_size = group_size
        self.residual = residual
        self.rank_ratio = rank_ratio
        self.outlier_ratio = outlier_ratio

    @property
    def name(self) -> str:
        return f"gear-{self.bits}"

    def _rank(self, t: int, dh: int) -> int:
        return max(1, int(round(self.rank_ratio * min(t, dh))))

    def _roundtrip(self, x: np.ndarray, per_channel: bool, g: int) -> np.ndarray:
        b, kvh, t, dh = x.shape
        if per_channel:
            xg = x.reshape(b, kvh, t // g, g, dh)
            x_hat = quant_dequant_per_channel(xg, self.bits).reshape(x.shape)
        else:
            x_hat = quant_dequant_per_token(x, self.bits, min(g, dh))
        err = x - x_hat
        corrected = lowrank_approx(err, self._rank(t, dh))
        corrected += outlier_correction(err - corrected, self.outlier_ratio)
        return x_hat + corrected

    def compress(self, layer: int, cache: LayerCache, phase: str) -> None:
        g = self.group_size
        boundary = cache.length - self.residual
        target = (boundary // g) * g if boundary > 0 else 0
        start = cache.quantized_until
        if target <= start:
            return
        sl = slice(start, target)
        k_hat = self._roundtrip(cache.k[:, :, sl], per_channel=True, g=g)
        v_hat = self._roundtrip(cache.v[:, :, sl], per_channel=False, g=g)
        cache.overwrite(sl, k_hat, v_hat)
        cache.quantized_until = target

    def cost_spec(self) -> CompressionCostSpec:
        base_ratio = payload_bytes_ratio(self.bits, 128, self.group_size)
        # low-rank factors + outlier (value, index) pairs add storage
        extra = self.rank_ratio + self.outlier_ratio * 2.0
        return CompressionCostSpec(
            name=self.name,
            kv_bytes_ratio=base_ratio + extra,
            residual_fp16_tokens=self.residual,
            kv_access=AccessPattern.GROUP_QUANT,
            extra_kv_segments=2,  # quantized body + residual + corrections
            dequant_flops_per_element=2.0 + 4.0 * self.rank_ratio * 128,
            prefill_quant_flops_per_element=8.0,
            prefill_kv_passes_fp32=6.0,  # error, sort, outlier materialization
            lowrank_ratio=self.rank_ratio,
            outlier_ratio=self.outlier_ratio,
        )
