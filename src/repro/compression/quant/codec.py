"""Uniform affine group quantization (Eqn. 3 of the paper).

``quantize``/``dequantize`` implement the round-to-nearest affine codec;
the ``*_per_channel`` / ``*_per_token`` helpers realize the two
granularities mainstream KV quantizers use: keys are quantized
per-channel with scales shared across a group of tokens (KIVI/KVQuant
observed channel-wise key outliers) while values are quantized per-token
with scales shared across a group of channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class QuantStats:
    """Round-trip error statistics of one codec application."""

    mean_abs_error: float
    max_abs_error: float
    bits: int
    n_elements: int


def _affine_roundtrip(
    x: np.ndarray, lo: np.ndarray, hi: np.ndarray, bits: int
) -> np.ndarray:
    """Quantize-dequantize ``x`` given per-group [lo, hi] ranges.

    Degenerate groups — zero span, or a span so small that the step
    underflows to zero (denormals) — round-trip to ``lo`` exactly.
    """
    levels = (1 << bits) - 1
    span = hi - lo
    step = span / levels
    valid = step > 0  # guards both span == 0 and denormal underflow
    delta = np.where(valid, step, 1.0)
    q = np.rint((x - lo) / delta)
    q = np.clip(q, 0, levels)
    out = q * delta + lo
    return np.where(valid, out, lo)


def quant_dequant_per_channel(x: np.ndarray, bits: int) -> np.ndarray:
    """Key-style codec: per-channel ranges over the token axis.

    ``x`` is (..., tokens, channels); the caller passes one token group
    (KIVI group size G) at a time, so the range reduction spans the
    whole token axis.
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    lo = x.min(axis=-2, keepdims=True)
    hi = x.max(axis=-2, keepdims=True)
    return _affine_roundtrip(x, lo, hi, bits)


def quant_dequant_per_token(
    x: np.ndarray, bits: int, group_channels: int
) -> np.ndarray:
    """Value-style codec: per-token ranges over channel groups.

    ``x`` is (..., tokens, channels) with ``channels`` divisible by
    ``group_channels``.
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    *lead, t, c = x.shape
    if c % group_channels:
        raise ValueError(
            f"channels ({c}) not divisible by group ({group_channels})"
        )
    g = c // group_channels
    xg = x.reshape(*lead, t, g, group_channels)
    lo = xg.min(axis=-1, keepdims=True)
    hi = xg.max(axis=-1, keepdims=True)
    out = _affine_roundtrip(xg, lo, hi, bits)
    return out.reshape(*lead, t, c)


def roundtrip_stats(x: np.ndarray, x_hat: np.ndarray, bits: int) -> QuantStats:
    """Error statistics between original and round-tripped tensors."""
    err = np.abs(x - x_hat)
    return QuantStats(
        mean_abs_error=float(err.mean()),
        max_abs_error=float(err.max()),
        bits=bits,
        n_elements=int(x.size),
    )


def payload_bytes_ratio(
    bits: int, head_dim: int, group: int, dtype_bytes: int = 2
) -> float:
    """Bytes per element (payload + scale/zero metadata) vs FP16.

    Keys store two FP16 constants per (channel, token-group); values two
    per (token, channel-group).  Both work out to ``2*dtype_bytes/group``
    extra bytes per element.
    """
    payload = bits / 8.0
    metadata = 2.0 * dtype_bytes / group
    return (payload + metadata) / dtype_bytes
