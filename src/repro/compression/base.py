"""Compression algorithm interfaces.

Every algorithm is a single object serving two studies at once:

- the **functional** interface (``begin`` / ``observe`` / ``compress``)
  hooks into :class:`repro.model.transformer.FunctionalTransformer` and
  actually mutates cached K/V tensors — quantizing them in place or
  evicting positions — which drives the accuracy, negative-sample and
  length-distribution experiments;
- the **cost** interface (``cost_spec`` / ``memory_spec``) describes the
  algorithm to the analytical engine models, which drives the throughput
  and latency experiments.

Keeping both views on one object guarantees the experiments talk about
the same algorithm with the same hyper-parameters.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hardware.memory import KVMemorySpec
from repro.hardware.roofline import AccessPattern
from repro.model.arch import ArchSpec
from repro.model.cache import LayerCache
from repro.model.config import FunctionalModelConfig


@dataclass(frozen=True)
class CompressionCostSpec:
    """How an algorithm perturbs the serving cost model.

    Attributes
    ----------
    name: algorithm label.
    kv_bytes_ratio:
        Bytes moved per aged KV element relative to FP16 (quantized
        payload + amortized scales/zeros metadata); 1.0 for FP16/sparse.
    residual_fp16_tokens:
        Recent tokens per sequence kept (and read) in full precision.
    sparse_budget:
        Cap on retained tokens per sequence (sparsity), else ``None``.
    kv_access:
        DRAM access pattern of KV reads during attention.
    extra_kv_segments:
        Additional attention segments per layer (e.g. the full-precision
        residual window is a second, differently-typed segment — the
        paged-attention compatibility cost discussed in Section 3.1.1).
    dequant_flops_per_element:
        Extra vector FLOPs per loaded KV element (de-quantization,
        low-rank reconstruction).
    prefill_score_passes:
        Extra full passes over the prompt attention matrix needed to
        obtain importance scores during prefill (H2O needs the scores
        FlashAttention never materializes).
    decode_score_pass:
        Whether decode steps also need materialized attention scores.
    score_rows:
        If set, only the last ``score_rows`` query rows of the prompt
        attention matrix are scored (SnapKV's observation window);
        ``None`` means all rows (H2O).
    prefill_quant_flops_per_element:
        Per-element cost of compressing the prompt KV (quantization,
        error computation, low-rank fitting).
    prefill_kv_passes_fp32:
        Extra full passes over the prompt KV in FP32 during compression
        (GEAR materializes error/outlier tensors; KIVI makes one pass).
    lowrank_ratio:
        Low-rank error-fitting rank as a fraction of the KV hidden
        width (GEAR); adds skinny-GEMM work during prefill.
    evict_overhead_launches:
        Extra kernel launches per layer per decode step for eviction
        bookkeeping (score update, top-k, gather/compact).
    outlier_ratio:
        Fraction of elements fetched via irregular sparse gathers.
    """

    name: str
    kv_bytes_ratio: float = 1.0
    residual_fp16_tokens: int = 0
    sparse_budget: Optional[int] = None
    kv_access: AccessPattern = AccessPattern.CONTIGUOUS_KV
    extra_kv_segments: int = 0
    dequant_flops_per_element: float = 0.0
    prefill_score_passes: int = 0
    score_rows: Optional[int] = None
    decode_score_pass: bool = False
    prefill_quant_flops_per_element: float = 0.0
    prefill_kv_passes_fp32: float = 0.0
    lowrank_ratio: float = 0.0
    evict_overhead_launches: int = 0
    outlier_ratio: float = 0.0

    def effective_kv_tokens(self, kv_len: int) -> float:
        """Tokens actually read per sequence at cache length ``kv_len``."""
        if self.sparse_budget is None:
            return float(kv_len)
        return float(min(kv_len, self.sparse_budget))


class Compressor(abc.ABC):
    """Base class for KV-cache compression algorithms."""

    #: whether the algorithm consumes attention probabilities — the flag
    #: that makes it incompatible with one-pass flash attention.
    needs_probs: bool = False

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short label, e.g. ``"kivi-4"``."""

    def begin(
        self,
        batch: int,
        config: FunctionalModelConfig,
        seq_start: np.ndarray,
    ) -> None:
        """Reset per-session state before a generation run."""
        self._batch = batch
        self._config = config
        self._seq_start = seq_start

    def observe(
        self,
        layer: int,
        probs: np.ndarray,
        q_pos: np.ndarray,
        k_pos: np.ndarray,
        cache: LayerCache,
    ) -> None:
        """Consume an attention-probability chunk (only if ``needs_probs``)."""

    @abc.abstractmethod
    def compress(self, layer: int, cache: LayerCache, phase: str) -> None:
        """Mutate the cache after a layer's prefill or decode step."""

    @abc.abstractmethod
    def cost_spec(self) -> CompressionCostSpec:
        """Cost-model description of this algorithm."""

    def memory_spec(self, arch: ArchSpec) -> KVMemorySpec:
        """Memory-model description for architecture ``arch``."""
        spec = self.cost_spec()
        fp16 = arch.kv_bytes_per_token_per_layer()
        return KVMemorySpec(
            bytes_per_token_per_layer=fp16 * spec.kv_bytes_ratio,
            residual_fp16_tokens=spec.residual_fp16_tokens,
            max_tokens=spec.sparse_budget,
            transient_fp16_copy=spec.kv_bytes_ratio < 1.0,
        )


class NoCompression(Compressor):
    """FP16 baseline: the cache is left untouched."""

    needs_probs = False

    @property
    def name(self) -> str:
        return "fp16"

    def compress(self, layer: int, cache: LayerCache, phase: str) -> None:
        pass

    def cost_spec(self) -> CompressionCostSpec:
        return CompressionCostSpec(name="fp16")

    def memory_spec(self, arch: ArchSpec) -> KVMemorySpec:
        return KVMemorySpec.fp16(arch)
