"""TOVA: token omission via attention (Oren et al., 2024).

At every decode step the token with the lowest attention weight *from
the current query* is evicted once the cache exceeds the budget — no
accumulated statistics, and (unlike H2O/StreamingLLM) recent tokens are
just as evictable as old ones.  Listed in the paper's survey (Table 1,
"enable recent KV cache evictable").
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressionCostSpec, Compressor
from repro.compression.sparse.policies import (
    fold_probs_to_kv_heads,
    select_top_scores,
)
from repro.hardware.roofline import AccessPattern
from repro.model.cache import LayerCache


class TOVACompressor(Compressor):
    """Last-query attention eviction with evictable recency."""

    needs_probs = True

    def __init__(self, budget: int = 512, protect_last: int = 1) -> None:
        if budget < 2:
            raise ValueError("budget must be >= 2")
        self.budget = budget
        self.protect_last = protect_last

    @property
    def name(self) -> str:
        return f"tova-{self.budget}"

    def begin(self, batch, config, seq_start) -> None:
        super().begin(batch, config, seq_start)
        self._last = [None] * config.n_layers

    def observe(self, layer, probs, q_pos, k_pos, cache) -> None:
        # keep only the latest query's attention distribution
        delta = fold_probs_to_kv_heads(
            probs[:, :, -1:, :], self._config.gqa_group
        )
        n = cache.length
        padded = np.zeros(delta.shape[:-1] + (n,))
        padded[..., : delta.shape[-1]] = delta
        self._last[layer] = padded

    def compress(self, layer: int, cache: LayerCache, phase: str) -> None:
        n = cache.length
        if n <= self.budget or self._last[layer] is None:
            return
        keep = cache.keep
        scores = self._last[layer][..., :n]
        protected = cache.positions >= n - self.protect_last
        eligible = keep & ~protected[None, None, :]
        winners = select_top_scores(
            scores, eligible, self.budget - self.protect_last
        )
        keep[:] = keep & (protected[None, None, :] | winners)

    def cost_spec(self) -> CompressionCostSpec:
        return CompressionCostSpec(
            name=self.name,
            sparse_budget=self.budget,
            kv_access=AccessPattern.SPARSE_GATHER,
            prefill_score_passes=1,
            score_rows=1,  # only the final query's row is needed
            decode_score_pass=True,
            evict_overhead_launches=2,
        )
