"""PyramidKV: layer-wise KV budget allocation (Zhang et al., 2024d).

Earlier layers aggregate information broadly while later layers funnel
it into few positions, so PyramidKV gives early layers *larger* cache
budgets and late layers smaller ones (pyramidal allocation), selecting
retained positions by accumulated attention like H2O.  Listed in the
paper's survey (Table 1, "adjust KV cache budget across layers").
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.compression.base import CompressionCostSpec, Compressor
from repro.compression.sparse.policies import (
    GrowableScores,
    fold_probs_to_kv_heads,
    select_top_scores,
)
from repro.hardware.roofline import AccessPattern
from repro.model.cache import LayerCache


def pyramid_budgets(
    n_layers: int, mean_budget: int, slope: float = 0.6
) -> List[int]:
    """Per-layer budgets: linear pyramid, mean = ``mean_budget``.

    ``slope`` in [0, 1): the first layer gets ``(1 + slope) * mean`` and
    the last ``(1 - slope) * mean``.
    """
    if not 0 <= slope < 1:
        raise ValueError("slope must be in [0, 1)")
    if n_layers == 1:
        return [mean_budget]
    tops = np.linspace(1 + slope, 1 - slope, n_layers)
    return [max(8, int(round(t * mean_budget))) for t in tops]


class PyramidKVCompressor(Compressor):
    """Accumulated-attention eviction with pyramidal layer budgets."""

    needs_probs = True

    def __init__(
        self,
        mean_budget: int = 512,
        recent_size: int = 128,
        slope: float = 0.6,
    ) -> None:
        if mean_budget <= recent_size:
            raise ValueError("mean_budget must exceed the recent window")
        self.mean_budget = mean_budget
        self.recent_size = recent_size
        self.slope = slope

    @property
    def name(self) -> str:
        return f"pyramidkv-{self.mean_budget}"

    def begin(self, batch, config, seq_start) -> None:
        super().begin(batch, config, seq_start)
        self._scores = GrowableScores(config.n_layers)
        self._budgets = pyramid_budgets(
            config.n_layers, self.mean_budget, self.slope
        )

    def observe(self, layer, probs, q_pos, k_pos, cache) -> None:
        self._scores.add(
            layer, fold_probs_to_kv_heads(probs, self._config.gqa_group)
        )

    def compress(self, layer: int, cache: LayerCache, phase: str) -> None:
        budget = self._budgets[layer]
        n = cache.length
        if n <= budget:
            return
        keep = cache.keep
        recent = cache.positions >= n - min(self.recent_size, budget // 2)
        eligible = keep & ~recent[None, None, :]
        if not eligible.any():
            return
        scores = self._scores.get(layer, n)
        hh = max(0, budget - int(recent.sum()))
        winners = select_top_scores(scores, eligible, hh)
        keep[:] = keep & (recent[None, None, :] | winners)

    def cost_spec(self) -> CompressionCostSpec:
        return CompressionCostSpec(
            name=self.name,
            sparse_budget=self.mean_budget,  # mean across layers
            kv_access=AccessPattern.SPARSE_GATHER,
            prefill_score_passes=3,
            decode_score_pass=True,
            evict_overhead_launches=3,
        )
