"""Shared helpers for sparsity-based eviction policies."""

from __future__ import annotations

from typing import Optional

import numpy as np


def fold_probs_to_kv_heads(probs: np.ndarray, gqa_group: int) -> np.ndarray:
    """Reduce attention probabilities to per-KV-head key scores.

    ``probs`` is (batch, q_heads, n_queries, n_keys); returns
    (batch, kv_heads, n_keys) — summed over queries and over the query
    heads sharing each KV head (the eviction decision is per stored KV
    entry, hence per KV head).
    """
    b, h, sq, n = probs.shape
    summed = probs.sum(axis=2)
    if gqa_group == 1:
        return summed
    kvh = h // gqa_group
    return summed.reshape(b, kvh, gqa_group, n).sum(axis=2)


class GrowableScores:
    """Per-layer accumulated key scores that grow with the cache."""

    def __init__(self, n_layers: int) -> None:
        self._scores = [None] * n_layers

    def add(self, layer: int, delta: np.ndarray) -> None:
        """Accumulate (batch, kv_heads, n_keys) score increments."""
        cur = self._scores[layer]
        if cur is None:
            self._scores[layer] = delta.copy()
            return
        n_old, n_new = cur.shape[-1], delta.shape[-1]
        if n_new > n_old:
            grown = np.zeros(delta.shape)
            grown[..., :n_old] = cur
            cur = grown
            self._scores[layer] = cur
        cur[..., : delta.shape[-1]] += delta

    def get(self, layer: int, n: int) -> np.ndarray:
        """Scores for the first ``n`` keys (zeros if never observed)."""
        cur = self._scores[layer]
        if cur is None:
            raise RuntimeError(
                "no attention scores observed; is the model materializing "
                "probabilities (naive attention)?"
            )
        if cur.shape[-1] < n:
            grown = np.zeros(cur.shape[:-1] + (n,))
            grown[..., : cur.shape[-1]] = cur
            self._scores[layer] = cur = grown
        return cur[..., :n]


def select_top_scores(
    scores: np.ndarray,
    eligible: np.ndarray,
    k: int,
) -> np.ndarray:
    """Boolean mask of the top-``k`` eligible entries per row.

    ``scores``/``eligible`` are (..., n); ineligible entries never win.
    Rows with fewer than ``k`` eligible entries keep them all.
    """
    masked = np.where(eligible, scores, -np.inf)
    n = masked.shape[-1]
    out = np.zeros_like(eligible)
    if k <= 0:
        return out
    if k >= n:
        return eligible.copy()
    idx = np.argpartition(masked, -k, axis=-1)[..., -k:]
    np.put_along_axis(out, idx, True, axis=-1)
    # argpartition may select -inf entries in underfull rows; drop them
    return out & eligible
