"""H2O: heavy-hitter oracle eviction (Zhang et al., 2024f).

Keeps a recent window plus the ``hh_size`` tokens with the highest
*accumulated attention scores* (the heavy hitters); everything else is
evicted irreversibly.  Paper configuration: heavy-hitter budget 64 +
recent window 448 (total cache 512).

H2O's importance metric requires materialized attention probabilities —
``needs_probs = True`` — which is exactly why it cannot ride on one-pass
FlashAttention and pays extra score passes in the cost model.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressionCostSpec, Compressor
from repro.compression.sparse.policies import (
    GrowableScores,
    fold_probs_to_kv_heads,
    select_top_scores,
)
from repro.hardware.roofline import AccessPattern
from repro.model.cache import LayerCache


class H2OCompressor(Compressor):
    """Heavy-Hitter Oracle KV eviction."""

    needs_probs = True

    def __init__(self, hh_size: int = 64, recent_size: int = 448) -> None:
        if hh_size < 0 or recent_size < 1:
            raise ValueError("hh_size >= 0 and recent_size >= 1 required")
        self.hh_size = hh_size
        self.recent_size = recent_size

    @property
    def name(self) -> str:
        return f"h2o-{self.budget}"

    @property
    def budget(self) -> int:
        """Total retained tokens per sequence."""
        return self.hh_size + self.recent_size

    def begin(self, batch, config, seq_start) -> None:
        super().begin(batch, config, seq_start)
        self._scores = GrowableScores(config.n_layers)

    def observe(self, layer, probs, q_pos, k_pos, cache) -> None:
        delta = fold_probs_to_kv_heads(probs, self._config.gqa_group)
        self._scores.add(layer, delta)

    def compress(self, layer: int, cache: LayerCache, phase: str) -> None:
        n = cache.length
        if n <= self.budget:
            return
        keep = cache.keep  # (b, kvh, n) view
        recent = cache.positions >= n - self.recent_size
        eligible = keep & ~recent[None, None, :]
        if not eligible.any():
            return
        scores = self._scores.get(layer, n)
        winners = select_top_scores(scores, eligible, self.hh_size)
        new_keep = keep & (recent[None, None, :] | winners)
        keep[:] = new_keep

    def cost_spec(self) -> CompressionCostSpec:
        return CompressionCostSpec(
            name=self.name,
            sparse_budget=self.budget,
            kv_access=AccessPattern.SPARSE_GATHER,
            prefill_score_passes=3,  # materialize S, P and read back (FP32)
            decode_score_pass=True,
            evict_overhead_launches=3,  # score update, top-k, mask apply
        )
