"""SnapKV: prompt-time selection of clustered important KV (Li et al., 2024b).

At the end of prefill, the attention that the last ``window`` prompt
tokens (the "observation window") pay to earlier positions is pooled
along the key axis (clustering) and the top-scoring positions are kept,
along with the window itself.  Decode appends new tokens without further
eviction — SnapKV compresses the *prompt* cache once.

Evaluated in the paper's appendix (Fig. 9).
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import uniform_filter1d

from repro.compression.base import CompressionCostSpec, Compressor
from repro.compression.sparse.policies import (
    GrowableScores,
    fold_probs_to_kv_heads,
    select_top_scores,
)
from repro.hardware.roofline import AccessPattern
from repro.model.cache import LayerCache


class SnapKVCompressor(Compressor):
    """Observation-window KV selection at prefill time."""

    needs_probs = True

    def __init__(
        self, budget: int = 512, window: int = 32, kernel_size: int = 7
    ) -> None:
        if budget <= window:
            raise ValueError("budget must exceed the observation window")
        if kernel_size < 1 or kernel_size % 2 == 0:
            raise ValueError("kernel_size must be odd and >= 1")
        self.budget = budget
        self.window = window
        self.kernel_size = kernel_size

    @property
    def name(self) -> str:
        return f"snapkv-{self.budget}"

    def begin(self, batch, config, seq_start) -> None:
        super().begin(batch, config, seq_start)
        self._scores = GrowableScores(config.n_layers)
        self._compressed = [False] * config.n_layers

    def observe(self, layer, probs, q_pos, k_pos, cache) -> None:
        if self._compressed[layer]:
            return  # decode probabilities are not used by SnapKV
        prompt_len = cache.length
        in_window = q_pos >= prompt_len - self.window
        if not in_window.any():
            return
        delta = fold_probs_to_kv_heads(
            probs[:, :, in_window], self._config.gqa_group
        )
        self._scores.add(layer, delta)

    def compress(self, layer: int, cache: LayerCache, phase: str) -> None:
        if phase != "prefill" or self._compressed[layer]:
            return
        self._compressed[layer] = True
        n = cache.length
        if n <= self.budget:
            return
        scores = self._scores.get(layer, n)
        pooled = uniform_filter1d(scores, size=self.kernel_size, axis=-1)
        window = cache.positions >= n - self.window
        keep = cache.keep
        eligible = keep & ~window[None, None, :]
        winners = select_top_scores(pooled, eligible, self.budget - self.window)
        keep[:] = keep & (window[None, None, :] | winners)

    def cost_spec(self) -> CompressionCostSpec:
        return CompressionCostSpec(
            name=self.name,
            sparse_budget=self.budget,
            kv_access=AccessPattern.SPARSE_GATHER,
            prefill_score_passes=2,  # window scores + pooled copy (FP32)
            score_rows=self.window,
            evict_overhead_launches=0,  # no per-step decode work
        )
