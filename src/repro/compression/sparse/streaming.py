"""StreamingLLM: attention sinks + recent window (Xiao et al., 2023).

Retains the first ``sink_size`` real tokens of every sequence plus the
most recent ``recent_size`` tokens; everything in between is evicted.
Paper configuration: 64 sink + 448 recent (total cache 512).  The policy
is purely structural — no attention scores needed — which is why it is
the only sparse method whose prefill throughput stays near the baseline
(Fig. 1 e-h) and why it composes cleanly with FlashAttention.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressionCostSpec, Compressor
from repro.hardware.roofline import AccessPattern
from repro.model.cache import LayerCache


class StreamingLLMCompressor(Compressor):
    """Sink + recent-window KV eviction."""

    needs_probs = False

    def __init__(self, sink_size: int = 64, recent_size: int = 448) -> None:
        if sink_size < 0 or recent_size < 1:
            raise ValueError("sink_size >= 0 and recent_size >= 1 required")
        self.sink_size = sink_size
        self.recent_size = recent_size

    @property
    def name(self) -> str:
        return f"stream-{self.budget}"

    @property
    def budget(self) -> int:
        """Total retained tokens per sequence."""
        return self.sink_size + self.recent_size

    def compress(self, layer: int, cache: LayerCache, phase: str) -> None:
        n = cache.length
        if n <= self.budget:
            return
        pos = cache.positions
        rel = pos[None, :] - cache.seq_start[:, None]  # (b, n)
        sink = (rel >= 0) & (rel < self.sink_size)
        recent = pos >= n - self.recent_size
        window = sink | recent[None, :]
        keep = cache.keep
        keep[:] = keep & window[:, None, :]

    def cost_spec(self) -> CompressionCostSpec:
        return CompressionCostSpec(
            name=self.name,
            sparse_budget=self.budget,
            kv_access=AccessPattern.CONTIGUOUS_KV,  # two structured spans
            extra_kv_segments=1,  # sink span + ring-buffer recent span
            evict_overhead_launches=1,  # ring-buffer pointer update
        )
