"""KV-cache compression algorithms (quantization- and sparsity-based).

Reimplementations of the four algorithms the paper evaluates — KIVI,
GEAR (quantization) and H2O, StreamingLLM (sparsity) — plus SnapKV from
the appendix, all against the same :class:`~repro.compression.base.Compressor`
interface that serves both the functional accuracy studies and the
analytical throughput studies.
"""

from repro.compression.base import (
    CompressionCostSpec,
    Compressor,
    NoCompression,
)
from repro.compression.quant.codec import (
    QuantStats,
    payload_bytes_ratio,
    quant_dequant_per_channel,
    quant_dequant_per_token,
    roundtrip_stats,
)
from repro.compression.quant.kivi import KIVICompressor
from repro.compression.quant.gear import GEARCompressor
from repro.compression.quant.kvquant import KVQuantCompressor
from repro.compression.sparse.h2o import H2OCompressor
from repro.compression.sparse.streaming import StreamingLLMCompressor
from repro.compression.sparse.snapkv import SnapKVCompressor
from repro.compression.sparse.tova import TOVACompressor
from repro.compression.sparse.pyramidkv import PyramidKVCompressor
from repro.compression.hybrid import QHitterCompressor
from repro.compression.registry import (
    EXTENSION_ALGORITHMS,
    PAPER_ALGORITHMS,
    available,
    create,
    register,
)

__all__ = [
    "CompressionCostSpec",
    "Compressor",
    "NoCompression",
    "QuantStats",
    "payload_bytes_ratio",
    "quant_dequant_per_channel",
    "quant_dequant_per_token",
    "roundtrip_stats",
    "KIVICompressor",
    "GEARCompressor",
    "KVQuantCompressor",
    "H2OCompressor",
    "StreamingLLMCompressor",
    "SnapKVCompressor",
    "TOVACompressor",
    "PyramidKVCompressor",
    "QHitterCompressor",
    "EXTENSION_ALGORITHMS",
    "PAPER_ALGORITHMS",
    "available",
    "create",
    "register",
]
