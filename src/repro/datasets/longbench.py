"""LongBench-like synthetic long-context task suite.

Six task families mirror LongBench's categories, each mapping to a
distinct *retrieval structure* so the paper's task-type fragility
(Observation 6) emerges mechanistically:

- ``qa_single``   — answer record at a random depth of one document,
  with a same-key distractor record earlier (conflicting information);
  eviction of the true record or quantization noise on the small
  recency margin produces wrong answers.
- ``qa_multi``    — several documents, each with its own record; the
  queried record sits in a random document, the distractor in another.
- ``summarization`` — "title" record near the document head (past the
  attention-sink region but far from the recent window): the position
  sparse methods are most likely to evict.
- ``fewshot``     — demonstration pairs followed by a query over one of
  the demonstrated keys; short answers, shallow context.
- ``code``        — repetitive function definitions; the completion
  pattern is mostly local (recent-window friendly) but argument values
  are bound to names defined earlier in the file.
- ``synthetic``   — passkey retrieval: one record, no distractor, at a
  controlled depth of pure filler.

All prompts are built from the functional model's closed vocabulary and
end with a query ``[Q, key]``; answers are the value spans the circuit
can genuinely retrieve.  Filler and record tokens come from disjoint
alphabets so difficulty is controlled by construction (depth, distractor
gap, answer length), not token collisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.model.tokenizer import SyntheticTokenizer

TASK_TYPES = (
    "qa_single",
    "qa_multi",
    "summarization",
    "fewshot",
    "code",
    "synthetic",
)

#: LongBench-style task -> metric mapping
TASK_METRICS: Dict[str, str] = {
    "qa_single": "token_f1",
    "qa_multi": "token_f1",
    "summarization": "rouge_like",
    "fewshot": "exact_match",
    "code": "edit_similarity",
    "synthetic": "exact_match",
}

#: coarse grouping used by the paper's Table 7
TASK_GROUPS: Dict[str, str] = {
    "qa_single": "Question Answering",
    "qa_multi": "Question Answering",
    "summarization": "Summarization",
    "fewshot": "Few-shot",
    "code": "Code",
    "synthetic": "Synthetic",
}


@dataclass
class Sample:
    """One evaluation sample."""

    sample_id: str
    task: str
    prompt: List[int]
    answer: List[int]
    metric: str
    meta: Dict[str, float] = field(default_factory=dict)

    @property
    def prompt_len(self) -> int:
        """Prompt length in tokens."""
        return len(self.prompt)


class LongBenchSim:
    """Seeded generator of the synthetic long-context suite."""

    def __init__(
        self,
        tokenizer: Optional[SyntheticTokenizer] = None,
        seed: int = 0,
        min_context: int = 600,
        max_context: int = 2200,
    ) -> None:
        self.tok = tokenizer or SyntheticTokenizer()
        self.rng = np.random.default_rng(seed)
        self.min_context = min_context
        self.max_context = max_context
        content = self.tok.content_ids
        half = len(content) // 2
        self.filler_alpha = content[:half]
        self.record_alpha = content[half:]

    # ------------------------------------------------------------------
    def _filler(self, n: int) -> List[int]:
        if n <= 0:
            return []
        return [int(x) for x in self.rng.choice(self.filler_alpha, size=n)]

    def _key(self) -> int:
        return int(self.rng.choice(self.record_alpha))

    def _pool(self, exclude: Sequence[int], size: int) -> List[int]:
        avail = [c for c in self.record_alpha if c not in exclude]
        return [int(x) for x in self.rng.choice(avail, size=size, replace=False)]

    def _record(self, key: int, values: Sequence[int]) -> List[int]:
        sp = self.tok.special
        return [sp.q, key] + list(values) + [sp.sep]

    def _question(self, key: int) -> List[int]:
        sp = self.tok.special
        return [sp.q, key]

    def _context_len(self) -> int:
        return int(self.rng.integers(self.min_context, self.max_context))

    # ------------------------------------------------------------------
    def qa_single(self, idx: int) -> Sample:
        sp = self.tok.special
        total = self._context_len()
        ans_len = int(self.rng.integers(6, 12))
        key = self._key()
        pool = self._pool([key], ans_len + 2)
        vals = [int(x) for x in self.rng.permutation(pool)[:ans_len]]
        decoys = [int(x) for x in self.rng.permutation(pool)[:ans_len]]
        gap = int(self.rng.integers(192, max(256, total // 2)))
        # tails straddle the sparse recent-window boundary (512) so a
        # fraction of answer records are *partially* evicted, yielding
        # graded (not binary) degradation for the threshold sweeps
        tail = int(self.rng.integers(160, 900))
        head = max(16, total - gap - tail - 2 * (ans_len + 3) - 3)
        prompt = (
            [sp.bos]
            + self._filler(head)
            + self._record(key, decoys)
            + self._filler(gap)
            + self._record(key, vals)
            + self._filler(tail)
            + self._question(key)
        )
        return Sample(
            sample_id=f"qa_single-{idx}",
            task="qa_single",
            prompt=prompt,
            answer=vals,
            metric=TASK_METRICS["qa_single"],
            meta={"gap": gap, "tail": tail, "answer_depth": tail + ans_len + 3},
        )

    def qa_multi(self, idx: int) -> Sample:
        sp = self.tok.special
        total = self._context_len()
        n_docs = int(self.rng.integers(3, 6))
        ans_len = int(self.rng.integers(5, 10))
        keys = self._pool([], n_docs)
        pool = self._pool(keys, ans_len + 2)
        per_doc = max(40, total // n_docs - ans_len - 4)
        target = int(self.rng.integers(0, n_docs))
        decoy_doc = int(self.rng.integers(0, n_docs))
        vals = [int(x) for x in self.rng.permutation(pool)[:ans_len]]
        prompt = [sp.bos]
        answer_depth = 0
        for d in range(n_docs):
            body = self._filler(per_doc)
            insert = int(self.rng.integers(0, max(1, len(body) - 1)))
            if d == target:
                rec = self._record(keys[d], vals)
            elif d == decoy_doc:
                decoys = [int(x) for x in self.rng.permutation(pool)[:ans_len]]
                rec = self._record(keys[target], decoys)
            else:
                other_vals = self._pool(keys + pool, ans_len)
                rec = self._record(keys[d], other_vals)
            prompt += body[:insert] + rec + body[insert:] + [sp.nl]
        prompt += self._question(keys[target])
        return Sample(
            sample_id=f"qa_multi-{idx}",
            task="qa_multi",
            prompt=prompt,
            answer=vals,
            metric=TASK_METRICS["qa_multi"],
            meta={"n_docs": n_docs, "target_doc": target},
        )

    def summarization(self, idx: int) -> Sample:
        sp = self.tok.special
        total = self._context_len()
        title_len = int(self.rng.integers(8, 14))
        key = self._key()
        title = self._pool([key], title_len)
        depth = int(self.rng.integers(80, 260))  # past the sink region
        body_len = max(64, total - depth - title_len - 6)
        intro = self._filler(depth)
        # the intro references title tokens sporadically (raising their
        # accumulated-attention scores a little, as real salience would);
        # references precede the record so the recency-biased chain still
        # resolves to the record itself
        for _ in range(max(2, depth // 120)):
            j = int(self.rng.integers(0, len(intro)))
            intro[j] = int(self.rng.choice(title))
        prompt = (
            [sp.bos]
            + intro
            + self._record(key, title)
            + self._filler(body_len)
            + self._question(key)
        )
        return Sample(
            sample_id=f"summarization-{idx}",
            task="summarization",
            prompt=prompt,
            answer=title,
            metric=TASK_METRICS["summarization"],
            meta={"depth": depth, "body_len": body_len},
        )

    def fewshot(self, idx: int) -> Sample:
        sp = self.tok.special
        n_demos = int(self.rng.integers(3, 6))
        ans_len = int(self.rng.integers(2, 5))
        keys = self._pool([], n_demos)
        # demo answers are disjoint token sets: retrieval chains never
        # cross demonstrations for the uncompressed model
        avail = [c for c in self.record_alpha if c not in keys]
        avail = [int(x) for x in self.rng.permutation(avail)]
        demos = []
        answers = {}
        for i, k in enumerate(keys):
            vals = avail[i * ans_len : (i + 1) * ans_len]
            answers[k] = vals
            demos += self._record(k, vals) + [sp.nl]
        target = int(self.rng.choice(keys))
        pad = self._filler(int(self.rng.integers(32, 160)))
        prompt = [sp.bos] + demos + pad + self._question(target)
        return Sample(
            sample_id=f"fewshot-{idx}",
            task="fewshot",
            prompt=prompt,
            answer=answers[target],
            metric=TASK_METRICS["fewshot"],
            meta={"n_demos": n_demos},
        )

    def code(self, idx: int) -> Sample:
        sp = self.tok.special
        total = self._context_len()
        n_defs = int(self.rng.integers(3, 5))
        names = self._pool([], n_defs)
        # bodies draw disjoint token sets so call-site completion is
        # unambiguous for the uncompressed model
        avail = [c for c in self.record_alpha if c not in names]
        avail = [int(x) for x in self.rng.permutation(avail)]
        bodies = {}
        cursor = 0
        for n in names:
            size = int(self.rng.integers(4, 6))
            bodies[n] = avail[cursor : cursor + size]
            cursor += size
        lines: List[int] = []
        # definitions near the top of the "file"
        for n in names:
            lines += [sp.fn] + self._record(n, bodies[n]) + [sp.nl]
        # call sites interleaved with filler, repeating the pattern
        body_budget = max(64, total - len(lines) - 8)
        while body_budget > 0:
            chunk = self._filler(int(self.rng.integers(12, 48)))
            n = int(self.rng.choice(names))
            call = [sp.fn] + self._record(n, bodies[n]) + [sp.nl]
            lines += chunk + call
            body_budget -= len(chunk) + len(call)
        target = int(self.rng.choice(names))
        prompt = [sp.bos] + lines + [sp.fn] + self._question(target)
        return Sample(
            sample_id=f"code-{idx}",
            task="code",
            prompt=prompt,
            answer=bodies[target],
            metric=TASK_METRICS["code"],
            meta={"n_defs": n_defs},
        )

    def synthetic(self, idx: int) -> Sample:
        sp = self.tok.special
        total = self._context_len()
        ans_len = 5
        key = self._key()
        vals = self._pool([key], ans_len)
        depth_frac = float(self.rng.uniform(0.1, 0.9))
        depth = int(depth_frac * (total - ans_len - 8))
        tail = max(16, total - depth - ans_len - 5)
        prompt = (
            [sp.bos]
            + self._filler(depth)
            + self._record(key, vals)
            + self._filler(tail)
            + self._question(key)
        )
        return Sample(
            sample_id=f"synthetic-{idx}",
            task="synthetic",
            prompt=prompt,
            answer=vals,
            metric=TASK_METRICS["synthetic"],
            meta={"depth_frac": depth_frac},
        )

    # ------------------------------------------------------------------
    def build(self, n_per_task: int, tasks: Sequence[str] = TASK_TYPES) -> List[Sample]:
        """Generate ``n_per_task`` samples for each requested task."""
        for t in tasks:
            if t not in TASK_TYPES:
                raise KeyError(f"unknown task {t!r}; known: {TASK_TYPES}")
        out: List[Sample] = []
        for t in tasks:
            maker = getattr(self, t)
            out.extend(maker(i) for i in range(n_per_task))
        return out
