"""Task metrics for the LongBench-like evaluation suite.

These mirror LongBench's task-specific scoring: token-level F1 for QA,
an overlap score for summarization, exact match for few-shot/synthetic
retrieval, and edit similarity for code completion.  All scores are in
[0, 1] (reports scale by 100 where the paper does).
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Sequence


def exact_match(pred: Sequence[int], ref: Sequence[int]) -> float:
    """1.0 iff the sequences are identical."""
    return 1.0 if list(pred) == list(ref) else 0.0


def token_f1(pred: Sequence[int], ref: Sequence[int]) -> float:
    """Bag-of-tokens F1 (QA scoring)."""
    if not pred or not ref:
        return 1.0 if not pred and not ref else 0.0
    cp, cr = Counter(pred), Counter(ref)
    overlap = sum((cp & cr).values())
    if overlap == 0:
        return 0.0
    precision = overlap / len(pred)
    recall = overlap / len(ref)
    return 2 * precision * recall / (precision + recall)


def rouge_like(pred: Sequence[int], ref: Sequence[int]) -> float:
    """Unigram+bigram overlap F1 (summarization scoring)."""
    uni = token_f1(pred, ref)
    bi_p = list(zip(pred, pred[1:]))
    bi_r = list(zip(ref, ref[1:]))
    bi = token_f1(bi_p, bi_r) if bi_r else uni
    return 0.5 * (uni + bi)


def sequence_accuracy(pred: Sequence[int], ref: Sequence[int]) -> float:
    """Fraction of reference positions predicted correctly in order."""
    if not ref:
        return 1.0 if not pred else 0.0
    hits = sum(1 for p, r in zip(pred, ref) if p == r)
    return hits / len(ref)


def edit_similarity(pred: Sequence[int], ref: Sequence[int]) -> float:
    """1 - normalized Levenshtein distance (code scoring)."""
    a, b = list(pred), list(ref)
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    prev = list(range(len(b) + 1))
    for i, x in enumerate(a, 1):
        cur = [i] + [0] * len(b)
        for j, y in enumerate(b, 1):
            cur[j] = min(
                prev[j] + 1,
                cur[j - 1] + 1,
                prev[j - 1] + (x != y),
            )
        prev = cur
    return 1.0 - prev[-1] / max(len(a), len(b))


METRICS: Dict[str, Callable[[Sequence[int], Sequence[int]], float]] = {
    "exact_match": exact_match,
    "token_f1": token_f1,
    "rouge_like": rouge_like,
    "sequence_accuracy": sequence_accuracy,
    "edit_similarity": edit_similarity,
}


def score(metric: str, pred: Sequence[int], ref: Sequence[int]) -> float:
    """Apply a named metric."""
    if metric not in METRICS:
        raise KeyError(f"unknown metric {metric!r}; known: {sorted(METRICS)}")
    return METRICS[metric](pred, ref)
