"""Synthetic datasets standing in for ShareGPT and LongBench.

The paper evaluates on ShareGPT (throughput / length distribution) and
LongBench (negative-sample analysis).  Neither is available offline, so
this package provides seeded generators with matching structure; see
DESIGN.md for the substitution rationale.
"""

from repro.datasets.longbench import (
    LongBenchSim,
    Sample,
    TASK_GROUPS,
    TASK_METRICS,
    TASK_TYPES,
)
from repro.datasets.metrics import (
    METRICS,
    edit_similarity,
    exact_match,
    rouge_like,
    score,
    sequence_accuracy,
    token_f1,
)
from repro.datasets.sharegpt import Request, ShareGPTSim

__all__ = [
    "LongBenchSim",
    "Sample",
    "TASK_GROUPS",
    "TASK_METRICS",
    "TASK_TYPES",
    "METRICS",
    "edit_similarity",
    "exact_match",
    "rouge_like",
    "score",
    "sequence_accuracy",
    "token_f1",
    "Request",
    "ShareGPTSim",
]
