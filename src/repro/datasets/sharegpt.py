"""ShareGPT-like synthetic conversation workload.

The paper samples 1,000 ShareGPT requests for its length-distribution
and end-to-end-latency studies (Appendix A.1).  This generator produces
requests with ShareGPT-like marginals — log-normal prompt lengths, a
broad range of intended response lengths — whose prompts the functional
model can actually answer: every prompt embeds a record whose value span
is the "intended" response, so response length is governed by the same
retrieval circuit that compression degrades.  Requests optionally carry
a distractor record, making a fraction of the workload fragile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.model.tokenizer import SyntheticTokenizer


@dataclass
class Request:
    """One serving request."""

    request_id: str
    prompt: List[int]
    intended_length: int
    reference: List[int] = field(default_factory=list)
    meta: Dict[str, float] = field(default_factory=dict)

    @property
    def prompt_len(self) -> int:
        """Prompt length in tokens."""
        return len(self.prompt)


class ShareGPTSim:
    """Seeded ShareGPT-like request generator."""

    def __init__(
        self,
        tokenizer: Optional[SyntheticTokenizer] = None,
        seed: int = 0,
        prompt_log_mean: float = 5.6,   # median ~270 tokens
        prompt_log_sigma: float = 0.55,
        min_prompt: int = 96,
        max_prompt: int = 2048,
        min_answer: int = 4,
        max_answer: int = 24,
        distractor_fraction: float = 0.3,
    ) -> None:
        self.tok = tokenizer or SyntheticTokenizer()
        self.rng = np.random.default_rng(seed)
        self.prompt_log_mean = prompt_log_mean
        self.prompt_log_sigma = prompt_log_sigma
        self.min_prompt = min_prompt
        self.max_prompt = max_prompt
        self.min_answer = min_answer
        self.max_answer = max_answer
        self.distractor_fraction = distractor_fraction
        content = self.tok.content_ids
        half = len(content) // 2
        self.filler_alpha = content[:half]
        self.record_alpha = content[half:]

    def _filler(self, n: int) -> List[int]:
        if n <= 0:
            return []
        return [int(x) for x in self.rng.choice(self.filler_alpha, size=n)]

    def build_request(self, idx: int) -> Request:
        """One request: conversational filler + record(s) + final query."""
        sp = self.tok.special
        target_len = int(
            np.clip(
                self.rng.lognormal(self.prompt_log_mean, self.prompt_log_sigma),
                self.min_prompt,
                self.max_prompt,
            )
        )
        ans_len = int(self.rng.integers(self.min_answer, self.max_answer + 1))
        key = int(self.rng.choice(self.record_alpha))
        pool_size = min(len(self.record_alpha) - 1, ans_len + 2)
        pool = [c for c in self.record_alpha if c != key]
        pool = [int(x) for x in self.rng.choice(pool, size=pool_size, replace=False)]
        # answer tokens are distinct so the retrieval chain is unambiguous
        # for the uncompressed model; the decoy reuses the same pool so
        # every chain step is contested when a distractor is present
        vals = [int(x) for x in self.rng.permutation(pool)[:ans_len]]
        record = [sp.q, key] + vals + [sp.sep]

        has_distractor = bool(self.rng.random() < self.distractor_fraction)
        decoy: List[int] = []
        if has_distractor:
            decoy_vals = [int(x) for x in self.rng.permutation(pool)[:ans_len]]
            decoy = [sp.q, key] + decoy_vals + [sp.sep]

        tail = int(self.rng.integers(64, max(96, int(0.7 * target_len))))
        remaining = max(16, target_len - len(record) - len(decoy) - tail - 3)
        # the decoy sits well before the true record: the recency margin
        # scales with the gap, keeping uncompressed retrieval reliable
        # while compression noise can still flip near-threshold samples
        head = int(self.rng.integers(8, max(16, int(0.4 * remaining))))
        gap = max(0, remaining - head)
        prompt = (
            [sp.bos]
            + self._filler(head)
            + decoy
            + self._filler(gap)
            + record
            + self._filler(tail)
            + [sp.q, key]
        )
        return Request(
            request_id=f"sharegpt-{idx}",
            prompt=prompt,
            intended_length=ans_len,
            reference=vals,
            meta={
                "has_distractor": float(has_distractor),
                "tail": tail,
                "target_len": target_len,
            },
        )

    def build(self, n: int) -> List[Request]:
        """Generate ``n`` requests."""
        return [self.build_request(i) for i in range(n)]

    def arrival_times(self, n: int, requests_per_second: float) -> np.ndarray:
        """Poisson arrival timestamps for ``n`` requests."""
        if requests_per_second <= 0:
            raise ValueError("requests_per_second must be positive")
        gaps = self.rng.exponential(1.0 / requests_per_second, size=n)
        return np.cumsum(gaps)
