"""Table 8: request routing with the throughput and length predictors.

Four serving instances (paper: 4x A6000 under LMDeploy).  *Baseline*
runs the same configuration on all four with load balancing; the three
predictor policies run FP16 on one instance and the compression
algorithm on the other three, routing each request by predicted
throughput, predicted length, or predicted end-to-end latency.

All paper rows use the *offline* routing mode (assignments made up
front from predictor estimates — parity with the seed reproduction);
the extra "w/ Both (online)" row re-runs the best policy with the
shared-clock cluster making per-arrival decisions from live queue
depth and KV-token occupancy.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.config import ExperimentScale, current_scale
from repro.experiments.common import (
    ALGOS,
    ALL_ALGOS,
    ExperimentResult,
    comp_spec,
    comp_specs,
    cost_model,
    functional_model,
)
from repro.experiments.genruns import (
    sharegpt_lengths_by_algo,
    sharegpt_requests,
)
from repro.serving.router import RoutedRequest, Router, RoutingPolicy
from repro.serving.simulator import ServerInstance
from repro.tools.features import batch_features
from repro.tools.length_predictor import train_per_algorithm
from repro.tools.throughput_predictor import ThroughputPredictor

#: target utilization of the 4-instance fleet.  The paper drives its
#: testbed at 10 req/s into ~11 s mean latencies (deep queues); our
#: simulated service times are shorter, so the arrival rate is derived
#: from the workload to reach the same near-saturation regime.
TARGET_UTILIZATION = 0.85


def _instances(algos: Sequence[str]) -> list:
    return [
        ServerInstance(cost_model("llama-7b", "a6000", "lmdeploy"), comp_spec(a))
        for a in algos
    ]


def _derive_rps(reqs, lengths_fp16) -> float:
    """Arrival rate putting 4 FP16 instances at TARGET_UTILIZATION."""
    m = cost_model("llama-7b", "a6000", "lmdeploy")
    fp16 = comp_spec("fp16")
    service = []
    for r, ln in zip(reqs, lengths_fp16):
        # prefill serializes per instance; decode amortizes over the
        # continuous batch (~16 concurrent sequences)
        prefill = m.prefill(1, r.prompt_len, fp16).seconds
        step = m.decode_step(16, r.prompt_len + int(ln) // 2, fp16).seconds / 16
        service.append(prefill + max(1, int(ln)) * step)
    mean_service = float(np.mean(service))
    return TARGET_UTILIZATION * 4.0 / mean_service


def _routed_requests(
    scale: ExperimentScale, model: str, seed: int = 3
) -> list:
    reqs = sharegpt_requests(scale, seed)
    lengths = sharegpt_lengths_by_algo(scale, ALL_ALGOS, model)
    rps = _derive_rps(reqs, lengths["fp16"])
    rng = np.random.default_rng(seed + 29)
    arrivals = np.cumsum(rng.exponential(1.0 / rps, size=len(reqs)))
    return [
        RoutedRequest(
            request_id=r.request_id,
            arrival=float(arrivals[i]),
            prompt_len=r.prompt_len,
            intended_len=r.intended_length,
            lengths_by_algo={a: int(lengths[a][i]) for a in ALL_ALGOS},
        )
        for i, r in enumerate(reqs)
    ]


def router_table(
    scale: ExperimentScale, model: str = "llama",
    algos: Sequence[str] = ALGOS,
) -> Dict[str, Dict[str, float]]:
    """policy row -> {algo: mean E2E latency (s)}."""
    routed = _routed_requests(scale, model)
    reqs = sharegpt_requests(scale)

    # predictors (the paper's tools)
    tp_pred = ThroughputPredictor(
        cost_model("llama-7b", "a6000", "lmdeploy"), comp_specs(ALL_ALGOS)
    ).profile()
    lengths = sharegpt_lengths_by_algo(scale, ALL_ALGOS, model)
    tok = functional_model(model).tokenizer
    trained = train_per_algorithm(
        [r.prompt for r in reqs], lengths, tokenizer=tok
    )
    def throughput_fn(algo: str, batch: int, kv: int) -> float:
        return tp_pred.predict_decode_throughput(algo, max(1, batch), max(64, kv))

    # length predictions per request per algorithm (precomputed)
    feats = batch_features([r.prompt for r in reqs], tok)
    pred_len: Dict[str, Dict[str, float]] = {}
    for algo in ALL_ALGOS:
        vals = trained[algo]["predictor"].predict_length(feats)
        for r, v in zip(reqs, vals):
            pred_len.setdefault(r.request_id, {})[algo] = float(v)

    def length_fn(req: RoutedRequest, algo: str) -> float:
        return pred_len.get(req.request_id, {}).get(algo, float(req.intended_len))

    out: Dict[str, Dict[str, float]] = {
        "Baseline": {}, "w/ Throughput": {}, "w/ Length": {}, "w/ Both": {},
        "w/ Both (online)": {},
    }

    # FP16 baseline: 4 identical FP16 instances, load balanced
    router = Router(
        _instances(["fp16"] * 4), ["fp16"] * 4, RoutingPolicy.LOAD_BALANCE
    )
    out["Baseline"]["fp16"] = router.serve(routed).mean_e2e()

    for algo in algos:
        homogeneous = Router(
            _instances([algo] * 4), [algo] * 4, RoutingPolicy.LOAD_BALANCE
        )
        out["Baseline"][algo] = homogeneous.serve(routed).mean_e2e()

        mixed = ["fp16", algo, algo, algo]
        for label, policy, online in (
            ("w/ Throughput", RoutingPolicy.THROUGHPUT, False),
            ("w/ Length", RoutingPolicy.LENGTH, False),
            ("w/ Both", RoutingPolicy.BOTH, False),
            ("w/ Both (online)", RoutingPolicy.BOTH, True),
        ):
            router = Router(
                _instances(mixed),
                mixed,
                policy,
                throughput_fn=throughput_fn,
                length_fn=length_fn,
            )
            out[label][algo] = router.serve(routed, online=online).mean_e2e()
    return out


def run(
    scale: ExperimentScale = None, model: str = "llama"
) -> ExperimentResult:
    """Reproduce Table 8."""
    scale = scale or current_scale()
    table = router_table(scale, model)
    res = ExperimentResult(
        name="Table 8 — routed serving: average E2E latency (s)",
        description=(
            f"4 instances, {scale.sharegpt_requests} requests, Poisson "
            f"arrivals at ~{TARGET_UTILIZATION:.0%} fleet utilization; "
            "predictor-guided routing."
        ),
        data={"table": table},
    )
    cols = ["fp16"] + list(ALGOS)
    rows = []
    for label, vals in table.items():
        rows.append(
            [label]
            + [f"{vals[c]:.2f}" if c in vals else "-" for c in cols]
        )
    res.tables.append(format_table(["Policy"] + cols, rows))
    return res
