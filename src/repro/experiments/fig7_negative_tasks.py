"""Figure 7 (and appendix Fig. 18): negative samples by task type.

At the 10% threshold, the breakdown of each algorithm's negative
samples over task types — showing the unbalanced fragility toward
summarization and QA (Observation 6).
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import format_table
from repro.core.config import ExperimentScale, current_scale
from repro.datasets.longbench import TASK_TYPES
from repro.experiments.common import ALGOS, ExperimentResult
from repro.experiments.fig6_negative_threshold import build_analysis

THETA = 0.10


def task_breakdown(
    scale: ExperimentScale, model: str = "llama", theta: float = THETA
) -> Dict[str, Dict[str, int]]:
    """algo -> {task: negative count} at the given threshold."""
    analysis = build_analysis(scale, model)
    return {
        algo: analysis.counts_by_task([algo], theta) for algo in ALGOS
    }


def run(
    scale: ExperimentScale = None, model: str = "llama"
) -> ExperimentResult:
    """Reproduce Figure 7."""
    scale = scale or current_scale()
    data = task_breakdown(scale, model)
    res = ExperimentResult(
        name=f"Figure 7 — negative samples by task type ({model})",
        description=(
            f"Negative-sample counts per task at theta={THETA:.0%}; "
            "pie-chart proportions in the paper, counts here."
        ),
        data={"breakdown": data},
    )
    rows = []
    for algo, by_task in data.items():
        total = sum(by_task.values())
        rows.append(
            [algo, total]
            + [by_task.get(t, 0) for t in TASK_TYPES]
        )
    res.tables.append(
        format_table(["algo", "total"] + list(TASK_TYPES), rows)
    )
    return res
